"""Ablation A5 — partitioned irregularity detection (paper future work).

Section IV-C: on KNC the classifiers miss rajat30's ML component
because the dense rows dominate the whole-matrix regularized benchmark;
the paper proposes partition-level analysis as future work. This
benchmark regenerates the miss and verifies the extension fixes it
with a measurable speedup.
"""

from repro.experiments import ablations

from conftest import run_once


def test_partitioned_ml_ablation(benchmark, scale):
    table = run_once(benchmark, ablations.partitioned_ml, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    rows = {r[0]: r for r in table.rows}

    rajat = rows["rajat30"]
    # the paper's miss: global gain below T_ML, a partition above it
    assert rajat[h.index("global ML gain")] < 1.25
    assert rajat[h.index("max part gain")] > 1.25
    # the extension adds ML and the prefetching boost
    assert "ML" in rajat[h.index("classes (ext)")]
    assert rajat[h.index("ext vs std")] > 1.02

    # regular control: no spurious detection, no regression
    consph = rows["consph"]
    assert consph[h.index("classes (std)")] == consph[h.index("classes (ext)")]
    assert 0.98 <= consph[h.index("ext vs std")] <= 1.02
