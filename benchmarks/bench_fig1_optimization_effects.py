"""Benchmark E1 — regenerate paper Fig. 1.

Speedup (slowdown) of each single software optimization over baseline
CSR SpMV on KNC, across the named suite. Shape to reproduce: every
optimization has both winners and losers.
"""

from repro.experiments import fig1

from conftest import run_once


def test_fig1_optimization_effects(benchmark, scale):
    table = run_once(benchmark, fig1.run, scale=scale)
    print()
    print(table.to_text())

    # Shape assertions: adaptivity is motivated — prefetching and
    # auto-scheduling each help somewhere and hurt somewhere, and
    # decomposition wins dramatically on long-row matrices.
    header = table.headers
    for opt in ("prefetching", "auto-sched"):
        col = [row[header.index(opt)] for row in table.rows]
        assert max(col) > 1.1, f"{opt} never wins"
        assert min(col) < 1.0, f"{opt} never loses"
    deco = [row[header.index("decomposition")] for row in table.rows]
    assert max(deco) > 3.0
    # compression is broadly useful on KNC (bandwidth-starved cards)
    comp = [row[header.index("compression")] for row in table.rows]
    assert sum(v > 1.0 for v in comp) > len(comp) / 2
