"""Benchmark E7 — regenerate paper Fig. 7a (KNC landscape).

MKL CSR / baseline / feature-guided / profile-guided / oracle across
the named suite on KNC. Paper headline: prof 2.72x and feat 2.63x
average speedup over MKL CSR; no Inspector-Executor on KNC.
"""

from repro.experiments import fig7
from repro.experiments.common import geometric_mean

from conftest import run_once


def test_fig7a_knc_landscape(benchmark, scale, train_count):
    table = run_once(benchmark, fig7.run, "knc", scale=scale,
                     train_count=train_count)
    print()
    print(table.to_text())

    assert "MKL I-E" not in table.headers  # not available on KNC
    h = table.headers
    prof = [r[h.index("prof")] / r[h.index("MKL")] for r in table.rows]
    feat = [r[h.index("feat")] / r[h.index("MKL")] for r in table.rows]
    oracle = [r[h.index("oracle")] for r in table.rows]
    profs = [r[h.index("prof")] for r in table.rows]

    # Shape: clear average win over MKL CSR (paper: 2.72x / 2.63x).
    assert geometric_mean(prof) > 1.5
    assert geometric_mean(feat) > 1.2
    # Oracle dominates the adaptive optimizer matrix by matrix.
    assert all(o >= p * 0.999 for o, p in zip(oracle, profs))
