"""Benchmark E8 — regenerate paper Fig. 7b (KNL landscape).

Adds the MKL Inspector-Executor column. Paper headline: prof 6.73x,
feat 6.48x, I-E 4.89x over MKL CSR; the optimizer's largest wins over
the I-E occur on imbalanced matrices.
"""

from repro.experiments import fig7
from repro.experiments.common import geometric_mean

from conftest import run_once


def test_fig7b_knl_landscape(benchmark, scale, train_count):
    table = run_once(benchmark, fig7.run, "knl", scale=scale,
                     train_count=train_count)
    print()
    print(table.to_text())

    h = table.headers
    assert "MKL I-E" in h
    by_name = {r[0]: r for r in table.rows}

    prof = [r[h.index("prof")] / r[h.index("MKL")] for r in table.rows]
    ie = [r[h.index("MKL I-E")] / r[h.index("MKL")] for r in table.rows]

    # Shape: optimizer beats MKL CSR strongly; also beats I-E on average.
    assert geometric_mean(prof) > 1.8
    assert geometric_mean(prof) > geometric_mean(ie)
    # The skew matrices are the headline I-E wins.
    for skewed in ("ASIC_680k", "rajat30", "degme"):
        row = by_name[skewed]
        assert row[h.index("prof")] > 1.3 * row[h.index("MKL I-E")], skewed
