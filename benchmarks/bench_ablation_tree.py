"""Ablation A4 — decision-tree depth and feature-set complexity.

Shape: O(1) features alone cannot separate the classes; the paper's
O(N)/O(NNZ) subsets can; accuracy saturates with depth.
"""

from repro.experiments import ablations

from conftest import run_once


def test_tree_ablation(benchmark, train_count):
    table = run_once(benchmark, ablations.tree_ablation,
                     corpus_count=min(train_count, 80))
    print()
    print(table.to_text())

    h = table.headers
    by_key = {(r[0], r[1]): r for r in table.rows}

    def exact(features, depth):
        return by_key[(features, depth)][h.index("exact (%)")]

    # richer features at full depth beat O(1)-only features
    assert exact("paper O(NNZ)", 12) > exact("O(1) only", 12)
    # deeper trees never hurt much relative to stumps
    assert exact("paper O(NNZ)", 12) >= exact("paper O(NNZ)", 2) - 10.0
