"""Benchmark E6 — regenerate paper Table IV.

Leave-One-Out accuracy of the feature-guided classifier on the
profile-labeled corpus, for the paper's O(N) and O(NNZ) feature
subsets. Paper (KNC, 210 matrices): 80/95 and 84/100 (exact/partial %).
"""

from repro.experiments import table4

from conftest import run_once


def test_table4_classifier_accuracy(benchmark, train_count):
    table = run_once(benchmark, table4.run, train_count=train_count)
    print()
    print(table.to_text())

    h = table.headers
    rows = {r[0]: r for r in table.rows}
    on = rows["paper O(N) subset"]
    onnz = rows["paper O(NNZ) subset"]

    # Shape: well above chance (2^4 label sets), partial >= exact,
    # and the richer O(NNZ) subset does not do worse.
    for row in (on, onnz):
        assert row[h.index("exact (%)")] >= 50.0
        assert row[h.index("partial (%)")] >= row[h.index("exact (%)")]
    assert onnz[h.index("exact (%)")] >= on[h.index("exact (%)")] - 5.0
