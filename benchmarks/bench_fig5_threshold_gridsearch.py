"""Benchmark E3 — paper Section III-C threshold grid search (Fig. 5).

Reruns the exhaustive (T_ML, T_IMB) search on a training corpus. Shape
to reproduce: moderate thresholds (near the paper's 1.25/1.24) dominate
both over-eager (everything classified) and over-strict (nothing
classified) settings.
"""

from repro.experiments import fig5

from conftest import run_once


def test_fig5_threshold_gridsearch(benchmark, train_count):
    table = run_once(benchmark, fig5.run,
                     corpus_count=min(train_count, 60))
    print()
    print(table.to_text())

    best_gain = table.rows[0][table.headers.index("mean gain")]
    assert best_gain >= 1.0
    # The best thresholds actually classify a nonzero set of matrices.
    assert table.rows[0][table.headers.index("classified")] > 0
