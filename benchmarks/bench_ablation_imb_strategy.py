"""Ablation A1 — IMB strategy: decomposition vs auto vs dynamic.

DESIGN.md design-choice check: the pool's IMB sub-selection rule
(decompose on huge rows, auto-schedule on regional unevenness) must
match what an exhaustive comparison would pick.
"""

from repro.experiments import ablations

from conftest import run_once


def test_imb_strategy_ablation(benchmark, scale):
    table = run_once(benchmark, ablations.imb_strategy, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    rows = {r[0]: r for r in table.rows}
    # huge-row matrices: decomposition is the only effective remedy
    for name in ("ASIC_680k", "FullChip"):
        r = rows[name]
        assert r[h.index("decompose")] > 2.0
        assert r[h.index("decompose")] > r[h.index("auto")]
    # control: nothing should explode on the regular matrix
    control = rows["consph"]
    assert 0.8 <= control[h.index("decompose")] <= 1.2
