"""Ablation A2 — delta compression width (8 vs 16 vs auto).

The paper fixes "8- or 16-bit, never both"; this ablation verifies the
automatic width choice tracks the better forced width per matrix.
"""

from repro.experiments import ablations

from conftest import run_once


def test_delta_width_ablation(benchmark, scale):
    table = run_once(benchmark, ablations.delta_width, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    for row in table.rows:
        eight, sixteen, auto = (
            row[h.index("8-bit")], row[h.index("16-bit")],
            row[h.index("auto")],
        )
        # auto must be within 10% of the better forced width (the
        # footprint rule cannot see per-thread byte distributions)
        assert auto >= max(eight, sixteen) * 0.90, row[0]

    rows = {r[0]: r for r in table.rows}
    # narrow-band matrices compress to 8-bit; scattered ones need 16
    assert rows["consph"][h.index("auto width")] == "8-bit"
    assert rows["poisson3Db"][h.index("auto width")] == "16-bit"
