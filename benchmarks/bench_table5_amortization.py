"""Benchmark E10 — regenerate paper Table V.

Minimum solver iterations to amortize each optimizer over MKL CSR on
KNL. Shape to reproduce: feature-guided amortizes fastest, then
profile-guided, then the trivial sweeps (combined worst); the
Inspector-Executor sits between.
"""

import math

from repro.experiments import table5

from conftest import run_once


def test_table5_amortization(benchmark, scale, train_count):
    table = run_once(benchmark, table5.run, scale=scale,
                     train_count=train_count)
    print()
    print(table.to_text())

    h = table.headers
    avg = {
        r[0]: float(r[h.index("N_avg")])
        for r in table.rows
        if r[h.index("N_avg")] != "inf"
    }
    assert avg["feature-guided"] < avg["profile-guided"]
    assert avg["profile-guided"] < avg["trivial-single"]
    assert avg["trivial-single"] < avg["trivial-combined"]
    # all optimizers eventually pay off on most of the suite
    for r in table.rows:
        beneficial, total = r[h.index("beneficial")].split("/")
        assert int(beneficial) >= int(total) - 3, r[0]
