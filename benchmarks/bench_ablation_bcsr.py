"""Ablation A6 — BCSR register blocking vs delta compression (MB class).

The plug-and-play extension payload: a whole-kernel replacement
registered into the pool. Shape: BCSR wins where blocks are natural
(fill ~1), delta compression wins on pointwise patterns.
"""

from repro.experiments import ablations

from conftest import run_once


def test_bcsr_vs_delta_ablation(benchmark, scale):
    table = run_once(benchmark, ablations.bcsr_vs_delta, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    rows = {r[0]: r for r in table.rows}
    blocked = rows["fem-block2"]
    assert blocked[h.index("fill")] < 1.2
    assert blocked[h.index("bcsr 2x2")] > blocked[h.index("delta+vec")]
    point = rows["pointwise"]
    assert point[h.index("fill")] > 2.0
    assert point[h.index("delta+vec")] >= point[h.index("bcsr 2x2")]
