"""Benchmark E9 — regenerate paper Fig. 7c (Broadwell landscape).

Paper headline: modest gains on the multicore (prof 2.02x, feat 1.86x,
I-E 1.49x over MKL CSR) — most matrices are simply bandwidth bound, so
the adaptive optimizer's edge is much smaller than on the Phis.
"""

from repro.experiments import fig7
from repro.experiments.common import geometric_mean

from conftest import run_once


def test_fig7c_broadwell_landscape(benchmark, scale, train_count):
    table = run_once(benchmark, fig7.run, "broadwell", scale=scale,
                     train_count=train_count)
    print()
    print(table.to_text())

    h = table.headers
    prof = [r[h.index("prof")] / r[h.index("MKL")] for r in table.rows]
    mean = geometric_mean(prof)
    # Shape: positive but modest average gain, and on regular MB
    # matrices the optimizer must stay close to the vendor kernel.
    assert mean > 1.0
    by_name = {r[0]: r for r in table.rows}
    consph = by_name["consph"]
    assert consph[h.index("prof")] > 0.8 * consph[h.index("MKL")]


def test_knl_gains_exceed_broadwell_gains(benchmark, scale, train_count):
    """Cross-panel shape: paper's 6.73x (KNL) >> 2.02x (Broadwell)."""
    def both():
        t_knl = fig7.run("knl", scale=scale, train_count=train_count,
                         include_oracle=False)
        t_bdw = fig7.run("broadwell", scale=scale,
                         train_count=train_count, include_oracle=False)
        return t_knl, t_bdw

    t_knl, t_bdw = run_once(benchmark, both)

    def mean_gain(table):
        h = table.headers
        return geometric_mean(
            [r[h.index("prof")] / r[h.index("MKL")] for r in table.rows]
        )

    assert mean_gain(t_knl) > mean_gain(t_bdw)
