"""Micro-benchmarks of the batched (multi-RHS) execution plane.

Companion to ``bench_kernel_throughput.py``: times one batched
``matmat`` over 32 right-hand sides against 32 sequential ``matvec``
calls for the main kernel variants, plus the plan-cache hit path. The
persistent cross-PR trajectory lives in ``BENCH_kernels.json``
(regenerated with ``repro-spmv bench``); these pytest-benchmark
entries give per-commit local numbers.
"""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV
from repro.formats import DeltaCSR
from repro.kernels.sellcs import SellCSigmaSpMV
from repro.machine import KNL
from repro.matrices import named_matrix

RHS = 32


@pytest.fixture(scope="module")
def matrix():
    return named_matrix("poisson3Db", scale=0.5)


@pytest.fixture(scope="module")
def X(matrix):
    return np.random.default_rng(0).standard_normal((matrix.ncols, RHS))


def test_numeric_csr_sequential_matvecs(benchmark, matrix, X):
    def sweep():
        for j in range(RHS):
            matrix.matvec(X[:, j])

    benchmark(sweep)


def test_numeric_csr_batched_matmat(benchmark, matrix, X):
    result = benchmark(matrix.matmat, X)
    assert result.shape == (matrix.nrows, RHS)


def test_numeric_delta_batched_matmat(benchmark, matrix, X):
    delta = DeltaCSR.from_csr(matrix)
    result = benchmark(delta.matmat, X)
    assert result.shape == (matrix.nrows, RHS)


def test_numeric_sellcs_batched_matmat(benchmark, matrix, X):
    kernel = SellCSigmaSpMV(chunk=8)
    data = kernel.preprocess(matrix)
    data.matvec(X[:, 0])  # prime the lazy row-major layout
    result = benchmark(kernel.apply_multi, data, X)
    assert result.shape == (matrix.nrows, RHS)


def test_plan_cache_hit_build(benchmark, matrix):
    optimizer = AdaptiveSpMV(KNL, classifier="profile")
    optimizer.optimize(matrix)  # populate the cache

    operator = benchmark(optimizer.optimize, matrix)
    assert operator.plan.cache_hit
    assert operator.plan.total_overhead_seconds == 0.0
