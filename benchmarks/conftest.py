"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper artifact (see DESIGN.md Section 4)
and prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces
the paper's tables and figure data in one run.

Environment knobs:

``REPRO_BENCH_SCALE``
    Size scale of the named matrix suite (default 1.0, the full-size
    analogues; lower it for a quick pass, at the cost of shifting the
    cache-residency regimes the classifier reacts to).
``REPRO_BENCH_TRAIN``
    Training-corpus size for the feature-guided classifier
    (default 60; the paper uses 210).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_train_count() -> int:
    return int(os.environ.get("REPRO_BENCH_TRAIN", "60"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def train_count() -> int:
    return bench_train_count()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
