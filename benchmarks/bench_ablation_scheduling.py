"""Ablation A3 — scheduling policies of the CSR kernel.

Shape: nnz-balanced ~ static-rows on regular matrices; static-rows
collapses on skewed ones; dynamic never catastrophically loses.
"""

from repro.experiments import ablations

from conftest import run_once


def test_scheduling_ablation(benchmark, scale):
    table = run_once(benchmark, ablations.scheduling_policies, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    rows = {r[0]: r for r in table.rows}
    regular = rows["consph"]
    assert regular[h.index("balanced-nnz")] >= 0.9 * regular[
        h.index("static-rows")
    ]
    # power-law rows: balancing nonzeros beats balancing row counts
    powerlaw = rows["citationCiteseer"]
    assert powerlaw[h.index("balanced-nnz")] > 1.2 * powerlaw[
        h.index("static-rows")
    ]
    # a single huge row defeats *every* schedule — work stealing cannot
    # split a row either (the unsplittable-unit floor), which is exactly
    # why the pool needs matrix decomposition for this case
    huge = rows["ASIC_680k"]
    assert huge[h.index("balanced-nnz")] < 1.2 * huge[h.index("static-rows")]
    assert huge[h.index("dynamic")] < 2.0 * huge[h.index("balanced-nnz")]
    for row in table.rows:
        assert row[h.index("dynamic")] > 0.5 * row[h.index("balanced-nnz")]
