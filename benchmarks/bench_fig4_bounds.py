"""Benchmark E2 — regenerate paper Fig. 4.

Baseline CSR performance vs the per-class upper bounds on KNC, plus
the detected classes. Shape to reproduce: bottleneck diversity (several
distinct class sets) and the bound-dominance relations.
"""

from repro.experiments import fig4

from conftest import run_once


def test_fig4_bounds_landscape(benchmark, scale):
    table = run_once(benchmark, fig4.run, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    classes = table.column("classes")
    assert len(set(classes)) >= 3, "no bottleneck diversity"
    for row in table.rows:
        assert row[h.index("P_peak")] > row[h.index("P_MB")]
        assert row[h.index("P_IMB")] >= row[h.index("P_CSR")] * 0.99
