"""Micro-benchmarks of the library's own hot paths.

Not a paper artifact: these timings track the *reproduction's* numeric
and simulation throughput (NumPy-vectorized SpMV, delta decode, engine
cost evaluation) so performance regressions in the substrate itself
are visible.
"""

import numpy as np
import pytest

from repro.formats import DeltaCSR
from repro.kernels import baseline_kernel, merged_pool_kernel
from repro.machine import ExecutionEngine, KNL
from repro.matrices import named_matrix
from repro.pipeline import PipelineRunner


@pytest.fixture(scope="module")
def matrix():
    return named_matrix("poisson3Db", scale=0.5)


@pytest.fixture(scope="module")
def x(matrix):
    return np.random.default_rng(0).standard_normal(matrix.ncols)


def test_numeric_csr_spmv(benchmark, matrix, x):
    result = benchmark(matrix.matvec, x)
    assert result.shape == (matrix.nrows,)


def test_numeric_delta_decode(benchmark, matrix):
    delta = DeltaCSR.from_csr(matrix)
    colind = benchmark(delta.decode_colind)
    assert colind.size == matrix.nnz


def test_engine_cost_evaluation(benchmark, matrix):
    engine = ExecutionEngine(KNL)
    kernel = baseline_kernel()
    data = kernel.preprocess(matrix)
    result = benchmark(engine.run, kernel, data)
    assert result.gflops > 0


def test_engine_full_optimized_pipeline(benchmark, matrix):
    runner = PipelineRunner(KNL)
    kernel = merged_pool_kernel(("compression", "prefetching"))

    result = benchmark(runner.simulate, kernel, matrix)
    assert result.gflops > 0
    assert "transform" in runner.tracer.stage_names()
    assert "execute" in runner.tracer.stage_names()


@pytest.mark.parametrize("nthreads", [1, 2, 4, 8])
def test_parallel_matvec_throughput(benchmark, matrix, x, nthreads):
    """Real threaded SpMV on the shared-memory pool; the benchmark
    extra-info carries the measured per-thread CPU-time imbalance."""
    from repro.parallel import ParallelSpMV

    op = ParallelSpMV(matrix, nthreads=nthreads, schedule="balanced-nnz")
    out = np.empty(matrix.nrows)
    op.matvec(x, out=out)  # warm the pool and workspace arena

    result = benchmark(op.matvec, x, out=out)
    assert result.shape == (matrix.nrows,)
    m = op.last_measurement
    benchmark.extra_info["nthreads"] = m.nthreads
    benchmark.extra_info["measured_imbalance"] = m.imbalance
    benchmark.extra_info["wall_imbalance"] = m.wall_imbalance


@pytest.mark.parametrize("schedule",
                         ["static-rows", "balanced-nnz", "dynamic"])
def test_parallel_schedule_policies(benchmark, matrix, x, schedule):
    from repro.parallel import ParallelSpMV

    op = ParallelSpMV(matrix, nthreads=4, schedule=schedule)
    out = np.empty(matrix.nrows)
    op.matvec(x, out=out)

    benchmark(op.matvec, x, out=out)
    benchmark.extra_info["schedule"] = schedule
    benchmark.extra_info["measured_imbalance"] = op.last_measurement.imbalance
