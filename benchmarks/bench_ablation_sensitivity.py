"""Ablation A8 — counterfactual-machine sensitivity.

The architecture-adaptivity claim probed directly: sweep KNC's
latency-hiding parameters toward Broadwell values and watch a scattered
matrix's detected class migrate {ML} -> {MB}, the same migration the
paper observes between its real platforms.
"""

from repro.experiments import ablations

from conftest import run_once


def test_architecture_sensitivity(benchmark, scale):
    table = run_once(benchmark, ablations.architecture_sensitivity,
                     scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    ratios = table.column("P_ML/P_CSR")
    classes = table.column("classes")
    # stock KNC: strongly latency bound
    assert ratios[0] > 2.0
    assert "ML" in classes[0]
    # Broadwell-grade memory system: ML gone
    assert ratios[-1] < 1.25
    assert "ML" not in classes[-1]
    # either knob alone already moves the needle
    assert ratios[1] < ratios[0]
    assert ratios[2] < ratios[0]
