"""Ablation A7 — the format zoo across structural archetypes.

CSR+flags vs whole-format replacements (delta, BCSR, SELL-C-sigma):
no single format wins everywhere, the premise of the paper's
adaptivity and of its choice of a CSR-based optimization pool.
"""

from repro.experiments import ablations

from conftest import run_once


def test_format_landscape(benchmark, scale):
    table = run_once(benchmark, ablations.format_landscape, scale=scale)
    print()
    print(table.to_text())

    h = table.headers
    winners = set(table.column("best"))
    # no single format dominates all archetypes
    assert len(winners) >= 2
    rows = {r[0]: r for r in table.rows}
    # each replacement format wins its home archetype...
    assert rows["fem-block2"][h.index("best")] in ("bcsr 2x2", "sell-8")
    # ...and loses on a hostile one
    assert rows["powerlaw"][h.index("sell-8")] < 1.0
    assert rows["webbase-1M"][h.index("bcsr 2x2")] < \
        rows["webbase-1M"][h.index("delta+vec")] * 1.2