"""Benchmark E4 — paper Table II: feature inventory + extraction scaling.

This is the one benchmark where *real* wall-clock is the observable:
feature extraction is genuinely executed, and its cost must scale at
most linearly in NNZ (the paper's complexity column).
"""

from repro.experiments import table2
from repro.matrices import extract_features, named_matrix

from conftest import run_once


def test_table2_feature_inventory():
    table = table2.run()
    print()
    print(table.to_text())
    complexities = table.column("complexity")
    assert complexities.count("O(1)") == 2
    assert complexities.count("O(N)") == 10
    assert complexities.count("O(NNZ)") == 2


def test_table2_extraction_scaling(benchmark):
    table = run_once(benchmark, table2.extraction_scaling,
                     sizes=(20_000, 40_000, 80_000))
    print()
    print(table.to_text())
    secs = table.column("seconds")
    nnzs = table.column("nnz")
    # at most linear in NNZ (2x headroom for constant factors)
    assert secs[-1] / secs[0] < 2.0 * (nnzs[-1] / nnzs[0])


def test_feature_extraction_throughput(benchmark):
    """Raw throughput of one full Table II extraction pass."""
    csr = named_matrix("web-Google", scale=0.5)
    benchmark(extract_features, csr)
