"""Benchmark E5 — paper Table III: platform characteristics + STREAM.

The simulated STREAM triad must recover the paper's main/LLC bandwidth
pairs undistorted (the engine's bandwidth model calibration check).
"""

import pytest

from repro.experiments import table3

from conftest import run_once

PAPER = {"knc": (128, 140), "knl": (395, 570), "broadwell": (60, 200)}


def test_table3_platforms_and_stream(benchmark):
    table = run_once(benchmark, table3.run)
    print()
    print(table.to_text())

    h = table.headers
    for row in table.rows:
        name = row[0]
        codename = {"3120P": "knc", "7250": "knl", "2699": "broadwell"}[
            next(k for k in ("3120P", "7250", "2699") if k in name)
        ]
        main, llc = PAPER[codename]
        assert row[h.index("STREAM main (GB/s)")] == pytest.approx(
            main, rel=0.02
        )
        assert row[h.index("STREAM llc (GB/s)")] == pytest.approx(
            llc, rel=0.05
        )
