"""Repo-root pytest bootstrap.

Makes ``src/`` importable so ``python -m pytest`` works from a clean
checkout without installing the package or exporting ``PYTHONPATH``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
