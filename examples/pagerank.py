"""PageRank on a web graph with the adaptive SpMV operator.

The paper's introduction motivates SpMV with "applications from the
scientific computing, machine learning and graph analytics domains",
and specifically notes that graph applications change matrix structure
frequently — which is why the optimizer must be lightweight. This
example runs power-iteration PageRank on the web-Google analogue,
comparing iteration throughput with the MKL baseline and showing the
optimizer's overhead against the total solve.

Run with::

    python examples/pagerank.py [platform]
"""

import sys

import numpy as np

from repro import AdaptiveSpMV, get_platform, named_matrix, run_mkl_csr
from repro.formats import CSRMatrix
from repro.solvers import pagerank


def main() -> None:
    platform = get_platform(sys.argv[1] if len(sys.argv) > 1 else "knl")
    print(f"=== PageRank on web-Google analogue, {platform.codename} ===\n")

    # Build A^T row-normalized: rank flows along in-links.
    G = named_matrix("web-Google", scale=0.6)
    out_deg = np.maximum(G.row_nnz(), 1).astype(np.float64)
    scaled = CSRMatrix(
        G.rowptr.copy(), G.colind.copy(),
        np.ones(G.nnz) / out_deg[G.row_ids_per_nnz()], G.shape,
    )
    A = scaled.transpose()
    print(f"graph: {A.nrows} vertices, {A.nnz} edges")

    optimizer = AdaptiveSpMV(platform, classifier="profile")
    operator = optimizer.optimize(A)
    print(f"plan: {operator.plan}")

    result = pagerank(operator, A.nrows, tol=1e-8)
    rank, iters = result.x, result.iterations
    top = np.argsort(rank)[::-1][:5]
    print(f"\nconverged={result.converged} after {iters} iterations")
    print("top-5 vertices:", ", ".join(
        f"{v} ({rank[v]:.2e})" for v in top
    ))

    # Throughput comparison on the simulated platform.
    t_mkl = run_mkl_csr(A, platform).seconds
    t_opt = operator.simulate().seconds
    t_pre = operator.plan.total_overhead_seconds
    total_mkl = iters * t_mkl
    total_opt = iters * t_opt + t_pre
    print(f"\nper-iteration SpMV: MKL {1e6 * t_mkl:.1f} us, "
          f"optimized {1e6 * t_opt:.1f} us "
          f"({t_mkl / t_opt:.2f}x)")
    print(f"whole solve incl. optimizer overhead: "
          f"MKL {1e3 * total_mkl:.1f} ms vs optimized "
          f"{1e3 * total_opt:.1f} ms "
          f"({total_mkl / total_opt:.2f}x end-to-end)")
    n_min = t_pre / (t_mkl - t_opt) if t_opt < t_mkl else float("inf")
    print(
        f"break-even at {n_min:,.0f} iterations - this solve ran "
        f"{iters}. Short graph-analytics runs are exactly why the "
        "paper pushes decision cost down (feature-guided classifier, "
        "Table V); see examples/solver_acceleration.py."
    )

    # Repeat traffic: the same graph resubmitted hits the plan cache,
    # so classification and format conversion are skipped entirely.
    operator2 = optimizer.optimize(A)
    print(
        f"\nrepeat build: cache_hit={operator2.plan.cache_hit}, "
        f"overhead {1e3 * operator2.plan.total_overhead_seconds:.2f} ms "
        f"(first build paid {1e3 * t_pre:.2f} ms)"
    )

    # Batched personalized PageRank: one SpMM per power step ranks
    # many seed vertices at once through the operator's matmat plane.
    n_seeds = 8
    seeds = np.zeros((A.nrows, n_seeds))
    seeds[np.argsort(rank)[::-1][:n_seeds], np.arange(n_seeds)] = 1.0
    batched = pagerank(
        operator2, A.nrows, tol=1e-8, personalization=seeds
    )
    print(
        f"personalized PageRank for {n_seeds} seeds in one batched "
        f"run: converged={batched.converged} after "
        f"{batched.iterations} iterations "
        f"({n_seeds} rankings per SpMM instead of {n_seeds} SpMV "
        "sweeps)"
    )


if __name__ == "__main__":
    main()
