"""Bring-your-own-matrix pipeline: Matrix Market file -> optimized SpMV.

Shows the workflow a downstream user follows with their own data:

1. write/read a Matrix Market file (here we synthesize one first),
2. extract and inspect the structural features the classifiers use,
3. train the lightweight feature-guided classifier offline,
4. optimize the loaded matrix and use it inside GMRES.

Run with::

    python examples/custom_matrix_pipeline.py [path/to/matrix.mtx]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AdaptiveSpMV,
    FeatureGuidedClassifier,
    KNL,
    extract_features,
    gmres,
    read_matrix_market,
    training_suite,
    write_matrix_market,
)
from repro.formats import CSRMatrix
from repro.matrices.generators import random_uniform, with_dense_rows


def _demo_file() -> Path:
    """Synthesize a circuit-like matrix and write it to disk."""
    base = random_uniform(30_000, nnz_per_row=5.0, seed=3)
    A = with_dense_rows(base, n_dense=3, dense_nnz=18_000, seed=4)
    path = Path(tempfile.mkdtemp()) / "circuit_demo.mtx"
    write_matrix_market(A, path, comment="synthetic circuit demo")
    print(f"wrote demo matrix to {path}")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else _demo_file()

    # 1. Load.
    A = read_matrix_market(path)
    print(f"loaded {path.name}: {A.nrows}x{A.ncols}, nnz={A.nnz}")

    # 2. Features (what the classifier sees).
    f = extract_features(A, llc_bytes=KNL.llc_bytes)
    print("\nstructural features (paper Table II):")
    for key, value in f.as_dict().items():
        print(f"  {key:15s} {value:12.4g}")

    # 3. Offline: train the feature-guided classifier for KNL.
    print("\ntraining feature-guided classifier...")
    corpus = [t.matrix for t in training_suite(count=30, seed=2)]
    clf = FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)
    print(f"  corpus labels: {clf.report.label_counts}")
    print(f"  tree: depth {clf.report.tree_depth}, "
          f"{clf.report.tree_leaves} leaves")

    # 4. Online: optimize (milliseconds of decision time) and solve.
    optimizer = AdaptiveSpMV(KNL, classifier=clf)
    operator = optimizer.optimize(A)
    print(f"\nplan: {operator.plan}")

    # Make the system solvable (diagonally dominant) and run GMRES.
    import scipy.sparse as sp

    S = A.to_scipy()
    dom = np.asarray(abs(S).sum(axis=1)).ravel() + 1.0
    B = CSRMatrix.from_scipy((S + sp.diags(dom)).tocsr())
    op_b = optimizer.optimize(B)
    b = np.ones(B.nrows)
    result = gmres(op_b, b, tol=1e-8, restart=30)
    print(
        f"GMRES: converged={result.converged} "
        f"iterations={result.iterations} "
        f"residual={result.residual_norm:.2e}"
    )
    print(f"simulated optimized SpMV: {op_b.simulate().gflops:.2f} Gflop/s")


if __name__ == "__main__":
    main()
