"""Bottleneck tour: one matrix per class, dissected.

Walks the four bottleneck classes of the paper with an archetype
matrix each, showing for every one:

* the structural features that betray the bottleneck (Table II),
* the bound analysis (Section III-B),
* the classifier verdict and the Table I optimization it triggers,
* what each *other* optimization would have done — i.e. why blindly
  applying optimizations can hurt (the paper's Fig. 1 argument).

Run with::

    python examples/bottleneck_tour.py [platform]
"""

import sys

from repro import (
    baseline_kernel,
    extract_features,
    get_platform,
    measure_bounds,
    named_matrix,
)
from repro.core import classify_from_bounds, format_classes
from repro.kernels import single_optimization_kernels
from repro.machine import ExecutionEngine

TOUR = (
    ("MB", "consph",
     "regular FEM: saturates bandwidth, nothing else to fix"),
    ("ML", "poisson3Db",
     "scattered columns: x gathers miss, latency exposed"),
    ("IMB", "ASIC_680k",
     "a few huge rows: one thread drowns, the rest idle"),
    ("CMP", "webbase-1M",
     "millions of 3-element rows: loop overhead dominates"),
)


def main() -> None:
    platform = get_platform(sys.argv[1] if len(sys.argv) > 1 else "knc")
    engine = ExecutionEngine(platform)
    base = baseline_kernel()
    singles = single_optimization_kernels()

    for expected_class, name, story in TOUR:
        A = named_matrix(name, scale=0.6)
        f = extract_features(A, llc_bytes=platform.llc_bytes)
        bounds = measure_bounds(A, platform)
        classes = classify_from_bounds(bounds)

        print(f"\n=== {expected_class} archetype: {name} ===")
        print(f"    ({story})")
        print(
            f"features: nnz/row avg {f.nnz_avg:.1f} max {f.nnz_max:.0f}, "
            f"bw_avg {f.bw_avg:.0f}, misses_avg {f.misses_avg:.2f}, "
            f"fits-LLC {bool(f.size)}"
        )
        line = "  ".join(
            f"{k}={v:.1f}" for k, v in bounds.as_dict().items()
        )
        print(f"bounds:   {line}")
        print(f"classes:  {format_classes(classes)}")

        r0 = engine.run(base, base.preprocess(A))
        print("single optimizations vs baseline:")
        for opt_name, kernel in singles.items():
            r = engine.run(kernel, kernel.preprocess(A))
            ratio = r.gflops / r0.gflops
            marker = "+" if ratio > 1.02 else ("-" if ratio < 0.98 else " ")
            print(f"  {marker} {opt_name:14s} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
