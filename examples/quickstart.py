"""Quickstart: optimize one sparse matrix, end to end.

Run with::

    python examples/quickstart.py [matrix-name] [platform]

Steps shown:

1. build (or load) a sparse matrix,
2. look at its structure,
3. run the paper's bound-and-bottleneck analysis,
4. let the adaptive optimizer pick and apply optimizations,
5. use the optimized operator numerically and inspect its simulated
   performance against the vendor baseline.
"""

import sys

import numpy as np

from repro import (
    AdaptiveSpMV,
    baseline_kernel,
    get_platform,
    measure_bounds,
    named_matrix,
    run_mkl_csr,
)
from repro.core import classify_from_bounds, format_classes
from repro.machine import ExecutionEngine
from repro.matrices import matrix_stats


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ASIC_680k"
    platform = get_platform(sys.argv[2] if len(sys.argv) > 2 else "knl")

    print(f"=== {name} on {platform.name} ({platform.codename}) ===\n")

    # 1-2. Build the matrix and inspect its structure.
    A = named_matrix(name, scale=0.5)
    print(matrix_stats(A).describe())

    # 3. Bound-and-bottleneck analysis (paper Section III-B).
    bounds = measure_bounds(A, platform)
    print("\nper-class performance bounds (Gflop/s):")
    for key, value in bounds.as_dict().items():
        print(f"  {key:7s} {value:9.2f}")
    classes = classify_from_bounds(bounds)
    print(f"detected bottlenecks: {format_classes(classes)}")

    # 4. Adaptive optimization (classification -> Table I mapping).
    optimizer = AdaptiveSpMV(platform, classifier="profile")
    operator = optimizer.optimize(A)
    print(f"\noptimization plan: {operator.plan}")

    # 5a. The optimized operator is numerically exact.
    x = np.random.default_rng(0).standard_normal(A.ncols)
    error = np.max(np.abs(operator.matvec(x) - A.matvec(x)))
    print(f"numeric check: max |y_opt - y_csr| = {error:.2e}")

    # 5b. Simulated performance vs baseline CSR and the MKL analogue.
    engine = ExecutionEngine(platform)
    base = baseline_kernel()
    r_base = engine.run(base, base.preprocess(A))
    r_mkl = run_mkl_csr(A, platform)
    r_opt = operator.simulate()
    print(f"\nbaseline CSR : {r_base.gflops:8.2f} Gflop/s")
    print(f"MKL CSR      : {r_mkl.gflops:8.2f} Gflop/s")
    print(
        f"optimized    : {r_opt.gflops:8.2f} Gflop/s "
        f"({r_opt.gflops / r_mkl.gflops:.2f}x over MKL)"
    )


if __name__ == "__main__":
    main()
