"""Roofline analysis of the matrix suite (paper Section II framing).

Places every suite matrix's baseline CSR SpMV on each platform's
roofline: operational intensity, achieved vs attainable Gflop/s, and
which roof binds. The paper's premise — SpMV sits deep in the
memory-bound region (flop:byte < 1) — is visible directly, as is the
exception the CMP class captures (cache-resident working sets move the
attainable roof up).

Run with::

    python examples/roofline_analysis.py [platform]
"""

import sys

from repro import baseline_kernel, get_platform, load_suite
from repro.machine import (
    ExecutionEngine,
    peak_gflops,
    ridge_point,
    roofline_point,
)


def main() -> None:
    platform = get_platform(sys.argv[1] if len(sys.argv) > 1 else "knc")
    engine = ExecutionEngine(platform)
    base = baseline_kernel()

    print(f"=== Roofline on {platform.name} ===")
    print(f"compute roof : {peak_gflops(platform):8.1f} Gflop/s")
    print(f"bandwidth    : {platform.bw_main_gbs:8.1f} GB/s (main), "
          f"{platform.bw_llc_gbs:.1f} GB/s (LLC)")
    print(f"ridge point  : {ridge_point(platform):8.2f} flop/byte\n")

    print(f"{'matrix':18s} {'flop/byte':>9s} {'achieved':>9s} "
          f"{'attainable':>10s} {'util':>6s}  bound")
    print("-" * 64)
    for spec, csr in load_suite(scale=0.5):
        data = base.preprocess(csr)
        result = engine.run(base, data)
        ws = csr.total_nbytes() + 8 * (csr.nrows + csr.ncols)
        point = roofline_point(result, platform, ws_bytes=ws)
        print(
            f"{spec.name:18s} {point.intensity:9.3f} "
            f"{point.achieved_gflops:9.2f} "
            f"{point.attainable_gflops:10.2f} "
            f"{100 * point.roof_utilization:5.0f}%  {point.bound}"
        )

    print(
        "\nEvery matrix sits left of the ridge (memory bound) — the "
        "paper's flop:byte < 1 argument. Low roof utilization marks the "
        "matrices whose bottleneck is NOT bandwidth (latency, imbalance, "
        "loop overhead): exactly the ones the classifier routes to "
        "non-MB optimizations."
    )


if __name__ == "__main__":
    main()
