"""Cross-platform study: the same matrices, three machines.

Reproduces the paper's central observation in miniature: the *same*
sparse matrix hits *different* bottlenecks on different architectures,
so a fixed optimization choice cannot win everywhere. For each matrix
the script prints, per platform, the detected classes, the selected
optimizations and the gain over the vendor baseline — watch the classes
change between KNC, KNL and Broadwell (as human_gene1 does in the
paper).

Run with::

    python examples/cross_platform_study.py
"""

from repro import AdaptiveSpMV, PLATFORMS, named_matrix, run_mkl_csr
from repro.core import format_classes

MATRICES = ("consph", "poisson3Db", "human_gene1", "ASIC_680k", "smallfem")


def main() -> None:
    print(f"{'matrix':14s} {'platform':10s} {'classes':16s} "
          f"{'optimizations':38s} {'vs MKL':>7s}")
    print("-" * 90)

    for name in MATRICES:
        A = named_matrix(name, scale=0.6)
        rows = []
        for codename, platform in PLATFORMS.items():
            optimizer = AdaptiveSpMV(platform, classifier="profile")
            operator = optimizer.optimize(A)
            r_opt = operator.simulate()
            r_mkl = run_mkl_csr(A, platform)
            opts = "+".join(operator.plan.optimizations) or "(none)"
            rows.append((
                codename,
                format_classes(operator.plan.classes),
                opts,
                r_opt.gflops / r_mkl.gflops,
            ))
        for i, (codename, classes, opts, gain) in enumerate(rows):
            label = name if i == 0 else ""
            print(f"{label:14s} {codename:10s} {classes:16s} "
                  f"{opts:38s} {gain:6.2f}x")
        class_sets = {r[1] for r in rows}
        if len(class_sets) > 1:
            print(f"{'':14s} -> classes differ across platforms "
                  f"({len(class_sets)} distinct sets)")
        print()


if __name__ == "__main__":
    main()
