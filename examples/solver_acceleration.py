"""Solver acceleration: when does the optimizer pay off?

The paper's amortization argument (Section IV-D) in action: a
preconditioned CG solve on an SPD problem, where the SpMV operator is
either the vendor baseline or the adaptively optimized kernel. The
script reports the solver's iteration count, the per-iteration SpMV
time on the simulated platform, and the break-even iteration count

    N_min = t_pre / (t_mkl - t_opt)

for both of the paper's classifiers — showing why the feature-guided
path matters for preconditioned (few-iteration) solves.

Run with::

    python examples/solver_acceleration.py [platform]
"""

import sys

import numpy as np

from repro import (
    AdaptiveSpMV,
    FeatureGuidedClassifier,
    cg,
    get_platform,
    jacobi_preconditioner,
    run_mkl_csr,
    training_suite,
)
from repro.formats import COOMatrix, CSRMatrix
from repro.matrices.generators import random_uniform


def _spd_scattered(n: int = 120_000, seed: int = 11) -> CSRMatrix:
    """Symmetric, diagonally dominant, *scattered* SPD system.

    An unstructured-mesh-like problem: off-diagonal couplings land on
    random columns, so SpMV is latency-bound on the Phis — the regime
    where the optimizer actually buys solver time.
    """
    B = random_uniform(n, nnz_per_row=8.0, seed=seed)
    coo = B.to_coo()
    rows = np.concatenate([coo.rows, coo.cols, np.arange(n)])
    cols = np.concatenate([coo.cols, coo.rows, np.arange(n)])
    dom = np.full(n, 1.0)
    np.add.at(dom, coo.rows, np.abs(coo.values))
    np.add.at(dom, coo.cols, np.abs(coo.values))
    vals = np.concatenate([-coo.values, -coo.values, dom])
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


def main() -> None:
    platform = get_platform(sys.argv[1] if len(sys.argv) > 1 else "knl")
    print(f"=== CG on a scattered SPD problem, platform {platform.codename} ===\n")

    # The linear system: symmetric diagonally-dominant scattered matrix.
    A = _spd_scattered()
    rng = np.random.default_rng(7)
    x_true = rng.standard_normal(A.nrows)
    b = A.matvec(x_true)
    print(f"system: n = {A.nrows}, nnz = {A.nnz}")

    # Offline stage: train the feature-guided classifier once.
    print("training feature-guided classifier (offline stage)...")
    corpus = [t.matrix for t in training_suite(count=30, seed=1)]
    feat_clf = FeatureGuidedClassifier(platform).fit_from_matrices(corpus)

    # Optimize the operator with both classifiers.
    results = {}
    for label, optimizer in (
        ("profile-guided", AdaptiveSpMV(platform, classifier="profile")),
        ("feature-guided", AdaptiveSpMV(platform, classifier=feat_clf)),
    ):
        operator = optimizer.optimize(A)
        results[label] = operator
        print(f"\n{label}: {operator.plan}")

    # Solve (numerics identical whichever operator we use).
    operator = results["feature-guided"]
    solve = cg(operator, b, tol=1e-8,
               preconditioner=jacobi_preconditioner(A))
    print(
        f"\nCG converged: {solve.converged} in {solve.iterations} "
        f"iterations (residual {solve.residual_norm:.2e})"
    )
    err = np.max(np.abs(solve.x - x_true))
    print(f"solution max error: {err:.2e}")

    # Amortization analysis on the simulated platform.
    t_mkl = run_mkl_csr(A, platform).seconds
    print(f"\nper-SpMV time, MKL CSR analogue: {1e6 * t_mkl:9.1f} us")
    for label, operator in results.items():
        t_opt = operator.simulate().seconds
        t_pre = operator.plan.total_overhead_seconds
        gain = t_mkl - t_opt
        n_min = t_pre / gain if gain > 0 else float("inf")
        verdict = (
            f"pays off after {n_min:,.0f} iterations"
            if np.isfinite(n_min)
            else "never pays off on this matrix"
        )
        print(
            f"  {label:15s} t_opt {1e6 * t_opt:9.1f} us  "
            f"t_pre {1e3 * t_pre:8.2f} ms  -> {verdict}"
        )
    print(
        f"\nthis solve used {solve.iterations} SpMVs "
        "- compare with the break-even counts above."
    )


if __name__ == "__main__":
    main()
