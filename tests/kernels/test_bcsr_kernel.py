"""Unit tests for the BCSR kernel and its pool registration."""

import numpy as np
import pytest

from repro.kernels import BCSRSpMV, merged_pool_kernel, pool_kernel
from repro.machine import ExecutionEngine, KNC


def test_registered_as_pool_optimization():
    kernel = pool_kernel("bcsr")
    assert isinstance(kernel, BCSRSpMV)
    assert kernel.block == 2


def test_numeric_exactness(small_random_csr, x300):
    kernel = BCSRSpMV(block=2)
    y = kernel.run_numeric(small_random_csr, x300)
    np.testing.assert_allclose(
        y, small_random_csr.matvec(x300), rtol=1e-12
    )


def test_cannot_merge_with_flag_optimizations():
    with pytest.raises(ValueError, match="jointly"):
        merged_pool_kernel(("bcsr", "prefetching"))


def test_single_name_merge_returns_kernel():
    kernel = merged_pool_kernel(("bcsr",))
    assert isinstance(kernel, BCSRSpMV)


def test_engine_run(banded_csr):
    engine = ExecutionEngine(KNC, nthreads=32)
    kernel = BCSRSpMV(block=2)
    r = engine.run(kernel, kernel.preprocess(banded_csr))
    assert r.gflops > 0
    assert np.isfinite(r.seconds)


def test_wins_on_block_structured_loses_on_pointwise():
    """The A6 trade-off in miniature."""
    from repro.kernels import baseline_kernel
    from repro.matrices.generators import fem_like, random_uniform

    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    bcsr = BCSRSpMV(block=2)

    blocked = fem_like(40_000, block=2, neighbors=12, reach=30, seed=1)
    point = random_uniform(40_000, nnz_per_row=10.0, seed=2)

    def ratio(csr):
        r0 = engine.run(base, base.preprocess(csr))
        r1 = engine.run(bcsr, bcsr.preprocess(csr))
        return r1.gflops / r0.gflops

    assert ratio(blocked) > 1.2
    assert ratio(point) < 1.05


def test_preprocessing_cost_positive(banded_csr):
    kernel = BCSRSpMV(block=2)
    assert kernel.preprocessing_seconds(banded_csr, KNC) > 0


def test_flops_exclude_fill(banded_csr):
    kernel = BCSRSpMV(block=2)
    data = kernel.preprocess(banded_csr)
    cost = kernel.cost(data, KNC, kernel.partition(data, 8))
    assert cost.flops == pytest.approx(2.0 * banded_csr.nnz)


def test_block_validation():
    with pytest.raises(ValueError):
        BCSRSpMV(block=0)
