"""Unit tests for the optimization-pool kernel registry."""

import numpy as np
import pytest

from repro.kernels import (
    POOL_CONFIGS,
    merged_pool_kernel,
    pairwise_optimization_kernels,
    pool_kernel,
    pool_names,
    single_optimization_kernels,
)


def test_five_single_optimizations():
    """The paper's trivial-single sweeps 'a total of 5' optimizations."""
    assert len(pool_names()) == 5
    assert set(pool_names()) == {
        "compression", "prefetching", "decomposition", "auto-sched",
        "unrolling",
    }


def test_fifteen_combined():
    """Singles plus pairs: 'total of 15 in our case'."""
    assert len(pairwise_optimization_kernels()) == 15


def test_table1_mapping():
    assert pool_kernel("compression").config.compress
    assert pool_kernel("compression").config.vectorize   # MB: delta + vec
    assert pool_kernel("prefetching").config.prefetch
    assert pool_kernel("decomposition").config.decompose
    assert pool_kernel("auto-sched").config.schedule == "auto"
    assert pool_kernel("unrolling").config.unroll
    assert pool_kernel("unrolling").config.vectorize     # CMP: unroll + vec


def test_unknown_name_rejected():
    with pytest.raises(ValueError):
        pool_kernel("blocking")
    with pytest.raises(ValueError):
        merged_pool_kernel(("compression", "blocking"))


def test_merged_kernel_joint_flags():
    k = merged_pool_kernel(("compression", "prefetching", "auto-sched"))
    cfg = k.config
    assert cfg.compress and cfg.vectorize and cfg.prefetch
    assert cfg.schedule == "auto"


def test_merged_empty_is_baseline():
    k = merged_pool_kernel(())
    assert k.name == "csr"


def test_merged_kernels_numeric(small_random_csr, x300):
    expected = small_random_csr.matvec(x300)
    for names in (("compression", "decomposition"),
                  ("prefetching", "unrolling"),
                  ("compression", "prefetching", "unrolling",
                   "decomposition")):
        k = merged_pool_kernel(names)
        np.testing.assert_allclose(
            k.run_numeric(small_random_csr, x300), expected, rtol=1e-12
        )


def test_singles_are_fresh_instances():
    a = single_optimization_kernels()
    b = single_optimization_kernels()
    assert a["compression"] is not b["compression"]
    assert a["compression"].config == b["compression"].config
