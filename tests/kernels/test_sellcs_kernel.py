"""Unit tests for the SELL-C-sigma kernel."""

import numpy as np
import pytest

from repro.kernels import SellCSigmaSpMV, baseline_kernel, pool_kernel
from repro.machine import ExecutionEngine, KNC


def test_registered_in_pool():
    k = pool_kernel("sell-c-sigma")
    assert isinstance(k, SellCSigmaSpMV)


def test_numeric_exactness(small_random_csr, x300):
    k = SellCSigmaSpMV(chunk=8)
    np.testing.assert_allclose(
        k.run_numeric(small_random_csr, x300),
        small_random_csr.matvec(x300),
        rtol=1e-12,
    )


def test_engine_run(banded_csr):
    engine = ExecutionEngine(KNC, nthreads=32)
    k = SellCSigmaSpMV(chunk=8)
    r = engine.run(k, k.preprocess(banded_csr))
    assert r.gflops > 0 and np.isfinite(r.seconds)


def test_wins_on_uniform_rows_loses_on_power_law():
    """SELL's published trade-off: lockstep SIMD on regular rows,
    padding explosion on heavy-tailed ones."""
    from repro.matrices.generators import banded, power_law

    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    sell = SellCSigmaSpMV(chunk=8)

    def ratio(csr):
        r0 = engine.run(base, base.preprocess(csr))
        r1 = engine.run(sell, sell.preprocess(csr))
        return r1.gflops / r0.gflops

    regular = banded(60_000, nnz_per_row=9, bandwidth=20, seed=51)
    heavy = power_law(60_000, avg_deg=8.0, alpha=2.0, seed=52)
    assert ratio(regular) > 1.1
    assert ratio(heavy) < 1.0


def test_preprocessing_cost_positive(banded_csr):
    k = SellCSigmaSpMV(chunk=8)
    assert k.preprocessing_seconds(banded_csr, KNC) > 0


def test_flops_exclude_padding(skewed_csr):
    k = SellCSigmaSpMV(chunk=8)
    data = k.preprocess(skewed_csr)
    cost = k.cost(data, KNC, k.partition(data, 8))
    assert cost.flops == pytest.approx(2.0 * skewed_csr.nnz)


def test_chunk_validation():
    with pytest.raises(ValueError):
        SellCSigmaSpMV(chunk=0)


def test_stream_cost_helper():
    from repro.machine.cache import stream_cost

    # resident tiny stream: free
    free = stream_cost(np.arange(16), 16, KNC)
    assert free["latency_ns"] == 0.0
    # huge random stream: costly
    rng = np.random.default_rng(0)
    # working set must exceed the LLC share for DRAM traffic to appear
    big = stream_cost(rng.integers(0, 20_000_000, size=500_000),
                      20_000_000, KNC)
    assert big["latency_ns"] > 0.0
    assert big["dram_bytes"] > 0.0
    # empty stream
    empty = stream_cost(np.zeros(0, dtype=np.int64), 10, KNC)
    assert empty["latency_ns"] == 0.0
