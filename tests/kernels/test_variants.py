"""Unit tests for the configurable SpMV kernel variants."""

import itertools

import numpy as np
import pytest

from repro.kernels import ConfiguredSpMV, SpMVConfig, baseline_kernel
from repro.machine import ExecutionEngine, KNC


ALL_FLAG_COMBOS = [
    dict(zip(("vectorize", "unroll", "prefetch", "compress", "decompose"),
             bits))
    for bits in itertools.product((False, True), repeat=5)
]


@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS)
def test_every_variant_is_numerically_exact(flags, small_random_csr, x300):
    """All 32 flag combinations must compute the same y = A @ x."""
    kernel = ConfiguredSpMV(SpMVConfig(**flags))
    y = kernel.run_numeric(small_random_csr, x300)
    np.testing.assert_allclose(
        y, small_random_csr.matvec(x300), rtol=1e-12, atol=1e-12
    )


@pytest.mark.parametrize("schedule", ["static-rows", "balanced-nnz",
                                      "auto", "dynamic"])
def test_schedules_do_not_change_numerics(schedule, small_random_csr, x300):
    kernel = ConfiguredSpMV(SpMVConfig(schedule=schedule))
    y = kernel.run_numeric(small_random_csr, x300)
    np.testing.assert_allclose(y, small_random_csr.matvec(x300), rtol=1e-12)


def test_every_variant_costs_and_runs(skewed_csr):
    engine = ExecutionEngine(KNC, nthreads=32)
    for flags in ALL_FLAG_COMBOS:
        kernel = ConfiguredSpMV(SpMVConfig(**flags))
        r = engine.run(kernel, kernel.preprocess(skewed_csr))
        assert r.gflops > 0, flags
        assert np.isfinite(r.seconds)


def test_label_generation():
    assert SpMVConfig().label == "csr"
    assert SpMVConfig(vectorize=True, prefetch=True).label == "csr+vec+pf"
    assert SpMVConfig(compress=True).label == "csr+delta"
    assert SpMVConfig(schedule="auto").label == "csr+auto"


def test_optimization_tags():
    cfg = SpMVConfig(compress=True, vectorize=True, schedule="auto")
    assert set(cfg.optimization_tags) == {
        "compression", "vectorization", "auto-scheduling"
    }


def test_merged_with_unions_flags():
    a = SpMVConfig(compress=True, vectorize=True)
    b = SpMVConfig(prefetch=True, schedule="auto")
    m = a.merged_with(b)
    assert m.compress and m.vectorize and m.prefetch
    assert m.schedule == "auto"


def test_merged_with_keeps_explicit_params():
    a = SpMVConfig(compress=True, delta_width=16)
    m = a.merged_with(SpMVConfig(decompose=True))
    assert m.delta_width == 16 and m.decompose


def test_config_validation():
    with pytest.raises(ValueError):
        SpMVConfig(schedule="guided")
    with pytest.raises(ValueError):
        SpMVConfig(delta_width=12)


def test_preprocess_builds_right_formats(small_random_csr):
    k = ConfiguredSpMV(SpMVConfig(compress=True))
    data = k.preprocess(small_random_csr)
    assert data.delta is not None and data.decomposed is None

    k = ConfiguredSpMV(SpMVConfig(decompose=True, decompose_threshold=10))
    data = k.preprocess(small_random_csr)
    assert data.decomposed is not None and data.delta is None

    k = ConfiguredSpMV(
        SpMVConfig(compress=True, decompose=True, decompose_threshold=10)
    )
    data = k.preprocess(small_random_csr)
    assert data.decomposed is not None and data.short_delta is not None


def test_preprocessing_seconds_ordering(small_random_csr):
    base = baseline_kernel()
    compressed = ConfiguredSpMV(SpMVConfig(compress=True))
    both = ConfiguredSpMV(SpMVConfig(compress=True, decompose=True))
    t0 = base.preprocessing_seconds(small_random_csr, KNC)
    t1 = compressed.preprocessing_seconds(small_random_csr, KNC)
    t2 = both.preprocessing_seconds(small_random_csr, KNC)
    assert t0 == 0.0
    assert 0 < t1 < t2


def test_baseline_kernel_is_plain_csr():
    k = baseline_kernel()
    assert k.name == "csr"
    assert k.config == SpMVConfig()
    assert k.schedule == "balanced-nnz"


def test_cost_mlp_reflects_prefetch(banded_csr):
    from repro.sched import balanced_nnz

    part = balanced_nnz(banded_csr, 8)
    plain = baseline_kernel()
    pf = ConfiguredSpMV(SpMVConfig(prefetch=True))
    c0 = plain.cost(plain.preprocess(banded_csr), KNC, part)
    c1 = pf.cost(pf.preprocess(banded_csr), KNC, part)
    assert c1.mlp > c0.mlp


def test_compress_reduces_stream_bytes(banded_csr):
    from repro.sched import balanced_nnz

    part = balanced_nnz(banded_csr, 8)
    plain = baseline_kernel()
    comp = ConfiguredSpMV(SpMVConfig(compress=True))
    b0 = plain.cost(plain.preprocess(banded_csr), KNC, part).stream_bytes.sum()
    b1 = comp.cost(comp.preprocess(banded_csr), KNC, part).stream_bytes.sum()
    assert b1 < b0


def test_decompose_rebalances_thread_cycles(skewed_csr):
    from repro.sched import balanced_nnz

    plain = baseline_kernel()
    split = ConfiguredSpMV(SpMVConfig(decompose=True, decompose_threshold=50))
    d0 = plain.preprocess(skewed_csr)
    d1 = split.preprocess(skewed_csr)
    p0 = plain.partition(d0, 16)
    p1 = split.partition(d1, 16)
    c0 = plain.cost(d0, KNC, p0)
    c1 = split.cost(d1, KNC, p1)
    imb0 = c0.compute_cycles.max() / max(c0.compute_cycles.mean(), 1e-12)
    imb1 = c1.compute_cycles.max() / max(c1.compute_cycles.mean(), 1e-12)
    assert imb1 < imb0


def test_flops_invariant_across_variants(skewed_csr):
    from repro.sched import balanced_nnz

    expected = 2.0 * skewed_csr.nnz
    for flags in ({}, {"compress": True}, {"decompose": True},
                  {"compress": True, "decompose": True}):
        kernel = ConfiguredSpMV(SpMVConfig(**flags))
        data = kernel.preprocess(skewed_csr)
        cost = kernel.cost(data, KNC, kernel.partition(data, 8))
        assert cost.flops == pytest.approx(expected)
