"""Unit tests for the simulated preprocessing cost models."""

import pytest

from repro.kernels import (
    JIT_CODEGEN_SECONDS,
    decomposition_seconds,
    delta_conversion_seconds,
    feature_extraction_seconds,
    pass_seconds,
)
from repro.machine import KNC, KNL


def test_pass_seconds_scales_with_bytes():
    assert pass_seconds(2e9, KNC) > pass_seconds(1e9, KNC)
    # fixed overhead floor
    assert pass_seconds(0.0, KNC) > 0.0


def test_pass_seconds_faster_on_higher_bandwidth():
    assert pass_seconds(1e9, KNL) < pass_seconds(1e9, KNC)


def test_conversion_costs_scale_with_matrix(banded_csr, skewed_csr):
    small = skewed_csr  # ~12k nnz
    big = banded_csr    # ~18k nnz
    assert delta_conversion_seconds(big, KNC) > 0
    assert decomposition_seconds(big, KNC) > delta_conversion_seconds(
        big, KNC
    ) * 0.2  # same order of magnitude
    del small


def test_feature_extraction_complexity_ordering(banded_csr):
    o1 = feature_extraction_seconds(banded_csr, KNC, "O(1)")
    on = feature_extraction_seconds(banded_csr, KNC, "O(N)")
    onnz = feature_extraction_seconds(banded_csr, KNC, "O(NNZ)")
    assert o1 <= on <= onnz


def test_feature_extraction_unknown_class(banded_csr):
    with pytest.raises(ValueError):
        feature_extraction_seconds(banded_csr, KNC, "O(N log N)")


def test_codegen_constant_is_sane():
    assert 0.001 <= JIT_CODEGEN_SECONDS <= 0.1
