"""Unit tests for the bound micro-kernels."""

import numpy as np
import pytest

from repro.kernels import RegularizedColindSpMV, UnitStrideSpMV, baseline_kernel
from repro.machine import ExecutionEngine, KNC
from repro.sched import balanced_nnz


def test_regularized_numeric_semantics(empty_row_csr):
    """colind[j] := i  =>  y[i] = rowsum_i * x[i]."""
    x = np.arange(6, dtype=np.float64) + 1.0
    y = RegularizedColindSpMV().apply(empty_row_csr, x)
    rowsums = np.array([0, 1, 0, 2 + 3 + 4, 0, 5 + 6 + 7 + 8 + 9 + 10],
                       dtype=np.float64)
    np.testing.assert_allclose(y, rowsums * x)


def test_unitstride_numeric_semantics(empty_row_csr):
    x = np.full(6, 2.0)
    y = UnitStrideSpMV().apply(empty_row_csr, x)
    assert y[5] == pytest.approx(2.0 * sum(range(5, 11)))


def test_microbenches_validate_x_shape(banded_csr):
    for bench in (RegularizedColindSpMV(), UnitStrideSpMV()):
        with pytest.raises(ValueError):
            bench.apply(banded_csr, np.zeros(3))


def test_regularized_removes_latency(scattered_csr):
    part = balanced_nnz(scattered_csr, 8)
    cost = RegularizedColindSpMV().cost(scattered_csr, KNC, part)
    assert cost.latency_ns.sum() == 0.0


def test_regularized_keeps_index_traffic(scattered_csr):
    part = balanced_nnz(scattered_csr, 8)
    reg = RegularizedColindSpMV().cost(scattered_csr, KNC, part)
    unit = UnitStrideSpMV().cost(scattered_csr, KNC, part)
    # the P_ML bench still loads colind; the P_CMP bench does not
    assert reg.stream_bytes.sum() > unit.stream_bytes.sum()


def test_bounds_dominate_baseline_on_scattered():
    """On a big scattered matrix, removing irregularity must help."""
    from repro.matrices.generators import random_uniform

    csr = random_uniform(120_000, nnz_per_row=20.0, seed=9)
    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    p_csr = engine.run(base, base.preprocess(csr)).gflops
    p_ml = engine.run(RegularizedColindSpMV(), csr).gflops
    p_cmp = engine.run(UnitStrideSpMV(), csr).gflops
    assert p_ml > 1.5 * p_csr
    assert p_cmp > p_csr


def test_unitstride_uses_full_working_set(banded_csr):
    part = balanced_nnz(banded_csr, 8)
    cost = UnitStrideSpMV().cost(banded_csr, KNC, part)
    full_ws = banded_csr.total_nbytes() + 8 * (
        banded_csr.nrows + banded_csr.ncols
    )
    assert cost.working_set_bytes == pytest.approx(full_ws)
