"""Unit tests for the shared per-row cost model."""

import numpy as np
import pytest

from repro.kernels.costmodel import (
    row_compute_cycles,
    row_stream_bytes,
    spmv_cost,
)
from repro.machine import KNC, BROADWELL
from repro.sched import balanced_nnz


def test_scalar_cycles_linear_in_nnz():
    nnz = np.array([0, 1, 10, 100])
    c = row_compute_cycles(nnz, KNC)
    assert c[0] == KNC.row_overhead_cycles        # empty rows pay bookkeeping
    # marginal cost per nnz equals the scalar rate
    assert (c[3] - c[2]) / 90 == pytest.approx(KNC.scalar_cycles_per_nnz)


def test_vectorized_long_rows_cheaper_than_scalar():
    nnz = np.array([400])
    scalar = row_compute_cycles(nnz, KNC)
    vector = row_compute_cycles(nnz, KNC, vectorize=True)
    assert vector[0] < scalar[0]


def test_vectorized_short_rows_can_lose():
    nnz = np.array([2])
    scalar = row_compute_cycles(nnz, KNC)
    vector = row_compute_cycles(nnz, KNC, vectorize=True)
    # one masked SIMD iteration + higher overhead vs 2 scalar elements
    assert vector[0] > scalar[0] * 0.8  # never dramatically cheaper


def test_vector_tail_quantization():
    # 9 nnz needs 2 SIMD iterations of 8; 16 nnz also needs 2
    c9 = row_compute_cycles(np.array([9]), KNC, vectorize=True)
    c16 = row_compute_cycles(np.array([16]), KNC, vectorize=True)
    assert c9[0] == pytest.approx(c16[0])


def test_unroll_only_helps_long_vector_rows():
    short = np.array([8])
    long = np.array([640])
    v = row_compute_cycles(long, KNC, vectorize=True)
    vu = row_compute_cycles(long, KNC, vectorize=True, unroll=True)
    assert vu[0] < v[0]
    vs = row_compute_cycles(short, KNC, vectorize=True)
    vus = row_compute_cycles(short, KNC, vectorize=True, unroll=True)
    assert vus[0] == pytest.approx(vs[0])


def test_prefetch_and_decode_add_linear_overhead():
    nnz = np.array([100])
    base = row_compute_cycles(nnz, KNC)
    pf = row_compute_cycles(nnz, KNC, prefetch=True)
    dec = row_compute_cycles(nnz, KNC, decode=True)
    assert pf[0] == pytest.approx(base[0] + 100 * KNC.prefetch_issue_cycles)
    assert dec[0] == pytest.approx(base[0] + 100 * KNC.decode_cycles_per_nnz)


def test_regular_x_modes_cheaper_than_gather():
    nnz = np.array([64])
    gather = row_compute_cycles(nnz, KNC, vectorize=True, x_mode="gather")
    unit = row_compute_cycles(nnz, KNC, vectorize=True, x_mode="unit")
    assert unit[0] < gather[0]


def test_x_mode_validation():
    with pytest.raises(ValueError):
        row_compute_cycles(np.array([1]), KNC, x_mode="banana")


def test_stream_bytes_accounting():
    nnz = np.array([10])
    b = row_stream_bytes(nnz, index_bytes_per_nnz=4.0, x_mode="sequential")
    # 10 * (8 + 4) + rowptr 8 + y 16 + x 8
    assert b[0] == pytest.approx(10 * 12 + 8 + 16 + 8)


def test_stream_bytes_compressed_index():
    nnz = np.array([10])
    full = row_stream_bytes(nnz, index_bytes_per_nnz=4.0, x_mode="unit")
    delta = row_stream_bytes(nnz, index_bytes_per_nnz=1.0, x_mode="unit")
    assert full[0] - delta[0] == pytest.approx(30.0)


def test_spmv_cost_thread_aggregation(banded_csr):
    part = balanced_nnz(banded_csr, 4)
    cost = spmv_cost(banded_csr, KNC, part)
    assert cost.compute_cycles.shape == (4,)
    # all rows accounted for: totals match an 1-thread partition
    part1 = balanced_nnz(banded_csr, 1)
    cost1 = spmv_cost(banded_csr, KNC, part1)
    assert cost.compute_cycles.sum() == pytest.approx(
        cost1.compute_cycles.sum()
    )
    assert cost.stream_bytes.sum() == pytest.approx(cost1.stream_bytes.sum())


def test_spmv_cost_partition_shape_mismatch(banded_csr, skewed_csr):
    part = balanced_nnz(skewed_csr, 4)
    with pytest.raises(ValueError):
        spmv_cost(banded_csr, KNC, part)


def test_working_set_override(banded_csr):
    part = balanced_nnz(banded_csr, 4)
    cost = spmv_cost(banded_csr, KNC, part, working_set_bytes=123.0)
    assert cost.working_set_bytes == 123.0


def test_platform_sensitivity(banded_csr):
    """Same matrix, same kernel: the weaker scalar core must need more
    cycles per nonzero."""
    part = balanced_nnz(banded_csr, 4)
    knc = spmv_cost(banded_csr, KNC, part).compute_cycles.sum()
    bdw = spmv_cost(banded_csr, BROADWELL, part).compute_cycles.sum()
    assert knc > 2 * bdw
