"""Property-based tests for the batched ``matmat`` plane.

For every registered format and random structure (including nnz = 0,
single-row and empty-row cases), the batched product must agree
column-for-column with sequential ``matvec`` calls and with the scipy
dense reference to 1e-12.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, CSRMatrix, available_formats, convert


@st.composite
def sparse_matrices(draw, max_dim=30, max_nnz=150):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CSRMatrix.from_coo(COOMatrix(rows, cols, values, (nrows, ncols)))


@given(sparse_matrices(), st.integers(1, 6), st.integers(0, 2**31 - 1),
       st.sampled_from(available_formats()))
@settings(max_examples=120, deadline=None)
def test_matmat_consistent_across_planes(csr, k, seed, name):
    fmt = convert(csr, name)
    X = np.random.default_rng(seed).uniform(-1, 1, size=(csr.ncols, k))
    Y = fmt.matmat(X)
    assert Y.shape == (csr.nrows, k)
    # batched == stacked single-RHS on the same format
    stacked = np.column_stack([fmt.matvec(X[:, j]) for j in range(k)])
    np.testing.assert_allclose(Y, stacked, rtol=1e-12, atol=1e-12)
    # batched == dense reference
    np.testing.assert_allclose(Y, csr.to_dense() @ X, rtol=1e-12,
                               atol=1e-12)


@given(sparse_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_matmul_operator_matches_matmat(csr, seed):
    X = np.random.default_rng(seed).uniform(-1, 1, size=(csr.ncols, 3))
    np.testing.assert_array_equal(csr @ X, csr.matmat(X))
