"""Property-based tests on the bound-and-bottleneck analysis.

For arbitrary generated matrices, the structural guarantees of Section
III-B must hold: P_peak dominates P_MB (indexing can only add traffic),
P_IMB dominates P_CSR (median <= max), all bounds positive/finite, and
the classifier always returns a valid subset of the four classes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALL_CLASSES,
    ProfileThresholds,
    classify_from_bounds,
    measure_bounds,
)
from repro.machine import KNC, KNL

from .test_formats_prop import sparse_matrices


@st.composite
def nonempty_matrices(draw):
    csr = draw(sparse_matrices(max_dim=60, max_nnz=400))
    if csr.nnz == 0:
        # ensure at least one nonzero so bounds are defined
        from repro.formats import CSRMatrix

        csr = CSRMatrix.from_arrays([0], [0], [1.0], csr.shape)
    return csr


@given(nonempty_matrices(), st.sampled_from([KNC, KNL]))
@settings(max_examples=40, deadline=None)
def test_bound_invariants(csr, machine):
    b = measure_bounds(csr, machine, nthreads=8)
    vals = b.as_dict()
    for name, v in vals.items():
        assert np.isfinite(v) and v > 0, name
    assert b.p_peak > b.p_mb
    assert b.p_imb >= b.p_csr * 0.999


@given(nonempty_matrices(), st.sampled_from([KNC, KNL]))
@settings(max_examples=40, deadline=None)
def test_classifier_returns_valid_subset(csr, machine):
    b = measure_bounds(csr, machine, nthreads=8)
    classes = classify_from_bounds(b)
    assert classes <= frozenset(ALL_CLASSES)


@given(nonempty_matrices())
@settings(max_examples=30, deadline=None)
def test_stricter_thresholds_shrink_ml_imb(csr):
    b = measure_bounds(csr, KNC, nthreads=8)
    loose = classify_from_bounds(
        b, ProfileThresholds(t_ml=1.01, t_imb=1.01)
    )
    strict = classify_from_bounds(
        b, ProfileThresholds(t_ml=10.0, t_imb=10.0)
    )
    from repro.core import Bottleneck

    # ML/IMB memberships are monotone in their thresholds
    for c in (Bottleneck.ML, Bottleneck.IMB):
        if c in strict:
            assert c in loose


@given(nonempty_matrices())
@settings(max_examples=30, deadline=None)
def test_bounds_deterministic(csr):
    a = measure_bounds(csr, KNC, nthreads=8)
    b = measure_bounds(csr, KNC, nthreads=8)
    assert a.as_dict() == pytest.approx(b.as_dict())
