"""Property-based tests on partitioning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import auto_chunked, balanced_nnz, dynamic_chunks, static_rows

from .test_formats_prop import sparse_matrices


@given(sparse_matrices(), st.integers(1, 32))
@settings(max_examples=80, deadline=None)
def test_every_policy_covers_each_row_once(csr, nthreads):
    for policy in (
        lambda: static_rows(csr.nrows, nthreads),
        lambda: balanced_nnz(csr, nthreads),
        lambda: auto_chunked(csr, nthreads),
        lambda: dynamic_chunks(csr, nthreads),
    ):
        p = policy()
        p.validate_covers(csr.nrows)
        # thread_sums of ones == rows per thread; totals conserve
        counts = p.thread_sums(np.ones(csr.nrows))
        assert counts.sum() == csr.nrows


@given(sparse_matrices(), st.integers(1, 32))
@settings(max_examples=80, deadline=None)
def test_balanced_nnz_contiguity_and_balance(csr, nthreads):
    p = balanced_nnz(csr, nthreads)
    # contiguous: thread ids never decrease along rows
    assert np.all(np.diff(p.thread_of_row) >= 0)
    assert 1 <= p.nthreads <= max(nthreads, 1)
    per_thread = p.thread_sums(csr.row_nnz().astype(float))
    if csr.nnz:
        # fair share over the *effective* thread count: degenerate
        # requests (more threads than nonempty rows) clamp
        fair = csr.nnz / p.nthreads
        max_row = csr.row_nnz().max()
        # no thread exceeds fair share by more than one row's worth
        assert per_thread.max() <= fair + max_row + 1e-9


@given(sparse_matrices(), st.integers(1, 32), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_auto_chunk_sizes(csr, nthreads, chunk):
    p = auto_chunked(csr, nthreads, chunk_rows=chunk)
    # every maximal run of equal thread ids has length <= chunk
    tor = p.thread_of_row
    if tor.size:
        change = np.flatnonzero(np.diff(tor) != 0)
        run_bounds = np.concatenate(([0], change + 1, [tor.size]))
        runs = np.diff(run_bounds)
        # with a single effective thread (nthreads == 1, or degenerate
        # clamping e.g. on zero-nnz matrices) the whole matrix is one run
        assert runs.max() <= max(chunk, 1) or p.nthreads == 1
