"""Property-based tests on feature extraction and the cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import KNC
from repro.machine.cache import clear_cache, x_access_cost, x_access_stats
from repro.matrices.features import FEATURE_NAMES, extract_features

from .test_formats_prop import sparse_matrices


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_features_finite_and_bounded(csr):
    f = extract_features(csr)
    arr = f.as_array()
    assert np.all(np.isfinite(arr))
    assert f.size in (0.0, 1.0)
    assert 0.0 <= f.density <= 1.0
    assert f.nnz_min <= f.nnz_avg <= f.nnz_max
    assert f.bw_min <= f.bw_avg <= f.bw_max
    assert 0.0 <= f.clustering_avg <= 1.0
    assert 0.0 <= f.scatter_avg <= 1.0
    assert f.misses_avg >= 0.0
    assert f.nnz_avg * csr.nrows == pytest.approx(csr.nnz)  # consistency


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_features_invariant_to_value_scaling(csr):
    """Structure features must ignore the numeric values."""
    scaled = type(csr)(
        csr.rowptr.copy(), csr.colind.copy(), csr.values * 3.7, csr.shape
    )
    np.testing.assert_array_equal(
        extract_features(csr).as_array(),
        extract_features(scaled).as_array(),
    )


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_cache_model_invariants(csr):
    clear_cache()
    stats = x_access_stats(csr, KNC.line_elems)
    assert np.all(stats.strided_potential <= stats.potential_misses)
    assert np.all(stats.potential_misses <= csr.row_nnz())
    assert stats.unique_x_lines <= csr.nnz
    cost = x_access_cost(csr, KNC)
    assert np.all(cost.latency_ns_per_row >= 0)
    assert np.all(cost.dram_bytes_per_row >= 0)
    assert 0.0 <= cost.local_residency <= cost.llc_residency <= 1.0


@given(sparse_matrices(), st.integers(0, len(FEATURE_NAMES) - 1))
@settings(max_examples=40, deadline=None)
def test_keyed_access_matches_array(csr, idx):
    f = extract_features(csr)
    name = FEATURE_NAMES[idx]
    assert f[name] == f.as_array()[idx]
