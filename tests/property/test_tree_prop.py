"""Property-based tests on the CART tree and multilabel metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTree,
    exact_match_ratio,
    partial_match_ratio,
)


@st.composite
def datasets(draw, max_n=60, max_f=4, max_l=3):
    n = draw(st.integers(2, max_n))
    f = draw(st.integers(1, max_f))
    l = draw(st.integers(1, max_l))
    # width=32: distinct float32 values always have a float64 midpoint
    # strictly between them, so threshold splits can separate any two
    # distinct feature rows (denormal float64 pairs cannot be split).
    X = np.array(
        draw(
            st.lists(
                st.lists(
                    st.floats(-10, 10, allow_nan=False,
                              allow_infinity=False, width=32),
                    min_size=f, max_size=f,
                ),
                min_size=n, max_size=n,
            )
        )
    )
    Y = np.array(
        draw(
            st.lists(
                st.lists(st.integers(0, 1), min_size=l, max_size=l),
                min_size=n, max_size=n,
            )
        )
    )
    return X, Y


@given(datasets())
@settings(max_examples=50, deadline=None)
def test_fit_predict_shapes_and_values(data):
    X, Y = data
    tree = DecisionTree(max_depth=6, min_samples_leaf=1).fit(X, Y)
    P = tree.predict(X)
    assert P.shape == Y.shape
    assert set(np.unique(P)) <= {0, 1}
    proba = tree.predict_proba(X)
    assert np.all((proba >= 0) & (proba <= 1))


@given(datasets())
@settings(max_examples=50, deadline=None)
def test_distinct_rows_are_fit_perfectly(data):
    """With no depth cap and leaf size 1, any dataset whose feature rows
    are pairwise distinct is memorized exactly (CART consistency)."""
    X, Y = data
    # de-duplicate feature rows, keeping the first label
    _, idx = np.unique(X, axis=0, return_index=True)
    Xu, Yu = X[np.sort(idx)], Y[np.sort(idx)]
    tree = DecisionTree(min_samples_leaf=1).fit(Xu, Yu)
    np.testing.assert_array_equal(tree.predict(Xu), (Yu != 0).astype(int))


@given(datasets())
@settings(max_examples=50, deadline=None)
def test_depth_and_leaves_consistent(data):
    X, Y = data
    tree = DecisionTree(max_depth=4).fit(X, Y)
    assert tree.depth <= 4
    assert 1 <= tree.n_leaves <= 2 ** tree.depth if tree.depth else True
    imp = tree.feature_importances()
    assert np.all(imp >= 0)
    assert imp.sum() <= 1.0 + 1e-9


@given(datasets())
@settings(max_examples=50, deadline=None)
def test_metric_bounds_and_ordering(data):
    _, Y = data
    rng = np.random.default_rng(0)
    P = rng.integers(0, 2, size=Y.shape)
    e = exact_match_ratio(Y, P)
    p = partial_match_ratio(Y, P)
    assert 0.0 <= e <= p <= 1.0
    # perfect prediction scores 1.0 on both
    assert exact_match_ratio(Y, Y) == 1.0
    assert partial_match_ratio(Y, Y) == 1.0
