"""Property-based tests: every kernel variant is numerically exact and
its cost plane is well-formed on arbitrary matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import ConfiguredSpMV, SpMVConfig
from repro.machine import KNC, KNL
from repro.sched import balanced_nnz

from .test_formats_prop import sparse_matrices

_configs = st.builds(
    SpMVConfig,
    vectorize=st.booleans(),
    unroll=st.booleans(),
    prefetch=st.booleans(),
    compress=st.booleans(),
    decompose=st.booleans(),
    schedule=st.sampled_from(
        ["static-rows", "balanced-nnz", "auto", "dynamic"]
    ),
)


@given(sparse_matrices(), _configs, st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_any_variant_numerically_exact(csr, config, seed):
    kernel = ConfiguredSpMV(config)
    x = np.random.default_rng(seed).uniform(-1, 1, size=csr.ncols)
    y = kernel.run_numeric(csr, x)
    np.testing.assert_allclose(y, csr.matvec(x), rtol=1e-9, atol=1e-9)


@given(sparse_matrices(), _configs, st.integers(1, 16),
       st.sampled_from([KNC, KNL]))
@settings(max_examples=80, deadline=None)
def test_any_variant_cost_well_formed(csr, config, nthreads, machine):
    kernel = ConfiguredSpMV(config)
    data = kernel.preprocess(csr)
    partition = kernel.partition(data, nthreads)
    cost = kernel.cost(data, machine, partition)
    # Degenerate inputs clamp the effective thread count (never above
    # the request); per-thread aggregates follow the partition.
    assert 1 <= partition.nthreads <= nthreads
    assert cost.compute_cycles.shape == (partition.nthreads,)
    assert np.all(cost.compute_cycles >= 0)
    assert np.all(cost.stream_bytes >= 0)
    assert np.all(cost.latency_ns >= 0)
    assert np.isfinite(cost.working_set_bytes)
    assert cost.flops == 2.0 * csr.nnz


@given(sparse_matrices(), st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_cost_totals_independent_of_thread_count(csr, nthreads):
    """Splitting work across more threads must conserve total cycles
    and bytes (for thread-count-independent kernels)."""
    kernel = ConfiguredSpMV(SpMVConfig())
    data = kernel.preprocess(csr)
    c1 = kernel.cost(data, KNC, balanced_nnz(csr, 1))
    cn = kernel.cost(data, KNC, balanced_nnz(csr, nthreads))
    np.testing.assert_allclose(
        cn.compute_cycles.sum(), c1.compute_cycles.sum(), rtol=1e-9
    )
    np.testing.assert_allclose(
        cn.stream_bytes.sum(), c1.stream_bytes.sum(), rtol=1e-9
    )
    np.testing.assert_allclose(
        cn.latency_ns.sum(), c1.latency_ns.sum(), rtol=1e-9
    )
