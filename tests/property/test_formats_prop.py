"""Property-based tests on the sparse-format invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    DecomposedCSR,
    DeltaCSR,
)


@st.composite
def sparse_matrices(draw, max_dim=40, max_nnz=200):
    """Random sparse matrices as canonical CSR."""
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CSRMatrix.from_coo(COOMatrix(rows, cols, values, (nrows, ncols)))


@st.composite
def vectors_for(draw, csr):
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=csr.ncols,
            max_size=csr.ncols,
        )
    )
    return np.array(vals)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_coo_csr_roundtrip(csr):
    back = CSRMatrix.from_coo(csr.to_coo())
    np.testing.assert_array_equal(back.rowptr, csr.rowptr)
    np.testing.assert_array_equal(back.colind, csr.colind)
    np.testing.assert_array_equal(back.values, csr.values)


@given(sparse_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_matvec_matches_dense(csr, seed):
    x = np.random.default_rng(seed).uniform(-1, 1, size=csr.ncols)
    expected = csr.to_dense() @ x
    np.testing.assert_allclose(csr.matvec(x), expected, rtol=1e-9,
                               atol=1e-9)


@given(sparse_matrices(), st.sampled_from([8, 16, None]))
@settings(max_examples=60, deadline=None)
def test_delta_roundtrip_any_width(csr, width):
    d = DeltaCSR.from_csr(csr, width=width)
    np.testing.assert_array_equal(d.decode_colind(), csr.colind)
    np.testing.assert_array_equal(d.to_csr().rowptr, csr.rowptr)


@given(sparse_matrices(), st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_decomposition_partitions_nnz(csr, threshold):
    d = DecomposedCSR.from_csr(csr, threshold=threshold)
    # every nonzero lands in exactly one part
    assert d.short.nnz + d.long_nnz == csr.nnz
    # long rows are exactly those over the threshold
    expected_long = np.flatnonzero(csr.row_nnz() > threshold)
    np.testing.assert_array_equal(d.long_rows, expected_long)
    # short part never keeps a long row
    assert np.all(d.short.row_nnz()[expected_long] == 0)


@given(sparse_matrices(), st.integers(1, 50), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_decomposed_matvec_equals_csr(csr, threshold, seed):
    d = DecomposedCSR.from_csr(csr, threshold=threshold)
    x = np.random.default_rng(seed).uniform(-1, 1, size=csr.ncols)
    np.testing.assert_allclose(d.matvec(x), csr.matvec(x), rtol=1e-9,
                               atol=1e-9)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(csr):
    tt = csr.transpose().transpose()
    np.testing.assert_array_equal(tt.rowptr, csr.rowptr)
    np.testing.assert_array_equal(tt.colind, csr.colind)
    np.testing.assert_allclose(tt.values, csr.values)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_row_structure_invariants(csr):
    nnz = csr.row_nnz()
    assert nnz.sum() == csr.nnz
    bw = csr.row_bandwidths()
    assert np.all(bw >= 0)
    assert np.all(bw[nnz <= 1] == 0)
    assert np.all(bw < csr.ncols)
    gaps = csr.column_gaps()
    assert np.all(gaps >= 0)  # canonical order -> nonnegative in-row gaps
