"""Property-based tests on the execution engine's monotonicities.

A sane time model must respond in the right direction to more work,
more bandwidth, and lower latency — these invariants pin the model so
recalibration cannot silently invert it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ExecutionEngine, KNC, KernelCost
from repro.sched import Partition


def _cost(T, cycles, bytes_, lat, mlp=2.0, ws=1e9):
    return KernelCost(
        compute_cycles=np.asarray(cycles, dtype=np.float64),
        stream_bytes=np.asarray(bytes_, dtype=np.float64),
        latency_ns=np.asarray(lat, dtype=np.float64),
        mlp=mlp,
        flops=1e6,
        working_set_bytes=ws,
    )


class _Stub:
    name = "stub"

    def __init__(self, cost):
        self._cost = cost

    def cost(self, data, machine, partition):
        return self._cost


def _run(cost, machine=KNC):
    T = cost.compute_cycles.size
    part = Partition(T, np.arange(T, dtype=np.int32))
    return ExecutionEngine(machine, nthreads=T).run(_Stub(cost), None, part)


_pos = st.floats(1.0, 1e12, allow_nan=False, allow_infinity=False)
_T = st.integers(1, 16)


@given(_T, _pos, _pos, _pos, st.floats(1.1, 4.0))
@settings(max_examples=60, deadline=None)
def test_more_work_never_faster(T, cycles, bytes_, lat, factor):
    base = _cost(T, [cycles] * T, [bytes_] * T, [lat] * T)
    more = _cost(T, [cycles * factor] * T, [bytes_ * factor] * T,
                 [lat * factor] * T)
    assert _run(more).seconds >= _run(base).seconds


@given(_T, _pos, _pos, _pos)
@settings(max_examples=60, deadline=None)
def test_higher_mlp_never_slower(T, cycles, bytes_, lat):
    low = _cost(T, [cycles] * T, [bytes_] * T, [lat] * T, mlp=1.5)
    high = _cost(T, [cycles] * T, [bytes_] * T, [lat] * T, mlp=8.0)
    assert _run(high).seconds <= _run(low).seconds


@given(_T, _pos, _pos)
@settings(max_examples=60, deadline=None)
def test_llc_resident_never_slower(T, cycles, bytes_):
    big = _cost(T, [cycles] * T, [bytes_] * T, [0.0] * T, ws=10 * KNC.llc_bytes)
    small = _cost(T, [cycles] * T, [bytes_] * T, [0.0] * T, ws=1 << 16)
    assert _run(small).seconds <= _run(big).seconds


@given(_T, _pos, _pos, _pos)
@settings(max_examples=60, deadline=None)
def test_makespan_dominates_every_component(T, cycles, bytes_, lat):
    cost = _cost(T, [cycles] * T, [bytes_] * T, [lat] * T)
    r = _run(cost)
    m = KNC
    t_comp = cycles * m.smt / m.freq_hz
    t_lat = lat * 1e-9 / cost.mlp
    assert r.seconds >= t_comp * (1 - 1e-12)
    assert r.seconds >= t_lat * (1 - 1e-12)
    assert r.seconds >= T * bytes_ / m.bandwidth_for_working_set(1e9) * (
        1 - 1e-12
    )
    assert r.seconds >= m.parallel_overhead_seconds(T)


@given(_T, _pos)
@settings(max_examples=40, deadline=None)
def test_gflops_consistency(T, cycles):
    cost = _cost(T, [cycles] * T, [1.0] * T, [0.0] * T)
    r = _run(cost)
    assert r.gflops == pytest.approx(cost.flops / r.seconds / 1e9)
