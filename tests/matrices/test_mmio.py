"""Unit tests for Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.matrices import (
    MatrixMarketError,
    read_matrix_market,
    write_matrix_market,
)

GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment
3 4 5
1 1 2.5
1 4 -1.0
2 2 3.0
3 1 4.0
3 3 0.5
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 1.0
2 1 2.0
3 2 3.0
3 3 4.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""

SKEW = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 5.0
"""


def test_read_general():
    A = read_matrix_market(io.StringIO(GENERAL))
    assert A.shape == (3, 4)
    assert A.nnz == 5
    dense = A.to_dense()
    assert dense[0, 0] == 2.5
    assert dense[0, 3] == -1.0
    assert dense[2, 2] == 0.5


def test_read_symmetric_expands():
    A = read_matrix_market(io.StringIO(SYMMETRIC))
    dense = A.to_dense()
    assert A.nnz == 6  # 4 stored + 2 mirrored off-diagonals
    np.testing.assert_allclose(dense, dense.T)
    assert dense[0, 1] == 2.0 and dense[1, 0] == 2.0


def test_read_skew_symmetric():
    A = read_matrix_market(io.StringIO(SKEW)).to_dense()
    assert A[1, 0] == 5.0 and A[0, 1] == -5.0


def test_read_pattern_gets_unit_values():
    A = read_matrix_market(io.StringIO(PATTERN))
    np.testing.assert_array_equal(A.values, [1.0, 1.0])


def test_read_from_string_body():
    A = read_matrix_market(GENERAL)
    assert A.nnz == 5


def test_roundtrip_via_file(tmp_path, small_random_csr):
    path = tmp_path / "m.mtx"
    write_matrix_market(small_random_csr, path, comment="roundtrip test")
    back = read_matrix_market(path)
    assert back.shape == small_random_csr.shape
    np.testing.assert_array_equal(back.colind, small_random_csr.colind)
    np.testing.assert_allclose(back.values, small_random_csr.values)


def test_write_header_and_comment(tmp_path, banded_csr):
    path = tmp_path / "b.mtx"
    write_matrix_market(banded_csr, path, comment="hello\nworld")
    text = path.read_text()
    assert text.startswith("%%MatrixMarket matrix coordinate real general")
    assert "% hello" in text and "% world" in text


def test_missing_header_rejected():
    with pytest.raises(MatrixMarketError, match="header"):
        read_matrix_market(io.StringIO("1 1 1\n1 1 2.0\n"))


def test_wrong_object_rejected():
    bad = "%%MatrixMarket vector coordinate real general\n1 1 1\n"
    with pytest.raises(MatrixMarketError):
        read_matrix_market(io.StringIO(bad))


def test_unsupported_field_rejected():
    bad = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
    with pytest.raises(MatrixMarketError, match="field"):
        read_matrix_market(io.StringIO(bad))


def test_entry_count_mismatch_rejected():
    bad = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
    with pytest.raises(MatrixMarketError, match="entries"):
        read_matrix_market(io.StringIO(bad))


def test_malformed_size_line_rejected():
    bad = "%%MatrixMarket matrix coordinate real general\nfoo bar\n"
    with pytest.raises(MatrixMarketError, match="size line"):
        read_matrix_market(io.StringIO(bad))


def test_empty_matrix_roundtrip(tmp_path):
    from repro.formats import CSRMatrix

    empty = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 2))
    path = tmp_path / "e.mtx"
    write_matrix_market(empty, path)
    back = read_matrix_market(path)
    assert back.nnz == 0 and back.shape == (1, 2)
