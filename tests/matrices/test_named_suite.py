"""Unit tests for the named paper-analogue suite."""

import numpy as np
import pytest

from repro.matrices import (
    NAMED_SUITE,
    load_suite,
    matrix_stats,
    named_matrix,
    suite_names,
)

SCALE = 0.1  # keep suite construction fast in unit tests


def test_suite_covers_paper_matrices():
    names = suite_names()
    for paper_name in (
        "consph", "boneS10", "nd24k", "poisson3Db", "parabolic_fem",
        "offshore", "thermal2", "citationCiteseer", "web-Google",
        "webbase-1M", "flickr", "ASIC_680k", "rajat30", "FullChip",
        "circuit5M", "degme", "human_gene1",
    ):
        assert paper_name in names


def test_all_specs_build(
):
    for spec, csr in load_suite(scale=SCALE):
        assert csr.nnz > 0
        assert csr.nrows > 0


def test_named_matrix_lookup():
    a = named_matrix("consph", scale=SCALE)
    b = named_matrix("consph", scale=SCALE)
    np.testing.assert_array_equal(a.colind, b.colind)  # deterministic


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown matrix"):
        named_matrix("nosuchmatrix")


def test_scale_bounds():
    spec = NAMED_SUITE[0]
    with pytest.raises(ValueError, match="scale"):
        spec(0.0)
    with pytest.raises(ValueError, match="scale"):
        spec(9.0)


def test_scale_grows_matrices():
    small = named_matrix("boneS10", scale=0.1)
    big = named_matrix("boneS10", scale=0.2)
    assert big.nrows > small.nrows


def test_expected_classes_reference_valid_names():
    valid = {"MB", "ML", "IMB", "CMP"}
    for spec in NAMED_SUITE:
        for platform, classes in spec.expected_classes.items():
            assert platform in ("knc", "knl", "broadwell")
            assert set(classes) <= valid


def test_structural_archetypes_hold():
    """The analogues must have the structure their originals are known
    for — this is what makes the substitution valid (DESIGN.md §2)."""
    skew_circuit = matrix_stats(named_matrix("ASIC_680k", scale=SCALE))
    regular = matrix_stats(named_matrix("consph", scale=SCALE))
    web = matrix_stats(named_matrix("webbase-1M", scale=SCALE))
    assert skew_circuit.row_skew_gini > 0.2
    assert skew_circuit.nnz_per_row_max > 50 * skew_circuit.nnz_per_row_mean
    assert regular.row_skew_gini < 0.15
    assert web.nnz_per_row_median <= 4


def test_load_suite_subset_order():
    names = ("nd24k", "flickr")
    got = [spec.name for spec, _ in load_suite(scale=SCALE, names=names)]
    assert got == list(names)
