"""Unit tests for Table II feature extraction, on hand-built matrices."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices import (
    FEATURE_COMPLEXITY,
    FEATURE_NAMES,
    PAPER_ON_SUBSET,
    PAPER_ONNZ_SUBSET,
    extract_features,
    feature_matrix,
    features_with_complexity,
)
from repro.matrices.features import canonical_feature_name, spmv_working_set_bytes


@pytest.fixture
def hand_matrix():
    """3x16 matrix with known structure:

    row0: cols 0,1,2,3       (one dense run)
    row1: cols 0, 15         (one big gap)
    row2: empty
    """
    rowptr = np.array([0, 4, 6, 6], dtype=np.int64)
    colind = np.array([0, 1, 2, 3, 0, 15], dtype=np.int32)
    return CSRMatrix(rowptr, colind, np.ones(6), (3, 16))


def test_nnz_stats(hand_matrix):
    f = extract_features(hand_matrix)
    assert f.nnz_min == 0
    assert f.nnz_max == 4
    assert f.nnz_avg == pytest.approx(2.0)
    assert f.nnz_sd == pytest.approx(np.std([4, 2, 0]))


def test_bw_stats(hand_matrix):
    f = extract_features(hand_matrix)
    assert f.bw_min == 0          # empty row
    assert f.bw_max == 15
    assert f.bw_avg == pytest.approx((3 + 15 + 0) / 3)


def test_scatter(hand_matrix):
    f = extract_features(hand_matrix)
    # row0: 4/(3+1)=1.0 ; row1: 2/16=0.125 ; row2: 0
    assert f.scatter_avg == pytest.approx((1.0 + 0.125 + 0.0) / 3)


def test_clustering(hand_matrix):
    f = extract_features(hand_matrix)
    # row0: 1 group / 4 nnz ; row1: 2 groups / 2 nnz ; row2: 0
    assert f.clustering_avg == pytest.approx((0.25 + 1.0 + 0.0) / 3)


def test_misses(hand_matrix):
    f = extract_features(hand_matrix, line_elems=8)
    # only the 0->15 gap (15 > 8) counts; row-first elements don't
    assert f.misses_avg == pytest.approx(1.0 / 3)


def test_misses_line_size_sensitivity(hand_matrix):
    f = extract_features(hand_matrix, line_elems=16)
    assert f.misses_avg == 0.0


def test_density(hand_matrix):
    f = extract_features(hand_matrix)
    assert f.density == pytest.approx(6 / (3 * 16))


def test_size_feature_thresholds(hand_matrix):
    ws = spmv_working_set_bytes(hand_matrix)
    assert extract_features(hand_matrix, llc_bytes=ws).size == 1.0
    assert extract_features(hand_matrix, llc_bytes=ws - 1).size == 0.0


def test_feature_vector_key_access(hand_matrix):
    f = extract_features(hand_matrix)
    assert f["nnz_max"] == f.nnz_max
    # paper's alternative spelling
    assert f["dispersion_avg"] == f.scatter_avg
    with pytest.raises(ValueError, match="unknown feature"):
        f["bogus"]


def test_as_array_ordering(hand_matrix):
    f = extract_features(hand_matrix)
    arr = f.as_array()
    assert arr.shape == (len(FEATURE_NAMES),)
    assert arr[FEATURE_NAMES.index("nnz_max")] == 4.0


def test_feature_matrix_stacks(hand_matrix, banded_csr):
    X = feature_matrix([hand_matrix, banded_csr])
    assert X.shape == (2, len(FEATURE_NAMES))


def test_complexity_classes_cover_all_features():
    assert set(FEATURE_COMPLEXITY) == set(FEATURE_NAMES)
    assert set(FEATURE_COMPLEXITY.values()) == {"O(1)", "O(N)", "O(NNZ)"}


def test_features_with_complexity_monotone():
    o1 = features_with_complexity("O(1)")
    on = features_with_complexity("O(N)")
    onnz = features_with_complexity("O(NNZ)")
    assert set(o1) < set(on) < set(onnz)
    assert set(onnz) == set(FEATURE_NAMES)


def test_features_with_complexity_rejects_unknown():
    with pytest.raises(ValueError):
        features_with_complexity("O(N^2)")


def test_paper_subsets_are_valid():
    for subset in (PAPER_ON_SUBSET, PAPER_ONNZ_SUBSET):
        for name in subset:
            assert canonical_feature_name(name) in FEATURE_NAMES


def test_structural_discrimination(banded_csr, scattered_csr):
    """The features must separate the archetypes they were designed for."""
    fb = extract_features(banded_csr)
    fs = extract_features(scattered_csr)
    assert fb.misses_avg < fs.misses_avg       # scattered misses more
    assert fb.bw_avg < fs.bw_avg               # scattered spans more
    assert fb.scatter_avg > fs.scatter_avg     # banded is denser in-row


def test_empty_matrix_features():
    csr = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 4))
    f = extract_features(csr)
    assert f.nnz_avg == 0.0 and f.misses_avg == 0.0
