"""Unit tests for the training corpus."""

import numpy as np
import pytest

from repro.matrices import TRAINING_FAMILIES, training_suite


def test_deterministic():
    a = training_suite(count=12, seed=5, min_rows=2000, max_rows=4000)
    b = training_suite(count=12, seed=5, min_rows=2000, max_rows=4000)
    for ta, tb in zip(a, b):
        assert ta.name == tb.name
        np.testing.assert_array_equal(ta.matrix.colind, tb.matrix.colind)


def test_families_round_robin():
    suite = training_suite(count=len(TRAINING_FAMILIES) * 2, seed=1,
                           min_rows=2000, max_rows=3000)
    families = [t.family for t in suite]
    assert set(families) == set(TRAINING_FAMILIES)
    # each family appears exactly twice
    for fam in TRAINING_FAMILIES:
        assert families.count(fam) == 2


def test_each_family_produces_valid_matrix():
    rng = np.random.default_rng(0)
    for family, sampler in TRAINING_FAMILIES.items():
        m = sampler(rng, 3000)
        assert m.nnz > 0, family
        assert m.nrows >= 256, family


def test_count_validation():
    with pytest.raises(ValueError):
        training_suite(count=0)


def test_names_are_unique():
    suite = training_suite(count=25, seed=2, min_rows=2000, max_rows=3000)
    names = [t.name for t in suite]
    assert len(set(names)) == len(names)


def test_structural_diversity():
    """The corpus must span skewed and regular matrices (the paper
    chose 210 matrices precisely to avoid bias to one pattern)."""
    from repro.matrices.stats import gini_coefficient

    suite = training_suite(count=20, seed=3, min_rows=3000, max_rows=6000)
    ginis = [gini_coefficient(t.matrix.row_nnz()) for t in suite]
    assert min(ginis) < 0.1
    assert max(ginis) > 0.4
