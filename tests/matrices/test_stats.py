"""Unit tests for matrix statistics."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices import gini_coefficient, matrix_stats
from repro.matrices.stats import is_structurally_symmetric


def test_gini_uniform_is_zero():
    assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)


def test_gini_concentrated_is_high():
    x = np.zeros(100)
    x[0] = 100.0
    assert gini_coefficient(x) > 0.95


def test_gini_rejects_negative():
    with pytest.raises(ValueError):
        gini_coefficient(np.array([-1.0, 2.0]))


def test_gini_empty_and_zero():
    assert gini_coefficient(np.zeros(0)) == 0.0
    assert gini_coefficient(np.zeros(5)) == 0.0


def test_matrix_stats_values(empty_row_csr):
    s = matrix_stats(empty_row_csr)
    assert s.nrows == 6 and s.ncols == 6 and s.nnz == 10
    assert s.empty_rows == 3
    assert s.nnz_per_row_max == 6
    assert s.bytes_csr == empty_row_csr.total_nbytes()


def test_matrix_stats_describe(empty_row_csr):
    text = matrix_stats(empty_row_csr).describe()
    assert "6 x 6" in text
    assert "empty rows" in text


def test_symmetry_detection():
    sym = CSRMatrix.from_arrays(
        [0, 1, 0, 1], [1, 0, 0, 1], [1.0, 1.0, 2.0, 3.0], (2, 2)
    )
    assert is_structurally_symmetric(sym)
    asym = CSRMatrix.from_arrays([0], [1], [1.0], (2, 2))
    assert not is_structurally_symmetric(asym)


def test_symmetry_rectangular_is_false():
    m = CSRMatrix.from_arrays([0], [1], [1.0], (2, 3))
    assert not is_structurally_symmetric(m)


def test_skew_ordering(banded_csr, skewed_csr):
    assert (
        matrix_stats(skewed_csr).row_skew_gini
        > matrix_stats(banded_csr).row_skew_gini
    )
