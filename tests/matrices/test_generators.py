"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.matrices import generators as gen
from repro.matrices.stats import gini_coefficient


def test_banded_structure():
    A = gen.banded(500, nnz_per_row=9, bandwidth=20, seed=1)
    assert A.shape == (500, 500)
    bw = A.row_bandwidths()
    # interior rows stay within the requested band
    assert bw[100:400].max() <= 24
    nnz = A.row_nnz()
    assert 5 <= nnz.mean() <= 9.5  # clipping/merging can shrink edge rows


def test_banded_determinism():
    a = gen.banded(300, seed=42)
    b = gen.banded(300, seed=42)
    np.testing.assert_array_equal(a.colind, b.colind)
    np.testing.assert_array_equal(a.values, b.values)


def test_banded_seed_changes_matrix():
    a = gen.banded(300, jitter=2.0, seed=1)
    b = gen.banded(300, jitter=2.0, seed=2)
    assert not np.array_equal(a.colind, b.colind)


def test_laplacian_1d():
    A = gen.laplacian_1d(50).to_dense()
    assert np.allclose(A, A.T)
    assert np.all(np.diag(A) == 2.0)
    eigs = np.linalg.eigvalsh(A)
    assert eigs.min() > 0  # SPD


def test_poisson2d_spd():
    A = gen.poisson2d(12)
    assert A.shape == (144, 144)
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.linalg.eigvalsh(dense).min() > 0
    assert A.row_nnz().max() == 5


def test_stencil27_interior_rows():
    A = gen.stencil27(6)
    assert A.shape == (216, 216)
    nnz = A.row_nnz()
    assert nnz.max() == 27            # interior
    assert nnz.min() == 8             # corners


def test_fem_like_block_structure():
    A = gen.fem_like(300, block=3, neighbors=4, reach=10, seed=3)
    assert A.nrows % 3 == 0
    # diagonal blocks always present
    dense = A.to_dense()
    for b in range(0, A.nrows, 3):
        assert np.all(dense[b : b + 3, b : b + 3] != 0)


def test_random_uniform_scatter():
    A = gen.random_uniform(2000, nnz_per_row=10.0, seed=4)
    # columns roughly uniform: mean near center
    assert abs(A.colind.mean() - 1000) < 60
    assert abs(A.row_nnz().mean() - 10.0) < 1.0


def test_random_uniform_rectangular():
    A = gen.random_uniform(100, nnz_per_row=5.0, ncols=400, seed=5)
    assert A.shape == (100, 400)
    assert A.colind.max() < 400


def test_power_law_skew():
    A = gen.power_law(3000, avg_deg=8.0, alpha=2.0, seed=6)
    nnz = A.row_nnz()
    assert gini_coefficient(nnz) > 0.3     # heavy tail
    assert nnz.max() > 12 * nnz.mean()


def test_power_law_avg_degree_targeted():
    A = gen.power_law(5000, avg_deg=10.0, alpha=2.2, seed=7)
    # duplicate merging shrinks it somewhat; stay in the ballpark
    assert 5.0 <= A.row_nnz().mean() <= 11.0


def test_power_law_validates_alpha():
    with pytest.raises(ValueError, match="alpha"):
        gen.power_law(100, alpha=0.9)


def test_with_dense_rows():
    base = gen.banded(1000, nnz_per_row=4, bandwidth=8, seed=8)
    A = gen.with_dense_rows(base, n_dense=3, dense_nnz=600, seed=9)
    nnz = A.row_nnz()
    assert np.count_nonzero(nnz > 300) == 3
    assert A.shape == base.shape


def test_short_rows_profile():
    A = gen.short_rows(3000, avg_nnz=3.0, frac_empty=0.15, seed=10)
    nnz = A.row_nnz()
    empty_frac = np.mean(nnz == 0)
    assert 0.1 <= empty_frac <= 0.25
    assert np.median(nnz[nnz > 0]) <= 4


def test_kronecker_graph():
    A = gen.kronecker_graph(10, edge_factor=8, seed=11)
    assert A.shape == (1024, 1024)
    assert gini_coefficient(A.row_nnz()) > 0.4


def test_kronecker_validates_probs():
    with pytest.raises(ValueError):
        gen.kronecker_graph(8, a=0.5, b=0.4, c=0.4)


def test_diagonal_blocks():
    A = gen.diagonal_blocks(512, block=64, fill=0.5, seed=12)
    # no nonzero outside the blocks
    rows = A.row_ids_per_nnz()
    cols = A.colind.astype(np.int64)
    assert np.all(rows // 64 == cols // 64)


def test_vstack_concatenates():
    top = gen.banded(100, nnz_per_row=4, bandwidth=8, seed=13)
    bottom = gen.random_uniform(50, nnz_per_row=4.0, ncols=100, seed=14)
    A = gen.vstack([top, bottom])
    assert A.shape == (150, 100)
    assert A.nnz == top.nnz + bottom.nnz
    x = np.linspace(0, 1, 100)
    np.testing.assert_allclose(A.matvec(x)[:100], top.matvec(x))
    np.testing.assert_allclose(A.matvec(x)[100:], bottom.matvec(x))


def test_vstack_rejects_mismatched_cols():
    with pytest.raises(ValueError, match="column count"):
        gen.vstack([gen.banded(10), gen.banded(20)])


def test_vstack_rejects_empty():
    with pytest.raises(ValueError):
        gen.vstack([])


def test_generators_validate_positive_sizes():
    for fn in (gen.banded, gen.random_uniform, gen.short_rows,
               gen.power_law, gen.fem_like, gen.diagonal_blocks):
        with pytest.raises(ValueError):
            fn(0)
