"""Solver breakdown recovery: poisoned operators must yield structured
diagnostics and a finite iterate — never NaN garbage."""

import numpy as np
import pytest

from repro.guard import inject_value_fault
from repro.solvers import SolverReport, bicgstab, cg, cgnr, gmres


@pytest.fixture
def poisoned(small_random_csr):
    return inject_value_fault(small_random_csr, "nan")


@pytest.fixture
def b(small_random_csr, rng):
    return rng.standard_normal(small_random_csr.nrows)


@pytest.mark.parametrize("solver", [cg, bicgstab, gmres])
def test_poisoned_matrix_reports_breakdown(solver, poisoned, b):
    res = solver(poisoned, b, maxiter=50)
    assert not res.converged
    assert res.breakdown
    assert res.report.reason == "non-finite-residual"
    assert np.isfinite(res.x).all()           # last finite iterate
    assert not np.isnan(res.residual_norm)


@pytest.mark.parametrize("kind", ["inf", "-inf"])
def test_bicgstab_inf_poisoning_reports_breakdown(small_random_csr, b,
                                                  kind):
    res = bicgstab(inject_value_fault(small_random_csr, kind), b,
                   maxiter=50)
    assert res.breakdown and np.isfinite(res.x).all()


def test_cg_bicgstab_attempt_one_restart(poisoned, b):
    for solver in (cg, bicgstab):
        res = solver(poisoned, b, maxiter=50)
        assert res.report.restarts == 1


def test_cgnr_reports_breakdown(poisoned, b):
    res = cgnr(poisoned, b, maxiter=50)
    assert res.breakdown
    assert res.report.reason == "non-finite-residual"
    assert np.isfinite(res.x).all()


def test_cg_indefinite_operator_reason():
    M = np.array([[1.0, 0.0], [0.0, -1.0]])

    class Op:
        shape = (2, 2)

        def matvec(self, x):
            return M @ x

    res = cg(Op(), np.array([1.0, 1.0]), maxiter=10)
    assert not res.converged
    assert res.breakdown
    assert res.report.reason == "indefinite-operator"
    assert np.isfinite(res.x).all()


@pytest.mark.parametrize("solver", [cg, bicgstab, gmres, cgnr])
def test_healthy_solves_report_no_breakdown(solver, spd_operator, b):
    res = solver(spd_operator, b, tol=1e-10, maxiter=2000)
    assert res.converged
    assert not res.breakdown
    assert res.report == SolverReport()


@pytest.mark.parametrize("solver", [cg, bicgstab, gmres])
def test_block_solve_freezes_poisoned_columns(solver, poisoned,
                                              small_random_csr, rng):
    B = rng.standard_normal((small_random_csr.nrows, 3))
    res = solver(poisoned, B, maxiter=20)
    assert not res.converged
    assert res.breakdown
    assert res.report.reason == "non-finite-residual"
    assert np.isfinite(res.x).all()


def test_block_healthy_solve_no_breakdown(spd_operator,
                                          small_random_csr, rng):
    B = rng.standard_normal((small_random_csr.nrows, 3))
    for solver in (cg, bicgstab):
        res = solver(spd_operator, B, tol=1e-10, maxiter=2000)
        assert res.converged and not res.breakdown


def test_breakdown_result_is_backward_compatible(poisoned, b):
    """Old callers that never look at ``report`` still get the classic
    (x, converged, iterations, residual_norm) contract."""
    res = bicgstab(poisoned, b, maxiter=10)
    assert res.x.shape == b.shape
    assert res.iterations >= 0
    assert isinstance(res.converged, bool)
    assert res.spmv_count == res.iterations
