"""Guarded kernel execution: faults quarantine the variant and fall
back to the reference CSR numeric plane bit-identically."""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV
from repro.guard import (
    BrokenKernel,
    GuardedKernel,
    clear_quarantine,
    inject_value_fault,
    is_quarantined,
    kernel_failure_count,
    kernel_failure_log,
    quarantined_kernel_names,
    record_kernel_failure,
)
from repro.kernels import baseline_kernel, pool_kernel
from repro.machine import KNL


@pytest.fixture
def x(small_random_csr, rng):
    return rng.standard_normal(small_random_csr.ncols)


@pytest.mark.parametrize("mode", ["raise", "nan", "shape"])
def test_faulting_kernel_falls_back_bit_identically(small_random_csr, x,
                                                    mode):
    broken = BrokenKernel(baseline_kernel(), mode=mode)
    guarded = GuardedKernel(broken)
    data = guarded.preprocess(small_random_csr)
    y = guarded.apply(data, x)
    np.testing.assert_array_equal(y, small_random_csr.matvec(x))
    assert kernel_failure_count(broken.name) == 1
    assert is_quarantined(broken.name)
    assert broken.name in quarantined_kernel_names()


def test_failure_log_records_reasons(small_random_csr, x):
    broken = BrokenKernel(baseline_kernel(), mode="shape")
    guarded = GuardedKernel(broken)
    guarded.apply(guarded.preprocess(small_random_csr), x)
    (reason,) = kernel_failure_log(broken.name)
    assert "shape" in reason


def test_quarantined_variant_is_not_called_again(small_random_csr, x):
    broken = BrokenKernel(baseline_kernel(), mode="raise")
    guarded = GuardedKernel(broken)
    data = guarded.preprocess(small_random_csr)
    guarded.apply(data, x)
    calls_after_fault = broken.calls
    guarded.apply(data, x)
    guarded.apply(data, x)
    assert broken.calls == calls_after_fault  # quarantine short-circuits
    assert kernel_failure_count(broken.name) == 1


def test_multi_rhs_fallback_matches_matmat(small_random_csr, rng):
    X = rng.standard_normal((small_random_csr.ncols, 4))
    broken = BrokenKernel(baseline_kernel(), mode="nan")
    guarded = GuardedKernel(broken)
    data = guarded.preprocess(small_random_csr)
    Y = guarded.apply_multi(data, X)
    np.testing.assert_array_equal(Y, small_random_csr.matmat(X))


def test_intermittent_fault_quarantines_on_first_failure(
        small_random_csr, x):
    broken = BrokenKernel(baseline_kernel(), mode="raise", fail_after=2)
    guarded = GuardedKernel(broken)
    data = guarded.preprocess(small_random_csr)
    ref = small_random_csr.matvec(x)
    for _ in range(4):  # healthy, healthy, fault, fallback
        np.testing.assert_allclose(guarded.apply(data, x), ref, rtol=1e-12)
    assert is_quarantined(broken.name)


def test_preprocess_failure_quarantines(small_random_csr, x):
    class ExplodingPreprocess(BrokenKernel):
        def preprocess(self, csr):
            raise RuntimeError("injected preprocess fault")

    broken = ExplodingPreprocess(baseline_kernel())
    guarded = GuardedKernel(broken)
    data = guarded.preprocess(small_random_csr)
    assert data.inner is None
    np.testing.assert_array_equal(
        guarded.apply(data, x), small_random_csr.matvec(x)
    )
    assert kernel_failure_count(broken.name) == 1


def test_nan_matrix_does_not_quarantine_healthy_kernel(
        small_random_csr, x):
    poisoned = inject_value_fault(small_random_csr, "nan")
    kernel = baseline_kernel()
    guarded = GuardedKernel(kernel)
    data = guarded.preprocess(poisoned)
    y = guarded.apply(data, x)
    # NaN output is IEEE propagation from a NaN matrix, not a kernel bug
    assert not np.isfinite(y).all()
    assert kernel_failure_count(kernel.name) == 0
    assert not is_quarantined(kernel.name)


def test_guarded_kernel_is_name_transparent():
    inner = pool_kernel("unrolling")
    guarded = GuardedKernel(inner)
    assert guarded.name == inner.name
    assert guarded.optimizations == inner.optimizations
    # wrapping twice does not nest
    assert GuardedKernel(guarded).inner is inner


def test_clear_quarantine_resets(small_random_csr, x):
    record_kernel_failure("some-variant", "forced")
    assert is_quarantined("some-variant")
    clear_quarantine("some-variant")
    assert not is_quarantined("some-variant")
    assert kernel_failure_count("some-variant") == 0


# -- optimizer integration --------------------------------------------


def test_optimizer_skips_quarantined_variant(small_random_csr, x):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    first = opt.optimize(small_random_csr)
    assert first.plan.optimizations  # fixture matrix gets optimized
    assert first.plan.quarantined == ()

    record_kernel_failure(first.plan.kernel_name, "forced")
    second = opt.optimize(small_random_csr)
    assert second.plan.kernel_name == baseline_kernel().name
    assert second.plan.quarantined == (first.plan.kernel_name,)
    np.testing.assert_array_equal(
        second.matvec(x), small_random_csr.matvec(x)
    )


def test_optimizer_invalidates_stale_cache_entry(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    first = opt.optimize(small_random_csr)
    assert opt.plan_cache.invalidations == 0
    record_kernel_failure(first.plan.kernel_name, "forced")
    second = opt.optimize(small_random_csr)
    assert not second.plan.cache_hit  # stale entry dropped, replanned
    assert opt.plan_cache.invalidations == 1
    # the fresh (baseline) entry is served normally afterwards
    third = opt.optimize(small_random_csr)
    assert third.plan.cache_hit


def test_optimizer_guard_mode_survives_broken_registry_kernel(
        small_random_csr, x):
    opt = AdaptiveSpMV(KNL, classifier="profile", guard=True)
    op = opt.optimize(small_random_csr)
    assert isinstance(op.kernel, GuardedKernel)
    ref = small_random_csr.matvec(x)
    np.testing.assert_allclose(op.matvec(x), ref, rtol=1e-12)

    # sabotage the wrapped variant's numeric plane in place
    op.kernel.inner = BrokenKernel(
        op.kernel.inner, mode="raise", name=op.kernel.name
    )
    np.testing.assert_array_equal(op.matvec(x), ref)
    assert is_quarantined(op.plan.kernel_name)
