"""Fault-injected round trips: every format must fail loudly.

Each format is corrupted one invariant at a time; ``validate`` in
strict mode must raise the typed :class:`FormatValidationError` and in
permissive mode must return a report naming the damage — never crash,
never pass.
"""

import numpy as np
import pytest

from repro.errors import (
    FormatValidationError,
    ReproError,
    ValidationReport,
)
from repro.guard import (
    STRUCTURAL_FAULTS,
    VALUE_FAULTS,
    applicable_faults,
    clone_format,
    inject_structural_fault,
    inject_value_fault,
    validate_format,
)


def test_clean_formats_validate_ok(any_format):
    report = any_format.validate(strict=True)
    assert isinstance(report, ValidationReport)
    assert report.ok
    assert report.issues == []
    assert "ok" in report.summary()


def test_structural_faults_raise_in_strict_mode(any_format):
    kinds = applicable_faults(any_format)
    assert kinds  # every format has at least index faults
    for kind in kinds:
        bad = inject_structural_fault(any_format, kind)
        with pytest.raises(FormatValidationError) as exc_info:
            bad.validate(strict=True)
        assert exc_info.value.report.issues
        # the original is untouched
        assert any_format.validate(strict=True).ok


def test_structural_faults_reported_in_permissive_mode(any_format):
    for kind in applicable_faults(any_format):
        report = inject_structural_fault(any_format, kind).validate(
            strict=False
        )
        assert not report.ok
        assert all(issue.code and issue.message for issue in report.issues)


@pytest.mark.parametrize("kind", VALUE_FAULTS)
def test_value_faults_detected(any_format, kind):
    bad = inject_value_fault(any_format, kind)
    with pytest.raises(FormatValidationError):
        bad.validate(strict=True)
    report = bad.validate(strict=False)
    assert any(i.code.endswith("non-finite-values") for i in report.issues)
    # structure-only validation ignores the poisoned payload
    assert bad.validate(strict=True, check_values=False).ok


def test_validation_error_is_typed(small_random_csr):
    bad = inject_structural_fault(small_random_csr, "index-negative")
    with pytest.raises(ReproError):
        bad.validate()
    with pytest.raises(ValueError):  # also a ValueError for old callers
        bad.validate()


def test_validate_format_convenience(small_random_csr):
    assert validate_format(small_random_csr).ok
    bad = inject_value_fault(small_random_csr, "nan")
    assert not validate_format(bad, strict=False).ok


def test_clone_format_is_independent(any_format):
    clone = clone_format(any_format)
    assert clone is not any_format
    assert type(clone) is type(any_format)
    assert clone.validate(strict=True).ok
    x = np.arange(any_format.ncols, dtype=np.float64)
    np.testing.assert_array_equal(clone.matvec(x), any_format.matvec(x))


def test_unknown_fault_kind_rejected(small_random_csr):
    with pytest.raises(ValueError, match="unknown structural fault"):
        inject_structural_fault(small_random_csr, "no-such-fault")
    with pytest.raises(ValueError, match="unknown value fault"):
        inject_value_fault(small_random_csr, "minus-zero")


def test_pointer_faults_not_applicable_to_coo(small_random_csr):
    coo = small_random_csr.to_coo()
    assert "pointer-nonmonotonic" not in applicable_faults(coo)
    with pytest.raises(ValueError, match="not applicable"):
        inject_structural_fault(coo, "pointer-overrun")


def test_all_faults_covered_by_some_format(small_random_csr):
    # CSR supports the full structural fault alphabet.
    assert applicable_faults(small_random_csr) == STRUCTURAL_FAULTS
