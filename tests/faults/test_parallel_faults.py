"""Injected parallel worker faults drive the full supervision ladder.

Every scenario asserts the acceptance contract of the supervised plane:
an injected crash, hang, or poisoned partition during a parallel apply
never returns a partially-written result — the call either succeeds
bit-identically to the serial kernel (after retry/degradation, with the
demotion recorded) or raises a typed ``ParallelExecutionError``.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.errors import ChunkFailure, ParallelExecutionError
from repro.guard import ParallelFaultKernel
from repro.kernels import baseline_kernel
from repro.parallel import (
    ParallelSpMV,
    SupervisedSpMV,
    clear_demotions,
    demoted_target,
    demotion_count,
    demotion_log,
    record_demotion,
)


@pytest.fixture(autouse=True)
def _clean_demotions():
    """Demotion state is process-global; never leak it across tests."""
    clear_demotions()
    yield
    clear_demotions()


@pytest.fixture
def x(small_random_csr):
    return np.random.default_rng(42).standard_normal(
        small_random_csr.ncols
    )


# -- unsupervised plane: typed errors, no partial results ---------------


def test_worker_crash_raises_typed_error_with_chunk_attribution(
        small_random_csr, x):
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=1)
    op = ParallelSpMV(small_random_csr, fk, nthreads=4)
    with pytest.raises(ParallelExecutionError) as exc_info:
        op.matvec(x)
    err = exc_info.value
    assert err.kind == "worker-fault"
    assert err.nthreads == 4
    assert err.failures
    failure = err.failures[0]
    assert isinstance(failure, ChunkFailure)
    assert failure.kind == "exception"
    assert 0 <= failure.chunk_index
    assert 0 <= failure.row_lo < failure.row_hi <= small_random_csr.nrows
    assert "injected worker crash" in failure.detail


def test_crash_never_returns_partially_written_out(small_random_csr, x):
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=1)
    op = ParallelSpMV(small_random_csr, fk, nthreads=4)
    out = np.full(small_random_csr.nrows, 7.0)
    with pytest.raises(ParallelExecutionError):
        op.matvec(x, out=out)
    # The buffer is invalidated wholesale, not left half-computed.
    assert np.isnan(out).all()


def test_plane_deadline_watchdog_times_out_hung_chunk(small_random_csr,
                                                      x):
    fk = ParallelFaultKernel(baseline_kernel(), mode="hang",
                             fail_applies=1, hang_seconds=0.5)
    op = ParallelSpMV(small_random_csr, fk, nthreads=2)
    out = np.full(small_random_csr.nrows, 7.0)
    t0 = time.perf_counter()
    with pytest.raises(ParallelExecutionError) as exc_info:
        op.matvec(x, out=out, deadline_seconds=0.05)
    elapsed = time.perf_counter() - t0
    err = exc_info.value
    assert err.kind == "deadline"
    assert any(f.kind == "timeout" for f in err.failures)
    assert np.isnan(out).all()
    # The caller was released by the watchdog, not by the hung worker.
    assert elapsed < 0.5


# -- supervised ladder: bit-identical recovery on every rung ------------


def test_crash_retry_recovers_bit_identical(small_random_csr, x):
    ref = small_random_csr.matvec(x)
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=1)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         backoff_seconds=0.0)
    y = sup.matvec(x)
    np.testing.assert_array_equal(y, ref)
    report = sup.last_report
    assert report.degraded
    assert report.final_mode == "parallel"
    assert report.attempts[0].outcome == "worker-fault"
    assert report.attempts[-1].outcome == "ok"
    assert demotion_count() == 1


@pytest.mark.parametrize("fail_applies", [1, 2, 4])
def test_every_ladder_rung_stays_bit_identical(small_random_csr, x,
                                               fail_applies):
    """Whichever rung the ladder settles on — first retry, lowest
    width, or serial — the result matches the serial kernel exactly."""
    ref = small_random_csr.matvec(x)
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=fail_applies)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         max_retries=2, backoff_seconds=0.0)
    y = sup.matvec(x)
    np.testing.assert_array_equal(y, ref)
    assert sup.last_report.degraded


def test_persistent_crash_walks_full_ladder_to_serial(small_random_csr,
                                                      x):
    ref = small_random_csr.matvec(x)
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=math.inf)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         max_retries=2, backoff_seconds=0.0)
    y = sup.matvec(x)
    np.testing.assert_array_equal(y, ref)
    report = sup.last_report
    assert report.final_mode == "serial"
    # Requested width, two reduced retries, then the serial fallback.
    assert [a.mode for a in report.attempts] == (
        ["parallel", "parallel", "parallel", "serial"]
    )
    assert demoted_target(sup.signature) == 0
    (entry,) = demotion_log().values()
    assert entry["reason"] == "worker-fault"


def test_demoted_config_skips_straight_to_recorded_width(
        small_random_csr, x):
    ref = small_random_csr.matvec(x)
    sup = SupervisedSpMV(small_random_csr, nthreads=4,
                         backoff_seconds=0.0)
    record_demotion(sup.signature, 2, "worker-fault")
    y = sup.matvec(x)
    np.testing.assert_array_equal(y, ref)
    # No re-walk of the failed width: the first attempt is already at
    # the demoted target.
    assert sup.last_report.attempts[0].nthreads == 2
    assert sup.last_report.attempts[0].outcome == "ok"


def test_poisoned_partition_detected_and_recovered(small_random_csr, x):
    ref = small_random_csr.matvec(x)
    fk = ParallelFaultKernel(baseline_kernel(), mode="poison",
                             fail_applies=1)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         backoff_seconds=0.0)
    out = np.empty(small_random_csr.nrows)
    y = sup.matvec(x, out=out)
    assert y is out
    np.testing.assert_array_equal(y, ref)
    first = sup.last_report.attempts[0]
    assert first.outcome == "poisoned"
    assert "non-finite" in first.detail


def test_hang_watchdog_recovers_within_deadline_budget(small_random_csr,
                                                       x):
    """The watchdog smoke: a 0.5 s hang under a 0.1 s budget must
    neither block for the full hang nor corrupt the result."""
    ref = small_random_csr.matvec(x)
    fk = ParallelFaultKernel(baseline_kernel(), mode="hang",
                             fail_applies=1, hang_seconds=0.5)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         deadline_seconds=0.1, backoff_seconds=0.0)
    t0 = time.perf_counter()
    y = sup.matvec(x)
    elapsed = time.perf_counter() - t0
    np.testing.assert_array_equal(y, ref)
    assert sup.last_report.attempts[0].outcome == "deadline"
    assert sup.last_report.final_mode == "serial"
    # Budget exhausted -> serial fallback, well before the hang ends.
    assert elapsed < 0.5


def test_crash_escapes_typed_when_serial_fallback_disabled(
        small_random_csr, x):
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=math.inf)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=2,
                         max_retries=0, backoff_seconds=0.0,
                         serial_fallback=False)
    out = np.zeros(small_random_csr.nrows)
    with pytest.raises(ParallelExecutionError) as exc_info:
        sup.matvec(x, out=out)
    assert exc_info.value.kind == "worker-fault"
    assert np.isnan(out).all()


def test_supervised_matmat_recovers_bit_identical(small_random_csr):
    X = np.random.default_rng(11).standard_normal(
        (small_random_csr.ncols, 4)
    )
    ref = small_random_csr.matmat(X)
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=1)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         backoff_seconds=0.0)
    Y = sup.matmat(X)
    np.testing.assert_array_equal(Y, ref)
    assert sup.last_report.degraded


def test_supervise_span_records_ladder(small_random_csr, x):
    from repro.pipeline import Tracer

    tracer = Tracer()
    fk = ParallelFaultKernel(baseline_kernel(), mode="crash",
                             fail_applies=1)
    sup = SupervisedSpMV(small_random_csr, fk, nthreads=4,
                         backoff_seconds=0.0, tracer=tracer)
    sup.matvec(x)
    (span,) = tracer.find("supervise")
    supervision = span.attributes["supervision"]
    assert supervision["degraded"] is True
    assert supervision["demoted"] is True
    assert "worker-fault" in supervision["ladder"]
    assert supervision["attempts"][-1]["outcome"] == "ok"
