"""Fixtures for the fault-injection suite.

Inside ``tests/faults`` every ``RuntimeWarning`` (invalid value,
overflow, ...) is promoted to an error: the guard layer claims NaN/Inf
never leak through arithmetic silently, and a stray warning is exactly
such a leak. The promotion is scoped here (not in pyproject) so the
rest of the suite keeps its normal warning behavior.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.formats import (
    BCSRMatrix,
    DecomposedCSR,
    DeltaCSR,
    SellCSigmaMatrix,
)
from repro.guard import clear_quarantine


_HERE = __file__.rsplit("/", 1)[0]


def pytest_collection_modifyitems(items):
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(pytest.mark.faults)


@pytest.fixture(autouse=True)
def _runtime_warnings_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        yield


@pytest.fixture(autouse=True)
def _clean_quarantine():
    """Quarantine state is process-global; never leak it across tests."""
    clear_quarantine()
    yield
    clear_quarantine()


@pytest.fixture(
    params=["csr", "coo", "bcsr", "sell-c-sigma", "delta-csr",
            "decomposed-csr"]
)
def any_format(request, small_random_csr, skewed_csr):
    """A small matrix in each of the six formats.

    The decomposed variant is built from the skewed matrix so its long
    (dense-row) part is non-trivial and all fault kinds apply.
    """
    csr = small_random_csr
    if request.param == "csr":
        return csr
    if request.param == "coo":
        return csr.to_coo()
    if request.param == "bcsr":
        return BCSRMatrix.from_csr(csr, block=2)
    if request.param == "sell-c-sigma":
        return SellCSigmaMatrix.from_csr(csr, chunk=8)
    if request.param == "delta-csr":
        return DeltaCSR.from_csr(csr)
    return DecomposedCSR.from_csr(skewed_csr)


@pytest.fixture
def spd_operator(small_random_csr):
    """A genuinely SPD operator built from the fixture matrix:
    ``A^T A + n I`` (never indefinite, well conditioned)."""
    csr = small_random_csr
    n = csr.ncols

    class SPD:
        shape = (n, n)

        def matvec(self, x):
            return csr.rmatvec(csr.matvec(x)) + float(n) * x

        def matmat(self, X):
            return np.column_stack(
                [self.matvec(X[:, j]) for j in range(X.shape[1])]
            )

        def rmatvec(self, x):
            return self.matvec(x)

    return SPD()
