"""MatrixMarket stream corruption: the reader must fail with typed,
line-numbered errors — and tolerate benign blank lines."""

import io
import re

import numpy as np
import pytest

from repro.errors import ReproError
from repro.guard import MM_FAULTS, corrupt_matrix_market
from repro.matrices import read_matrix_market, write_matrix_market
from repro.matrices.mmio import MatrixMarketError


@pytest.fixture
def mm_text(small_random_csr):
    buf = io.StringIO()
    write_matrix_market(small_random_csr, buf)
    return buf.getvalue()


@pytest.mark.parametrize(
    "kind", [k for k in MM_FAULTS if k != "blank-lines"]
)
def test_corruptions_raise_typed_errors(mm_text, kind):
    bad = corrupt_matrix_market(mm_text, kind)
    with pytest.raises(MatrixMarketError):
        read_matrix_market(bad)


@pytest.mark.parametrize(
    "kind", ["truncate-mid-line", "index-out-of-range", "malformed-entry"]
)
def test_entry_errors_carry_line_numbers(mm_text, kind):
    bad = corrupt_matrix_market(mm_text, kind)
    with pytest.raises(MatrixMarketError, match=r"line \d+:") as exc_info:
        read_matrix_market(bad)
    # the reported line number points at the corrupted line (1-based)
    lineno = int(re.search(r"line (\d+):", str(exc_info.value)).group(1))
    assert 1 <= lineno <= len(bad.splitlines())


def test_out_of_range_error_names_the_bad_index(mm_text, small_random_csr):
    bad = corrupt_matrix_market(mm_text, "index-out-of-range")
    with pytest.raises(
        MatrixMarketError,
        match=rf"out of range \[1, {small_random_csr.nrows}\]",
    ):
        read_matrix_market(bad)


def test_blank_lines_are_tolerated(mm_text, small_random_csr):
    spaced = corrupt_matrix_market(mm_text, "blank-lines")
    back = read_matrix_market(spaced)
    assert back.shape == small_random_csr.shape
    assert back.nnz == small_random_csr.nnz
    np.testing.assert_allclose(back.values, small_random_csr.values)


def test_mm_error_is_repro_error(mm_text):
    bad = corrupt_matrix_market(mm_text, "truncate-entries")
    with pytest.raises(ReproError):
        read_matrix_market(bad)
    with pytest.raises(ValueError):  # old callers keep working
        read_matrix_market(bad)


def test_truncated_stream_reports_counts(mm_text):
    bad = corrupt_matrix_market(mm_text, "truncate-entries")
    with pytest.raises(MatrixMarketError, match=r"expected \d+ entries"):
        read_matrix_market(bad)


def test_excess_entries_detected(mm_text):
    extra = mm_text.rstrip("\n").splitlines()
    extra.append(extra[-1])  # duplicate the last entry line
    with pytest.raises(MatrixMarketError, match="more than the declared"):
        read_matrix_market("\n".join(extra) + "\n")


def test_malformed_size_line_carries_line_number():
    text = "%%MatrixMarket matrix coordinate real general\n% c\n3 three 4\n"
    with pytest.raises(MatrixMarketError, match="line 3: malformed size"):
        read_matrix_market(text)
