"""Integration tests asserting the paper's headline *shapes*.

Per the reproduction contract (DESIGN.md): absolute numbers differ from
the paper's hardware, but who-wins orderings, rough factors and
crossovers must hold. These run at moderate scale, so they are the
slowest tests in the suite.
"""

import numpy as np
import pytest

from repro.baselines import InspectorExecutor, run_mkl_csr
from repro.core import (
    AdaptiveSpMV,
    Bottleneck,
    classify_from_bounds,
    measure_bounds,
    oracle_search,
)
from repro.kernels import baseline_kernel, single_optimization_kernels
from repro.machine import BROADWELL, ExecutionEngine, KNC, KNL
from repro.matrices import load_suite, named_matrix

# Full-scale analogues: the bottleneck regimes (cache residency, x
# working set vs private caches) only match the paper's at full size.
SCALE = 1.0
CORE_NAMES = (
    "consph", "poisson3Db", "thermal2", "ASIC_680k", "rajat30",
    "webbase-1M", "human_gene1",
)


@pytest.fixture(scope="module")
def suite():
    return {
        spec.name: (spec, csr)
        for spec, csr in load_suite(scale=SCALE, names=CORE_NAMES)
    }


@pytest.fixture(scope="module")
def knc_bounds(suite):
    return {
        name: measure_bounds(csr, KNC) for name, (spec, csr) in suite.items()
    }


def test_fig1_shape_every_optimization_has_winners_and_losers(suite):
    """Fig. 1: each optimization speeds up some matrix and slows down
    another — the motivation for adaptivity."""
    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    singles = single_optimization_kernels()
    speedups = {name: [] for name in singles}
    for _, csr in suite.values():
        r0 = engine.run(base, base.preprocess(csr))
        for name, kernel in singles.items():
            r = engine.run(kernel, kernel.preprocess(csr))
            speedups[name].append(r.gflops / r0.gflops)
    for name in ("prefetching", "auto-sched"):
        assert max(speedups[name]) > 1.15, name
        assert min(speedups[name]) < 1.0, name
    # decomposition: dramatic winners on skew, degenerates to a no-op
    # (never a runtime loss) on uniform matrices
    assert max(speedups["decomposition"]) > 3.0
    assert min(speedups["decomposition"]) >= 0.99


def test_fig4_shape_bottleneck_diversity_on_knc(knc_bounds):
    """Fig. 4: different matrices sit near different bounds."""
    class_sets = {
        name: classify_from_bounds(b) for name, b in knc_bounds.items()
    }
    assert len(set(class_sets.values())) >= 3
    assert Bottleneck.MB in class_sets["consph"]
    assert Bottleneck.ML in class_sets["poisson3Db"]
    assert Bottleneck.IMB in class_sets["ASIC_680k"]
    assert Bottleneck.CMP in class_sets["webbase-1M"]


def test_fig4_shape_bound_relations(knc_bounds):
    for name, b in knc_bounds.items():
        assert b.p_peak > b.p_mb, name            # peak dominates MB
        assert b.p_imb >= b.p_csr * 0.99, name    # median <= makespan


def test_classes_differ_across_platforms(suite):
    """Section IV: bottlenecks are platform-dependent (e.g.
    human_gene1 flips class between KNC and KNL in the paper)."""
    diffs = 0
    for name, (spec, csr) in suite.items():
        knc = classify_from_bounds(measure_bounds(csr, KNC))
        bdw = classify_from_bounds(measure_bounds(csr, BROADWELL))
        if knc != bdw:
            diffs += 1
    assert diffs >= 2


def test_fig7_shape_optimizer_beats_mkl_on_average(suite):
    """Fig. 7b: profile-guided clearly beats MKL CSR on KNL; largest
    wins on imbalanced matrices."""
    opt = AdaptiveSpMV(KNL, classifier="profile")
    ratios = {}
    for name, (spec, csr) in suite.items():
        r_mkl = run_mkl_csr(csr, KNL)
        r_opt = opt.optimize(csr).simulate()
        ratios[name] = r_opt.gflops / r_mkl.gflops
    mean = float(np.exp(np.mean(np.log(list(ratios.values())))))
    assert mean > 1.5
    assert ratios["ASIC_680k"] > 3.0      # skew: the headline wins
    assert ratios["consph"] > 0.85        # never catastrophic


def test_fig7_shape_knl_speedups_exceed_broadwell(suite):
    """Paper: avg speedup 6.73x on KNL vs 2.02x on Broadwell — many-core
    platforms leave far more on the table."""
    def mean_ratio(platform):
        opt = AdaptiveSpMV(platform, classifier="profile")
        logs = []
        for name, (spec, csr) in suite.items():
            r_mkl = run_mkl_csr(csr, platform)
            r_opt = opt.optimize(csr).simulate()
            logs.append(np.log(r_opt.gflops / r_mkl.gflops))
        return float(np.exp(np.mean(logs)))

    assert mean_ratio(KNL) > mean_ratio(BROADWELL)


def test_fig7_shape_optimizer_beats_inspector_executor_on_skew(suite):
    """Paper: 'the largest speedups over the Inspector-Executor occur
    for matrices with imbalanced execution'."""
    ie = InspectorExecutor(KNL)
    opt = AdaptiveSpMV(KNL, classifier="profile")
    _, skewed = suite["ASIC_680k"]
    r_ie = ie.optimize(skewed).result
    r_opt = opt.optimize(skewed).simulate()
    assert r_opt.gflops > 1.3 * r_ie.gflops


def test_oracle_dominates_everything(suite):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    for name in ("poisson3Db", "ASIC_680k"):
        _, csr = suite[name]
        oracle = oracle_search(csr, KNL)
        adaptive = opt.optimize(csr).simulate()
        assert oracle.gflops >= adaptive.gflops * 0.999


def test_table5_shape_optimizer_overheads_ordered(suite):
    """Table V ordering: feature extraction << profiling << sweeps."""
    from repro.core import amortization_study
    from repro.core.feature_classifier import FeatureGuidedClassifier
    from repro.matrices import training_suite

    # Corpus at realistic sizes: the tree must see the same cache
    # regimes it will be queried on, or it mislabels at full scale.
    corpus = [t.matrix for t in training_suite(count=24, seed=55)]
    clf = FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)
    mats = [(n, csr) for n, (spec, csr) in list(suite.items())[:4]]
    res = amortization_study(mats, KNL, feature_classifier=clf)
    assert (
        res["feature-guided"].n_avg
        < res["profile-guided"].n_avg
        < res["trivial-single"].n_avg
        < res["trivial-combined"].n_avg
    )
