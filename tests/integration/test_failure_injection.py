"""Failure injection across the public API boundaries.

Every entry point a downstream user can hit with malformed input must
fail with a clear, typed error — never a silent wrong answer or a deep
NumPy traceback from inside the vectorized code.
"""

import numpy as np
import pytest

from repro import (
    AdaptiveSpMV,
    CSRMatrix,
    ExecutionEngine,
    FeatureGuidedClassifier,
    KNL,
    baseline_kernel,
    measure_bounds,
)
from repro.formats import COOMatrix
from repro.sched import Partition, balanced_nnz


def test_nan_values_flow_through_numerics_not_model(banded_csr):
    """NaN matrix values are a numeric concern (propagate per IEEE),
    but the cost model must stay finite — it depends only on structure."""
    vals = banded_csr.values.copy()
    vals[0] = np.nan
    poisoned = CSRMatrix(
        banded_csr.rowptr.copy(), banded_csr.colind.copy(), vals,
        banded_csr.shape,
    )
    y = poisoned.matvec(np.ones(poisoned.ncols))
    assert np.isnan(y[0])
    engine = ExecutionEngine(KNL, nthreads=8)
    base = baseline_kernel()
    r = engine.run(base, base.preprocess(poisoned))
    assert np.isfinite(r.seconds)


def test_empty_matrix_rejected_by_analysis_accepted_by_numerics():
    empty = CSRMatrix([0, 0, 0], np.zeros(0, np.int32), np.zeros(0),
                      (2, 3))
    np.testing.assert_array_equal(empty.matvec(np.ones(3)), [0.0, 0.0])
    with pytest.raises(ValueError):
        measure_bounds(empty, KNL)
    with pytest.raises(ValueError):
        AdaptiveSpMV(KNL, classifier="profile").optimize(empty)


def test_mismatched_partition_rejected(banded_csr, skewed_csr):
    base = baseline_kernel()
    engine = ExecutionEngine(KNL, nthreads=4)
    wrong = balanced_nnz(skewed_csr, 4)
    with pytest.raises(ValueError):
        engine.run(base, base.preprocess(banded_csr), wrong)


def test_partition_with_foreign_thread_ids_rejected():
    with pytest.raises(ValueError):
        Partition(2, np.array([0, 1, 2], dtype=np.int32))


def test_untrained_feature_classifier_in_optimizer(banded_csr):
    clf = FeatureGuidedClassifier(KNL)
    opt = AdaptiveSpMV(KNL, classifier=clf)
    with pytest.raises(RuntimeError):
        opt.optimize(banded_csr)


def test_coo_with_nonfinite_bounds_checked():
    # out-of-range indices must be caught at construction
    with pytest.raises(ValueError):
        COOMatrix([0], [99], [1.0], (3, 3))


def test_solver_rejects_mismatched_rhs(banded_csr):
    from repro.solvers import cg

    with pytest.raises(Exception):
        cg(banded_csr, np.ones(banded_csr.nrows + 5), maxiter=2)


def test_classifier_load_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text('{"not": "a classifier"}')
    with pytest.raises(KeyError):
        FeatureGuidedClassifier.load(path)


def test_mm_reader_rejects_truncated_file(tmp_path):
    from repro.matrices import MatrixMarketError, read_matrix_market

    path = tmp_path / "t.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(path)
