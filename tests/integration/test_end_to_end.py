"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    AdaptiveSpMV,
    FeatureGuidedClassifier,
    KNC,
    KNL,
    BROADWELL,
    baseline_kernel,
    cg,
    gmres,
    named_matrix,
    training_suite,
)
from repro.machine import ExecutionEngine


@pytest.fixture(scope="module")
def knl_feature_classifier():
    corpus = [
        t.matrix
        for t in training_suite(count=14, seed=77, min_rows=10_000,
                                max_rows=40_000)
    ]
    return FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)


@pytest.mark.parametrize("platform", [KNC, KNL, BROADWELL])
def test_profile_optimizer_on_every_suite_archetype(platform):
    """Optimize one matrix of each archetype on every platform; the
    optimizer must never be dramatically worse than the baseline and
    the numeric result must stay exact."""
    rng = np.random.default_rng(0)
    engine = ExecutionEngine(platform)
    base = baseline_kernel()
    opt = AdaptiveSpMV(platform, classifier="profile")
    for name in ("consph", "poisson3Db", "ASIC_680k", "webbase-1M"):
        csr = named_matrix(name, scale=0.2)
        operator = opt.optimize(csr)
        x = rng.standard_normal(csr.ncols)
        np.testing.assert_allclose(
            operator.matvec(x), csr.matvec(x), rtol=1e-12, atol=1e-10
        )
        r_opt = operator.simulate()
        r_base = engine.run(base, base.preprocess(csr))
        assert r_opt.gflops > 0.9 * r_base.gflops, (name, platform.codename)


def test_feature_optimizer_end_to_end(knl_feature_classifier):
    opt = AdaptiveSpMV(KNL, classifier=knl_feature_classifier)
    csr = named_matrix("rajat30", scale=0.25)
    operator = opt.optimize(csr)
    # decision must be far cheaper than profiling
    prof = AdaptiveSpMV(KNL, classifier="profile")
    prof_plan = prof.plan(csr)
    assert (
        operator.plan.decision_seconds < prof_plan.decision_seconds / 10
    )


def test_optimized_operator_inside_cg_solver():
    """The optimizer's output is a drop-in operator for the solvers."""
    from repro.matrices.generators import poisson2d

    A = poisson2d(40)
    opt = AdaptiveSpMV(BROADWELL, classifier="profile")
    operator = opt.optimize(A)
    rng = np.random.default_rng(1)
    xstar = rng.standard_normal(A.nrows)
    b = A.matvec(xstar)
    res = cg(operator, b, tol=1e-10)
    assert res.converged
    np.testing.assert_allclose(res.x, xstar, atol=1e-6)


def test_optimized_operator_inside_gmres():
    csr = named_matrix("ASIC_680k", scale=0.1)
    # make it solvable: add a dominant diagonal
    import scipy.sparse as sp

    from repro.formats import CSRMatrix

    S = csr.to_scipy()
    S = S + sp.diags(np.full(csr.nrows, 10.0 + abs(S).sum(axis=1).A1))
    A = CSRMatrix.from_scipy(S.tocsr())
    opt = AdaptiveSpMV(KNL, classifier="profile")
    operator = opt.optimize(A)
    b = np.ones(A.nrows)
    res = gmres(operator, b, tol=1e-8, restart=40)
    assert res.converged


def test_matrix_market_to_optimizer_pipeline(tmp_path):
    """File -> read -> optimize -> simulate, the README quickstart path."""
    from repro.matrices import read_matrix_market, write_matrix_market

    csr = named_matrix("webbase-1M", scale=0.05)
    path = tmp_path / "w.mtx"
    write_matrix_market(csr, path)
    loaded = read_matrix_market(path)
    operator = AdaptiveSpMV(KNC, classifier="profile").optimize(loaded)
    assert operator.simulate().gflops > 0
