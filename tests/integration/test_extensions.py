"""Integration tests for the two reproduction extensions together.

A5 (partitioned ML detection) and A6 (BCSR plug-and-play) interact with
the full optimizer stack; these tests exercise the combined flows.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveSpMV,
    Bottleneck,
    ExtendedProfileClassifier,
    OptimizationPool,
)
from repro.machine import ExecutionEngine, KNC
from repro.kernels import baseline_kernel
from repro.matrices import named_matrix
from repro.matrices.generators import fem_like


def test_extended_classifier_improves_rajat30_performance():
    """The paper: prefetching 'offers the additional performance boost'
    rajat30 missed. With partitioned detection it must materialize."""
    csr = named_matrix("rajat30", scale=1.0)
    std = AdaptiveSpMV(KNC, classifier="profile").optimize(csr)
    ext = AdaptiveSpMV(
        KNC, classifier=ExtendedProfileClassifier(KNC)
    ).optimize(csr)
    assert Bottleneck.ML not in std.plan.classes
    assert Bottleneck.ML in ext.plan.classes
    assert ext.simulate().gflops > 1.02 * std.simulate().gflops


def test_bcsr_pool_override_wins_on_blocked_fem():
    """Override MB -> bcsr; on a block-structured MB matrix the
    swapped pool must beat the stock one."""
    csr = fem_like(80_000, block=2, neighbors=24, reach=30, seed=71)
    stock = AdaptiveSpMV(KNC, classifier="profile")
    swapped = AdaptiveSpMV(
        KNC, classifier="profile",
        pool=OptimizationPool().override(MB="bcsr"),
    )
    op_stock = stock.optimize(csr)
    op_swapped = swapped.optimize(csr)
    if Bottleneck.MB not in op_stock.plan.classes:
        pytest.skip("matrix not classified MB at this calibration")
    assert op_swapped.plan.optimizations == ("bcsr",)
    # numerics stay exact through the swapped kernel
    x = np.random.default_rng(0).standard_normal(csr.ncols)
    # summation order differs (block tiles vs row-major), allow ulps
    np.testing.assert_allclose(op_swapped.matvec(x), csr.matvec(x),
                               rtol=1e-9, atol=1e-12)
    assert (
        op_swapped.simulate().gflops > op_stock.simulate().gflops
    )


def test_bcsr_override_never_selected_without_mb(banded_csr):
    """A pool override only fires for its class: matrices without MB
    must be untouched by the swap."""
    pool = OptimizationPool().override(MB="bcsr")
    swapped = AdaptiveSpMV(KNC, classifier="profile", pool=pool)
    operator = swapped.optimize(banded_csr)
    if Bottleneck.MB not in operator.plan.classes:
        assert "bcsr" not in operator.plan.optimizations


def test_extensions_do_not_regress_regular_matrices():
    csr = named_matrix("consph", scale=0.5)
    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    r_base = engine.run(base, base.preprocess(csr))
    ext = AdaptiveSpMV(
        KNC, classifier=ExtendedProfileClassifier(KNC)
    ).optimize(csr)
    assert ext.simulate().gflops >= 0.95 * r_base.gflops
