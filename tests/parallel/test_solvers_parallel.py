"""Solvers through the parallel plane: bit-identical residual history.

``ParallelSpMV`` exposes the ``matvec(x, out=, workspace=)`` surface
that :func:`repro.solvers.base.as_matvec_into` probes, so CG/GMRES run
their hot-loop matvecs on the thread pool with zero solver changes.
Because chunked execution preserves the serial reduction order, the
iterates — and therefore every recorded residual — must match the
serial solve bit for bit.
"""

import numpy as np
import pytest

from repro.parallel import ParallelSpMV
from repro.solvers import cg, gmres


@pytest.fixture(scope="module")
def spd():
    from repro.matrices.generators import poisson2d

    return poisson2d(24)


@pytest.fixture(scope="module")
def rhs(spd, rng):
    return rng.standard_normal(spd.nrows)


@pytest.mark.parametrize("nthreads", [2, 4])
def test_cg_residuals_bit_identical(spd, rhs, nthreads):
    serial = cg(spd, rhs, tol=1e-10, maxiter=400)
    par = cg(ParallelSpMV(spd, nthreads=nthreads), rhs,
             tol=1e-10, maxiter=400)
    assert par.converged == serial.converged
    assert par.iterations == serial.iterations
    np.testing.assert_array_equal(par.x, serial.x)
    np.testing.assert_array_equal(
        np.asarray(par.residual_history),
        np.asarray(serial.residual_history),
    )


@pytest.mark.parametrize("nthreads", [2, 4])
def test_gmres_residuals_bit_identical(spd, rhs, nthreads):
    serial = gmres(spd, rhs, tol=1e-10, restart=20, maxiter=200)
    par = gmres(ParallelSpMV(spd, nthreads=nthreads), rhs,
                tol=1e-10, restart=20, maxiter=200)
    assert par.converged == serial.converged
    assert par.iterations == serial.iterations
    np.testing.assert_array_equal(par.x, serial.x)
    np.testing.assert_array_equal(
        np.asarray(par.residual_history),
        np.asarray(serial.residual_history),
    )


def test_cg_dynamic_schedule_identical(spd, rhs):
    serial = cg(spd, rhs, tol=1e-10, maxiter=400)
    par = cg(ParallelSpMV(spd, nthreads=3, schedule="dynamic"), rhs,
             tol=1e-10, maxiter=400)
    np.testing.assert_array_equal(
        np.asarray(par.residual_history),
        np.asarray(serial.residual_history),
    )
