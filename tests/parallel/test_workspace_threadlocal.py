"""Thread-local :class:`~repro.memory.Workspace` arenas.

Pool workers each get a private buffer store (no cross-thread buffer
sharing, no locking on the hot path), while the aggregate counters
still report totals across every per-thread store.
"""

import threading

import numpy as np

from repro.memory import Workspace


def test_shared_default_unchanged():
    ws = Workspace()
    assert not ws.thread_local
    a = ws.buffer("y", (8,), np.float64)
    b = ws.buffer("y", (8,), np.float64)
    assert a is b
    assert ws.hits == 1 and ws.misses == 1


def test_thread_local_stores_are_private():
    ws = Workspace(thread_local=True)
    assert ws.thread_local
    main = ws.buffer("y", (16,), np.float64)
    seen = {}

    def worker(key):
        seen[key] = ws.buffer("y", (16,), np.float64)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    buffers = list(seen.values()) + [main]
    for i, a in enumerate(buffers):
        for b in buffers[i + 1:]:
            assert a is not b, "buffer shared across threads"
    # one store per thread that touched the arena
    assert ws.counters()["stores"] == 4
    # every request was a fresh miss in its own store
    assert ws.misses == 4 and ws.hits == 0


def test_thread_local_counters_aggregate():
    ws = Workspace(thread_local=True)

    def worker():
        ws.buffer("t", (4,), np.float64)
        ws.buffer("t", (4,), np.float64)  # hit within the same thread

    ts = [threading.Thread(target=worker) for _ in range(2)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert ws.misses == 2
    assert ws.hits == 2
    assert ws.nbuffers == 2
    counters = ws.counters()
    assert counters["thread_local"] is True
    assert counters["stores"] == 2


def test_reset_and_clear_cover_all_stores():
    ws = Workspace(thread_local=True)
    ws.buffer("a", (4,), np.float64)

    def worker():
        ws.buffer("b", (4,), np.float64)

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert ws.nbuffers == 2
    ws.reset_stats()
    assert ws.hits == 0 and ws.misses == 0
    assert ws.nbuffers == 2  # stats reset keeps buffers
    ws.clear()
    assert ws.nbuffers == 0
