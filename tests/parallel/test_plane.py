"""The shared-memory parallel plane: bit-identity, contracts, telemetry.

The headline invariant: a parallel matvec over contiguous row chunks is
*bit-identical* to the serial kernel for every format, schedule policy
and thread count — each row's sum is computed by exactly one chunk from
that row's own nonzeros in stored order, and blocked/sorted formats
(BCSR, SELL-C-sigma) snap chunk boundaries to their regrouping
granularity (``row_align``).
"""

import numpy as np
import pytest

from repro.guard.guarded import GuardedKernel
from repro.kernels import baseline_kernel, merged_pool_kernel
from repro.kernels.bcsr import BCSRSpMV
from repro.kernels.sellcs import SellCSigmaSpMV
from repro.parallel import (
    ParallelConfig,
    ParallelKernel,
    ParallelSpMV,
    active_worker_counts,
    get_executor,
)
from repro.sched import SCHEDULE_POLICIES


def _variants():
    return [
        ("csr", baseline_kernel()),
        ("csr+delta", merged_pool_kernel(("compression",))),
        ("csr+split", merged_pool_kernel(("decomposition",))),
        ("csr+unroll", merged_pool_kernel(("unrolling",))),
        ("bcsr2", BCSRSpMV(block=2)),
        ("bcsr3", BCSRSpMV(block=3)),
        ("sell-4", SellCSigmaSpMV(chunk=4)),
        ("sell-8-64", SellCSigmaSpMV(chunk=8, sigma=64)),
    ]


@pytest.fixture(scope="module", params=["skewed", "banded", "empty-rows"])
def matrix(request, skewed_csr, banded_csr, empty_row_csr):
    return {
        "skewed": skewed_csr,
        "banded": banded_csr,
        "empty-rows": empty_row_csr,
    }[request.param]


@pytest.mark.parametrize("name,kernel", _variants(),
                         ids=[n for n, _ in _variants()])
@pytest.mark.parametrize("nthreads", [1, 2, 3, 8])
def test_matvec_bit_identical_every_kernel(name, kernel, nthreads,
                                           matrix, rng):
    x = rng.standard_normal(matrix.ncols)
    serial = kernel.apply(kernel.preprocess(matrix), x)
    pk = ParallelKernel(kernel, nthreads=nthreads)
    got = pk.apply(pk.preprocess(matrix), x)
    np.testing.assert_array_equal(got, serial)


@pytest.mark.parametrize("schedule", sorted(SCHEDULE_POLICIES))
@pytest.mark.parametrize("nthreads", [1, 2, 4, 8, 64])
def test_matvec_bit_identical_every_schedule(schedule, nthreads,
                                             skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    kernel = baseline_kernel()
    serial = kernel.apply(kernel.preprocess(skewed_csr), x)
    pk = ParallelKernel(kernel, nthreads=nthreads, schedule=schedule)
    data = pk.preprocess(skewed_csr)
    for _ in range(2):  # dynamic assignment may differ run to run
        got = pk.apply(data, x)
        np.testing.assert_array_equal(got, serial)


def test_matmat_matches_serial_tightly(banded_csr, rng):
    """Multi-RHS goes through block kernels whose internal summation
    may reassociate between chunk sizes; assert a tight tolerance
    rather than bit-equality (matvec stays bit-identical)."""
    X = rng.standard_normal((banded_csr.ncols, 5))
    kernel = baseline_kernel()
    serial = kernel.apply_multi(kernel.preprocess(banded_csr), X)
    pk = ParallelKernel(kernel, nthreads=4)
    got = pk.apply_multi(pk.preprocess(banded_csr), X)
    np.testing.assert_allclose(got, serial, rtol=1e-14, atol=1e-14)


def test_out_buffer_contract(skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    pk = ParallelKernel(baseline_kernel(), nthreads=4)
    data = pk.preprocess(skewed_csr)
    out = np.empty(skewed_csr.nrows)
    got = pk.apply(data, x, out=out)
    assert got is out
    np.testing.assert_array_equal(out, pk.apply(data, x))
    with pytest.raises(ValueError):
        pk.apply(data, x, out=np.empty(skewed_csr.nrows + 1))


def test_row_align_snaps_boundaries(banded_csr):
    for kernel in (BCSRSpMV(block=3), SellCSigmaSpMV(chunk=4, sigma=32)):
        align = kernel.row_align
        assert align > 1
        pk = ParallelKernel(kernel, nthreads=7)
        data = pk.preprocess(banded_csr)
        for chunk in data.chunks:
            assert chunk.lo % align == 0 or chunk.lo == 0
            assert chunk.hi % align == 0 or chunk.hi == banded_csr.nrows


def test_guard_composes_both_orders(skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    base = baseline_kernel()
    serial = base.apply(base.preprocess(skewed_csr), x)

    outer = GuardedKernel(ParallelKernel(base, nthreads=4))
    np.testing.assert_array_equal(
        outer.apply(outer.preprocess(skewed_csr), x), serial
    )
    inner = ParallelKernel(GuardedKernel(base), nthreads=4)
    np.testing.assert_array_equal(
        inner.apply(inner.preprocess(skewed_csr), x), serial
    )


def test_worker_exception_propagates(skewed_csr):
    pk = ParallelKernel(baseline_kernel(), nthreads=4)
    data = pk.preprocess(skewed_csr)
    with pytest.raises(ValueError):
        pk.apply(data, np.ones(skewed_csr.ncols + 3))


def test_measurement_recorded(skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    pk = ParallelKernel(baseline_kernel(), nthreads=4)
    data = pk.preprocess(skewed_csr)
    assert pk.last_measurement is None
    pk.apply(data, x)
    m = pk.last_measurement
    assert m.nthreads == 4
    assert len(m.thread_wall_seconds) == 4
    assert len(m.thread_cpu_seconds) == 4
    assert sum(m.chunks_per_thread) == len(data.chunks)
    assert m.imbalance >= 1.0
    assert m.wall_imbalance >= 1.0
    assert m.wall_seconds > 0.0
    s = m.summary()
    assert s["schedule"] == "balanced-nnz"
    assert s["imbalance"] == m.imbalance


def test_dynamic_schedule_drains_queue(skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    pk = ParallelKernel(baseline_kernel(), nthreads=4,
                        schedule="dynamic")
    data = pk.preprocess(skewed_csr)
    assert data.partition.is_dynamic
    serial = skewed_csr.matvec(x)
    np.testing.assert_array_equal(pk.apply(data, x), serial)
    assert sum(pk.last_measurement.chunks_per_thread) == len(data.chunks)
    assert pk.last_measurement.dynamic


def test_executor_pool_reused():
    first = get_executor(3)
    assert get_executor(3) is first
    assert 3 in active_worker_counts()


def test_parallel_spmv_facade(skewed_csr, rng):
    x = rng.standard_normal(skewed_csr.ncols)
    op = ParallelSpMV(skewed_csr, nthreads=4, guard=True)
    np.testing.assert_array_equal(op.matvec(x), skewed_csr.matvec(x))
    np.testing.assert_array_equal(op @ x, skewed_csr.matvec(x))
    X = rng.standard_normal((skewed_csr.ncols, 3))
    np.testing.assert_allclose(op.matmat(X), skewed_csr.matmat(X),
                               rtol=1e-14, atol=1e-14)
    assert op.shape == skewed_csr.shape
    assert op.nthreads <= 4
    assert op.last_measurement is not None


def test_config_signature_stable():
    cfg = ParallelConfig(4, "static-rows", None)
    assert cfg.signature() == (
        "parallel:nthreads=4,schedule=static-rows,chunk_rows=auto"
    )
    assert ParallelConfig(4, "static-rows", 64).signature() != (
        cfg.signature()
    )
    with pytest.raises(ValueError):
        ParallelConfig(0)


def test_oversubscribed_threads_clamp(empty_row_csr, rng):
    """More threads than (non-empty) rows must execute correctly."""
    x = rng.standard_normal(empty_row_csr.ncols)
    pk = ParallelKernel(baseline_kernel(), nthreads=64)
    data = pk.preprocess(empty_row_csr)
    assert data.nthreads <= empty_row_csr.nrows
    np.testing.assert_array_equal(pk.apply(data, x),
                                  empty_row_csr.matvec(x))
