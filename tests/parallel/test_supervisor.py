"""Supervision plumbing: pool lifecycle, registry, reports, stages.

The fault-driven ladder walks live in ``tests/faults/
test_parallel_faults.py``; this module covers the fault-free surface —
transparent pass-through, executor recycling and health introspection,
the demotion registry semantics, straggler flagging, and the
``ExecuteStage``/``PipelineRunner`` integration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    ParallelMeasurement,
    SupervisedSpMV,
    clear_demotions,
    demoted_target,
    demotion_count,
    demotion_log,
    get_executor,
    pool_health,
    record_demotion,
    recycle_executor,
)


@pytest.fixture(autouse=True)
def _clean_demotions():
    clear_demotions()
    yield
    clear_demotions()


# -- executor lifecycle -------------------------------------------------


def test_get_executor_recycles_broken_pool():
    pool = get_executor(5)
    pool.submit(lambda: None).result()  # spawn at least one thread
    pool.shutdown(wait=True)  # break it behind the module's back
    fresh = get_executor(5)
    assert fresh is not pool
    assert fresh.submit(lambda: 41 + 1).result() == 42
    recycle_executor(5)


def test_recycle_executor_reports_presence():
    recycle_executor(6)  # earlier suites may have left a width-6 pool
    assert recycle_executor(6) is False
    get_executor(6)
    assert recycle_executor(6) is True
    assert recycle_executor(6) is False


def test_pool_health_reports_liveness():
    pool = get_executor(7)
    pool.submit(lambda: None).result()
    health = pool_health()[7]
    assert health["expected"] == 7
    assert 1 <= health["started"] <= 7
    assert health["alive"] == health["started"]
    assert health["shutdown"] is False
    assert health["healthy"] is True
    pool.shutdown(wait=True)
    health = pool_health()[7]
    assert health["healthy"] is False
    # get_executor repairs what pool_health flagged
    assert get_executor(7).submit(lambda: 1).result() == 1
    recycle_executor(7)


# -- demotion registry --------------------------------------------------


def test_demotion_registry_keeps_lowest_target_and_counts_events():
    assert demoted_target("sig") is None
    record_demotion("sig", 2, "worker-fault")
    record_demotion("sig", 4, "deadline")  # higher target: kept at 2
    assert demoted_target("sig") == 2
    record_demotion("sig", 0, "deadline")
    assert demoted_target("sig") == 0
    assert demotion_count() == 3
    entry = demotion_log()["sig"]
    assert entry["events"] == 3
    assert entry["reason"] == "deadline"
    clear_demotions()
    assert demotion_count() == 0
    assert demoted_target("sig") is None


# -- fault-free supervised operator -------------------------------------


def test_supervised_matches_serial_when_nothing_fails(small_random_csr):
    x = np.random.default_rng(5).standard_normal(small_random_csr.ncols)
    sup = SupervisedSpMV(small_random_csr, nthreads=4)
    np.testing.assert_array_equal(
        sup.matvec(x), small_random_csr.matvec(x)
    )
    report = sup.last_report
    assert not report.degraded
    assert report.final_mode == "parallel"
    assert report.final_nthreads == 4
    assert report.ladder() == "t4"
    assert demotion_count() == 0
    assert sup.last_measurement is not None
    assert sup.last_measurement.nthreads == 4


def test_supervised_matmat_matches_serial(small_random_csr):
    X = np.random.default_rng(6).standard_normal(
        (small_random_csr.ncols, 3)
    )
    sup = SupervisedSpMV(small_random_csr, nthreads=2)
    np.testing.assert_array_equal(
        sup.matmat(X), small_random_csr.matmat(X)
    )
    assert not sup.last_report.degraded


def test_supervised_out_buffer_written_in_place(small_random_csr):
    x = np.random.default_rng(7).standard_normal(small_random_csr.ncols)
    out = np.empty(small_random_csr.nrows)
    sup = SupervisedSpMV(small_random_csr, nthreads=2)
    y = sup.matvec(x, out=out)
    assert y is out
    np.testing.assert_array_equal(out, small_random_csr.matvec(x))


def test_report_summary_is_json_ready(small_random_csr):
    import json

    x = np.ones(small_random_csr.ncols)
    sup = SupervisedSpMV(small_random_csr, nthreads=2,
                         deadline_seconds=60.0)
    sup.matvec(x)
    summary = sup.last_report.summary()
    json.dumps(summary)  # must not raise
    assert summary["final_mode"] == "parallel"
    assert summary["deadline_seconds"] == 60.0
    assert summary["attempts"][0]["outcome"] == "ok"


# -- straggler flagging -------------------------------------------------


def test_stragglers_flags_dominant_wall_span():
    m = ParallelMeasurement(
        nthreads=4, schedule="static-rows", dynamic=False,
        wall_seconds=1.0,
        thread_wall_seconds=(0.01, 0.012, 0.009, 0.9),
        thread_cpu_seconds=(0.01, 0.01, 0.01, 0.01),
        chunks_per_thread=(1, 1, 1, 1),
    )
    assert m.stragglers() == (3,)
    assert m.summary()["stragglers"] == [3]


def test_stragglers_empty_on_balanced_run():
    m = ParallelMeasurement(
        nthreads=4, schedule="static-rows", dynamic=False,
        wall_seconds=0.04,
        thread_wall_seconds=(0.01, 0.011, 0.009, 0.012),
        thread_cpu_seconds=(0.01, 0.01, 0.01, 0.01),
        chunks_per_thread=(1, 1, 1, 1),
    )
    assert m.stragglers() == ()


# -- pipeline integration -----------------------------------------------


def test_measure_parallel_returns_supervision(small_random_csr):
    from repro.machine import KNL
    from repro.pipeline import PipelineRunner
    from repro.kernels import baseline_kernel

    runner = PipelineRunner(KNL)
    result, measurement, supervision = runner.measure_parallel(
        baseline_kernel(), small_random_csr, nthreads=2, repeats=1,
        schedule="balanced-nnz",
    )
    assert result is not None
    assert measurement.nthreads == 2
    assert supervision.final_mode == "parallel"
    assert not supervision.degraded
    (span,) = [s for s in runner.tracer.spans if s.name == "execute"]
    assert span.attributes["supervision"]["ladder"] == "t2"
    assert span.attributes["measured_imbalance"] >= 1.0
    assert span.attributes["predicted_imbalance"] >= 1.0


def test_execute_stage_honors_deadline_and_retry_options(
        small_random_csr):
    from repro.machine import KNL
    from repro.pipeline import PipelineRunner

    from repro.kernels import baseline_kernel

    runner = PipelineRunner(KNL)
    _, measurement, supervision = runner.measure_parallel(
        baseline_kernel(), small_random_csr, nthreads=2, repeats=1,
        deadline_seconds=60.0, max_retries=1,
    )
    assert measurement is not None
    assert supervision.deadline_seconds == 60.0
