"""Cross-process plan-cache persistence: save/load warm-start."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core import CACHE_SCHEMA_VERSION, AdaptiveSpMV, PlanCache
from repro.machine import KNL

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_save_writes_schema_versioned_json(small_random_csr, tmp_path):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    opt.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    assert opt.plan_cache.save(path) == 1
    payload = json.loads(path.read_text())
    assert set(payload) == {"checksum", "body"}
    body = payload["body"]
    assert body["schema_version"] == CACHE_SCHEMA_VERSION
    (entry,) = body["entries"]
    assert set(entry) == {"key", "plan"}
    assert entry["plan"]["kernel_name"]
    # no temp file left behind by the atomic write
    assert [p.name for p in tmp_path.iterdir()] == ["plans.json"]


def test_loaded_cache_serves_zero_decision_cost(small_random_csr, x300,
                                                tmp_path):
    cold = AdaptiveSpMV(KNL, classifier="profile")
    op_cold = cold.optimize(small_random_csr)
    assert op_cold.plan.total_overhead_seconds > 0.0
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    warm = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=PlanCache.load(path)
    )
    op_warm = warm.optimize(small_random_csr)
    assert op_warm.plan.cache_hit
    assert op_warm.plan.decision_seconds == 0.0
    # kernels are rebuilt deterministically: identical decision,
    # bit-identical numerics vs the uncached path
    assert op_warm.plan.kernel_name == op_cold.plan.kernel_name
    assert op_warm.plan.optimizations == op_cold.plan.optimizations
    np.testing.assert_array_equal(
        op_warm.matvec(x300), op_cold.matvec(x300)
    )


def test_strict_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(
        {"schema_version": CACHE_SCHEMA_VERSION + 1, "entries": []}
    ))
    with pytest.raises(ValueError, match="unsupported plan-cache schema"):
        PlanCache.load(path, strict=True)


def test_lenient_load_degrades_unknown_schema_to_empty(tmp_path):
    from repro.errors import PlanCacheWarning

    path = tmp_path / "bad.json"
    path.write_text(json.dumps(
        {"schema_version": CACHE_SCHEMA_VERSION + 1, "entries": []}
    ))
    with pytest.warns(PlanCacheWarning):
        cache = PlanCache.load(path)
    assert len(cache) == 0
    assert "unsupported plan-cache schema" in cache.load_recovery_reason


def test_guarded_optimizer_rewraps_revived_entries(small_random_csr,
                                                   tmp_path):
    from repro.guard import GuardedKernel

    cold = AdaptiveSpMV(KNL, classifier="profile")
    cold.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    warm = AdaptiveSpMV(
        KNL, classifier="profile", guard=True,
        plan_cache=PlanCache.load(path),
    )
    op = warm.optimize(small_random_csr)
    assert op.plan.cache_hit
    assert isinstance(op.kernel, GuardedKernel)


def test_fresh_process_warm_start_bit_identical(small_random_csr,
                                                tmp_path):
    """The acceptance scenario, literally: a cache saved here is loaded
    in a *fresh process* and serves the same matrix with cache_hit=True,
    decision_seconds == 0, and bit-identical matvec output."""
    cold = AdaptiveSpMV(KNL, classifier="profile")
    op_cold = cold.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    x = np.random.default_rng(99).standard_normal(small_random_csr.ncols)
    expected = tmp_path / "expected.npy"
    np.save(expected, op_cold.matvec(x))
    matrix = tmp_path / "matrix.npz"
    np.savez(
        matrix,
        rowptr=small_random_csr.rowptr,
        colind=small_random_csr.colind,
        values=small_random_csr.values,
        shape=np.array(small_random_csr.shape),
    )

    script = f"""
import sys
sys.path.insert(0, {SRC!r})
import numpy as np
from repro.core import AdaptiveSpMV, PlanCache
from repro.formats import CSRMatrix
from repro.machine import KNL

blob = np.load({str(matrix)!r})
csr = CSRMatrix(blob["rowptr"], blob["colind"], blob["values"],
                tuple(blob["shape"]))
opt = AdaptiveSpMV(KNL, classifier="profile",
                   plan_cache=PlanCache.load({str(path)!r}))
op = opt.optimize(csr)
assert op.plan.cache_hit, "expected a cache hit in the fresh process"
assert op.plan.decision_seconds == 0.0
x = np.random.default_rng(99).standard_normal(csr.ncols)
expected = np.load({str(expected)!r})
np.testing.assert_array_equal(op.matvec(x), expected)
print("fresh-process warm start ok")
"""
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert "fresh-process warm start ok" in proc.stdout


FIXTURES = Path(__file__).parent / "fixtures"


def test_load_upgrades_legacy_plans_to_default_executor_spec():
    """A schema-v2 cache file whose entries carry pre-engine v1 plans
    (no ``executor_spec``) loads cleanly: every entry is kept and
    upgraded to the default serial spec — not warn-and-dropped."""
    import warnings

    from repro.engine import ExecutorSpec

    path = FIXTURES / "plan_cache_v2_legacy_plans.json"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any PlanCacheWarning fails
        cache = PlanCache.load(path)
    assert cache.load_recovery_reason is None
    assert len(cache) == 2
    for entry in cache._entries.values():
        assert entry.plan.executor_spec == ExecutorSpec()
        assert entry.kernel is not None


def test_legacy_plan_cache_serves_warm_start(small_random_csr, tmp_path):
    """End-to-end: a cache written by this build, rewritten to the
    legacy v1 plan layout (as an old build would have saved it), still
    warm-starts a fresh optimizer with a hit and identical numerics."""
    from repro.core.optimizer import _body_checksum

    cold = AdaptiveSpMV(KNL, classifier="profile")
    op_cold = cold.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    # Rewrite each plan to schema v1: drop the executor_spec field,
    # exactly what a pre-engine build persisted.
    payload = json.loads(path.read_text())
    for item in payload["body"]["entries"]:
        item["plan"]["schema_version"] = 1
        del item["plan"]["executor_spec"]
    payload["checksum"] = _body_checksum(payload["body"])
    path.write_text(json.dumps(payload))

    warm = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=PlanCache.load(path)
    )
    op_warm = warm.optimize(small_random_csr)
    assert op_warm.plan.cache_hit
    assert op_warm.plan.decision_seconds == 0.0
    x = np.random.default_rng(7).standard_normal(small_random_csr.ncols)
    np.testing.assert_array_equal(op_warm.matvec(x), op_cold.matvec(x))


def test_two_optimizers_share_one_loaded_cache_concurrently(
        small_random_csr, tmp_path):
    cold = AdaptiveSpMV(KNL, classifier="profile")
    cold.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    shared = PlanCache.load(path)
    optimizers = [
        AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared)
        for _ in range(2)
    ]
    errors = []

    def hammer(opt):
        try:
            for _ in range(10):
                op = opt.optimize(small_random_csr)
                assert op.plan.cache_hit
                assert op.plan.decision_seconds == 0.0
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(opt,))
        for opt in optimizers
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert shared.hits == 20
    assert shared.misses == 0
