"""The serializable plan IR: round-trip, schema versioning, stability."""

import json

import pytest

from repro.core import (
    PLAN_SCHEMA_VERSION,
    AdaptiveSpMV,
    OptimizationPlan,
)
from repro.core.classes import Bottleneck
from repro.machine import KNL


def test_plan_round_trips_through_the_ir(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=False)
    plan = opt.plan(small_random_csr)
    payload = plan.to_dict()
    assert payload["schema_version"] == PLAN_SCHEMA_VERSION
    revived = OptimizationPlan.from_dict(payload)
    assert revived == plan
    assert revived.total_overhead_seconds == plan.total_overhead_seconds


def test_plan_ir_is_pure_json():
    plan = OptimizationPlan(
        classes=frozenset({Bottleneck.MB, Bottleneck.IMB}),
        optimizations=("compression", "decomposition"),
        kernel_name="csr+delta+split",
        decision_seconds=0.01,
        setup_seconds=0.02,
        classifier_kind="profile-guided",
        quarantined=("csr+bad",),
    )
    text = json.dumps(plan.to_dict())
    assert OptimizationPlan.from_dict(json.loads(text)) == plan


def test_plan_ir_classes_are_sorted_and_stable():
    plan = OptimizationPlan(
        classes=frozenset({Bottleneck.IMB, Bottleneck.MB}),
        optimizations=(),
        kernel_name="csr",
        decision_seconds=0.0,
        setup_seconds=0.0,
        classifier_kind="profile-guided",
    )
    payload = plan.to_dict()
    assert payload["classes"] == sorted(payload["classes"])


def test_plan_ir_rejects_unknown_schema_version():
    payload = OptimizationPlan(
        classes=frozenset(),
        optimizations=(),
        kernel_name="csr",
        decision_seconds=0.0,
        setup_seconds=0.0,
        classifier_kind="profile-guided",
    ).to_dict()
    payload["schema_version"] = PLAN_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="unsupported plan schema"):
        OptimizationPlan.from_dict(payload)
    del payload["schema_version"]
    with pytest.raises(ValueError, match="unsupported plan schema"):
        OptimizationPlan.from_dict(payload)
