"""Span/Tracer semantics and the exported JSON schema."""

import json

import pytest

from repro.pipeline import TRACE_SCHEMA_VERSION, Tracer
from repro.pipeline.tracer import _jsonable


def test_span_context_manager_measures_wall_time():
    tracer = Tracer()
    with tracer.span("analyze", nnz=42) as span:
        span.set(extra="yes")
        span.charged_seconds = 0.5
    assert len(tracer) == 1
    (s,) = tracer.spans
    assert s.name == "analyze"
    assert s.wall_seconds >= 0.0
    assert s.charged_seconds == 0.5
    assert s.attributes == {"nnz": 42, "extra": "yes"}


def test_span_is_recorded_even_when_the_stage_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("classify"):
            raise RuntimeError("boom")
    assert tracer.stage_names() == ("classify",)


def test_record_appends_premeasured_span():
    tracer = Tracer()
    tracer.record("cache", wall_seconds=0.25, charged_seconds=0.75,
                  hit=True)
    assert tracer.total_wall_seconds() == 0.25
    assert tracer.total_charged_seconds() == 0.75
    assert tracer.find("cache")[0].attributes["hit"] is True


def test_totals_sum_over_all_spans():
    tracer = Tracer()
    tracer.record("a", charged_seconds=1.0)
    tracer.record("b", charged_seconds=2.0)
    tracer.record("a", charged_seconds=4.0)
    assert tracer.total_charged_seconds() == 7.0
    assert len(tracer.find("a")) == 2
    assert tracer.stage_names() == ("a", "b", "a")


def test_payload_schema_and_export(tmp_path):
    tracer = Tracer()
    with tracer.span("select", optimizations=("unrolling",)):
        pass
    payload = tracer.to_payload()
    assert payload["schema_version"] == TRACE_SCHEMA_VERSION
    assert set(payload) == {
        "schema_version", "total_wall_seconds",
        "total_charged_seconds", "spans",
    }
    (span,) = payload["spans"]
    assert set(span) == {
        "name", "wall_seconds", "charged_seconds", "attributes",
    }

    path = tmp_path / "trace.json"
    tracer.export(path)
    assert json.loads(path.read_text()) == payload
    # the whole payload must be pure JSON
    json.dumps(payload)


def test_jsonable_coerces_exotic_attribute_values():
    class Odd:
        def __repr__(self):
            return "<odd>"

    out = _jsonable({
        "t": (1, 2),
        "s": frozenset(["x"]),
        "obj": Odd(),
        "nested": {"k": [Odd()]},
    })
    json.dumps(out)
    assert out["t"] == [1, 2]
    assert out["s"] == ["x"]
    assert out["obj"] == "<odd>"
