"""The staged planning pipeline: stage order, charged-seconds
accounting, custom stages, and quarantine telemetry."""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV
from repro.guard import clear_quarantine
from repro.kernels import baseline_kernel
from repro.kernels.registry import record_kernel_failure
from repro.machine import KNL
from repro.pipeline import (
    PipelineContext,
    Stage,
    Tracer,
    default_planning_stages,
    run_stages,
)

PLANNING_STAGES = ("analyze", "classify", "select", "transform")


@pytest.fixture
def quarantine_guard():
    clear_quarantine()
    yield
    clear_quarantine()


def test_default_stages_match_protocol_and_order():
    stages = default_planning_stages()
    assert tuple(s.name for s in stages) == PLANNING_STAGES
    for stage in stages:
        assert isinstance(stage, Stage)


def test_plan_records_one_span_per_stage(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=False)
    tracer = Tracer()
    plan = opt.plan(small_random_csr, tracer=tracer)
    assert tracer.stage_names() == PLANNING_STAGES

    (classify,) = tracer.find("classify")
    assert classify.charged_seconds == plan.decision_seconds
    (transform,) = tracer.find("transform")
    assert transform.charged_seconds == plan.setup_seconds
    assert transform.attributes["materialized"] is False
    # the acceptance invariant: charges sum to the plan's overhead
    assert tracer.total_charged_seconds() == pytest.approx(
        plan.total_overhead_seconds
    )


def test_optimize_trace_includes_cache_span(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    cold = Tracer()
    opt.optimize(small_random_csr, tracer=cold)
    assert cold.stage_names() == ("cache",) + PLANNING_STAGES
    assert cold.find("cache")[0].attributes["hit"] is False
    assert cold.find("transform")[0].attributes["materialized"] is True

    warm = Tracer()
    plan = opt.optimize(small_random_csr, tracer=warm).plan
    assert plan.cache_hit
    assert warm.stage_names() == ("cache",)
    assert warm.find("cache")[0].attributes["hit"] is True
    assert warm.total_charged_seconds() == 0.0


def test_run_stages_populates_context(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    ctx = PipelineContext(
        csr=small_random_csr,
        machine=KNL,
        classifier=opt._classifier,
        classifier_kind=opt.classifier_kind,
        pool=opt.pool,
        materialize=True,
    )
    run_stages(default_planning_stages(), ctx)
    assert ctx.features is not None
    assert ctx.classes is not None
    assert ctx.kernel is not None
    assert ctx.data is not None
    plan = ctx.build_plan()
    assert plan.kernel_name == ctx.kernel.name


def test_build_plan_requires_classify_and_select(small_random_csr):
    ctx = PipelineContext(
        csr=small_random_csr, machine=KNL, classifier=None,
        classifier_kind="none", pool=None,
    )
    with pytest.raises(RuntimeError, match="classify and select"):
        ctx.build_plan()


def test_custom_stage_composes_into_the_optimizer(small_random_csr):
    class TagStage:
        name = "tag"

        def run(self, ctx, span):
            span.set(tagged=True)

    stages = default_planning_stages() + (TagStage(),)
    opt = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=False, stages=stages
    )
    tracer = Tracer()
    opt.plan(small_random_csr, tracer=tracer)
    assert tracer.stage_names() == PLANNING_STAGES + ("tag",)
    assert tracer.find("tag")[0].attributes["tagged"] is True


def test_select_span_records_quarantine_event(small_random_csr,
                                              quarantine_guard):
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=False)
    first = opt.plan(small_random_csr)
    assert first.optimizations  # fixture matrix gets optimized

    record_kernel_failure(first.kernel_name, "forced")
    tracer = Tracer()
    second = opt.plan(small_random_csr, tracer=tracer)
    # the plan substituted the baseline and telemetry says why
    assert second.kernel_name == baseline_kernel().name
    assert second.quarantined == (first.kernel_name,)
    assert tracer.stage_names() == PLANNING_STAGES  # no span lost
    (select,) = tracer.find("select")
    assert select.attributes["quarantine_substitutions"] == [
        first.kernel_name
    ]
    assert select.attributes["guard_fault_counts"][first.kernel_name] >= 1


def test_guarded_fault_shows_up_in_trace(small_random_csr, rng,
                                         quarantine_guard):
    from repro.guard import BrokenKernel, GuardedKernel

    opt = AdaptiveSpMV(KNL, classifier="profile", guard=True,
                       plan_cache=False)
    op = opt.optimize(small_random_csr)
    assert isinstance(op.kernel, GuardedKernel)
    name = op.plan.kernel_name
    # sabotage the wrapped variant, then run through the guard
    op.kernel.inner = BrokenKernel(op.kernel.inner, mode="raise",
                                   name=name)
    x = rng.standard_normal(small_random_csr.ncols)
    np.testing.assert_array_equal(
        op.matvec(x), small_random_csr.matvec(x)
    )
    assert op.kernel.failure_events == 1

    # replanning now reports the quarantine in the select span
    tracer = Tracer()
    replanned = opt.plan(small_random_csr, tracer=tracer)
    assert replanned.quarantined == (name,)
    (select,) = tracer.find("select")
    assert select.attributes["quarantine_substitutions"] == [name]
    assert select.attributes["guard_fault_counts"][name] == 1
