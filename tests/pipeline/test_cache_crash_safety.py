"""Crash-safe plan-cache persistence: atomic saves, lenient loads.

The acceptance contract: a ``PlanCache`` file corrupted at *any* byte
offset loads as an empty cache without raising (warning + recovery
counter instead), and a failed save never leaves a partial file behind
— the previous cache file survives byte-for-byte.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import (
    CACHE_SCHEMA_VERSION,
    AdaptiveSpMV,
    PlanCache,
    plan_cache_load_recoveries,
    reset_plan_cache_load_recoveries,
)
from repro.errors import PlanCacheWarning
from repro.machine import KNL


@pytest.fixture(autouse=True)
def _reset_recovery_counter():
    reset_plan_cache_load_recoveries()
    yield
    reset_plan_cache_load_recoveries()


@pytest.fixture
def saved_cache(small_random_csr, tmp_path):
    """A real one-entry cache file written by the atomic save path."""
    opt = AdaptiveSpMV(KNL, classifier="profile")
    opt.optimize(small_random_csr)
    path = tmp_path / "plans.json"
    assert opt.plan_cache.save(path) == 1
    return path


def _load_recovered(path) -> PlanCache:
    with pytest.warns(PlanCacheWarning):
        cache = PlanCache.load(path)
    assert len(cache) == 0
    assert cache.load_recovery_reason
    return cache


def test_corruption_at_every_byte_offset_loads_empty(saved_cache):
    """Zero out each byte of the file in turn: every single offset must
    degrade to an empty cache, never raise."""
    blob = saved_cache.read_bytes()
    recovered = 0
    for offset in range(len(blob)):
        corrupted = bytearray(blob)
        corrupted[offset] = 0
        saved_cache.write_bytes(bytes(corrupted))
        _load_recovered(saved_cache)
        recovered += 1
    assert plan_cache_load_recoveries() == recovered == len(blob)


def test_bitflip_corruption_is_caught_by_checksum(saved_cache):
    """A flipped character that keeps the JSON parseable is still
    rejected: the canonical-body checksum no longer matches."""
    text = saved_cache.read_text()
    # Flip one digit inside the body (setup/decision seconds floats and
    # the maxsize are all digits); find one after the checksum field.
    body_at = text.index('"body"')
    digit_at = next(
        i for i in range(body_at, len(text))
        if text[i].isdigit()
    )
    flipped = "7" if text[digit_at] != "7" else "3"
    saved_cache.write_text(
        text[:digit_at] + flipped + text[digit_at + 1:]
    )
    cache = _load_recovered(saved_cache)
    assert "checksum mismatch" in cache.load_recovery_reason


def test_truncation_at_every_tenth_loads_empty(saved_cache):
    blob = saved_cache.read_bytes()
    # len-1 would only shave the trailing newline (still a complete
    # JSON document); len-2 is the last truncation that loses data.
    cuts = [0, 1, len(blob) // 10, len(blob) // 2, len(blob) - 2]
    for cut in cuts:
        saved_cache.write_bytes(blob[:cut])
        _load_recovered(saved_cache)
    assert plan_cache_load_recoveries() == len(cuts)


def test_old_schema_v1_file_degrades_to_empty(tmp_path):
    path = tmp_path / "v1.json"
    path.write_text(json.dumps(
        {"schema_version": 1, "maxsize": 32, "entries": []}
    ))
    cache = _load_recovered(path)
    assert "unsupported plan-cache schema" in cache.load_recovery_reason
    assert plan_cache_load_recoveries() == 1


def test_checksum_passed_but_invalid_entry_degrades(saved_cache):
    """A self-consistent file whose entries don't revive (wrong IR
    shape) still degrades instead of raising mid-serve."""
    payload = json.loads(saved_cache.read_text())
    body = payload["body"]
    body["entries"] = [{"key": ["x"], "plan": {"not": "a plan"}}]
    # Re-sign the tampered body so only entry revival can fail.
    from repro.core.optimizer import _body_checksum

    saved_cache.write_text(json.dumps(
        {"checksum": _body_checksum(body), "body": body}
    ))
    cache = _load_recovered(saved_cache)
    assert "invalid entry" in cache.load_recovery_reason


def test_strict_load_raises_instead_of_degrading(saved_cache):
    saved_cache.write_bytes(saved_cache.read_bytes()[: len("{")])
    with pytest.raises(ValueError, match="unusable"):
        PlanCache.load(saved_cache, strict=True)
    assert plan_cache_load_recoveries() == 0


def test_missing_file_still_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        PlanCache.load(tmp_path / "never-written.json")
    assert plan_cache_load_recoveries() == 0


def test_clean_roundtrip_does_not_touch_counter(saved_cache):
    cache = PlanCache.load(saved_cache)
    assert len(cache) == 1
    assert cache.load_recovery_reason is None
    assert plan_cache_load_recoveries() == 0


def test_failed_save_leaves_no_partial_file(saved_cache, monkeypatch):
    """A crash mid-write must leave the old file intact and no temp
    droppings next to it."""
    before = saved_cache.read_bytes()

    def exploding_dump(obj, fh, **kwargs):
        # Write half the payload, then die — simulating a crash with
        # the temp file partially flushed.
        fh.write(json.dumps(obj, **kwargs)[:40])
        raise OSError("disk full (injected)")

    cache = PlanCache.load(saved_cache)
    monkeypatch.setattr(json, "dump", exploding_dump)
    with pytest.raises(OSError, match="disk full"):
        cache.save(saved_cache)
    monkeypatch.undo()
    assert saved_cache.read_bytes() == before
    assert sorted(p.name for p in saved_cache.parent.iterdir()) == [
        saved_cache.name
    ]
    # And the surviving file still loads cleanly.
    assert len(PlanCache.load(saved_cache)) == 1


def test_failed_rename_leaves_no_partial_file(saved_cache, monkeypatch):
    before = saved_cache.read_bytes()

    def exploding_replace(src, dst):
        raise OSError("rename lost a race (injected)")

    monkeypatch.setattr(os, "replace", exploding_replace)
    cache = PlanCache.load(saved_cache)
    with pytest.raises(OSError, match="rename lost a race"):
        cache.save(saved_cache)
    monkeypatch.undo()
    assert saved_cache.read_bytes() == before
    assert sorted(p.name for p in saved_cache.parent.iterdir()) == [
        saved_cache.name
    ]


def test_recovered_optimizer_replans_and_serves(small_random_csr,
                                                saved_cache, x300):
    """End to end: a corrupted cache file does not take the optimizer
    down — it replans from scratch and still serves correct numerics."""
    saved_cache.write_bytes(saved_cache.read_bytes()[:-20])
    with pytest.warns(PlanCacheWarning):
        cache = PlanCache.load(saved_cache)
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=cache)
    op = opt.optimize(small_random_csr)
    assert not op.plan.cache_hit  # the entry was lost with the file
    # Replanning is deterministic: same decision, bit-identical numerics
    # vs a never-corrupted optimizer.
    reference = AdaptiveSpMV(
        KNL, classifier="profile"
    ).optimize(small_random_csr)
    assert op.plan.kernel_name == reference.plan.kernel_name
    np.testing.assert_array_equal(op.matvec(x300),
                                  reference.matvec(x300))
