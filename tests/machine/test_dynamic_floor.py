"""Tests for the dynamic-schedule unsplittable-unit floor.

Work stealing equalizes load but cannot split a row; the engine floors
the dynamic makespan at the cost of the largest single work unit —
which is exactly why the pool needs matrix decomposition for huge-row
matrices instead of relying on dynamic scheduling.
"""

import numpy as np
import pytest

from repro.kernels import ConfiguredSpMV, SpMVConfig, baseline_kernel
from repro.machine import ExecutionEngine, KNL
from repro.sched import balanced_nnz


@pytest.fixture(scope="module")
def huge_row_matrix():
    from repro.matrices.generators import banded, with_dense_rows

    return with_dense_rows(
        banded(60_000, nnz_per_row=4, bandwidth=8, seed=41),
        n_dense=1, dense_nnz=45_000, seed=42,
    )


def test_dynamic_floored_by_largest_row(huge_row_matrix):
    engine = ExecutionEngine(KNL)
    dyn = ConfiguredSpMV(SpMVConfig(schedule="dynamic"))
    r = engine.run(dyn, dyn.preprocess(huge_row_matrix))

    # compute the single-row cost directly from the cost plane
    base = baseline_kernel()
    cost = base.cost(
        base.preprocess(huge_row_matrix), KNL,
        balanced_nnz(huge_row_matrix, 1),
    )
    unit_seconds = max(
        cost.max_unit_cycles * KNL.smt / KNL.freq_hz,
        cost.max_unit_latency_ns * 1e-9 / cost.mlp,
    )
    assert r.seconds >= unit_seconds


def test_decomposition_beats_dynamic_on_huge_rows(huge_row_matrix):
    """The pool design choice the floor encodes."""
    engine = ExecutionEngine(KNL)
    dyn = ConfiguredSpMV(SpMVConfig(schedule="dynamic"))
    dec = ConfiguredSpMV(SpMVConfig(decompose=True))
    r_dyn = engine.run(dyn, dyn.preprocess(huge_row_matrix))
    r_dec = engine.run(dec, dec.preprocess(huge_row_matrix))
    assert r_dec.gflops > 2.0 * r_dyn.gflops


def test_dynamic_still_helps_on_moderate_skew(skewed_csr):
    """With no single dominating row, the floor is harmless and dynamic
    still balances better than static row blocks."""
    engine = ExecutionEngine(KNL, nthreads=32)
    static = ConfiguredSpMV(SpMVConfig(schedule="static-rows"))
    dyn = ConfiguredSpMV(SpMVConfig(schedule="dynamic"))
    r_static = engine.run(static, static.preprocess(skewed_csr))
    r_dyn = engine.run(dyn, dyn.preprocess(skewed_csr))
    assert r_dyn.imbalance <= r_static.imbalance


def test_max_unit_fields_populated(banded_csr):
    base = baseline_kernel()
    cost = base.cost(base.preprocess(banded_csr), KNL,
                     balanced_nnz(banded_csr, 4))
    assert cost.max_unit_cycles > 0
    # banded matrix: resident x, no exposed latency
    assert cost.max_unit_latency_ns >= 0


def test_decomposed_kernel_has_small_units(huge_row_matrix):
    """After decomposition the largest unit is a short row — that is
    the whole point of the transformation."""
    base = baseline_kernel()
    dec = ConfiguredSpMV(SpMVConfig(decompose=True))
    c_base = base.cost(
        base.preprocess(huge_row_matrix), KNL,
        balanced_nnz(huge_row_matrix, 8),
    )
    data = dec.preprocess(huge_row_matrix)
    c_dec = dec.cost(data, KNL, dec.partition(data, 8))
    assert c_dec.max_unit_cycles < 0.05 * c_base.max_unit_cycles
