"""Unit tests for the execution engine's time model."""

import numpy as np
import pytest

from repro.kernels import baseline_kernel, ConfiguredSpMV, SpMVConfig
from repro.machine import ExecutionEngine, KernelCost, KNC, RunResult
from repro.sched import Partition, balanced_nnz


def _cost(T=4, cycles=1e6, bytes_=1e6, lat=0.0, mlp=2.0, ws=1e9):
    return KernelCost(
        compute_cycles=np.full(T, cycles),
        stream_bytes=np.full(T, bytes_),
        latency_ns=np.full(T, lat),
        mlp=mlp,
        flops=1e6,
        working_set_bytes=ws,
    )


class _StubKernel:
    name = "stub"

    def __init__(self, cost):
        self._cost = cost

    def cost(self, data, machine, partition):
        return self._cost

    def partition(self, data, nthreads):
        return Partition(self._cost.compute_cycles.size,
                         np.arange(self._cost.compute_cycles.size,
                                   dtype=np.int32))


def _run(cost, machine=KNC):
    T = cost.compute_cycles.size
    engine = ExecutionEngine(machine, nthreads=T)
    return engine.run(_StubKernel(cost), None)


def test_compute_bound_time():
    cost = _cost(cycles=1.1e9 / 4, bytes_=1.0, lat=0.0)  # 1s/smt of work
    r = _run(cost)
    # cycles * smt / freq = (1.1e9/4) * 4 / 1.1e9 = 1 second
    assert r.seconds == pytest.approx(1.0, rel=1e-3)


def test_bandwidth_bound_time():
    T = 4
    cost = _cost(T=T, cycles=1.0, bytes_=128e9 / T, lat=0.0)
    r = _run(cost)  # total 128 GB at 128 GB/s main bandwidth
    assert r.seconds == pytest.approx(1.0, rel=1e-3)


def test_latency_bound_time():
    cost = _cost(cycles=1.0, bytes_=1.0, lat=2e9, mlp=2.0)  # 2s/2 = 1s
    r = _run(cost)
    assert r.seconds == pytest.approx(1.0, rel=1e-3)


def test_overlap_takes_max_not_sum():
    cost = _cost(cycles=1.1e9 / 4, bytes_=128e9 / 4, lat=2e9, mlp=2.0)
    r = _run(cost)
    assert r.seconds == pytest.approx(1.0, rel=1e-2)  # not 3 seconds


def test_global_bandwidth_floor():
    # one thread holds all the bytes: per-thread share model would let
    # it stream at bw/T, but the floor is total/bw
    T = 4
    cycles = np.full(T, 1.0)
    bytes_ = np.zeros(T)
    bytes_[0] = 128e9
    cost = KernelCost(
        compute_cycles=cycles, stream_bytes=bytes_,
        latency_ns=np.zeros(T), mlp=2.0, flops=1.0,
        working_set_bytes=1e9,
    )
    r = _run(cost)
    assert r.seconds >= 1.0


def test_llc_resident_working_set_gets_fast_bandwidth():
    slow = _run(_cost(cycles=1.0, bytes_=1e8 / 4, ws=1e9))
    fast = _run(_cost(cycles=1.0, bytes_=1e8 / 4, ws=1e6))
    assert fast.seconds < slow.seconds


def test_barrier_overhead_added():
    cost = _cost(cycles=0.0, bytes_=0.0, lat=0.0)
    r = _run(cost)
    assert r.seconds >= KNC.parallel_overhead_seconds(4)


def test_run_result_properties():
    cost = _cost()
    r = _run(cost)
    assert isinstance(r, RunResult)
    assert r.gflops == pytest.approx(cost.flops / r.seconds / 1e9)
    assert r.imbalance == pytest.approx(1.0, rel=1e-6)
    assert r.median_thread_seconds > 0


def test_engine_runs_real_kernel(banded_csr):
    engine = ExecutionEngine(KNC)
    kernel = baseline_kernel()
    r = engine.run(kernel, kernel.preprocess(banded_csr))
    assert r.nthreads == 228
    assert r.gflops > 0
    assert r.thread_seconds.shape == (228,)


def test_explicit_partition_respected(banded_csr):
    engine = ExecutionEngine(KNC, nthreads=16)
    kernel = baseline_kernel()
    part = balanced_nnz(banded_csr, 16)
    r = engine.run(kernel, kernel.preprocess(banded_csr), part)
    assert r.nthreads == 16


def test_fewer_threads_usually_slower(banded_csr):
    kernel = baseline_kernel()
    data = kernel.preprocess(banded_csr)
    full = ExecutionEngine(KNC).run(kernel, data)
    r4 = ExecutionEngine(KNC, nthreads=4).run(kernel, data)
    assert r4.seconds > full.seconds


def test_measure_protocol_matches_run(banded_csr):
    engine = ExecutionEngine(KNC)
    kernel = baseline_kernel()
    data = kernel.preprocess(banded_csr)
    r = engine.run(kernel, data)
    m = engine.measure(kernel, data, iterations=128, runs=5)
    assert m.gflops == pytest.approx(r.gflops, rel=1e-9)


def test_measure_validates_args(banded_csr):
    engine = ExecutionEngine(KNC)
    kernel = baseline_kernel()
    with pytest.raises(ValueError):
        engine.measure(kernel, kernel.preprocess(banded_csr), iterations=0)


def test_dynamic_schedule_balances(skewed_csr):
    kernel_static = ConfiguredSpMV(SpMVConfig(schedule="static-rows"))
    kernel_dyn = ConfiguredSpMV(SpMVConfig(schedule="dynamic"))
    engine = ExecutionEngine(KNC)
    r_static = engine.run(kernel_static, kernel_static.preprocess(skewed_csr))
    r_dyn = engine.run(kernel_dyn, kernel_dyn.preprocess(skewed_csr))
    assert r_dyn.imbalance <= r_static.imbalance


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        ExecutionEngine(KNC, nthreads=0)


def test_kernel_cost_validation():
    with pytest.raises(ValueError, match="equal shape"):
        KernelCost(
            compute_cycles=np.zeros(4),
            stream_bytes=np.zeros(3),
            latency_ns=np.zeros(4),
            mlp=1.0,
            flops=1.0,
            working_set_bytes=1.0,
        )
    with pytest.raises(ValueError, match="mlp"):
        KernelCost(
            compute_cycles=np.zeros(4),
            stream_bytes=np.zeros(4),
            latency_ns=np.zeros(4),
            mlp=0.0,
            flops=1.0,
            working_set_bytes=1.0,
        )
