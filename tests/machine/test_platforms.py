"""Unit tests for the platform definitions (paper Table III)."""

import pytest

from repro.machine import PLATFORMS, get_platform


def test_table3_headline_numbers():
    knc = get_platform("knc")
    assert (knc.cores, knc.smt, knc.freq_ghz) == (57, 4, 1.10)
    assert (knc.bw_main_gbs, knc.bw_llc_gbs) == (128.0, 140.0)
    knl = get_platform("knl")
    assert (knl.cores, knl.smt, knl.freq_ghz) == (68, 4, 1.40)
    assert (knl.bw_main_gbs, knl.bw_llc_gbs) == (395.0, 570.0)
    bdw = get_platform("broadwell")
    assert (bdw.cores, bdw.smt, bdw.freq_ghz) == (22, 2, 2.20)
    assert (bdw.bw_main_gbs, bdw.bw_llc_gbs) == (60.0, 200.0)
    assert bdw.llc_mib == 55.0


def test_qualitative_statements_hold():
    knc, knl, bdw = (get_platform(p) for p in ("knc", "knl", "broadwell"))
    # "an order of magnitude higher [miss latency] compared to multicores"
    assert knc.mem_latency_ns > 3 * bdw.mem_latency_ns
    # in-order KNC, strong prefetch on Broadwell
    assert knc.inorder and not bdw.inorder
    assert bdw.hw_prefetch_eff > knl.hw_prefetch_eff > 0
    # Phi SIMD twice as wide as Broadwell (512- vs 256-bit)
    assert knc.simd_doubles == knl.simd_doubles == 2 * bdw.simd_doubles
    # Broadwell hides many more misses per thread
    assert bdw.mlp > knl.mlp > knc.mlp


def test_lookup_case_insensitive():
    assert get_platform("KNL") is PLATFORMS["knl"]


def test_lookup_unknown():
    with pytest.raises(ValueError, match="unknown platform"):
        get_platform("skylake")
