"""Unit tests for MachineSpec."""

import pytest

from repro.machine import KNC, KNL, BROADWELL, MachineSpec


def test_derived_quantities():
    assert KNC.total_threads == 228
    assert KNL.total_threads == 272
    assert BROADWELL.total_threads == 44
    assert KNC.llc_bytes == 30 * (1 << 20)
    assert KNC.line_elems == 8


def test_bandwidth_plateaus():
    # far below LLC -> LLC bandwidth; far above -> main bandwidth
    assert KNL.bandwidth_for_working_set(1 << 20) == pytest.approx(570e9)
    assert KNL.bandwidth_for_working_set(1 << 30) == pytest.approx(395e9)


def test_bandwidth_ramp_monotone():
    lo = KNC.bandwidth_for_working_set(int(0.6 * KNC.llc_bytes))
    hi = KNC.bandwidth_for_working_set(int(0.9 * KNC.llc_bytes))
    assert KNC.bw_main_gbs * 1e9 <= hi <= lo <= KNC.bw_llc_gbs * 1e9


def test_parallel_overhead_scales_with_threads():
    assert (
        KNC.parallel_overhead_seconds(228)
        > KNC.parallel_overhead_seconds(57)
        > 0
    )


def test_with_override():
    faster = KNC.with_(freq_ghz=2.0)
    assert faster.freq_ghz == 2.0
    assert faster.cores == KNC.cores
    assert KNC.freq_ghz == 1.10  # original untouched


def test_validation_rejects_nonpositive():
    with pytest.raises(ValueError):
        KNC.with_(cores=0)
    with pytest.raises(ValueError):
        KNC.with_(mlp=-1.0)


def test_validation_prefetch_fraction():
    with pytest.raises(ValueError):
        KNC.with_(hw_prefetch_eff=1.5)


def test_specs_are_frozen():
    with pytest.raises(AttributeError):
        KNC.cores = 100
