"""Unit tests for the roofline utilities."""

import pytest

from repro.kernels import baseline_kernel
from repro.machine import ExecutionEngine, KNC, KNL, BROADWELL
from repro.machine.roofline import (
    attainable_gflops,
    peak_gflops,
    ridge_point,
    roofline_point,
)


def test_peak_ordering_across_platforms():
    # Phis have far higher FLOP roofs than Broadwell (wide SIMD, cores)
    assert peak_gflops(KNL) > peak_gflops(KNC) > peak_gflops(BROADWELL)


def test_ridge_point_definition():
    r = ridge_point(KNC)
    assert attainable_gflops(KNC, r) == pytest.approx(peak_gflops(KNC),
                                                      rel=1e-9)


def test_attainable_regimes():
    # far below the ridge: bandwidth-limited, linear in intensity
    low = attainable_gflops(KNC, 0.1)
    assert low == pytest.approx(0.1 * KNC.bw_main_gbs, rel=1e-9)
    # far above: flat compute roof
    assert attainable_gflops(KNC, 1e4) == pytest.approx(peak_gflops(KNC))


def test_attainable_validates_intensity():
    with pytest.raises(ValueError):
        attainable_gflops(KNC, 0.0)


def test_spmv_is_memory_bound_on_roofline(banded_csr):
    """The paper's premise: CSR SpMV sits far left of the ridge."""
    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    r = engine.run(base, base.preprocess(banded_csr))
    point = roofline_point(r, KNC)
    assert point.bound == "memory"
    assert point.intensity < 1.0         # flop:byte < 1, paper §II
    assert 0.0 < point.roof_utilization <= 1.05


def test_llc_resident_ws_raises_attainable(banded_csr):
    small_ws = attainable_gflops(KNC, 0.2, ws_bytes=1 << 20)
    big_ws = attainable_gflops(KNC, 0.2, ws_bytes=1 << 30)
    assert small_ws > big_ws             # footnote 2 of the paper
