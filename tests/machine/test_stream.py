"""Unit tests for the STREAM triad calibration bench."""

import pytest

from repro.machine import KNC, KNL, BROADWELL, stream_table, stream_triad


def test_triad_recovers_spec_main_bandwidth():
    for spec in (KNC, KNL, BROADWELL):
        table = stream_table(spec)
        assert table["main_gbs"] == pytest.approx(spec.bw_main_gbs, rel=0.02)
        assert table["llc_gbs"] == pytest.approx(spec.bw_llc_gbs, rel=0.05)


def test_triad_working_set_accounting():
    r = stream_triad(KNC, array_elems=1000)
    assert r.working_set_bytes == 3 * 8 * 1000
    assert r.seconds > 0


def test_triad_tiny_arrays_overhead_dominated():
    tiny = stream_triad(KNC, array_elems=10)
    assert tiny.bandwidth_gbs < KNC.bw_llc_gbs * 0.1  # launch cost dominates


def test_triad_validates_input():
    with pytest.raises(ValueError):
        stream_triad(KNC, array_elems=0)
