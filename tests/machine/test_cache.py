"""Unit tests for the x-access cache model."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.machine import KNC, BROADWELL
from repro.machine.cache import (
    clear_cache,
    residency_fractions,
    x_access_cost,
    x_access_stats,
    x_working_set_bytes,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _csr(rowptr, colind, ncols):
    rowptr = np.asarray(rowptr, dtype=np.int64)
    colind = np.asarray(colind, dtype=np.int32)
    return CSRMatrix(rowptr, colind, np.ones(colind.size),
                     (rowptr.size - 1, ncols))


def test_dense_run_has_no_potential_misses():
    # columns 0..7 in one row: all gaps 1, first access continues from
    # the same place next row
    csr = _csr([0, 8, 16], list(range(8)) + list(range(8)), 8)
    stats = x_access_stats(csr, line_elems=8)
    # row starts: first row's start has a huge synthetic predecessor
    # distance (counts), second row starts where row 1 started (gap 0)
    assert stats.potential_misses[1] == 0.0


def test_wide_gaps_count_as_misses():
    csr = _csr([0, 3], [0, 100, 200], 256)
    stats = x_access_stats(csr, line_elems=8)
    assert stats.potential_misses[0] >= 2.0


def test_strided_subset_of_potential():
    # gaps of 16 (strided, prefetchable) vs gaps of 1000 (random)
    strided = _csr([0, 4], [0, 16, 32, 48], 4096)
    random = _csr([0, 4], [0, 1000, 2000, 3000], 4096)
    ss = x_access_stats(strided, line_elems=8)
    rs = x_access_stats(random, line_elems=8)
    assert ss.strided_potential[0] >= 3.0
    assert rs.strided_potential[0] == 0.0
    assert np.all(ss.strided_potential <= ss.potential_misses)


def test_unique_lines_counts_distinct_cache_lines():
    csr = _csr([0, 3], [0, 1, 64], 128)  # cols 0,1 share a line
    stats = x_access_stats(csr, line_elems=8)
    assert stats.unique_x_lines == 2
    assert x_working_set_bytes(csr, KNC) == 2 * 64


def test_residency_small_x_fully_resident():
    csr = _csr([0, 2], [0, 8], 16)
    local, llc = residency_fractions(csr, KNC)
    assert local == 1.0 and llc == 1.0


def test_residency_decreases_with_x_size(scattered_csr):
    from repro.matrices.generators import random_uniform

    big = random_uniform(200_000, nnz_per_row=4.0, seed=1)
    l_small, _ = residency_fractions(scattered_csr, KNC)
    l_big, llc_big = residency_fractions(big, KNC)
    assert l_big < l_small
    assert llc_big >= l_big


def test_cost_zero_when_resident():
    csr = _csr([0, 2], [0, 8], 16)
    cost = x_access_cost(csr, KNC)
    assert cost.latency_ns_per_row.sum() == 0.0
    assert cost.dram_bytes_per_row.sum() == 0.0


def test_hw_prefetch_hides_strided_latency():
    from repro.matrices.generators import random_uniform

    big = random_uniform(300_000, nnz_per_row=8.0, seed=2)
    weak = KNC.with_(hw_prefetch_eff=0.0)
    strong = KNC.with_(hw_prefetch_eff=0.9)
    lat_weak = x_access_cost(big, weak).latency_ns_per_row.sum()
    lat_strong = x_access_cost(big, strong).latency_ns_per_row.sum()
    assert lat_strong <= lat_weak


def test_software_prefetch_inflates_traffic_not_latency():
    from repro.matrices.generators import random_uniform

    big = random_uniform(300_000, nnz_per_row=8.0, seed=3)
    plain = x_access_cost(big, KNC, software_prefetch=False)
    pf = x_access_cost(big, KNC, software_prefetch=True)
    assert pf.dram_bytes_per_row.sum() >= plain.dram_bytes_per_row.sum()
    np.testing.assert_allclose(
        pf.latency_ns_per_row, plain.latency_ns_per_row
    )


def test_banded_matrix_cheaper_than_scattered():
    # Sizes big enough that x cannot stay cache-resident.
    from repro.matrices.generators import banded, random_uniform

    band = banded(300_000, nnz_per_row=9, bandwidth=20, seed=1)
    scat = random_uniform(300_000, nnz_per_row=9.0, seed=2)
    lat_band = x_access_cost(band, KNC).latency_ns_per_row.sum()
    lat_scat = x_access_cost(scat, KNC).latency_ns_per_row.sum()
    assert lat_band < 0.1 * lat_scat


def test_broadwell_l3_softens_latency():
    from repro.matrices.generators import random_uniform

    # x working set ~1.6 MB: beyond per-core caches on both platforms,
    # inside Broadwell's L3 but spread over KNC's remote L2s.
    big = random_uniform(200_000, nnz_per_row=6.0, seed=4)
    lat_knc = x_access_cost(big, KNC).latency_ns_per_row.sum()
    lat_bdw = x_access_cost(big, BROADWELL).latency_ns_per_row.sum()
    assert lat_bdw < lat_knc


def test_stats_memoized():
    csr = _csr([0, 2], [0, 64], 128)
    a = x_access_stats(csr, 8)
    b = x_access_stats(csr, 8)
    assert a is b


def test_empty_matrix():
    csr = _csr([0, 0], [], 8)
    cost = x_access_cost(csr, KNC)
    assert cost.latency_ns_per_row.shape == (1,)
    assert cost.latency_ns_per_row.sum() == 0.0
