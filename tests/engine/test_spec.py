"""ExecutorSpec / SupervisionSpec: validation, signatures, round-trip."""

import pytest

from repro.engine import (
    ENGINE_SPEC_SCHEMA_VERSION,
    ExecutorSpec,
    SupervisionSpec,
)
from repro.parallel import ParallelConfig


def test_default_spec_is_bare_kernel():
    spec = ExecutorSpec()
    assert spec.layer_names() == ()
    assert spec.cache_signature() == "serial"
    assert spec.signature() == "guard=0;serial"


def test_legacy_parallel_signature_is_preserved():
    """The cache-key component of a plain parallel spec must equal the
    pre-engine ParallelConfig.signature() string, so plan caches saved
    by earlier builds still warm-start."""
    cfg = ParallelConfig(nthreads=4, schedule="balanced-nnz")
    spec = ExecutorSpec(parallel=cfg)
    assert spec.cache_signature() == cfg.signature()


def test_guard_and_trace_do_not_partition_the_cache():
    cfg = ParallelConfig(nthreads=2)
    plain = ExecutorSpec(parallel=cfg)
    guarded = ExecutorSpec(parallel=cfg, guard=True, trace=True)
    assert plain.cache_signature() == guarded.cache_signature()
    assert plain.signature() != guarded.signature()


def test_supervision_and_workspace_partition_the_cache():
    cfg = ParallelConfig(nthreads=2)
    base = ExecutorSpec(parallel=cfg)
    sup = ExecutorSpec(parallel=cfg, supervision=SupervisionSpec())
    ws = ExecutorSpec(parallel=cfg, workspace="thread-local")
    sigs = {base.cache_signature(), sup.cache_signature(),
            ws.cache_signature()}
    assert len(sigs) == 3


def test_supervision_requires_parallel():
    with pytest.raises(ValueError, match="supervision requires"):
        ExecutorSpec(supervision=SupervisionSpec())


def test_workspace_mode_is_validated():
    with pytest.raises(ValueError, match="workspace"):
        ExecutorSpec(workspace="bogus")


def test_parallel_must_quack_like_a_config():
    with pytest.raises(TypeError, match="parallel"):
        ExecutorSpec(parallel=4)


def test_supervision_spec_validation():
    with pytest.raises(ValueError, match="max_retries"):
        SupervisionSpec(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_seconds"):
        SupervisionSpec(backoff_seconds=-0.1)


def test_layer_names_order_outermost_last():
    spec = ExecutorSpec(
        guard=True,
        parallel=ParallelConfig(nthreads=2),
        supervision=SupervisionSpec(),
        workspace="shared",
        trace=True,
    )
    assert spec.layer_names() == ("guard", "supervision", "workspace",
                                  "trace")
    bare_parallel = ExecutorSpec(parallel=ParallelConfig(nthreads=2))
    assert bare_parallel.layer_names() == ("parallel",)


@pytest.mark.parametrize("spec", [
    ExecutorSpec(),
    ExecutorSpec(guard=True),
    ExecutorSpec(parallel=ParallelConfig(nthreads=4, chunk_rows=64)),
    ExecutorSpec(
        guard=True,
        parallel=ParallelConfig(nthreads=2, schedule="balanced-rows"),
        supervision=SupervisionSpec(deadline_seconds=0.5, max_retries=1,
                                    backoff_seconds=0.002,
                                    serial_fallback=False),
        workspace="thread-local",
        trace=True,
    ),
])
def test_round_trip_through_dict(spec):
    payload = spec.to_dict()
    assert payload["schema_version"] == ENGINE_SPEC_SCHEMA_VERSION
    assert ExecutorSpec.from_dict(payload) == spec


def test_from_dict_rejects_unknown_schema():
    payload = ExecutorSpec().to_dict()
    payload["schema_version"] = ENGINE_SPEC_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="unsupported executor-spec"):
        ExecutorSpec.from_dict(payload)


def test_spec_rides_the_plan_ir():
    """The spec is folded into OptimizationPlan.to_dict/from_dict."""
    from repro.core import OptimizationPlan

    spec = ExecutorSpec(guard=True,
                        parallel=ParallelConfig(nthreads=2),
                        supervision=SupervisionSpec(deadline_seconds=1.0))
    plan = OptimizationPlan(
        classes=frozenset(),
        optimizations=("unrolling",),
        kernel_name="csr+vec+unroll",
        decision_seconds=0.01,
        setup_seconds=0.02,
        classifier_kind="profile-guided",
        executor_spec=spec,
    )
    revived = OptimizationPlan.from_dict(plan.to_dict())
    assert revived.executor_spec == spec


def test_v1_plan_payload_upgrades_to_default_spec():
    from repro.core import OptimizationPlan

    payload = {
        "schema_version": 1,
        "classes": [],
        "optimizations": [],
        "kernel_name": "csr",
        "decision_seconds": 0.0,
        "setup_seconds": 0.0,
        "classifier_kind": "profile-guided",
    }
    plan = OptimizationPlan.from_dict(payload)
    assert plan.executor_spec == ExecutorSpec()
