"""Full layer-permutation matrix for the composable engine.

Every combination of {guard} x {nthreads} x {supervision} x {workspace
mode} must produce output bit-identical to the serial CSR reference,
honor the ``out=`` identity contract, round-trip its spec, and nest its
trace spans correctly (inner ``supervise`` spans are recorded before —
and contained within — the outer ``engine.apply`` span).
"""

import itertools

import numpy as np
import pytest

from repro.engine import (
    ExecutorSpec,
    SupervisionSpec,
    build_executor,
)
from repro.parallel import ParallelConfig
from repro.pipeline import Tracer

GUARDS = (False, True)
NTHREADS = (1, 2, 4)
SUPERVISED = (False, True)
WORKSPACES = ("shared", "thread-local")

PERMUTATIONS = list(itertools.product(GUARDS, NTHREADS, SUPERVISED,
                                      WORKSPACES))


def _spec(guard, nthreads, supervised, workspace):
    return ExecutorSpec(
        guard=guard,
        parallel=ParallelConfig(nthreads=nthreads),
        supervision=SupervisionSpec() if supervised else None,
        workspace=workspace,
        trace=True,
    )


@pytest.mark.parametrize(
    "guard,nthreads,supervised,workspace",
    PERMUTATIONS,
    ids=[
        f"guard={int(g)}-t{n}-sup={int(s)}-ws={w}"
        for g, n, s, w in PERMUTATIONS
    ],
)
def test_stack_bit_identical_to_serial_csr(small_random_csr, x300, guard,
                                           nthreads, supervised,
                                           workspace):
    csr = small_random_csr
    expected = csr.matvec(x300)

    spec = _spec(guard, nthreads, supervised, workspace)
    tracer = Tracer()
    op = build_executor(csr, spec, tracer=tracer)

    # bit-identity, not closeness: every stack computes the same
    # partial sums in the same order as the serial CSR loop
    y = op.apply(x300)
    np.testing.assert_array_equal(y, expected)

    # out= identity contract survives every layer
    out = np.empty(csr.nrows)
    r = op.apply(x300, out=out)
    assert r is out
    np.testing.assert_array_equal(out, expected)

    # the declarative spec is losslessly serializable
    assert ExecutorSpec.from_dict(spec.to_dict()) == spec
    assert spec.cache_signature() in spec.signature()


@pytest.mark.parametrize(
    "guard,nthreads,supervised,workspace",
    PERMUTATIONS,
    ids=[
        f"guard={int(g)}-t{n}-sup={int(s)}-ws={w}"
        for g, n, s, w in PERMUTATIONS
    ],
)
def test_stack_matmat_matches_columnwise_matvec(small_random_csr, rng,
                                                guard, nthreads,
                                                supervised, workspace):
    csr = small_random_csr
    X = rng.standard_normal((csr.ncols, 3))
    expected = np.column_stack([csr.matvec(X[:, j]) for j in range(3)])

    spec = _spec(guard, nthreads, supervised, workspace)
    op = build_executor(csr, spec)
    Y = op.apply_multi(X)
    np.testing.assert_array_equal(Y, expected)

    out = np.empty((csr.nrows, 3))
    R = op.apply_multi(X, out=out)
    assert R is out
    np.testing.assert_array_equal(out, expected)


@pytest.mark.parametrize("supervised", SUPERVISED,
                         ids=["unsupervised", "supervised"])
def test_trace_spans_nest_correctly(small_random_csr, x300, supervised):
    """Span nesting: the tracer appends spans at *exit*, so the inner
    ``supervise`` span (when present) must appear before the outer
    ``engine.apply`` span, and be contained within its wall time."""
    csr = small_random_csr
    spec = _spec(guard=True, nthreads=2, supervised=supervised,
                 workspace="shared")
    tracer = Tracer()
    op = build_executor(csr, spec, tracer=tracer)
    op.apply(x300)

    names = [s.name for s in tracer.spans]
    assert names[-1] == "engine.apply"
    (outer,) = tracer.find("engine.apply")
    assert outer.attributes["rows"] == csr.nrows
    assert "kernel[" in outer.attributes["stack"]

    inner_spans = tracer.find("supervise")
    if supervised:
        (inner,) = inner_spans
        assert names.index("supervise") < names.index("engine.apply")
        assert outer.wall_seconds >= inner.wall_seconds
        assert "supervised[t2" in outer.attributes["stack"]
    else:
        assert inner_spans == []

    # a second apply appends a fresh pair; prior spans are kept
    op.apply(x300)
    assert [s.name for s in tracer.spans].count("engine.apply") == 2


def test_permutation_smoke_guard_supervision_two_threads():
    """check.sh stage-7 smoke: a permutation matrix through the full
    guard + supervision + workspace + trace stack on 2 threads must
    reproduce the permutation exactly and emit zero warnings (the
    stage runs with warnings-as-errors)."""
    from repro.formats import CSRMatrix

    n = 512
    perm = np.random.default_rng(42).permutation(n)
    rowptr = np.arange(n + 1, dtype=np.int64)
    colind = perm.astype(np.int32)
    values = np.ones(n)
    csr = CSRMatrix(rowptr, colind, values, (n, n))

    x = np.random.default_rng(1).standard_normal(n)
    spec = ExecutorSpec(
        guard=True,
        parallel=ParallelConfig(nthreads=2),
        supervision=SupervisionSpec(),
        workspace="shared",
        trace=True,
    )
    tracer = Tracer()
    op = build_executor(csr, spec, tracer=tracer)
    out = np.empty(n)
    r = op.apply(x, out=out)
    assert r is out
    # a permutation matrix permutes x exactly — no rounding at all
    np.testing.assert_array_equal(out, x[perm])
    assert [s.name for s in tracer.spans] == ["supervise", "engine.apply"]
    assert ExecutorSpec.from_dict(spec.to_dict()) == spec
