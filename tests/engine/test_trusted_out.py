"""Single-boundary ``out=`` validation: trusted inward, strict at the rim.

The engine validates a caller-owned buffer exactly once, then passes a
trusted view to nested layers (guard fallback, parallel chunk slices,
supervision retries). These tests prove the trust short-circuit did NOT
weaken the boundary: every class of bad buffer is still rejected by
every composed stack.
"""

import numpy as np
import pytest

from repro.engine import ExecutorSpec, SupervisionSpec, build_executor
from repro.formats.base import _TrustedOut, check_out_buffer, trust_out_buffer
from repro.parallel import ParallelConfig

STACKS = {
    "guarded-serial": ExecutorSpec(guard=True),
    "parallel": ExecutorSpec(parallel=ParallelConfig(nthreads=2)),
    "full": ExecutorSpec(
        guard=True,
        parallel=ParallelConfig(nthreads=2),
        supervision=SupervisionSpec(),
        workspace="shared",
    ),
}


@pytest.fixture(params=sorted(STACKS), ids=sorted(STACKS))
def stack(request, small_random_csr):
    return build_executor(small_random_csr, STACKS[request.param])


def test_wrong_shape_rejected(stack, small_random_csr, x300):
    with pytest.raises(ValueError, match="shape"):
        stack.apply(x300, out=np.empty(small_random_csr.nrows + 1))


def test_wrong_dtype_rejected(stack, small_random_csr, x300):
    bad = np.empty(small_random_csr.nrows, dtype=np.float32)
    with pytest.raises(TypeError, match="float64"):
        stack.apply(x300, out=bad)


def test_non_contiguous_rejected(stack, small_random_csr, x300):
    bad = np.empty(2 * small_random_csr.nrows)[::2]
    with pytest.raises(ValueError, match="contiguous"):
        stack.apply(x300, out=bad)


def test_aliasing_operand_rejected(stack, x300):
    # out aliasing the operand would corrupt partial sums mid-apply
    with pytest.raises(ValueError, match="share memory"):
        stack.apply(x300, out=x300)


def test_read_only_rejected(stack, small_random_csr, x300):
    bad = np.empty(small_random_csr.nrows)
    bad.flags.writeable = False
    with pytest.raises(ValueError, match="writeable"):
        stack.apply(x300, out=bad)


def test_good_buffer_validated_once_then_trusted():
    """check_out_buffer short-circuits on a trusted view, and slicing a
    trusted view (how the parallel plane hands row chunks to workers)
    preserves the trust marker — so inner layers skip re-validation."""
    out = np.empty(8)
    checked = check_out_buffer(out, (8,))
    assert checked is out

    trusted = trust_out_buffer(checked)
    assert isinstance(trusted, _TrustedOut)
    assert trusted.base is out
    # short-circuit: returned as-is, no strictness re-applied
    assert check_out_buffer(trusted, (8,)) is trusted
    # chunk slices stay trusted views over the same memory
    chunk = trusted[2:5]
    assert isinstance(chunk, _TrustedOut)
    assert np.shares_memory(chunk, out)


def test_untrusted_buffers_never_short_circuit():
    """A plain ndarray is always fully validated — trust is only ever
    conferred by the engine after a successful check."""
    out = np.empty(8)
    assert not isinstance(out, _TrustedOut)
    with pytest.raises(ValueError, match="shape"):
        check_out_buffer(out, (9,))
