"""Tests for the shared experiment infrastructure."""

from repro.experiments.common import trained_feature_classifier
from repro.machine import KNC


def test_classifier_memoized_per_platform_and_corpus():
    a = trained_feature_classifier(KNC, train_count=8, seed=123)
    b = trained_feature_classifier(KNC, train_count=8, seed=123)
    assert a is b
    c = trained_feature_classifier(KNC, train_count=9, seed=123)
    assert c is not a


def test_classifier_kwargs_bypass_cache():
    a = trained_feature_classifier(KNC, train_count=8, seed=124)
    b = trained_feature_classifier(
        KNC, train_count=8, seed=124, max_depth=3
    )
    assert b is not a
    assert b.max_depth == 3


def test_trained_classifier_is_usable():
    clf = trained_feature_classifier(KNC, train_count=8, seed=125)
    from repro.matrices import named_matrix

    classes = clf.classify(named_matrix("consph", scale=0.1))
    assert isinstance(classes, frozenset)
