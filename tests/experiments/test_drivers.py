"""Smoke + shape tests for every experiment driver, at tiny scale.

The benchmarks run the drivers at full scale; here we verify the
structure of each artifact (headers, rows, notes) and the headline
*orderings* on reduced inputs.
"""

import pytest

from repro import experiments as exp
from repro.experiments.common import (
    ExperimentTable,
    geometric_mean,
    render_table,
    trained_feature_classifier,
)
from repro.machine import KNC, KNL

SCALE = 0.12
FEW = ("consph", "poisson3Db", "ASIC_680k", "webbase-1M")


def test_render_table_alignment():
    text = render_table(("a", "bb"), [(1, 2.5), ("xyz", 3.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "-+-" in lines[1]


def test_experiment_table_api():
    t = ExperimentTable("x", "demo", ("c1", "c2"))
    t.add("v", 1.0)
    t.note("hello")
    with pytest.raises(ValueError):
        t.add("only-one")
    text = t.to_text()
    assert "demo" in text and "note: hello" in text
    assert t.column("c1") == ["v"]


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_fig1_driver():
    table = exp.fig1.run(scale=SCALE, names=FEW)
    assert len(table.rows) == len(FEW)
    assert table.headers[0] == "matrix"
    assert len(table.headers) == 6  # matrix + 5 optimizations
    # speedups are positive ratios
    for row in table.rows:
        assert all(v > 0 for v in row[1:])


def test_fig4_driver():
    table = exp.fig4.run(scale=SCALE, names=FEW)
    assert "classes" in table.headers
    for row in table.rows:
        # P_peak must dominate P_MB in every row
        assert row[table.headers.index("P_peak")] > row[
            table.headers.index("P_MB")
        ]


@pytest.fixture(scope="module")
def tiny_classifier():
    return trained_feature_classifier(KNL, train_count=12, seed=99)


def test_fig7_driver(monkeypatch, tiny_classifier):
    monkeypatch.setattr(
        "repro.experiments.fig7.trained_feature_classifier",
        lambda machine, train_count: tiny_classifier,
    )
    table = exp.fig7.run("knl", scale=SCALE, names=FEW, train_count=12)
    assert "MKL I-E" in table.headers
    assert len(table.rows) == len(FEW)
    assert any("average speedup" in n for n in table.notes)


def test_fig7_knc_has_no_inspector(monkeypatch):
    clf = trained_feature_classifier(KNC, train_count=12, seed=98)
    monkeypatch.setattr(
        "repro.experiments.fig7.trained_feature_classifier",
        lambda machine, train_count: clf,
    )
    table = exp.fig7.run("knc", scale=SCALE, names=FEW[:2], train_count=12)
    assert "MKL I-E" not in table.headers


def test_table2_driver():
    table = exp.table2.run()
    assert len(table.rows) == 14  # the full Table II inventory
    scaling = exp.table2.extraction_scaling(
        sizes=(5_000, 20_000), repeats=1
    )
    assert len(scaling.rows) == 2


def test_table3_driver():
    table = exp.table3.run()
    assert len(table.rows) == 3
    main = table.column("STREAM main (GB/s)")
    assert main == pytest.approx([128.0, 395.0, 60.0], rel=0.02)


def test_table4_driver():
    table = exp.table4.run(train_count=12, seed=97)
    assert len(table.rows) == 2
    for row in table.rows:
        exact, partial = row[2], row[3]
        assert 0.0 <= exact <= partial <= 100.0


def test_table5_driver(monkeypatch, tiny_classifier):
    monkeypatch.setattr(
        "repro.experiments.table5.trained_feature_classifier",
        lambda machine, train_count: tiny_classifier,
    )
    table = exp.table5.run(scale=SCALE, names=FEW[:3], train_count=12)
    names = table.column("optimizer")
    assert "feature-guided" in names and "trivial-combined" in names


def test_fig5_gridsearch_driver():
    table = exp.fig5.run(corpus_count=6, t_ml_grid=(1.1, 1.4),
                         t_imb_grid=(1.1, 1.4))
    assert len(table.rows) == 4
    gains = table.column("mean gain")
    assert gains == sorted(gains, reverse=True)


def test_ablation_drivers_run():
    t1 = exp.ablations.imb_strategy(scale=SCALE)
    assert len(t1.rows) == 5
    t2 = exp.ablations.delta_width(scale=SCALE)
    assert any("8-bit" in str(r[-2]) or "16-bit" in str(r[-2])
               for r in t2.rows)
    t3 = exp.ablations.scheduling_policies(scale=SCALE)
    assert len(t3.headers) == 5
    t4 = exp.ablations.tree_ablation(corpus_count=10)
    assert len(t4.rows) == 9  # 3 feature sets x 3 depths


def test_extension_ablation_drivers_run():
    t5 = exp.ablations.partitioned_ml(scale=SCALE)
    assert "global ML gain" in t5.headers
    assert len(t5.rows) == 4
    t6 = exp.ablations.bcsr_vs_delta(scale=SCALE)
    fills = t6.column("fill")
    assert min(fills) >= 1.0
    t7 = exp.ablations.format_landscape(scale=SCALE)
    assert "best" in t7.headers
    t8 = exp.ablations.architecture_sensitivity(scale=SCALE)
    assert len(t8.rows) == 4


def test_report_module_lists_every_artifact():
    from repro.experiments.report import ALL_DRIVERS

    titles = [t for t, _ in ALL_DRIVERS]
    for needle in ("Table III", "Table II", "Fig. 1", "Fig. 4", "Fig. 5",
                   "Table IV", "Fig. 7a", "Fig. 7b", "Fig. 7c", "Table V",
                   "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"):
        assert any(needle in t for t in titles), needle


def test_report_markdown_rendering():
    from repro.experiments.report import _table_to_markdown

    t = ExperimentTable("x", "demo", ("a", "b"))
    t.add("v", 1.25)
    t.note("a note")
    md = _table_to_markdown(t)
    assert "| a | b |" in md
    assert "| v | 1.25 |" in md
    assert "*a note*" in md
