"""Regression tests for degenerate partitions.

Before the shared-memory parallel plane landed, two families of inputs
produced broken partitions that only the *real* executor noticed:

* ``nthreads > nrows`` — ``balanced_nnz`` returned a partition that
  claimed 16 threads over 5 rows, so 11 "threads" owned zero rows and
  per-thread aggregates divided by the wrong count;
* all-empty / zero-nnz matrices — the nnz-proportional split placed
  every cumulative boundary at 0, producing non-monotonic boundaries
  and thread ids that skipped numbers.

Every schedule policy must now clamp to the useful parallelism: thread
ids are contiguous from 0, every thread owns at least one row (when
rows exist at all), and boundaries — when present — are strictly
increasing and cover ``[0, nrows]``.
"""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.sched import SCHEDULE_POLICIES, balanced_nnz, make_partition


def _zero_nnz(nrows: int) -> CSRMatrix:
    return CSRMatrix(
        np.zeros(nrows + 1, dtype=np.int64),
        np.zeros(0, dtype=np.int32),
        np.zeros(0),
        (nrows, max(nrows, 1)),
    )


def _single_row() -> CSRMatrix:
    return CSRMatrix(
        np.array([0, 3], dtype=np.int64),
        np.array([0, 1, 2], dtype=np.int32),
        np.array([1.0, 2.0, 3.0]),
        (1, 3),
    )


def _leading_empty() -> CSRMatrix:
    """First 8 rows empty, then 4 populated rows."""
    rowptr = np.concatenate(
        (np.zeros(9, dtype=np.int64), np.array([2, 4, 6, 8], dtype=np.int64))
    )
    return CSRMatrix(
        rowptr,
        np.tile(np.array([0, 1], dtype=np.int32), 4),
        np.arange(1.0, 9.0),
        (12, 4),
    )


def _trailing_empty() -> CSRMatrix:
    """4 populated rows, then 8 empty rows."""
    rowptr = np.concatenate(
        (np.array([0, 2, 4, 6, 8], dtype=np.int64),
         np.full(8, 8, dtype=np.int64))
    )
    return CSRMatrix(
        rowptr,
        np.tile(np.array([0, 1], dtype=np.int32), 4),
        np.arange(1.0, 9.0),
        (12, 4),
    )


DEGENERATE = {
    "zero-nnz": _zero_nnz(10),
    "single-row": _single_row(),
    "leading-empty": _leading_empty(),
    "trailing-empty": _trailing_empty(),
}


def _check_partition(p, csr):
    """The invariants every policy must uphold on any input."""
    p.validate_covers(csr.nrows)
    tor = p.thread_of_row
    if tor.size:
        used = np.unique(tor)
        # ids contiguous from 0 and within the declared count
        assert used[0] == 0
        assert used[-1] == used.size - 1
        assert p.nthreads >= used.size
        # no declared thread without rows: the executor sizes its
        # per-thread chunk lists from nthreads
        counts = np.bincount(tor, minlength=p.nthreads)
        assert counts.min() >= 1, f"empty thread in {counts}"
    if p.boundaries is not None:
        b = np.asarray(p.boundaries)
        assert b[0] == 0 and b[-1] == csr.nrows
        assert np.all(np.diff(b) > 0) or csr.nrows == 0


@pytest.mark.parametrize("schedule", sorted(SCHEDULE_POLICIES))
@pytest.mark.parametrize("name", sorted(DEGENERATE))
@pytest.mark.parametrize("nthreads", [1, 2, 5, 16, 64])
def test_degenerate_inputs_every_policy(schedule, name, nthreads):
    csr = DEGENERATE[name]
    p = make_partition(csr, nthreads, schedule)
    _check_partition(p, csr)


@pytest.mark.parametrize("schedule", sorted(SCHEDULE_POLICIES))
def test_oversubscribed_clamps(schedule, banded_csr):
    """nthreads > nrows must clamp, not fabricate empty threads."""
    sub = banded_csr.submatrix_rows(0, 7)
    p = make_partition(sub, 1000, schedule)
    _check_partition(p, sub)
    assert p.nthreads <= 7


def test_zero_nnz_balanced_boundaries():
    """The original bug: cumulative-nnz targets all hit zero."""
    csr = _zero_nnz(50)
    p = balanced_nnz(csr, 8)
    # all rows collapse onto thread 0 — there is no nnz to balance
    assert p.nthreads == 1
    assert np.all(p.thread_of_row == 0)
    assert p.boundaries is not None
    assert list(p.boundaries) == [0, 50]


def test_contiguous_runs_cover_in_order(skewed_csr):
    for schedule in SCHEDULE_POLICIES:
        p = make_partition(skewed_csr, 6, schedule)
        runs = p.contiguous_runs()
        assert runs[0][0] == 0
        assert runs[-1][1] == skewed_csr.nrows
        for (lo, hi, tid), (lo2, _hi2, tid2) in zip(runs, runs[1:]):
            assert hi == lo2
            assert tid != tid2
