"""Unit tests for partitioning policies."""

import numpy as np
import pytest

from repro.sched import (
    SCHEDULE_POLICIES,
    auto_chunked,
    balanced_nnz,
    dynamic_chunks,
    make_partition,
    static_rows,
)


def test_static_rows_contiguous_equal_blocks():
    p = static_rows(100, 4)
    counts = np.bincount(p.thread_of_row, minlength=4)
    assert counts.tolist() == [25, 25, 25, 25]
    assert np.all(np.diff(p.thread_of_row) >= 0)  # contiguous


def test_static_rows_uneven_division():
    p = static_rows(10, 3)
    assert p.nrows == 10
    assert np.bincount(p.thread_of_row, minlength=3).sum() == 10


def test_balanced_nnz_balances_nonzeros(skewed_csr):
    T = 8
    p = balanced_nnz(skewed_csr, T)
    per_thread = p.thread_sums(skewed_csr.row_nnz().astype(float))
    fair = skewed_csr.nnz / T
    # every thread within 2x of fair share unless a single row exceeds it
    max_row = skewed_csr.row_nnz().max()
    assert per_thread.max() <= max(2 * fair, max_row + fair)


def test_balanced_nnz_beats_static_rows_on_skew(skewed_csr):
    nnz = skewed_csr.row_nnz().astype(float)
    T = 8
    static = static_rows(skewed_csr.nrows, T).thread_sums(nnz)
    balanced = balanced_nnz(skewed_csr, T).thread_sums(nnz)
    assert balanced.max() <= static.max()


def test_balanced_nnz_covers_all_rows(banded_csr):
    p = balanced_nnz(banded_csr, 7)
    assert p.nrows == banded_csr.nrows
    p.validate_covers(banded_csr.nrows)


def test_auto_chunked_interleaves(banded_csr):
    p = auto_chunked(banded_csr, 4, chunk_rows=10)
    # row 0 and row 40 belong to the same thread (round robin of 4)
    assert p.thread_of_row[0] == p.thread_of_row[40]
    assert p.thread_of_row[0] != p.thread_of_row[10]
    assert p.kind == "auto"
    assert p.chunk_rows == 10


def test_dynamic_kind_flag(banded_csr):
    p = dynamic_chunks(banded_csr, 4)
    assert p.is_dynamic


def test_n_chunks(banded_csr):
    p = auto_chunked(banded_csr, 4, chunk_rows=100)
    assert p.n_chunks() == int(np.ceil(banded_csr.nrows / 100))


def test_thread_sums_correctness():
    from repro.sched import Partition

    p = Partition(2, np.array([0, 1, 0, 1], dtype=np.int32))
    sums = p.thread_sums(np.array([1.0, 10.0, 2.0, 20.0]))
    assert sums.tolist() == [3.0, 30.0]


def test_thread_sums_shape_validation():
    from repro.sched import Partition

    p = Partition(2, np.array([0, 1], dtype=np.int32))
    with pytest.raises(ValueError):
        p.thread_sums(np.zeros(3))


def test_rows_of_thread():
    from repro.sched import Partition

    p = Partition(2, np.array([0, 1, 0], dtype=np.int32))
    assert p.rows_of_thread(0).tolist() == [0, 2]
    with pytest.raises(ValueError):
        p.rows_of_thread(5)


def test_partition_validation():
    from repro.sched import Partition

    with pytest.raises(ValueError):
        Partition(0, np.zeros(3, dtype=np.int32))
    with pytest.raises(ValueError):
        Partition(2, np.array([0, 3], dtype=np.int32))


def test_make_partition_by_name(banded_csr):
    for name in SCHEDULE_POLICIES:
        p = make_partition(banded_csr, 4, name)
        assert p.nthreads == 4
    with pytest.raises(ValueError, match="unknown schedule"):
        make_partition(banded_csr, 4, "guided")


def test_more_threads_than_rows():
    from repro.matrices.generators import laplacian_1d

    tiny = laplacian_1d(5)
    p = balanced_nnz(tiny, 16)
    # Degenerate request clamps to the useful parallelism: no thread
    # may own zero rows, and ids stay contiguous from 0.
    assert p.nthreads <= 5
    counts = np.bincount(p.thread_of_row, minlength=p.nthreads)
    assert counts.min() >= 1
    p.validate_covers(5)
