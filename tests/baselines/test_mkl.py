"""Unit tests for the MKL-CSR analogue."""

import numpy as np

from repro.baselines import mkl_csr_kernel, run_mkl_csr
from repro.kernels import baseline_kernel
from repro.machine import ExecutionEngine, KNL


def test_kernel_configuration():
    k = mkl_csr_kernel()
    assert k.name == "mkl-csr"
    assert k.config.vectorize
    assert k.config.schedule == "static-rows"
    assert not k.config.prefetch and not k.config.compress


def test_numerically_exact(small_random_csr, x300):
    k = mkl_csr_kernel()
    np.testing.assert_allclose(
        k.run_numeric(small_random_csr, x300),
        small_random_csr.matvec(x300),
        rtol=1e-12,
    )


def test_beats_scalar_baseline_on_regular(banded_csr):
    """Vectorized vendor kernel should outrun the scalar baseline on
    regular matrices (otherwise our comparisons are strawmen)."""
    engine = ExecutionEngine(KNL)
    base = baseline_kernel()
    r_mkl = run_mkl_csr(banded_csr, KNL)
    r_base = engine.run(base, base.preprocess(banded_csr))
    assert r_mkl.gflops >= r_base.gflops * 0.95


def test_suffers_on_skewed(skewed_csr):
    """Row-blocked static scheduling collapses on skewed matrices —
    the property the paper's IMB speedups over MKL come from."""
    r = run_mkl_csr(skewed_csr, KNL, nthreads=32)
    assert r.imbalance > 2.0
