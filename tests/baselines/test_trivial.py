"""Unit tests for the trivial exhaustive optimizers."""

import pytest

from repro.baselines import TrivialOptimizer
from repro.machine import KNL


def test_candidate_counts():
    assert len(TrivialOptimizer(KNL, "single").candidates()) == 5
    assert len(TrivialOptimizer(KNL, "combined").candidates()) == 15


def test_mode_validation():
    with pytest.raises(ValueError):
        TrivialOptimizer(KNL, mode="triples")


def test_combined_at_least_as_good_but_more_expensive(skewed_csr):
    single = TrivialOptimizer(KNL, "single", nthreads=32).optimize(skewed_csr)
    combined = TrivialOptimizer(KNL, "combined", nthreads=32).optimize(
        skewed_csr
    )
    assert combined.gflops >= single.gflops * 0.999
    assert combined.sweep_seconds > single.sweep_seconds


def test_picks_the_actual_argmax(skewed_csr):
    """The sweep must return exactly the best-performing candidate."""
    from repro.machine import ExecutionEngine

    opt = TrivialOptimizer(KNL, "single", nthreads=32)
    res = opt.optimize(skewed_csr)
    engine = ExecutionEngine(KNL, nthreads=32)
    best = max(
        (engine.run(k, k.preprocess(skewed_csr)).gflops, name)
        for name, k in opt.candidates().items()
    )
    assert res.chosen == best[1]
    assert res.gflops == pytest.approx(best[0])


def test_sweep_cost_includes_all_benchmarks(banded_csr):
    res = TrivialOptimizer(KNL, "single").optimize(banded_csr)
    # 5 candidates x 64 iterations: at least 100 kernel executions' time
    assert res.sweep_seconds > 100 * res.result.seconds * 0.5
    assert res.n_candidates == 5


def test_empty_matrix_rejected():
    import numpy as np

    from repro.formats import CSRMatrix

    empty = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 1))
    with pytest.raises(ValueError):
        TrivialOptimizer(KNL).optimize(empty)
