"""Unit tests for the Inspector-Executor analogue."""

import pytest

from repro.baselines import InspectorExecutor, run_mkl_csr
from repro.machine import KNC, KNL


def test_not_available_on_knc():
    with pytest.raises(ValueError, match="KNC"):
        InspectorExecutor(KNC)


def test_improves_over_mkl_on_skew(skewed_csr):
    ie = InspectorExecutor(KNL, nthreads=32)
    res = ie.optimize(skewed_csr)
    r_mkl = run_mkl_csr(skewed_csr, KNL, nthreads=32)
    assert res.gflops > r_mkl.gflops


def test_inspection_cost_positive(banded_csr):
    ie = InspectorExecutor(KNL)
    res = ie.optimize(banded_csr)
    assert res.inspection_seconds > 0
    # inspection includes trial runs: must exceed a handful of SpMVs
    assert res.inspection_seconds > 4 * res.result.seconds


def test_chooses_vectorized_candidate(banded_csr):
    ie = InspectorExecutor(KNL)
    res = ie.optimize(banded_csr)
    assert res.chosen.vectorize


def test_no_prefetch_in_candidate_space(scattered_csr):
    """The I-E analogue never applies software prefetching — the gap
    the paper's optimizer exploits on latency-bound matrices."""
    ie = InspectorExecutor(KNL)
    res = ie.optimize(scattered_csr)
    assert not res.chosen.prefetch


def test_empty_matrix_rejected():
    import numpy as np

    from repro.formats import CSRMatrix

    empty = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 1))
    with pytest.raises(ValueError):
        InspectorExecutor(KNL).optimize(empty)


def test_result_kernel_name(banded_csr):
    res = InspectorExecutor(KNL).optimize(banded_csr)
    assert res.result.kernel_name == "mkl-inspector-executor"
