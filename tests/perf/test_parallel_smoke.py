"""Perf smoke (``-m perf_smoke``): measured parallel imbalance sanity.

Executes the real thread pool at ``nthreads=2`` on a skewed matrix and
asserts the *measured* per-thread CPU-time imbalance orders the
schedule policies the way the paper's P_IMB analysis predicts:
nnz-balanced partitioning must not be meaningfully worse than naive
row splitting when the nnz distribution is skewed. CPU time (not wall
time) is compared so the gate stays robust on oversubscribed CI hosts;
the median over repeats absorbs scheduler noise.
"""

import statistics

import numpy as np
import pytest

from repro.kernels import baseline_kernel
from repro.parallel import ParallelKernel

#: static-rows may beat balanced-nnz only within this noise margin.
MARGIN = 1.10
REPEATS = 5
NTHREADS = 2


def _skewed():
    """First half of the rows carry 8x the nonzeros of the second half
    — a worst case for naive row splitting, the design case for nnz
    balancing. Both row populations keep enough nonzeros per row that
    the vectorized per-nnz work (not fixed per-row overhead) dominates
    the measured CPU time, so the policy ordering is observable."""
    from repro.formats import COOMatrix, CSRMatrix

    rng = np.random.default_rng(42)
    n = 2000
    hot = n // 2
    rows = [np.repeat(np.arange(hot), 64)]
    cols = [rng.integers(0, n, size=hot * 64)]
    rows.append(np.repeat(np.arange(hot, n), 8))
    cols.append(rng.integers(0, n, size=(n - hot) * 8))
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


def _median_imbalance(kernel, csr, x, schedule):
    pk = ParallelKernel(kernel, nthreads=NTHREADS, schedule=schedule)
    data = pk.preprocess(csr)
    pk.apply(data, x)  # warm up the pool and workspace
    samples = []
    for _ in range(REPEATS):
        pk.apply(data, x)
        samples.append(pk.last_measurement.imbalance)
    return statistics.median(samples)


@pytest.mark.perf_smoke
def test_balanced_nnz_measured_imbalance_beats_static_rows():
    csr = _skewed()
    x = np.linspace(-1.0, 1.0, csr.ncols)
    kernel = baseline_kernel()
    static = _median_imbalance(kernel, csr, x, "static-rows")
    balanced = _median_imbalance(kernel, csr, x, "balanced-nnz")
    # On this skew, naive row splitting puts ~3x the work on thread 0;
    # nnz balancing should measure near 1.0.
    assert balanced <= static * MARGIN, (
        f"measured CPU imbalance: balanced-nnz {balanced:.3f} vs "
        f"static-rows {static:.3f}"
    )
    assert static > 1.2, (
        f"skewed matrix should measurably imbalance static-rows, "
        f"got {static:.3f}"
    )


@pytest.mark.perf_smoke
def test_parallel_matvec_correct_under_smoke_load():
    csr = _skewed()
    x = np.linspace(-1.0, 1.0, csr.ncols)
    serial = csr.matvec(x)
    pk = ParallelKernel(baseline_kernel(), nthreads=NTHREADS)
    data = pk.preprocess(csr)
    for _ in range(3):
        np.testing.assert_array_equal(pk.apply(data, x), serial)
