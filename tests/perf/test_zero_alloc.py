"""Zero-allocation execution plane: steady-state allocation tracking
and ``out=`` contract tests.

Three layers of guarantees:

* every format's ``matvec``/``rmatvec``/``matmat`` accepts a
  caller-owned ``out=`` buffer, returns it, produces bit-identical
  results to the allocating path, and rejects aliasing/shape/dtype
  violations;
* every kernel variant's ``apply``/``apply_multi`` honors the same
  contract;
* with a warm :class:`repro.memory.Workspace`, a steady-state apply,
  a repeat ``PipelineRunner.run_optimized`` execution, and a CG
  iteration allocate no new arrays (verified with ``tracemalloc``:
  zero retained array-sized blocks and a transient peak far below one
  iteration vector).
"""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV
from repro.experiments.bench_batched import measure_steady_allocs
from repro.formats import CSRMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.decomposed import DecomposedCSR
from repro.formats.delta import DeltaCSR
from repro.formats.sellcs import SellCSigmaMatrix
from repro.kernels import baseline_kernel, merged_pool_kernel
from repro.kernels.bcsr import BCSRSpMV
from repro.kernels.sellcs import SellCSigmaSpMV
from repro.machine import KNC
from repro.matrices.generators import banded, random_uniform
from repro.memory import Workspace
from repro.pipeline import PipelineRunner
from repro.solvers import cg

N = 400
RNG = np.random.default_rng(77)


def _csr() -> CSRMatrix:
    return random_uniform(N, nnz_per_row=9.0, seed=11)


def _formats():
    csr = _csr()
    coo = COOMatrix(
        csr.row_ids_per_nnz(), csr.colind, csr.values, csr.shape
    )
    return [
        ("csr", csr),
        ("delta", DeltaCSR.from_csr(csr)),
        ("sellcs", SellCSigmaMatrix.from_csr(csr, chunk=4)),
        ("decomposed", DecomposedCSR.from_csr(csr, threshold=12)),
        ("bcsr", BCSRMatrix.from_csr(csr, block=2)),
        ("coo", coo),
    ]


def _kernels():
    return [
        ("csr", baseline_kernel()),
        ("csr+delta", merged_pool_kernel(("compression",))),
        ("csr+split", merged_pool_kernel(("decomposition",))),
        ("sell-4", SellCSigmaSpMV(chunk=4)),
        ("bcsr2x2", BCSRSpMV(block=2)),
    ]


# -- out= contract: formats ---------------------------------------------


@pytest.mark.parametrize("name,mat", _formats())
def test_format_matvec_out_bit_identical(name, mat):
    x = RNG.standard_normal(mat.ncols)
    ref = mat.matvec(x)
    out = np.full(mat.nrows, np.nan)
    got = mat.matvec(x, out=out)
    assert got is out
    assert np.array_equal(ref, got)
    # workspace path must agree too, warm and cold
    ws = Workspace()
    for _ in range(2):
        got_ws = mat.matvec(x, out=out, workspace=ws)
        assert np.array_equal(ref, got_ws)


@pytest.mark.parametrize("name,mat", _formats())
def test_format_matmat_out_bit_identical(name, mat):
    X = RNG.standard_normal((mat.ncols, 3))
    ref = mat.matmat(X)
    out = np.full((mat.nrows, 3), np.nan)
    got = mat.matmat(X, out=out)
    assert got is out
    assert np.array_equal(ref, got)
    ws = Workspace()
    for _ in range(2):
        assert np.array_equal(ref, mat.matmat(X, out=out, workspace=ws))


def test_csr_rmatvec_and_compensated_out_bit_identical():
    csr = _csr()
    x = RNG.standard_normal(csr.nrows)
    ref = csr.rmatvec(x)
    out = np.full(csr.ncols, np.nan)
    assert np.array_equal(ref, csr.rmatvec(x, out=out))
    xc = RNG.standard_normal(csr.ncols)
    refc = csr.matvec_compensated(xc)
    outc = np.full(csr.nrows, np.nan)
    assert np.array_equal(refc, csr.matvec_compensated(xc, out=outc))


@pytest.mark.parametrize("name,mat", _formats())
def test_format_out_rejects_alias_shape_dtype(name, mat):
    nsquare = mat.nrows == mat.ncols
    x = RNG.standard_normal(mat.ncols)
    if nsquare:
        with pytest.raises(ValueError, match="alias|share"):
            mat.matvec(x, out=x)
    with pytest.raises(ValueError, match="shape"):
        mat.matvec(x, out=np.empty(mat.nrows + 1))
    with pytest.raises(TypeError, match="dtype|float64"):
        mat.matvec(x, out=np.empty(mat.nrows, dtype=np.float32))
    X = RNG.standard_normal((mat.ncols, 2))
    with pytest.raises(ValueError, match="shape"):
        mat.matmat(X, out=np.empty((mat.nrows, 3)))
    with pytest.raises(TypeError, match="dtype|float64"):
        mat.matmat(X, out=np.empty((mat.nrows, 2), dtype=np.float32))


# -- out= contract: kernels ---------------------------------------------


@pytest.mark.parametrize("name,kernel", _kernels())
def test_kernel_apply_out_bit_identical(name, kernel):
    csr = _csr()
    data = kernel.preprocess(csr)
    x = RNG.standard_normal(csr.ncols)
    ref = kernel.apply(data, x)
    out = np.full(csr.nrows, np.nan)
    ws = Workspace()
    got = kernel.apply(data, x, out=out, workspace=ws)
    assert got is out
    assert np.array_equal(ref, got)
    # warm arena, same answer
    assert np.array_equal(ref, kernel.apply(data, x, out=out,
                                            workspace=ws))


@pytest.mark.parametrize("name,kernel", _kernels())
def test_kernel_apply_multi_out_bit_identical(name, kernel):
    csr = _csr()
    data = kernel.preprocess(csr)
    X = RNG.standard_normal((csr.ncols, 3))
    ref = kernel.apply_multi(data, X)
    out = np.full((csr.nrows, 3), np.nan)
    ws = Workspace()
    got = kernel.apply_multi(data, X, out=out, workspace=ws)
    assert got is out
    assert np.array_equal(ref, got)
    assert np.array_equal(ref, kernel.apply_multi(data, X, out=out,
                                                  workspace=ws))


@pytest.mark.parametrize("name,kernel", _kernels())
def test_kernel_out_rejects_shape_mismatch(name, kernel):
    csr = _csr()
    data = kernel.preprocess(csr)
    x = RNG.standard_normal(csr.ncols)
    with pytest.raises(ValueError, match="shape"):
        kernel.apply(data, x, out=np.empty(csr.nrows + 2))
    X = RNG.standard_normal((csr.ncols, 2))
    with pytest.raises(ValueError, match="shape"):
        kernel.apply_multi(data, X, out=np.empty((csr.nrows, 5)))


# -- steady-state allocation tracking -----------------------------------

#: Transient-peak budget for "zero new array allocations": far below
#: one iteration vector (N float64s), generous to tracemalloc's own
#: bookkeeping and interpreter noise.
PEAK_BUDGET = 2048


@pytest.mark.parametrize("name,kernel", _kernels())
def test_kernel_steady_state_allocates_nothing(name, kernel):
    csr = banded(2000, nnz_per_row=8, bandwidth=24, seed=3)
    data = kernel.preprocess(csr)
    x = RNG.standard_normal(csr.ncols)
    y = np.empty(csr.nrows)
    ws = Workspace()
    for _ in range(2):  # warm the arena and any lazy plans
        kernel.apply(data, x, out=y, workspace=ws)
    ws.reset_stats()
    stats = measure_steady_allocs(
        lambda: kernel.apply(data, x, out=y, workspace=ws)
    )
    assert stats["count"] == 0, f"{name}: retained allocations"
    assert stats["peak_bytes"] < PEAK_BUDGET, (
        f"{name}: transient peak {stats['peak_bytes']}B"
    )
    assert ws.hit_rate == 1.0


def _spd_csr(n: int, seed: int) -> CSRMatrix:
    """Sparse SPD test matrix: A + A^T + 40 I of a banded sample."""
    base = banded(n, nnz_per_row=8, bandwidth=24, seed=seed)
    A = np.zeros((n, n))
    for i in range(n):
        s, e = base.rowptr[i], base.rowptr[i + 1]
        A[i, base.colind[s:e]] += base.values[s:e]
    A = A + A.T
    A[np.arange(n), np.arange(n)] += 40.0
    rowptr = [0]
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        nzi = np.flatnonzero(A[i])
        cols.extend(nzi.tolist())
        vals.extend(A[i, nzi].tolist())
        rowptr.append(len(cols))
    return CSRMatrix(
        np.array(rowptr, dtype=np.int64),
        np.array(cols, dtype=np.int32),
        np.array(vals),
        (n, n),
    )


def test_cg_steady_iteration_allocates_nothing():
    import tracemalloc

    n = 2000
    spd = _spd_csr(n, seed=4)
    b = RNG.standard_normal(n)
    measured = {}

    def callback(k, rnorm):
        # Bracket iterations 3..4: everything is warm by then.
        if k == 3:
            tracemalloc.start()
            measured["snap"] = tracemalloc.take_snapshot()
            measured["cur"] = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        elif k == 4 and "done" not in measured:
            _, peak = tracemalloc.get_traced_memory()
            after = tracemalloc.take_snapshot()
            tracemalloc.stop()
            measured["done"] = True
            measured["peak"] = max(peak - measured["cur"], 0)
            measured["count"] = sum(
                1
                for st in after.compare_to(measured["snap"], "traceback")
                if st.size_diff >= 4096
            )

    cg(spd, b, tol=1e-12, maxiter=50, callback=callback)
    assert measured.get("done"), "CG converged before iteration 4"
    assert measured["count"] == 0, "CG iteration retained allocations"
    # One CG iteration must not materialize any n-sized vector: allow
    # tracemalloc bookkeeping noise only.
    assert measured["peak"] < n * 8 // 2, (
        f"CG iteration transient peak {measured['peak']}B"
    )


def test_repeat_runner_execution_allocates_no_arrays():
    csr = banded(1500, nnz_per_row=6, bandwidth=16, seed=9)
    runner = PipelineRunner(machine=KNC, nthreads=8)
    opt = AdaptiveSpMV(KNC, classifier="profile")
    # Warm: plan cache, converted data, workspace arena.
    operator, _ = runner.run_optimized(opt, csr)
    x = RNG.standard_normal(csr.ncols)
    y = np.empty(csr.nrows)
    operator.matvec(x, out=y)
    operator.matvec(x, out=y)
    runner.workspace.reset_stats()
    stats = measure_steady_allocs(lambda: operator.matvec(x, out=y))
    assert stats["count"] == 0
    assert stats["peak_bytes"] < PEAK_BUDGET
    # The cached plan serves repeats at a perfect arena hit rate.
    assert runner.workspace.hit_rate == 1.0


def test_workspace_counters_exported_to_tracer():
    csr = banded(600, nnz_per_row=6, bandwidth=16, seed=10)
    runner = PipelineRunner(machine=KNC, nthreads=4)
    opt = AdaptiveSpMV(KNC, classifier="profile")
    runner.run_optimized(opt, csr)
    execute_spans = [s for s in runner.tracer.spans
                     if s.name == "execute"]
    assert execute_spans
    counters = execute_spans[-1].attributes.get("workspace")
    assert counters is not None
    assert {"hits", "misses", "hit_rate", "buffers",
            "bytes_held"} <= counters.keys()
