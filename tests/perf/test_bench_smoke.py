"""Smoke test for the batched-throughput benchmark harness.

Runs the real harness on tiny matrices (well under a second) and
validates the ``BENCH_kernels.json`` schema, so a broken harness or a
silent schema drift fails CI without paying full benchmark cost.
"""

import json

import numpy as np

from repro.experiments.bench_batched import (
    BENCH_SCHEMA_KEYS,
    PARALLEL_ROW_SCHEMA_KEYS,
    ROW_SCHEMA_KEYS,
    SCHEMA_VERSION,
    bench_kernels,
    bench_parallel,
    run,
)
from repro.matrices.generators import banded, random_uniform

TINY = [
    ("banded", banded(200, nnz_per_row=6, bandwidth=16, seed=5)),
    ("scattered", random_uniform(200, nnz_per_row=8.0, seed=6)),
]


def _validate(payload):
    assert BENCH_SCHEMA_KEYS <= payload.keys()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["rhs"] >= 1 and payload["repeats"] >= 1
    assert len(payload["suite"]) == len(TINY)
    assert payload["kernels"], "no measurement rows"
    matrices = {s["matrix"] for s in payload["suite"]}
    for row in payload["kernels"]:
        assert ROW_SCHEMA_KEYS <= row.keys()
        assert row["matrix"] in matrices
        assert row["nrows"] > 0 and row["nnz"] > 0
        assert row["single_gflops"] > 0.0
        assert row["batched_gflops"] > 0.0
        assert row["speedup"] > 0.0
        assert row["single_allocs"] >= 0
        assert row["single_steady_peak_bytes"] >= 0
        assert 0.0 <= row["workspace_hit_rate"] <= 1.0
        assert row["predicted_gflops"] > 0.0
        assert row["model_error_pct"] >= 0.0
    assert isinstance(payload["cost_model"], str) and payload["cost_model"]
    assert payload["geomean_speedup"] > 0.0
    par = payload["parallel"]
    assert par["threads"], "no parallel thread counts"
    assert par["rows"], "no measured-parallel rows"
    for row in par["rows"]:
        assert PARALLEL_ROW_SCHEMA_KEYS <= row.keys()
        assert row["matrix"] in matrices
        assert row["nthreads"] in par["threads"]
        assert row["gflops"] > 0.0
        assert row["wall_seconds"] >= 0.0
        assert row["imbalance"] >= 1.0
        assert row["wall_imbalance"] >= 1.0
        assert row["speedup"] > 0.0
        assert row["predicted_gflops"] > 0.0
        assert row["model_error_pct"] >= 0.0


def test_bench_payload_schema():
    payload = bench_kernels(rhs=4, repeats=1, matrices=TINY)
    _validate(payload)
    # speedup must be the ratio of the reported throughputs
    for row in payload["kernels"]:
        assert row["speedup"] == (
            row["batched_gflops"] / row["single_gflops"]
        ) or abs(
            row["speedup"] - row["batched_gflops"] / row["single_gflops"]
        ) < 1e-9


def test_run_writes_valid_json(tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    table = run(rhs=4, repeats=1, out_path=str(out), matrices=TINY)
    assert out.exists()
    payload = json.loads(out.read_text())
    _validate(payload)
    # the rendered table carries one line per measurement row
    assert len(table.rows) == len(payload["kernels"])


def test_run_can_skip_writing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run(rhs=2, repeats=1, out_path=None, matrices=TINY)
    assert not (tmp_path / "BENCH_kernels.json").exists()


def test_bench_rejects_bad_rhs():
    import pytest

    with pytest.raises(ValueError, match="rhs"):
        bench_kernels(rhs=0, matrices=TINY)


def test_bench_feeds_calibrated_model_refinement():
    """A CalibratedModel passed as ``model=`` accumulates one observed
    predicted/measured pair per measurement cell (the refine loop's
    input)."""
    from repro.machine import KNL
    from repro.model import CalibratedModel, MachineProfile

    model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
    payload = bench_kernels(rhs=2, repeats=1, matrices=TINY,
                            threads=(1, 2), model=model)
    assert payload["cost_model"] == model.signature()
    cells = len(payload["kernels"]) + len(payload["parallel"]["rows"])
    assert model.observation_count == cells
    summary = model.refine()
    assert summary  # at least one kernel's scale was updated


def test_bench_parallel_covers_grid():
    rows = bench_parallel(threads=(1, 2), repeats=1, matrices=TINY,
                          schedules=("static-rows", "balanced-nnz"))
    # full (matrix x schedule x threads) grid, nothing silently dropped
    assert len(rows) == len(TINY) * 2 * 2
    cells = {(r["matrix"], r["schedule"], r["nthreads"]) for r in rows}
    assert len(cells) == len(rows)
    # the t=1 baseline rows define speedup 1.0
    for r in rows:
        if r["nthreads"] == 1:
            assert r["speedup"] == 1.0
            assert r["imbalance"] == 1.0
