"""Perf smoke (``-m perf_smoke``): warm-start overhead is ~zero.

Runs the instrumented :class:`~repro.pipeline.runner.PipelineRunner`
over two generator matrices and asserts the plan-cache warm start
eliminates the modeled optimizer overhead entirely — the property the
persisted-cache feature exists for. Kept tiny so
``python -m pytest -m perf_smoke -q`` is a sub-second gate.
"""

import pytest

from repro.core import AdaptiveSpMV, PlanCache
from repro.machine import KNL
from repro.matrices.generators import banded, random_uniform
from repro.pipeline import PipelineRunner

MATRICES = (
    ("banded", lambda: banded(1500, nnz_per_row=8, bandwidth=24, seed=11)),
    ("scattered", lambda: random_uniform(1500, nnz_per_row=10.0, seed=12)),
)


@pytest.mark.perf_smoke
@pytest.mark.parametrize("name,make", MATRICES, ids=[m[0] for m in MATRICES])
def test_warm_start_overhead_is_zero(name, make):
    csr = make()
    opt = AdaptiveSpMV(KNL, classifier="profile")

    cold_runner = PipelineRunner(KNL)
    op_cold, r_cold = cold_runner.run_optimized(opt, csr)
    assert not op_cold.plan.cache_hit
    assert op_cold.plan.total_overhead_seconds > 0.0
    assert r_cold.gflops > 0.0

    warm_runner = PipelineRunner(KNL)
    op_warm, r_warm = warm_runner.run_optimized(opt, csr)
    assert op_warm.plan.cache_hit
    assert op_warm.plan.total_overhead_seconds == 0.0
    assert warm_runner.tracer.total_charged_seconds() == 0.0
    # same decision, same simulated performance
    assert op_warm.plan.kernel_name == op_cold.plan.kernel_name
    assert r_warm.gflops == pytest.approx(r_cold.gflops)


@pytest.mark.perf_smoke
def test_persisted_warm_start_overhead_is_zero(tmp_path):
    csr = MATRICES[0][1]()
    cold = AdaptiveSpMV(KNL, classifier="profile")
    cold.optimize(csr)
    path = tmp_path / "plans.json"
    cold.plan_cache.save(path)

    warm = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=PlanCache.load(path)
    )
    runner = PipelineRunner(KNL)
    op, result = runner.run_optimized(warm, csr)
    assert op.plan.cache_hit
    assert op.plan.decision_seconds == 0.0
    assert result.gflops > 0.0
