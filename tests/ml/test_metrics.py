"""Unit tests for multilabel metrics."""

import numpy as np
import pytest

from repro.ml import exact_match_ratio, partial_match_ratio, per_label_accuracy


def test_exact_match_basic():
    y = np.array([[1, 0], [0, 1], [1, 1]])
    p = np.array([[1, 0], [1, 1], [1, 1]])
    assert exact_match_ratio(y, p) == pytest.approx(2 / 3)


def test_partial_match_counts_overlap():
    y = np.array([[1, 1, 0]])
    p = np.array([[0, 1, 1]])   # one shared positive -> partial credit
    assert partial_match_ratio(y, p) == 1.0
    assert exact_match_ratio(y, p) == 0.0


def test_partial_match_no_overlap():
    y = np.array([[1, 0]])
    p = np.array([[0, 1]])
    assert partial_match_ratio(y, p) == 0.0


def test_dummy_class_semantics():
    """Empty truth matches only an empty prediction."""
    y = np.array([[0, 0], [0, 0]])
    p = np.array([[0, 0], [1, 0]])
    assert exact_match_ratio(y, p) == 0.5
    assert partial_match_ratio(y, p) == 0.5


def test_partial_geq_exact_always():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, size=(50, 4))
    p = rng.integers(0, 2, size=(50, 4))
    assert partial_match_ratio(y, p) >= exact_match_ratio(y, p)


def test_per_label_accuracy():
    y = np.array([[1, 0], [1, 1]])
    p = np.array([[1, 1], [1, 1]])
    np.testing.assert_allclose(per_label_accuracy(y, p), [1.0, 0.5])


def test_shape_validation():
    with pytest.raises(ValueError):
        exact_match_ratio(np.zeros((2, 3)), np.zeros((2, 2)))
    with pytest.raises(ValueError):
        exact_match_ratio(np.zeros((0, 2)), np.zeros((0, 2)))


def test_1d_inputs_promoted():
    assert exact_match_ratio([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)
