"""Unit tests for cross validation."""

import numpy as np
import pytest

from repro.ml import DecisionTree, k_fold, leave_one_out


def _separable(n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 2))
    Y = np.stack([X[:, 0] > 0.5, X[:, 1] > 0.5], axis=1).astype(int)
    return X, Y


def test_loo_high_accuracy_on_separable():
    X, Y = _separable(60)
    res = leave_one_out(X, Y)
    assert res.exact_match > 0.8
    assert res.partial_match >= res.exact_match
    assert res.n_splits == 60


def test_loo_poor_on_noise():
    rng = np.random.default_rng(1)
    X = rng.standard_normal((40, 2))
    Y = rng.integers(0, 2, size=(40, 2))
    res = leave_one_out(X, Y)
    assert res.exact_match < 0.7


def test_kfold_runs_and_reports():
    X, Y = _separable(50, seed=2)
    res = k_fold(X, Y, k=5)
    assert res.n_splits == 5
    assert 0.0 <= res.exact_match <= 1.0


def test_kfold_validates_k():
    X, Y = _separable(10)
    with pytest.raises(ValueError):
        k_fold(X, Y, k=1)
    with pytest.raises(ValueError):
        k_fold(X, Y, k=11)


def test_loo_needs_two_samples():
    with pytest.raises(ValueError):
        leave_one_out(np.zeros((1, 2)), np.zeros((1, 1)))


def test_custom_tree_factory_used():
    X, Y = _separable(30, seed=3)
    res_shallow = k_fold(
        X, Y, k=5,
        tree_factory=lambda: DecisionTree(max_depth=1),
    )
    res_deep = k_fold(
        X, Y, k=5,
        tree_factory=lambda: DecisionTree(max_depth=6, min_samples_leaf=1),
    )
    # two independent labels cannot be captured by one split
    assert res_deep.exact_match >= res_shallow.exact_match


def test_cvresult_str():
    X, Y = _separable(20, seed=4)
    assert "exact=" in str(k_fold(X, Y, k=4))
