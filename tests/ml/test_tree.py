"""Unit tests for the from-scratch CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTree


def test_single_feature_threshold_split():
    X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
    y = np.array([0, 0, 0, 1, 1, 1])
    tree = DecisionTree().fit(X, y)
    assert tree.depth == 1
    assert tree.predict(np.array([[1.5]]))[0, 0] == 0
    assert tree.predict(np.array([[10.5]]))[0, 0] == 1
    # threshold sits between the classes
    assert 2.0 < tree.root.threshold < 10.0


def test_perfect_fit_on_training_data():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((60, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    tree = DecisionTree().fit(X, y)
    np.testing.assert_array_equal(tree.predict(X)[:, 0], y)


def test_multilabel_fit_and_predict():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(120, 2))
    Y = np.stack([X[:, 0] > 0.5, X[:, 1] > 0.5], axis=1).astype(int)
    tree = DecisionTree().fit(X, Y)
    preds = tree.predict(X)
    assert preds.shape == (120, 2)
    assert np.mean(np.all(preds == Y, axis=1)) > 0.95


def test_xor_needs_depth_two():
    X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
    y = np.array([0, 1, 1, 0])
    shallow = DecisionTree(max_depth=1).fit(X, y)
    deep = DecisionTree(max_depth=3, min_samples_leaf=1).fit(X, y)
    assert np.any(shallow.predict(X)[:, 0] != y)
    np.testing.assert_array_equal(deep.predict(X)[:, 0], y)


def test_max_depth_respected():
    rng = np.random.default_rng(2)
    X = rng.standard_normal((200, 4))
    y = (X @ rng.standard_normal(4) > 0).astype(int)
    tree = DecisionTree(max_depth=3).fit(X, y)
    assert tree.depth <= 3


def test_min_samples_leaf_respected():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((50, 2))
    y = (X[:, 0] > 0).astype(int)
    tree = DecisionTree(min_samples_leaf=10).fit(X, y)

    def check(node):
        if node.is_leaf:
            assert node.n_samples >= 10
        else:
            check(node.left)
            check(node.right)

    check(tree.root)


def test_pure_node_stops():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([1, 1, 1])
    tree = DecisionTree().fit(X, y)
    assert tree.root.is_leaf


def test_constant_features_give_leaf():
    X = np.ones((10, 2))
    y = np.array([0, 1] * 5)
    tree = DecisionTree().fit(X, y)
    assert tree.root.is_leaf  # no valid split exists


def test_predict_proba_fractions():
    X = np.array([[0.0], [0.0], [0.0], [1.0]])
    y = np.array([1, 1, 0, 0])
    tree = DecisionTree(min_samples_leaf=3).fit(X, y)
    # cannot split with leaf>=3 on 4 samples except 3/1... root may split
    proba = tree.predict_proba(np.array([[0.0]]))
    assert 0.0 <= proba[0, 0] <= 1.0


def test_input_validation():
    with pytest.raises(ValueError):
        DecisionTree().fit(np.zeros((0, 2)), np.zeros((0,)))
    with pytest.raises(ValueError):
        DecisionTree().fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        DecisionTree().fit(np.array([[np.nan]]), np.array([1]))
    with pytest.raises(ValueError):
        DecisionTree().fit(np.zeros(3), np.zeros(3))  # X must be 2-D


def test_predict_before_fit():
    with pytest.raises(RuntimeError):
        DecisionTree().predict(np.zeros((1, 2)))


def test_predict_feature_count_mismatch():
    tree = DecisionTree().fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
    with pytest.raises(ValueError):
        tree.predict(np.zeros((1, 5)))


def test_feature_importances_identify_signal():
    rng = np.random.default_rng(4)
    X = rng.standard_normal((300, 3))
    y = (X[:, 1] > 0).astype(int)   # only feature 1 matters
    tree = DecisionTree(max_depth=4).fit(X, y)
    imp = tree.feature_importances()
    assert imp.shape == (3,)
    assert imp[1] == imp.max()
    assert imp.sum() == pytest.approx(1.0)


def test_min_impurity_decrease_prunes():
    rng = np.random.default_rng(5)
    X = rng.standard_normal((100, 2))
    y = rng.integers(0, 2, size=100)  # pure noise
    strict = DecisionTree(min_impurity_decrease=0.2).fit(X, y)
    loose = DecisionTree().fit(X, y)
    assert strict.n_leaves <= loose.n_leaves


def test_1d_labels_accepted():
    tree = DecisionTree().fit(np.array([[0.0], [1.0]]), np.array([0, 1]))
    assert tree.n_labels_ == 1
    assert tree.predict(np.array([0.9]))[0, 0] == 1  # 1-D query row
