"""Tests for tree / classifier persistence."""

import json

import numpy as np
import pytest

from repro.core import FeatureGuidedClassifier
from repro.machine import KNL
from repro.matrices import training_suite
from repro.ml import DecisionTree


def _fitted_tree(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(80, 3))
    Y = np.stack([X[:, 0] > 0.5, X[:, 2] > 0.3], axis=1).astype(int)
    return DecisionTree(max_depth=6, min_samples_leaf=2).fit(X, Y), X, Y


def test_tree_roundtrip_predictions_identical():
    tree, X, _ = _fitted_tree()
    clone = DecisionTree.from_dict(tree.to_dict())
    np.testing.assert_array_equal(clone.predict(X), tree.predict(X))
    np.testing.assert_allclose(
        clone.predict_proba(X), tree.predict_proba(X)
    )


def test_tree_dict_is_json_serializable():
    tree, _, _ = _fitted_tree(seed=1)
    payload = json.dumps(tree.to_dict())
    clone = DecisionTree.from_dict(json.loads(payload))
    assert clone.depth == tree.depth
    assert clone.n_leaves == tree.n_leaves


def test_unfitted_tree_rejects_serialization():
    with pytest.raises(RuntimeError):
        DecisionTree().to_dict()


def test_classifier_save_load_roundtrip(tmp_path):
    corpus = [
        t.matrix
        for t in training_suite(count=10, seed=31, min_rows=8_000,
                                max_rows=20_000)
    ]
    clf = FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)
    path = tmp_path / "classifier.json"
    clf.save(path)
    loaded = FeatureGuidedClassifier.load(path)
    assert loaded.machine.codename == "knl"
    assert loaded.feature_names == clf.feature_names
    for m in corpus[:4]:
        assert loaded.classify(m) == clf.classify(m)


def test_loaded_classifier_works_in_optimizer(tmp_path):
    from repro.core import AdaptiveSpMV
    from repro.matrices import named_matrix

    corpus = [
        t.matrix
        for t in training_suite(count=10, seed=32, min_rows=8_000,
                                max_rows=20_000)
    ]
    clf = FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)
    path = tmp_path / "clf.json"
    clf.save(path)
    loaded = FeatureGuidedClassifier.load(path)
    opt = AdaptiveSpMV(KNL, classifier=loaded)
    operator = opt.optimize(named_matrix("webbase-1M", scale=0.1))
    assert operator.simulate().gflops > 0


def test_untrained_classifier_save_rejected(tmp_path):
    clf = FeatureGuidedClassifier(KNL)
    with pytest.raises(RuntimeError):
        clf.save(tmp_path / "x.json")
