"""Unit tests for exhaustive feature-subset search."""

import numpy as np
import pytest

from repro.ml import search_feature_subsets


def _corpus(seed=0, n=60):
    """Features f0, f1 carry the labels; f2 is pure noise."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 3))
    Y = np.stack([X[:, 0] > 0.5, X[:, 1] > 0.5], axis=1).astype(int)
    return X, Y


def test_search_finds_informative_subset():
    X, Y = _corpus()
    top = search_feature_subsets(
        X, Y, ("f0", "f1", "noise"), min_size=2, max_size=2, k=5
    )
    assert top[0].features == ("f0", "f1")


def test_search_ranking_sorted():
    X, Y = _corpus(seed=1)
    top = search_feature_subsets(X, Y, ("a", "b", "c"),
                                 min_size=1, max_size=3, k=5, top=20)
    exacts = [s.exact for s in top]
    assert exacts == sorted(exacts, reverse=True)


def test_search_loo_method():
    X, Y = _corpus(seed=2, n=25)
    top = search_feature_subsets(X, Y, ("a", "b", "c"),
                                 min_size=2, max_size=2, method="loo")
    assert top[0].result.n_splits == 25


def test_search_validates_inputs():
    X, Y = _corpus()
    with pytest.raises(ValueError):
        search_feature_subsets(X, Y, ("a", "b"))       # name count mismatch
    with pytest.raises(ValueError):
        search_feature_subsets(X, Y, ("a", "b", "c"), min_size=0)
    with pytest.raises(ValueError):
        search_feature_subsets(X, Y, ("a", "b", "c"), method="bootstrap")


def test_top_limits_results():
    X, Y = _corpus(seed=3)
    top = search_feature_subsets(X, Y, ("a", "b", "c"),
                                 min_size=1, max_size=3, top=2)
    assert len(top) == 2
