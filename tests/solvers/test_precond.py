"""Unit tests for preconditioners."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices.generators import laplacian_1d
from repro.solvers import jacobi_preconditioner, ssor_preconditioner_diag
from repro.solvers.base import as_matvec, identity_preconditioner


def test_jacobi_divides_by_diagonal():
    A = CSRMatrix.from_dense(np.diag([2.0, 4.0, 8.0]))
    M = jacobi_preconditioner(A)
    np.testing.assert_allclose(M(np.array([2.0, 4.0, 8.0])), [1, 1, 1])


def test_jacobi_missing_diagonal_fallback():
    A = CSRMatrix.from_arrays([0, 1], [1, 0], [3.0, 5.0], (2, 2))
    M = jacobi_preconditioner(A, default=2.0)
    np.testing.assert_allclose(M(np.array([4.0, 4.0])), [2.0, 2.0])


def test_jacobi_zero_diagonal_fallback():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 3.0]]))
    M = jacobi_preconditioner(A, default=1.0)
    out = M(np.array([5.0, 6.0]))
    assert out[0] == 5.0  # divided by fallback 1.0
    assert out[1] == 2.0


def test_jacobi_rejects_rectangular():
    A = CSRMatrix.from_arrays([0], [1], [1.0], (1, 3))
    with pytest.raises(ValueError):
        jacobi_preconditioner(A)


def test_ssor_scaling():
    A = laplacian_1d(10)
    M = ssor_preconditioner_diag(A, omega=1.0)
    r = np.ones(10)
    np.testing.assert_allclose(M(r), r / 2.0)  # diag == 2, scale == 1


def test_ssor_omega_validation():
    A = laplacian_1d(4)
    with pytest.raises(ValueError):
        ssor_preconditioner_diag(A, omega=2.0)


def test_identity_preconditioner():
    r = np.arange(4.0)
    np.testing.assert_array_equal(identity_preconditioner(r), r)


def test_as_matvec_dispatch():
    A = laplacian_1d(5)
    f = as_matvec(A)
    np.testing.assert_allclose(f(np.ones(5)), A.matvec(np.ones(5)))
    g = as_matvec(lambda v: 2 * v)
    np.testing.assert_allclose(g(np.ones(3)), 2 * np.ones(3))
    with pytest.raises(TypeError):
        as_matvec(42)
