"""Unit tests for restarted GMRES."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices.generators import laplacian_1d, random_uniform
from repro.solvers import gmres, jacobi_preconditioner


def _nonsym(n=300, seed=0):
    rng = np.random.default_rng(seed)
    base = random_uniform(n, nnz_per_row=5.0, seed=seed)
    coo = base.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n)])
    cols = np.concatenate([coo.cols, np.arange(n)])
    vals = np.concatenate([0.1 * coo.values, np.full(n, 8.0)])
    from repro.formats import COOMatrix

    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


def test_converges_on_nonsymmetric():
    A = _nonsym()
    rng = np.random.default_rng(1)
    xstar = rng.standard_normal(A.nrows)
    b = A.matvec(xstar)
    res = gmres(A, b, tol=1e-10)
    assert res.converged
    np.testing.assert_allclose(res.x, xstar, atol=1e-6)


def test_restart_still_converges():
    # Diagonally dominant system: restarted GMRES converges even with
    # a small Krylov window (the ill-conditioned Laplacian would not).
    A = _nonsym(200, seed=7)
    b = np.ones(200)
    res = gmres(A, b, tol=1e-8, restart=5, maxiter=5000)
    assert res.converged
    np.testing.assert_allclose(A.matvec(res.x), b, atol=1e-5)


def test_larger_restart_no_worse():
    A = laplacian_1d(100)
    b = np.ones(100)
    small = gmres(A, b, tol=1e-8, restart=20, maxiter=2000)
    big = gmres(A, b, tol=1e-8, restart=100, maxiter=2000)
    assert big.iterations <= small.iterations


def test_preconditioned_gmres():
    A = _nonsym(seed=2)
    b = np.ones(A.nrows)
    res = gmres(A, b, tol=1e-9,
                preconditioner=jacobi_preconditioner(A))
    assert res.converged


def test_maxiter_cap():
    A = laplacian_1d(400)
    res = gmres(A, np.ones(400), tol=1e-14, restart=5, maxiter=20)
    assert res.iterations <= 20
    assert not res.converged


def test_already_solved_returns_immediately():
    A = laplacian_1d(30)
    res = gmres(A, np.zeros(30), tol=1e-10)
    assert res.converged and res.iterations == 0


def test_parameter_validation():
    A = laplacian_1d(10)
    with pytest.raises(ValueError):
        gmres(A, np.ones(10), restart=0)
    with pytest.raises(ValueError):
        gmres(A, np.ones(10), maxiter=0)
