"""Unit tests for BiCGSTAB."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix
from repro.matrices.generators import random_uniform
from repro.solvers import bicgstab, jacobi_preconditioner


def _dominant(n=400, seed=0):
    base = random_uniform(n, nnz_per_row=6.0, seed=seed)
    coo = base.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n)])
    cols = np.concatenate([coo.cols, np.arange(n)])
    vals = np.concatenate([0.1 * coo.values, np.full(n, 10.0)])
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


def test_converges_on_dominant_system():
    A = _dominant()
    rng = np.random.default_rng(3)
    xstar = rng.standard_normal(A.nrows)
    b = A.matvec(xstar)
    res = bicgstab(A, b, tol=1e-10)
    assert res.converged
    np.testing.assert_allclose(res.x, xstar, atol=1e-6)


def test_preconditioner_accepted():
    A = _dominant(seed=1)
    b = np.ones(A.nrows)
    res = bicgstab(A, b, tol=1e-9,
                   preconditioner=jacobi_preconditioner(A))
    assert res.converged
    np.testing.assert_allclose(A.matvec(res.x), b, atol=1e-5)


def test_maxiter_cap():
    A = _dominant(seed=2)
    res = bicgstab(A, np.ones(A.nrows), tol=1e-16, maxiter=2)
    assert res.iterations <= 2


def test_maxiter_validation():
    A = _dominant(seed=4)
    with pytest.raises(ValueError):
        bicgstab(A, np.ones(A.nrows), maxiter=0)


def test_residual_history_recorded():
    A = _dominant(seed=5)
    res = bicgstab(A, np.ones(A.nrows), tol=1e-10)
    assert res.residual_history[0] >= res.residual_norm
