"""Tests for the multi-RHS (block) solver paths.

A 2-D ``b`` routes every Krylov solver through the batched ``matmat``
plane; each column's solution must match the single-RHS solver run on
that column alone.
"""

import numpy as np
import pytest

from repro.matrices.generators import laplacian_1d, poisson2d
from repro.solvers import as_matmat, bicgstab, cg, columnwise, gmres
from repro.solvers.eigen import pagerank

K = 4


@pytest.fixture(scope="module")
def spd():
    return poisson2d(15)


@pytest.fixture(scope="module")
def B(spd):
    rng = np.random.default_rng(7)
    return spd.matmat(rng.standard_normal((spd.nrows, K)))


def test_block_cg_matches_single(spd, B):
    block = cg(spd, B, tol=1e-10)
    assert block.converged
    assert block.x.shape == (spd.nrows, K)
    for j in range(K):
        single = cg(spd, B[:, j], tol=1e-10)
        np.testing.assert_allclose(block.x[:, j], single.x, atol=1e-6)


def test_block_cg_residuals(spd, B):
    block = cg(spd, B, tol=1e-10)
    R = B - spd.matmat(block.x)
    assert np.linalg.norm(R, axis=0).max() <= 1e-10 * np.linalg.norm(
        B, axis=0
    ).min() * 10
    # per-column residual histories decrease overall
    assert block.residual_history.shape[1] == K
    assert np.all(
        block.residual_history[-1] < block.residual_history[0]
    )


def test_block_bicgstab_matches_single(B):
    A = laplacian_1d(225)
    block = bicgstab(A, B, tol=1e-10)
    assert block.converged
    for j in range(K):
        single = bicgstab(A, B[:, j], tol=1e-10)
        np.testing.assert_allclose(block.x[:, j], single.x, atol=1e-5)


def test_block_gmres_matches_single(spd, B):
    block = gmres(spd, B, tol=1e-10, restart=30)
    assert block.converged
    for j in range(K):
        single = gmres(spd, B[:, j], tol=1e-10, restart=30)
        np.testing.assert_allclose(block.x[:, j], single.x, atol=1e-5)


def test_block_cg_warm_start_2d(spd, B):
    exact = cg(spd, B, tol=1e-12).x
    warm = cg(spd, B, x0=exact, tol=1e-10)
    assert warm.converged
    assert warm.iterations <= 1


def test_block_maxiter_respected(spd, B):
    res = cg(spd, B, tol=1e-14, maxiter=3)
    assert not res.converged
    assert res.iterations == 3


def test_personalized_pagerank_batch_matches_single():
    from repro.formats import CSRMatrix
    from repro.matrices.generators import power_law

    G = power_law(300, avg_deg=4.0, seed=11)
    out_deg = np.maximum(G.row_nnz(), 1).astype(float)
    scaled = CSRMatrix(
        G.rowptr.copy(), G.colind.copy(),
        np.ones(G.nnz) / out_deg[G.row_ids_per_nnz()], G.shape,
    )
    A = scaled.transpose()
    n = A.nrows
    seeds = np.zeros((n, 3))
    seeds[0, 0] = seeds[5, 1] = seeds[9, 2] = 1.0
    batch = pagerank(A, n, tol=1e-10, personalization=seeds)
    assert batch.converged
    assert batch.x.shape == (n, 3)
    for j in range(3):
        single = pagerank(A, n, tol=1e-10,
                          personalization=seeds[:, j])
        assert single.x.shape == (n,)
        np.testing.assert_allclose(batch.x[:, j], single.x, atol=1e-8)
    # uniform personalization reproduces the default ranking
    uniform = pagerank(A, n, tol=1e-10,
                       personalization=np.ones(n))
    plain = pagerank(A, n, tol=1e-10)
    np.testing.assert_allclose(uniform.x, plain.x, atol=1e-7)


def test_as_matmat_and_columnwise_helpers(spd, B):
    matmat = as_matmat(spd)
    np.testing.assert_allclose(matmat(B), spd.matmat(B), rtol=1e-15)

    class MatvecOnly:
        nrows = spd.nrows
        ncols = spd.ncols

        def matvec(self, x):
            return spd.matvec(x)

    stacked = as_matmat(MatvecOnly())(B)
    np.testing.assert_allclose(stacked, spd.matmat(B), rtol=1e-12)

    precond = columnwise(lambda r: 2.0 * r)
    np.testing.assert_allclose(precond(B), 2.0 * B, rtol=1e-15)
