"""Unit tests for CGNR (least squares via normal equations)."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.solvers import cgnr


def _tall_system(m=120, n=40, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((m, n))
    dense[np.abs(dense) < 1.2] = 0.0       # sparsify
    dense[np.arange(n), np.arange(n)] += 3.0  # decent conditioning
    A = CSRMatrix.from_dense(dense)
    return A, dense


def test_consistent_square_system():
    rng = np.random.default_rng(1)
    dense = np.diag(rng.uniform(1, 3, size=30))
    dense[0, 5] = 0.5
    A = CSRMatrix.from_dense(dense)
    xstar = rng.standard_normal(30)
    b = A.matvec(xstar)
    res = cgnr(A, b, tol=1e-12)
    assert res.converged
    np.testing.assert_allclose(res.x, xstar, atol=1e-8)


def test_least_squares_matches_lstsq():
    A, dense = _tall_system()
    rng = np.random.default_rng(2)
    b = rng.standard_normal(A.nrows)       # inconsistent RHS
    res = cgnr(A, b, tol=1e-12, maxiter=5000)
    assert res.converged
    expected, *_ = np.linalg.lstsq(dense, b, rcond=None)
    np.testing.assert_allclose(res.x, expected, atol=1e-6)


def test_normal_residual_decreases():
    A, _ = _tall_system(seed=3)
    b = np.ones(A.nrows)
    res = cgnr(A, b, tol=1e-10, maxiter=5000)
    hist = res.residual_history
    assert hist[-1] < hist[0]


def test_maxiter_cap():
    A, _ = _tall_system(seed=4)
    res = cgnr(A, np.ones(A.nrows), tol=1e-16, maxiter=2)
    assert not res.converged
    assert res.iterations <= 2


def test_validation():
    A, _ = _tall_system()
    with pytest.raises(ValueError):
        cgnr(A, np.ones(3))
    with pytest.raises(ValueError):
        cgnr(A, np.ones(A.nrows), maxiter=0)
    with pytest.raises(TypeError):
        cgnr(lambda v: v, np.ones(4))


def test_rectangular_shapes_respected():
    A, _ = _tall_system(m=80, n=20, seed=5)
    res = cgnr(A, np.ones(80), tol=1e-8, maxiter=2000)
    assert res.x.shape == (20,)
