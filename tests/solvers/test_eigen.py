"""Unit tests for power iteration and PageRank."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.solvers import pagerank, power_iteration


def test_power_iteration_diagonal():
    A = CSRMatrix.from_dense(np.diag([1.0, 5.0, 3.0]))
    lam, res = power_iteration(A, tol=1e-12, maxiter=2000)
    assert res.converged
    assert lam == pytest.approx(5.0, rel=1e-6)
    assert abs(res.x[1]) == pytest.approx(1.0, rel=1e-5)


def test_power_iteration_matches_numpy():
    rng = np.random.default_rng(0)
    M = rng.standard_normal((40, 40))
    S = M @ M.T  # SPD: dominant eigenvalue well defined
    A = CSRMatrix.from_dense(S)
    lam, res = power_iteration(A, tol=1e-12, maxiter=5000)
    assert res.converged
    expected = np.linalg.eigvalsh(S).max()
    assert lam == pytest.approx(expected, rel=1e-6)


def test_power_iteration_maxiter_cap():
    A = CSRMatrix.from_dense(np.diag([1.0, 1.000001]))
    lam, res = power_iteration(A, tol=1e-15, maxiter=3)
    assert not res.converged
    assert res.iterations == 3


def test_power_iteration_validates():
    A = CSRMatrix.from_dense(np.eye(3))
    with pytest.raises(ValueError):
        power_iteration(A, maxiter=0)
    with pytest.raises(ValueError):
        power_iteration(lambda v: v)  # bare callable needs x0


def test_power_iteration_bare_callable_with_x0():
    lam, res = power_iteration(
        lambda v: 2.0 * v, x0=np.ones(4), tol=1e-12
    )
    assert lam == pytest.approx(2.0)


def test_pagerank_uniform_on_cycle():
    n = 6
    # directed cycle: column-normalized transition is a permutation
    A = CSRMatrix.from_arrays(
        [(i + 1) % n for i in range(n)], list(range(n)),
        [1.0] * n, (n, n),
    )
    res = pagerank(A, n, tol=1e-12)
    assert res.converged
    np.testing.assert_allclose(res.x, np.full(n, 1.0 / n), atol=1e-9)


def test_pagerank_sums_to_one():
    from repro.matrices.generators import power_law

    G = power_law(2000, avg_deg=5.0, seed=3)
    out_deg = np.maximum(G.row_nnz(), 1).astype(float)
    scaled = CSRMatrix(
        G.rowptr.copy(), G.colind.copy(),
        np.ones(G.nnz) / out_deg[G.row_ids_per_nnz()], G.shape,
    )
    A = scaled.transpose()
    res = pagerank(A, A.nrows, tol=1e-10)
    assert res.converged
    assert res.x.sum() == pytest.approx(1.0, abs=1e-8)
    assert np.all(res.x >= 0)


def test_pagerank_validates_damping():
    A = CSRMatrix.from_dense(np.eye(2))
    with pytest.raises(ValueError):
        pagerank(A, 2, damping=1.0)
