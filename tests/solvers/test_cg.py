"""Unit tests for CG."""

import numpy as np
import pytest

from repro.matrices.generators import laplacian_1d, poisson2d
from repro.solvers import cg, jacobi_preconditioner


def test_converges_on_poisson():
    A = poisson2d(20)
    rng = np.random.default_rng(0)
    xstar = rng.standard_normal(A.nrows)
    b = A.matvec(xstar)
    res = cg(A, b, tol=1e-10)
    assert res.converged
    np.testing.assert_allclose(res.x, xstar, atol=1e-6)


def test_residual_history_monotone_overall():
    A = laplacian_1d(200)
    b = np.ones(200)
    res = cg(A, b, tol=1e-10)
    hist = res.residual_history
    assert hist[-1] < 1e-8 * np.linalg.norm(b)
    # CG residuals are not strictly monotone, but the trend must hold
    assert hist[-1] < hist[0]


def test_warm_start():
    A = poisson2d(15)
    rng = np.random.default_rng(1)
    xstar = rng.standard_normal(A.nrows)
    b = A.matvec(xstar)
    cold = cg(A, b, tol=1e-10)
    warm = cg(A, b, x0=xstar + 1e-6 * rng.standard_normal(A.nrows),
              tol=1e-10)
    assert warm.iterations < cold.iterations


def test_maxiter_respected():
    A = poisson2d(20)
    b = np.ones(A.nrows)
    res = cg(A, b, tol=1e-14, maxiter=3)
    assert not res.converged
    assert res.iterations == 3


def test_preconditioner_helps_scaled_system():
    # badly diagonally scaled SPD matrix: Jacobi must cut iterations
    A = poisson2d(16)
    scale = np.exp(np.linspace(0, 6, A.nrows))
    import scipy.sparse as sp

    from repro.formats import CSRMatrix

    S = sp.diags(scale) @ A.to_scipy() @ sp.diags(scale)
    B = CSRMatrix.from_scipy(S.tocsr())
    b = np.ones(B.nrows)
    plain = cg(B, b, tol=1e-8, maxiter=5000)
    pre = cg(B, b, tol=1e-8, maxiter=5000,
             preconditioner=jacobi_preconditioner(B))
    assert pre.iterations < plain.iterations


def test_callable_operator_accepted():
    A = laplacian_1d(50)
    res = cg(lambda v: A.matvec(v), np.ones(50), tol=1e-10)
    assert res.converged


def test_non_spd_breaks_gracefully():
    from repro.formats import CSRMatrix

    # indefinite matrix: CG must stop without crashing
    A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
    res = cg(A, np.array([0.0, 1.0]), maxiter=10)
    assert not res.converged


def test_maxiter_validation():
    A = laplacian_1d(10)
    with pytest.raises(ValueError):
        cg(A, np.ones(10), maxiter=0)
