"""AnalyticModel: protocol conformance, equivalence with the engine it
absorbed, and the sanity properties every cost model must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import baseline_kernel
from repro.machine import BROADWELL, KNL, ExecutionEngine
from repro.matrices.generators import banded
from repro.model import AnalyticModel, CostModel, Prediction


@pytest.fixture(scope="module")
def csr():
    return banded(3000, nnz_per_row=9, seed=3)


def test_satisfies_protocol():
    assert isinstance(AnalyticModel(KNL), CostModel)


def test_run_matches_execution_engine_exactly(csr):
    """The model IS the engine behind the protocol: same numbers."""
    kernel = baseline_kernel()
    data = kernel.preprocess(csr)
    model = AnalyticModel(KNL, 8)
    legacy = ExecutionEngine(KNL, 8).run(kernel, data)
    ours = model.run(kernel, data)
    assert ours.seconds == legacy.seconds
    assert ours.gflops == legacy.gflops
    np.testing.assert_array_equal(ours.thread_seconds,
                                  legacy.thread_seconds)


def test_bounds_match_legacy_measure_bounds(csr):
    from repro.core import measure_bounds

    direct = AnalyticModel(KNL).bounds(csr)
    shim = measure_bounds(csr, KNL)
    assert direct.as_dict() == shim.as_dict()


def test_engine_memoized_per_thread_count():
    model = AnalyticModel(KNL, 4)
    assert model.engine() is model.engine()
    assert model.engine(2) is model.engine(2)
    assert model.engine(2) is not model.engine(4)
    # explicit nthreads equal to the default shares the default engine
    assert model.engine(4) is model.engine()


def test_predict_decomposition(csr):
    kernel = baseline_kernel()
    pred = AnalyticModel(KNL, 8).predict(kernel, kernel.preprocess(csr))
    assert isinstance(pred, Prediction)
    assert pred.seconds > 0 and pred.gflops > 0
    assert pred.nthreads == 8
    assert {"compute_s", "bandwidth_s"} <= pred.decomposition.keys()
    assert pred.dominant_term() in ("compute_s", "bandwidth_s",
                                    "latency_s")
    assert pred.result.seconds == pred.seconds


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=200, max_value=3000))
def test_monotonic_in_nnz(n):
    """More nonzeros (same structure family, same machine, same
    threads) must never be predicted faster."""
    kernel = baseline_kernel()
    model = AnalyticModel(KNL, 4)

    small = banded(n, nnz_per_row=5, seed=1)
    large = banded(2 * n, nnz_per_row=5, seed=1)
    t_small = model.run(kernel, kernel.preprocess(small)).seconds
    t_large = model.run(kernel, kernel.preprocess(large)).seconds
    assert large.nnz > small.nnz
    assert t_large >= t_small


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([1, 2, 4, 8, 16]))
def test_nthreads_sane(t):
    """On a large regular matrix, t threads are never predicted slower
    than 1 thread, and per-thread busy time shrinks with width."""
    kernel = baseline_kernel()
    csr = banded(60_000, nnz_per_row=9, seed=2)
    data = kernel.preprocess(csr)
    model = AnalyticModel(KNL)
    serial = model.run(kernel, data, nthreads=1)
    wide = model.run(kernel, data, nthreads=t)
    assert wide.nthreads == t
    assert wide.seconds <= serial.seconds * 1.0000001
    assert np.max(wide.thread_seconds) <= np.max(serial.thread_seconds)


def test_nthreads_override_per_call(csr):
    kernel = baseline_kernel()
    data = kernel.preprocess(csr)
    model = AnalyticModel(KNL, 2)
    assert model.run(kernel, data).nthreads == 2
    assert model.run(kernel, data, nthreads=4).nthreads == 4
    # the override does not rebind the default
    assert model.run(kernel, data).nthreads == 2


def test_suggest_deadline_floor_and_scaling(csr):
    kernel = baseline_kernel()
    data = kernel.preprocess(csr)
    model = AnalyticModel(KNL, 4)
    predicted = model.run(kernel, data).seconds
    d = model.suggest_deadline(kernel, data, safety=50.0, floor=0.05)
    assert d == max(0.05, 50.0 * predicted)
    assert model.suggest_deadline(kernel, data, floor=1e9) == 1e9


def test_signatures():
    model = AnalyticModel(KNL)
    assert model.signature() == "analytic"
    # Empty on purpose: pre-model plan caches must keep warm-starting.
    assert model.cache_signature() == ""


def test_bounds_ordering(csr):
    """Structural guarantees of Section III-B hold through the model."""
    for machine in (KNL, BROADWELL):
        b = AnalyticModel(machine).bounds(csr)
        assert b.p_peak >= b.p_mb > 0
        assert b.p_imb >= b.p_csr * 0.999
        assert all(np.isfinite(v) for v in b.as_dict().values())
