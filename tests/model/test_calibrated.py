"""CalibratedModel: identity bit-identity, profile scaling, and the
observe → refine feedback loop."""

import numpy as np
import pytest

from repro.kernels import baseline_kernel
from repro.machine import BROADWELL, KNL
from repro.matrices.generators import banded
from repro.model import (
    AnalyticModel,
    CalibratedModel,
    CostModel,
    MachineProfile,
)


@pytest.fixture(scope="module")
def csr():
    return banded(2000, nnz_per_row=9, seed=4)


@pytest.fixture()
def kernel():
    return baseline_kernel()


def test_satisfies_protocol():
    assert isinstance(
        CalibratedModel(KNL, MachineProfile.identity(KNL.name)),
        CostModel,
    )


def test_rejects_foreign_profile():
    with pytest.raises(ValueError, match="calibrated for"):
        CalibratedModel(KNL, MachineProfile.identity(BROADWELL.name))


class TestIdentityProfile:
    """CalibratedModel(identity) must be bit-identical to AnalyticModel
    — the regression test the refactor is pinned by."""

    def test_run_returns_exact_analytic_object(self, csr, kernel):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name), 4)
        data = kernel.preprocess(csr)
        ours = model.run(kernel, data)
        ref = AnalyticModel(KNL, 4).run(kernel, data)
        assert ours.seconds == ref.seconds
        assert ours.gflops == ref.gflops
        np.testing.assert_array_equal(ours.thread_seconds,
                                      ref.thread_seconds)
        # same object as this model's own analytic plane (the scaled
        # path was never entered)
        assert ours is model.engine().run(kernel, data) or (
            ours.seconds == model.engine().run(kernel, data).seconds
        )

    def test_bounds_bit_identical(self, csr):
        identity = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        assert (identity.bounds(csr).as_dict()
                == AnalyticModel(KNL).bounds(csr).as_dict())


class TestScaledProfile:
    def test_kernel_scale_stretches_time(self, csr, kernel):
        profile = MachineProfile(machine_name=KNL.name,
                                 kernel_scales={kernel.name: 2.0})
        model = CalibratedModel(KNL, profile, 4)
        data = kernel.preprocess(csr)
        ref = AnalyticModel(KNL, 4).run(kernel, data)
        scaled = model.run(kernel, data)
        assert scaled.seconds == pytest.approx(2.0 * ref.seconds)
        assert scaled.gflops == pytest.approx(ref.gflops / 2.0)
        np.testing.assert_allclose(scaled.thread_seconds,
                                   2.0 * ref.thread_seconds)

    def test_unknown_kernel_uses_median_scale(self, csr, kernel):
        profile = MachineProfile(
            machine_name=KNL.name,
            kernel_scales={"a": 2.0, "b": 4.0, "c": 8.0},
        )
        model = CalibratedModel(KNL, profile)
        assert model.scale_for("never-measured") == 4.0

    def test_bandwidth_scale_moves_analytic_bounds(self, csr):
        half = MachineProfile(machine_name=KNL.name, bandwidth_scale=0.5)
        b_ref = AnalyticModel(KNL).bounds(csr)
        b_half = CalibratedModel(KNL, half).bounds(csr)
        # Purely-analytic bounds scale with bandwidth; operational
        # bounds (unscaled kernels) do not.
        assert b_half.p_mb == pytest.approx(0.5 * b_ref.p_mb)
        assert b_half.p_peak == pytest.approx(0.5 * b_ref.p_peak)
        assert b_half.p_csr == pytest.approx(b_ref.p_csr)


class TestObserveRefine:
    def test_refine_moves_scale_to_median_ratio(self):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        for measured in (2.0, 4.0, 8.0):
            model.observe("csr", 1.0, measured)
        assert model.observation_count == 3
        report = model.refine(alpha=1.0)
        assert model.observation_count == 0  # buffer cleared
        assert report["csr"]["samples"] == 3
        assert report["csr"]["ratio"] == pytest.approx(4.0)
        assert model.profile.kernel_scales["csr"] == pytest.approx(4.0)

    def test_partial_alpha_damps(self):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        model.observe("csr", 1.0, 4.0)
        model.refine(alpha=0.5)
        assert model.profile.kernel_scales["csr"] == pytest.approx(2.0)

    def test_bad_samples_dropped(self):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        model.observe("csr", 0.0, 1.0)
        model.observe("csr", 1.0, -1.0)
        model.observe("csr", float("nan"), 1.0)
        model.observe("csr", 1.0, float("inf"))
        assert model.observation_count == 0
        assert model.refine() == {}

    def test_alpha_validated(self):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        for alpha in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError, match="alpha"):
                model.refine(alpha=alpha)

    def test_refine_shrinks_prediction_error(self, csr, kernel):
        """One refine() pass makes the next prediction land on the
        observed wall time (the acceptance round-trip, in miniature)."""
        from repro.model import prediction_error_pct

        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name), 1)
        data = kernel.preprocess(csr)
        predicted = model.run(kernel, data).seconds
        measured = predicted * 37.5  # host much slower than simulator
        error_before = prediction_error_pct(predicted, measured)
        model.observe(kernel.name, predicted, measured)
        model.refine(alpha=1.0)
        error_after = prediction_error_pct(
            model.run(kernel, data).seconds, measured
        )
        assert error_after < 1e-6 < error_before

    def test_refine_changes_signatures(self):
        model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
        sig_before = model.signature()
        key_before = model.cache_signature()
        model.observe("csr", 1.0, 2.0)
        model.refine()
        assert model.signature() != sig_before
        assert model.cache_signature() != key_before


def test_signature_format():
    model = CalibratedModel(KNL, MachineProfile.identity(KNL.name))
    sig = model.signature()
    assert sig == f"calibrated:{model.profile.signature()}"
    assert model.cache_signature() == f"model={sig}"
