"""End-to-end calibration smoke: the acceptance round-trip.

``calibrate --quick`` → a host :class:`~repro.model.MachineProfile` →
a :class:`~repro.model.CalibratedModel` planning and executing through
the pipeline, with execute spans carrying the
``predicted_gflops`` / ``measured_gflops`` / ``model_error_pct``
triple → ``refine()`` demonstrably shrinking the median prediction
error across two runs. This is the same scenario ``check.sh`` stage 8
drives from the CLI.
"""

import numpy as np
import pytest

from repro.kernels import baseline_kernel
from repro.machine import KNL
from repro.matrices.generators import banded
from repro.model import CalibratedModel, MachineProfile, calibrate
from repro.pipeline import PipelineRunner, Tracer


@pytest.fixture(scope="module")
def profile():
    return calibrate(KNL, quick=True, repeats=2)


@pytest.fixture(scope="module")
def csr():
    return banded(4000, nnz_per_row=9, seed=21)


def test_quick_calibration_is_sane(profile):
    assert profile.machine_name == KNL.name
    assert profile.quick and profile.samples >= 2
    assert profile.bandwidth_scale > 0
    assert profile.kernel_scales and all(
        s > 0 for s in profile.kernel_scales.values()
    )
    m = profile.measured
    assert m["stream_bandwidth_gbs"] > 0
    assert m["gather_latency_ns"] > 0
    assert m["parallel"]["nthreads"] == 2
    assert not profile.is_identity


def test_profile_round_trips_through_disk(profile, tmp_path):
    path = tmp_path / "profile.json"
    profile.save(path)
    loaded = MachineProfile.load(path)
    assert loaded.signature() == profile.signature()
    model = CalibratedModel(KNL, loaded)
    assert model.signature() == f"calibrated:{profile.signature()}"


def _median_error(tracer: Tracer) -> float:
    errors = [
        s.attributes["model_error_pct"]
        for s in tracer.spans
        if s.name == "execute" and "model_error_pct" in s.attributes
    ]
    assert errors, "no execute span carried model_error_pct"
    return float(np.median(errors))


def _sweep(model, csr, kernel) -> float:
    """One measured sweep (two runs at a fixed width — per-kernel
    scales cannot absorb per-width effects, so the sweep keeps the
    width constant); returns the median span prediction error."""
    tracer = Tracer()
    runner = PipelineRunner(KNL, tracer=tracer, model=model)
    for _ in range(2):
        result, measured, _ = runner.measure_parallel(
            kernel, csr, 2, schedule="balanced-nnz", repeats=2,
        )
        assert result is not None and measured is not None
    spans = [s for s in tracer.spans if s.name == "execute"]
    for span in spans:
        attrs = span.attributes
        assert attrs["cost_model"] == model.signature()
        assert attrs["predicted_gflops"] > 0
        assert attrs["measured_gflops"] > 0
        assert attrs["model_error_pct"] >= 0
    return _median_error(tracer)


def test_refine_shrinks_span_error_across_runs(profile, csr):
    """The paper's feedback loop, end to end: run → observe → refine →
    run again with a strictly smaller median prediction error.

    The starting profile is deliberately miscalibrated by 100x toward
    under-prediction (over-predicting time saturates the relative
    Gflop/s error at 100%, under-predicting it is unbounded) so the
    initial error is orders of magnitude above timing noise — the
    refinement must collapse it, not just nudge it."""
    kernel = baseline_kernel()
    wrong = MachineProfile(machine_name=KNL.name,
                           kernel_scales={kernel.name: 0.01})
    model = CalibratedModel(KNL, wrong, 1)

    error_before = _sweep(model, csr, kernel)
    assert error_before > 500.0  # percent; way above noise
    assert model.observation_count > 0
    sig_before = model.signature()
    report = model.refine()
    assert kernel.name in report
    assert model.signature() != sig_before

    error_after = _sweep(model, csr, kernel)
    assert error_after < error_before * 0.5


def test_auto_deadline_through_calibrated_model(profile, csr):
    """deadline_seconds='auto' derives the watchdog budget from the
    model's prediction and the run completes undemoted."""
    model = CalibratedModel(KNL, profile)
    runner = PipelineRunner(KNL, model=model)
    result, measured, supervision = runner.measure_parallel(
        baseline_kernel(), csr, 2, schedule="balanced-nnz",
        repeats=1, deadline_seconds="auto",
    )
    assert measured is not None
    assert supervision is not None and not supervision.degraded
