"""MachineProfile persistence and identity semantics."""

import json

import pytest

from repro.machine import KNL
from repro.model import PROFILE_SCHEMA_VERSION, MachineProfile


def _profile() -> MachineProfile:
    return MachineProfile(
        machine_name=KNL.name,
        bandwidth_scale=0.125,
        kernel_scales={"csr": 3.5, "csr+delta+vec": 2.75},
        measured={"stream_bandwidth_gbs": 24.5, "gather_latency_ns": 2.0},
        host="testhost",
        quick=True,
        samples=2,
    )


def test_identity_profile():
    p = MachineProfile.identity(KNL.name)
    assert p.is_identity
    assert p.bandwidth_scale == 1.0
    assert p.default_scale == 1.0
    assert p.scale_for("anything") == 1.0
    assert not _profile().is_identity


def test_round_trip_dict():
    p = _profile()
    q = MachineProfile.from_dict(p.to_dict())
    assert q.machine_name == p.machine_name
    assert q.bandwidth_scale == p.bandwidth_scale
    assert q.kernel_scales == p.kernel_scales
    assert q.measured == p.measured
    assert q.host == p.host and q.quick == p.quick
    assert q.signature() == p.signature()


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "profile.json"
    p = _profile()
    p.save(path)
    q = MachineProfile.load(path)
    assert q.signature() == p.signature()
    assert q.kernel_scales == p.kernel_scales
    # checksummed envelope on disk
    payload = json.loads(path.read_text())
    assert set(payload) == {"checksum", "body"}
    assert payload["body"]["schema_version"] == PROFILE_SCHEMA_VERSION


def test_load_rejects_corruption(tmp_path):
    path = tmp_path / "profile.json"
    _profile().save(path)
    payload = json.loads(path.read_text())
    payload["body"]["bandwidth_scale"] = 99.0
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="checksum mismatch"):
        MachineProfile.load(path)


def test_load_rejects_wrong_schema(tmp_path):
    from repro.model.signature import write_checksummed

    path = tmp_path / "profile.json"
    body = _profile().to_dict()
    body["schema_version"] = PROFILE_SCHEMA_VERSION + 1
    write_checksummed(path, body)
    with pytest.raises(ValueError, match="schema"):
        MachineProfile.load(path)


def test_signature_covers_only_prediction_relevant_fields():
    a = _profile()
    b = _profile()
    b.measured = {}
    b.host = "elsewhere"
    b.samples = 99
    assert a.signature() == b.signature()
    b.kernel_scales = dict(a.kernel_scales, csr=3.6)
    assert a.signature() != b.signature()
    c = _profile()
    c.bandwidth_scale = 0.25
    assert a.signature() != c.signature()
