"""Pinning tests for the canonical content-hash helpers.

These digests and string formats are persisted-cache key components:
plan caches saved by earlier builds embed them verbatim. A change here
is a silent cache invalidation for every user, so the exact outputs are
pinned — if one of these tests fails, either revert the hash change or
bump the persisted schema version deliberately.
"""

import json

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.model.signature import (
    body_checksum,
    canonical_body,
    mapping_signature,
    matrix_fingerprint,
    read_checksummed,
    values_digest,
    write_checksummed,
)


def _fixed_matrix() -> CSRMatrix:
    """A tiny fully-deterministic matrix (no RNG, no platform floats)."""
    rowptr = np.array([0, 2, 3, 5], dtype=np.int64)
    colind = np.array([0, 2, 1, 0, 2], dtype=np.int64)
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    return CSRMatrix(rowptr, colind, values, (3, 3))


class TestMatrixFingerprint:
    def test_digest_is_pinned(self):
        """The exact hex digest of a fixed matrix must never drift —
        persisted plan-cache keys contain it."""
        h = matrix_fingerprint(_fixed_matrix())
        import hashlib

        ref = hashlib.blake2b(digest_size=16)
        ref.update(np.array([3, 3, 5], dtype=np.int64).tobytes())
        for arr in (_fixed_matrix().rowptr, _fixed_matrix().colind):
            a = np.ascontiguousarray(arr)
            ref.update(a.dtype.str.encode("ascii"))
            ref.update(a.tobytes())
        assert h == ref.hexdigest()
        # 128-bit hex
        assert len(h) == 32

    def test_structure_only(self):
        a = _fixed_matrix()
        b = _fixed_matrix()
        b.values[:] = 9.0
        assert matrix_fingerprint(a) == matrix_fingerprint(b)
        assert values_digest(a) != values_digest(b)

    def test_dtype_distinguishes(self):
        """The hash covers dtype strings, so an int32 and an int64 array
        with equal logical content cannot alias (CSRMatrix itself
        canonicalizes dtypes; test the hash on a raw stand-in)."""
        from types import SimpleNamespace

        def stub(dtype):
            a = _fixed_matrix()
            return SimpleNamespace(
                shape=(3, 3), nnz=a.nnz,
                rowptr=a.rowptr.astype(dtype),
                colind=a.colind.astype(dtype),
            )

        assert (matrix_fingerprint(stub(np.int64))
                != matrix_fingerprint(stub(np.int32)))

    def test_core_reexport_is_same_object(self):
        """core re-exports the one canonical implementation."""
        from repro.core import matrix_fingerprint as from_core
        from repro.core.optimizer import matrix_fingerprint as from_opt

        assert from_core is matrix_fingerprint
        assert from_opt is matrix_fingerprint


class TestMappingSignature:
    def test_format_is_pinned(self):
        """The exact string layout is a plan-cache key component."""

        def chooser(features):  # pragma: no cover - never called
            return "x"

        sig = mapping_signature(
            {"MB": "compression", "IMB": chooser},
            {"uneven_row_ratio": 32.0},
        )
        assert sig == (
            "IMB=callable:tests.model.test_signature."
            "TestMappingSignature.test_format_is_pinned.<locals>.chooser;"
            "MB=compression|uneven_row_ratio=32.0"
        )

    def test_pool_delegates_and_format_unchanged(self):
        """OptimizationPool.content_signature must produce the exact
        pre-refactor inline format (legacy persisted keys embed it)."""
        from repro.core.pool import OptimizationPool

        sig = OptimizationPool().content_signature()
        assert sig == (
            "CMP=unrolling;"
            "IMB=callable:repro.core.pool.OptimizationPool.imb_strategy;"
            "MB=compression;ML=prefetching|uneven_row_ratio=32.0"
        )

    def test_equal_content_equal_signature(self):
        from repro.core.pool import OptimizationPool

        assert (OptimizationPool().content_signature()
                == OptimizationPool().content_signature())


class TestChecksummedEnvelope:
    def test_canonical_body_is_key_order_independent(self):
        assert (canonical_body({"a": 1, "b": [2, 3]})
                == canonical_body({"b": [2, 3], "a": 1}))
        assert body_checksum({"x": 1.5}) == body_checksum({"x": 1.5})

    def test_round_trip(self, tmp_path):
        path = tmp_path / "artifact.json"
        body = {"schema_version": 1, "values": [1.0, 2.5], "name": "p"}
        write_checksummed(path, body)
        assert read_checksummed(path) == body
        payload = json.loads(path.read_text())
        assert set(payload) == {"checksum", "body"}

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_checksummed(path, {"v": 1})
        payload = json.loads(path.read_text())
        payload["body"]["v"] = 2  # silent bit-flip
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checksum mismatch"):
            read_checksummed(path)

    def test_garbage_rejected_with_reason(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not parseable"):
            read_checksummed(path)
        path.write_text('{"no": "envelope"}')
        with pytest.raises(ValueError, match="envelope"):
            read_checksummed(path)

    def test_atomic_write_leaves_no_temp(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_checksummed(path, {"v": 1})
        write_checksummed(path, {"v": 2})  # overwrite path
        assert read_checksummed(path) == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]
