"""Plan-cache key compatibility across the cost-model refactor.

Two invariants:

* an :class:`~repro.model.AnalyticModel` (the default) contributes
  NOTHING to cache keys — persisted caches from pre-model builds
  warm-start byte-for-byte;
* a :class:`~repro.model.CalibratedModel` folds its profile digest in,
  so recalibration (or :meth:`~repro.model.CalibratedModel.refine`)
  invalidates plans tuned against the stale profile.
"""

import pytest

from repro.core import (
    PLAN_SCHEMA_VERSION,
    AdaptiveSpMV,
    OptimizationPlan,
    PlanCache,
)
from repro.machine import BROADWELL, KNL
from repro.matrices.generators import banded
from repro.model import AnalyticModel, CalibratedModel, MachineProfile


@pytest.fixture(scope="module")
def csr():
    return banded(1500, nnz_per_row=7, seed=11)


def test_analytic_execution_signature_is_legacy_exact():
    """The exact pre-model string — persisted keys embed it."""
    opt = AdaptiveSpMV(KNL, classifier="profile")
    assert opt._execution_signature() == "nthreads=default;serial"
    opt4 = AdaptiveSpMV(KNL, classifier="profile", nthreads=4)
    assert opt4._execution_signature() == "nthreads=4;serial"


def test_explicit_analytic_model_same_key(csr):
    default = AdaptiveSpMV(KNL, classifier="profile")
    explicit = AdaptiveSpMV(KNL, classifier="profile",
                            model=AnalyticModel(KNL))
    from repro.model import matrix_fingerprint

    fp = matrix_fingerprint(csr)
    assert default._cache_key(fp) == explicit._cache_key(fp)


def test_calibrated_model_changes_key(csr):
    from repro.model import matrix_fingerprint

    profile = MachineProfile(machine_name=KNL.name,
                             kernel_scales={"csr": 2.0})
    analytic = AdaptiveSpMV(KNL, classifier="profile")
    calibrated = AdaptiveSpMV(KNL, classifier="profile",
                              model=CalibratedModel(KNL, profile))
    fp = matrix_fingerprint(csr)
    key_a = analytic._cache_key(fp)
    key_c = calibrated._cache_key(fp)
    assert key_a != key_c
    assert f"model=calibrated:{profile.signature()}" in key_c[-1]
    # ...and refining moves the key again
    calibrated.model.observe("csr", 1.0, 3.0)
    calibrated.model.refine()
    assert calibrated._cache_key(fp) != key_c


def test_adaptive_rejects_foreign_model():
    with pytest.raises(ValueError, match="model targets machine"):
        AdaptiveSpMV(KNL, classifier="profile",
                     model=AnalyticModel(BROADWELL))


def test_plan_ir_v3_round_trip(csr):
    opt = AdaptiveSpMV(
        KNL, classifier="profile",
        model=CalibratedModel(KNL, MachineProfile.identity(KNL.name)),
    )
    plan = opt.plan(csr)
    assert plan.cost_model.startswith("calibrated:")
    payload = plan.to_dict()
    assert payload["schema_version"] == PLAN_SCHEMA_VERSION == 3
    restored = OptimizationPlan.from_dict(payload)
    assert restored.cost_model == plan.cost_model


def test_plan_ir_accepts_legacy_versions(csr):
    """v1/v2 payloads (pre-cost-model builds) still load and upgrade to
    the analytic default."""
    plan = AdaptiveSpMV(KNL, classifier="profile").plan(csr)
    payload = plan.to_dict()
    for legacy_version in (1, 2):
        legacy = dict(payload)
        legacy["schema_version"] = legacy_version
        legacy.pop("cost_model", None)
        if legacy_version == 1:
            legacy.pop("executor_spec", None)
        restored = OptimizationPlan.from_dict(legacy)
        assert restored.cost_model == "analytic"
    bad = dict(payload, schema_version=99)
    with pytest.raises(ValueError, match="schema"):
        OptimizationPlan.from_dict(bad)


def test_persisted_cache_warm_starts_across_models(csr, tmp_path):
    """A cache persisted under the default model warm-starts an
    explicitly-analytic optimizer (same key), and does NOT serve a
    calibrated one (different key)."""
    path = tmp_path / "plans.json"
    first = AdaptiveSpMV(KNL, classifier="profile")
    first.optimize(csr)
    first.plan_cache.save(path)

    warm = AdaptiveSpMV(KNL, classifier="profile",
                        model=AnalyticModel(KNL),
                        plan_cache=PlanCache.load(path))
    assert warm.plan(csr).cache_hit

    profile = MachineProfile(machine_name=KNL.name,
                             kernel_scales={"csr": 2.0})
    cold = AdaptiveSpMV(KNL, classifier="profile",
                        model=CalibratedModel(KNL, profile),
                        plan_cache=PlanCache.load(path))
    assert not cold.plan(csr).cache_hit
