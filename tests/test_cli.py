"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_suite_command(capsys):
    assert main(["suite", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "consph" in out and "ASIC_680k" in out


def test_analyze_named_matrix(capsys):
    assert main(["analyze", "ASIC_680k", "--platform", "knl",
                 "--scale", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "bounds on knl" in out
    assert "classes:" in out
    assert "optimized:" in out


def test_analyze_mtx_file(tmp_path, capsys, banded_csr):
    from repro.matrices import write_matrix_market

    path = tmp_path / "m.mtx"
    write_matrix_market(banded_csr, path)
    assert main(["analyze", str(path), "--platform", "knc"]) == 0
    assert "P_CSR" in capsys.readouterr().out


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for key in ("fig1", "fig7-knl", "table5", "ablation-imb"):
        assert key in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_experiment_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Xeon Phi" in out


def test_bench_command_writes_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--rhs", "4", "--scale", "0.004",
                 "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "geomean batched speedup" in out
    assert (tmp_path / "BENCH_kernels.json").exists()

    import json

    payload = json.loads((tmp_path / "BENCH_kernels.json").read_text())
    assert payload["rhs"] == 4
    assert payload["kernels"]


def test_bench_command_skip_output(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--rhs", "2", "--scale", "0.004",
                 "--repeats", "1", "--output", "-"]) == 0
    assert "wrote" not in capsys.readouterr().out
    assert not (tmp_path / "BENCH_kernels.json").exists()


def test_bench_rejects_zero_rhs(capsys):
    assert main(["bench", "--rhs", "0"]) == 2
    assert "--rhs must be >= 1" in capsys.readouterr().err


def test_parallel_command_reports_supervision(capsys):
    assert main(["parallel", "consph", "--platform", "knl",
                 "--scale", "0.05", "--threads", "1,2",
                 "--schedule", "balanced-nnz", "--repeats", "1",
                 "--deadline-ms", "60000", "--max-retries", "1"]) == 0
    out = capsys.readouterr().out
    assert "imb (cpu)" in out
    # A generous budget on a tiny matrix never demotes, and the report
    # says so explicitly rather than staying silent.
    assert "degradation ladder: no demotions" in out


def test_parallel_command_rejects_bad_threads(capsys):
    assert main(["parallel", "consph", "--threads", "0,2"]) == 2
    assert "bad thread list" in capsys.readouterr().err


def test_analyze_reports_cache_hit(capsys):
    assert main(["analyze", "consph", "--platform", "knl",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "repeat build: cache_hit=True, overhead 0.00 ms" in out


def test_plan_explain_charges_sum_to_plan_overhead(capsys):
    assert main(["plan", "consph", "--platform", "knl",
                 "--scale", "0.05", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "cache_hit=False" in out
    # one row per planning stage in pipeline order
    for stage in ("cache", "analyze", "classify", "select", "transform"):
        assert f"\n{stage}" in out or out.startswith(stage)
    import re

    m = re.search(
        r"stage charges sum to ([0-9.]+) ms; "
        r"plan total overhead is ([0-9.]+) ms",
        out,
    )
    assert m, out
    assert m.group(1) == m.group(2)


def test_plan_cache_roundtrip_across_invocations(tmp_path, capsys):
    cache = tmp_path / "plans.json"
    assert main(["plan", "consph", "--platform", "knl", "--scale",
                 "0.05", "--save-cache", str(cache)]) == 0
    first = capsys.readouterr().out
    assert "cache_hit=False" in first
    assert cache.exists()

    assert main(["plan", "consph", "--platform", "knl", "--scale",
                 "0.05", "--cache", str(cache), "--explain"]) == 0
    second = capsys.readouterr().out
    assert "loaded plan cache" in second
    assert "cache_hit=True" in second


def test_trace_emits_schema_versioned_spans(capsys):
    assert main(["trace", "consph", "--platform", "knl",
                 "--scale", "0.05"]) == 0
    import json

    from repro.pipeline import TRACE_SCHEMA_VERSION

    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == TRACE_SCHEMA_VERSION
    names = [s["name"] for s in payload["spans"]]
    for stage in ("analyze", "classify", "select", "transform",
                  "execute"):
        assert stage in names
    execute = payload["spans"][names.index("execute")]
    assert execute["attributes"]["gflops"] > 0


def test_trace_writes_file(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "consph", "--platform", "knl",
                 "--scale", "0.05", "--output", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["spans"]


def test_validate_accepts_good_file(tmp_path, capsys, banded_csr):
    from repro.matrices import write_matrix_market

    path = tmp_path / "good.mtx"
    write_matrix_market(banded_csr, path)
    assert main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and f"nnz={banded_csr.nnz}" in out


def test_validate_rejects_nan_values(tmp_path, capsys, banded_csr):
    from repro.guard import inject_value_fault
    from repro.matrices import write_matrix_market

    path = tmp_path / "nan.mtx"
    write_matrix_market(inject_value_fault(banded_csr, "nan"), path)
    assert main(["validate", str(path)]) == 1
    err = capsys.readouterr().err
    assert "INVALID" in err and "non-finite-values" in err
    # structure-only validation lets the same file through
    assert main(["validate", str(path), "--no-values"]) == 0


def test_validate_rejects_corrupt_stream(tmp_path, capsys, banded_csr):
    import io

    from repro.guard import corrupt_matrix_market
    from repro.matrices import write_matrix_market

    buf = io.StringIO()
    write_matrix_market(banded_csr, buf)
    path = tmp_path / "corrupt.mtx"
    path.write_text(
        corrupt_matrix_market(buf.getvalue(), "malformed-entry")
    )
    assert main(["validate", str(path)]) == 1
    err = capsys.readouterr().err
    assert "INVALID" in err and "line " in err


def test_validate_missing_file(capsys):
    assert main(["validate", "/no/such/file.mtx"]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_parser_rejects_bad_platform():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["analyze", "x", "--platform", "epyc"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_train_command_saves_classifier(tmp_path, capsys):
    out = tmp_path / "clf.json"
    assert main(["train", str(out), "--platform", "knl",
                 "--count", "8", "--seed", "9"]) == 0
    assert out.exists()
    text = capsys.readouterr().out
    assert "saved to" in text

    from repro.core import FeatureGuidedClassifier

    clf = FeatureGuidedClassifier.load(out)
    assert clf.machine.codename == "knl"


def test_export_suite_roundtrips(tmp_path, capsys):
    assert main(["export-suite", str(tmp_path), "--scale", "0.05"]) == 0
    files = sorted(tmp_path.glob("*.mtx"))
    assert len(files) >= 18

    from repro.matrices import named_matrix, read_matrix_market

    back = read_matrix_market(tmp_path / "consph.mtx")
    ref = named_matrix("consph", scale=0.05)
    assert back.shape == ref.shape and back.nnz == ref.nnz
