"""Unit tests for the rule-based (Fig. 5) classifier."""

import pytest

from repro.core import (
    Bottleneck,
    PerformanceBounds,
    ProfileGuidedClassifier,
    ProfileThresholds,
    classify_from_bounds,
)
from repro.machine import KNC


def _bounds(p_csr=10.0, p_mb=20.0, p_ml=11.0, p_imb=10.5, p_cmp=30.0,
            p_peak=40.0):
    return PerformanceBounds(
        p_csr=p_csr, p_mb=p_mb, p_ml=p_ml, p_imb=p_imb, p_cmp=p_cmp,
        p_peak=p_peak, baseline=None, machine_codename="test",
    )


def test_default_thresholds_match_paper():
    th = ProfileThresholds()
    assert th.t_ml == 1.25
    assert th.t_imb == 1.24


def test_ml_rule():
    assert Bottleneck.ML in classify_from_bounds(_bounds(p_ml=13.0))
    assert Bottleneck.ML not in classify_from_bounds(_bounds(p_ml=12.0))


def test_imb_rule():
    assert Bottleneck.IMB in classify_from_bounds(_bounds(p_imb=13.0))
    assert Bottleneck.IMB not in classify_from_bounds(_bounds(p_imb=12.0))


def test_mb_rule_requires_near_bound_and_cmp_window():
    # P_CSR ~ P_MB and P_MB < P_CMP < P_peak
    got = classify_from_bounds(
        _bounds(p_csr=16.0, p_mb=20.0, p_cmp=30.0, p_peak=40.0)
    )
    assert Bottleneck.MB in got
    # baseline far from the bound: not MB
    got = classify_from_bounds(
        _bounds(p_csr=10.0, p_mb=20.0, p_cmp=30.0, p_peak=40.0)
    )
    assert Bottleneck.MB not in got


def test_cmp_rule_low_cmp_bound():
    """P_MB > P_CMP -> compute-limited."""
    got = classify_from_bounds(_bounds(p_mb=20.0, p_cmp=15.0))
    assert Bottleneck.CMP in got


def test_cmp_rule_cache_resident():
    """P_CMP > P_peak -> cache-resident regime."""
    got = classify_from_bounds(_bounds(p_cmp=50.0, p_peak=40.0))
    assert Bottleneck.CMP in got


def test_empty_class_set_possible():
    got = classify_from_bounds(
        _bounds(p_csr=10.0, p_mb=20.0, p_ml=11.0, p_imb=10.5,
                p_cmp=30.0, p_peak=40.0)
    )
    assert got == frozenset()


def test_multilabel_output():
    got = classify_from_bounds(
        _bounds(p_csr=10.0, p_ml=20.0, p_imb=20.0, p_mb=25.0, p_cmp=15.0)
    )
    assert {Bottleneck.ML, Bottleneck.IMB, Bottleneck.CMP} <= got


def test_threshold_validation():
    with pytest.raises(ValueError):
        ProfileThresholds(t_ml=0.9)
    with pytest.raises(ValueError):
        ProfileThresholds(t_imb=1.0)
    with pytest.raises(ValueError):
        ProfileThresholds(t_mb=0.0)


def test_nonpositive_baseline_rejected():
    with pytest.raises(ValueError):
        classify_from_bounds(_bounds(p_csr=0.0))


def test_classifier_end_to_end(banded_csr):
    clf = ProfileGuidedClassifier(KNC)
    classes, cost = clf.classify_with_cost(banded_csr)
    assert isinstance(classes, frozenset)
    assert cost > 0.0
    assert clf.classify(banded_csr) == classes  # deterministic


def test_custom_thresholds_change_outcome(banded_csr):
    strict = ProfileGuidedClassifier(
        KNC, ProfileThresholds(t_ml=5.0, t_imb=5.0, t_mb=1.0)
    )
    got = strict.classify(banded_csr)
    assert Bottleneck.ML not in got and Bottleneck.IMB not in got
