"""Tests for the plug-and-play pool extension point.

The paper's Section V argues its decisive advantage over format-
selection autotuners: "our decision-making approach allows an
autotuning framework to be easily extended, simply by assigning the
new optimization to one of the classes." These tests exercise exactly
that workflow.
"""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV, Bottleneck, OptimizationPool
from repro.kernels import (
    SpMVConfig,
    pool_kernel,
    register_pool_optimization,
    registered_pool_names,
)
from repro.machine import KNL
from repro.matrices.features import extract_features


@pytest.fixture
def custom_name():
    """Register a fresh custom optimization (idempotent per session)."""
    name = "compression-16-forced"
    if name not in registered_pool_names():
        register_pool_optimization(
            name, SpMVConfig(compress=True, vectorize=True, delta_width=16)
        )
    return name


def test_register_and_resolve(custom_name):
    kernel = pool_kernel(custom_name)
    assert kernel.config.delta_width == 16
    assert custom_name in registered_pool_names()


def test_cannot_shadow_canonical():
    with pytest.raises(ValueError, match="shadow"):
        register_pool_optimization("compression", SpMVConfig())


def test_register_validates_config():
    with pytest.raises(TypeError):
        register_pool_optimization("bogus-entry", {"compress": True})


def test_override_mb_mapping(custom_name, banded_csr):
    pool = OptimizationPool().override(MB=custom_name)
    f = extract_features(banded_csr)
    assert pool.select({Bottleneck.MB}, f) == (custom_name,)
    kernel = pool.kernel_for({Bottleneck.MB}, f)
    assert kernel.config.delta_width == 16


def test_override_with_callable(banded_csr):
    pool = OptimizationPool().override(
        CMP=lambda features: "unrolling" if features.nnz_avg > 4
        else "prefetching"
    )
    f = extract_features(banded_csr)
    assert pool.select({Bottleneck.CMP}, f) == ("unrolling",)


def test_override_validation():
    pool = OptimizationPool()
    with pytest.raises(ValueError, match="unknown class"):
        pool.override(XXL="compression")
    with pytest.raises(TypeError):
        pool.override(MB=42)


def test_mapping_constructor_arg(banded_csr):
    pool = OptimizationPool(
        mapping={Bottleneck.ML: "unrolling"}
    )
    f = extract_features(banded_csr)
    assert pool.select({Bottleneck.ML}, f) == ("unrolling",)


def test_custom_pool_flows_through_optimizer(custom_name):
    """End to end: optimizer + overridden pool, no classifier change."""
    from repro.matrices.generators import banded

    csr = banded(60_000, nnz_per_row=24, bandwidth=60, seed=5)
    pool = OptimizationPool().override(MB=custom_name)
    opt = AdaptiveSpMV(KNL, classifier="profile", pool=pool)
    operator = opt.optimize(csr)
    if Bottleneck.MB in operator.plan.classes:
        assert operator.plan.optimizations == (custom_name,)
    # numeric plane still exact
    x = np.random.default_rng(0).standard_normal(csr.ncols)
    np.testing.assert_allclose(operator.matvec(x), csr.matvec(x),
                               rtol=1e-12)
