"""Unit tests for the partitioned irregularity detector (future work
section of the paper, implemented here as an extension)."""

import pytest

from repro.core import (
    Bottleneck,
    ExtendedProfileClassifier,
    PartitionedMLDetector,
    ProfileGuidedClassifier,
)
from repro.machine import KNC
from repro.matrices import named_matrix
from repro.matrices.generators import banded, random_uniform, with_dense_rows


@pytest.fixture(scope="module")
def rajat30_like():
    """Scattered short rows + dense rows: the paper's missed ML case."""
    return named_matrix("rajat30", scale=1.0)


def test_detector_finds_hidden_ml(rajat30_like):
    det = PartitionedMLDetector(KNC)
    report = det.analyze(rajat30_like)
    # the whole-matrix gain is below threshold (the paper's miss) ...
    assert report.whole_matrix_gain < det.t_ml
    # ... but partition-level analysis exposes the irregular region
    assert report.max_gain > det.t_ml
    assert report.detected


def test_detector_quiet_on_regular():
    regular = banded(80_000, nnz_per_row=16, bandwidth=40, seed=1)
    report = PartitionedMLDetector(KNC).analyze(regular)
    assert not report.detected
    assert report.ml_nnz_fraction == 0.0


def test_detector_consistent_with_global_on_uniform_scatter():
    """On a homogeneous scattered matrix, partitioning adds nothing:
    global and partition gains agree."""
    scattered = random_uniform(120_000, nnz_per_row=16.0, seed=2)
    det = PartitionedMLDetector(KNC)
    report = det.analyze(scattered)
    assert report.whole_matrix_gain > det.t_ml
    assert report.detected


def test_extended_classifier_adds_ml(rajat30_like):
    std = ProfileGuidedClassifier(KNC).classify(rajat30_like)
    ext = ExtendedProfileClassifier(KNC).classify(rajat30_like)
    assert Bottleneck.ML not in std      # the paper's miss, reproduced
    assert Bottleneck.ML in ext          # the future-work fix
    assert std <= ext                    # strictly additive


def test_extended_classifier_charges_extra_cost(rajat30_like):
    std = ProfileGuidedClassifier(KNC)
    ext = ExtendedProfileClassifier(KNC)
    _, c_std = std.classify_with_cost(rajat30_like)
    _, c_ext = ext.classify_with_cost(rajat30_like)
    assert c_ext > c_std


def test_extended_classifier_skips_detector_when_ml_already_found():
    scattered = random_uniform(120_000, nnz_per_row=16.0, seed=3)
    ext = ExtendedProfileClassifier(KNC)
    std = ProfileGuidedClassifier(KNC)
    classes_ext, cost_ext = ext.classify_with_cost(scattered)
    classes_std, cost_std = std.classify_with_cost(scattered)
    assert Bottleneck.ML in classes_std
    assert classes_ext == classes_std
    assert cost_ext == pytest.approx(cost_std)


def test_extended_classifier_plugs_into_optimizer(rajat30_like):
    from repro.core import AdaptiveSpMV
    from repro.machine import KNC as M

    opt = AdaptiveSpMV(M, classifier=ExtendedProfileClassifier(M))
    operator = opt.optimize(rajat30_like)
    assert "prefetching" in operator.plan.optimizations


def test_partition_gain_accounting(rajat30_like):
    det = PartitionedMLDetector(KNC, n_partitions=4)
    report = det.analyze(rajat30_like)
    assert len(report.partitions) <= 4
    assert sum(p.nnz for p in report.partitions) == rajat30_like.nnz
    assert det.profiling_seconds(report) > 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        PartitionedMLDetector(KNC, n_partitions=1)
    with pytest.raises(ValueError):
        PartitionedMLDetector(KNC, t_ml=1.0)
    with pytest.raises(ValueError):
        PartitionedMLDetector(KNC, min_nnz_fraction=0.0)
