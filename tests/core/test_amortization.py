"""Unit tests for the amortization analysis (paper Table V)."""

import math

import pytest

from repro.core import AmortizationCase, AmortizationSummary, amortization_study
from repro.machine import KNC, KNL
from repro.matrices import named_matrix


def test_case_iteration_formula():
    c = AmortizationCase("x", "m", t_pre=1.0, t_mkl=0.010, t_opt=0.008)
    assert c.n_iters_min == pytest.approx(1.0 / 0.002)


def test_case_never_beneficial_is_inf():
    c = AmortizationCase("x", "m", t_pre=1.0, t_mkl=0.010, t_opt=0.020)
    assert math.isinf(c.n_iters_min)


def test_summary_statistics():
    cases = [
        AmortizationCase("x", "a", 1.0, 0.01, 0.005),   # 200
        AmortizationCase("x", "b", 1.0, 0.01, 0.009),   # 1000
        AmortizationCase("x", "c", 1.0, 0.01, 0.020),   # inf (excluded)
    ]
    s = AmortizationSummary.from_cases("x", cases)
    assert s.n_best == pytest.approx(200)
    assert s.n_worst == pytest.approx(1000)
    assert s.n_beneficial == 2 and s.n_total == 3


def test_summary_all_inf():
    cases = [AmortizationCase("x", "a", 1.0, 0.01, 0.020)]
    s = AmortizationSummary.from_cases("x", cases)
    assert math.isinf(s.n_avg) and s.n_beneficial == 0


@pytest.fixture(scope="module")
def study_knl():
    suite = [
        (name, named_matrix(name, scale=0.25))
        for name in ("ASIC_680k", "poisson3Db", "webbase-1M")
    ]
    return amortization_study(suite, KNL)


def test_study_produces_expected_rows(study_knl):
    assert set(study_knl) == {
        "trivial-single", "trivial-combined", "profile-guided",
        "mkl-inspector-executor",
    }


def test_paper_table5_ordering(study_knl):
    """trivial-combined > trivial-single > profile-guided on average."""
    avg = {k: v.n_avg for k, v in study_knl.items()}
    assert avg["trivial-combined"] > avg["trivial-single"]
    assert avg["trivial-single"] > avg["profile-guided"]


def test_knc_skips_inspector_executor():
    suite = [("ASIC_680k", named_matrix("ASIC_680k", scale=0.2))]
    res = amortization_study(suite, KNC)
    assert "mkl-inspector-executor" not in res


def test_empty_suite_rejected():
    with pytest.raises(ValueError):
        amortization_study([], KNL)
