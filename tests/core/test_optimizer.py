"""Unit tests for the end-to-end adaptive optimizer."""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV, Bottleneck
from repro.machine import ExecutionEngine, KNC, KNL
from repro.kernels import baseline_kernel


@pytest.fixture(scope="module")
def skewed_big():
    from repro.matrices.generators import banded, with_dense_rows

    return with_dense_rows(
        banded(60_000, nnz_per_row=4, bandwidth=8, seed=21),
        n_dense=3, dense_nnz=40_000, seed=22,
    )


@pytest.fixture(scope="module")
def scattered_big():
    from repro.matrices.generators import random_uniform

    return random_uniform(120_000, nnz_per_row=16.0, seed=23)


def test_plan_reports_decision_and_setup(skewed_big):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    plan = opt.plan(skewed_big)
    assert plan.decision_seconds > 0
    assert plan.total_overhead_seconds >= plan.decision_seconds
    assert plan.classifier_kind == "profile-guided"
    assert "classes=" in str(plan)


def test_optimize_improves_skewed(skewed_big):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    operator = opt.optimize(skewed_big)
    assert Bottleneck.IMB in operator.plan.classes
    assert "decomposition" in operator.plan.optimizations
    engine = ExecutionEngine(KNL)
    base = baseline_kernel()
    r_base = engine.run(base, base.preprocess(skewed_big))
    assert operator.simulate().gflops > 2.0 * r_base.gflops


def test_optimize_improves_scattered_on_knc(scattered_big):
    opt = AdaptiveSpMV(KNC, classifier="profile")
    operator = opt.optimize(scattered_big)
    assert Bottleneck.ML in operator.plan.classes
    engine = ExecutionEngine(KNC)
    base = baseline_kernel()
    r_base = engine.run(base, base.preprocess(scattered_big))
    assert operator.simulate().gflops > 1.25 * r_base.gflops


def test_numeric_plane_exact(skewed_big, rng):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    operator = opt.optimize(skewed_big)
    x = rng.standard_normal(skewed_big.ncols)
    np.testing.assert_allclose(
        operator.matvec(x), skewed_big.matvec(x), rtol=1e-12
    )
    # operator is also usable via @
    np.testing.assert_allclose(operator @ x, operator.matvec(x))


def test_unclassified_matrix_gets_baseline(banded_csr):
    """A small regular matrix on KNC may be 'not worth optimizing' —
    in that case the operator must be the plain baseline."""
    opt = AdaptiveSpMV(KNC, classifier="profile")
    operator = opt.optimize(banded_csr)
    if not operator.plan.optimizations:
        assert operator.kernel.name == "csr"


def test_feature_classifier_integration(skewed_big):
    from repro.core import FeatureGuidedClassifier
    from repro.matrices import training_suite

    corpus = [t.matrix for t in training_suite(count=12, seed=11,
                                               min_rows=8_000,
                                               max_rows=20_000)]
    clf = FeatureGuidedClassifier(KNL).fit_from_matrices(corpus)
    opt = AdaptiveSpMV(KNL, classifier=clf)
    operator = opt.optimize(skewed_big)
    assert operator.plan.classifier_kind == "feature-guided"
    assert operator.plan.decision_seconds < 0.01  # cheap by design


def test_invalid_classifier_rejected():
    with pytest.raises(TypeError):
        AdaptiveSpMV(KNL, classifier=42)


def test_custom_duck_typed_classifier(banded_csr):
    class Fixed:
        def classify_with_cost(self, csr):
            return frozenset({Bottleneck.MB}), 0.001

    opt = AdaptiveSpMV(KNL, classifier=Fixed())
    operator = opt.optimize(banded_csr)
    assert operator.plan.optimizations == ("compression",)


def test_operator_shape_property(banded_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    operator = opt.optimize(banded_csr)
    assert operator.shape == banded_csr.shape
