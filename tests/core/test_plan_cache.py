"""Tests for the operator plan cache (structural fingerprinting)."""

import numpy as np
import pytest

from repro.core import AdaptiveSpMV, PlanCache, matrix_fingerprint
from repro.core.optimizer import _values_digest
from repro.formats import CSRMatrix
from repro.machine import KNL


def _with_values(csr, values):
    return CSRMatrix(csr.rowptr, csr.colind, values, csr.shape)


# -- fingerprint -------------------------------------------------------


def test_fingerprint_is_structural(small_random_csr, rng):
    fp = matrix_fingerprint(small_random_csr)
    same_structure = _with_values(
        small_random_csr, rng.standard_normal(small_random_csr.nnz)
    )
    assert matrix_fingerprint(same_structure) == fp
    assert _values_digest(same_structure) != _values_digest(
        small_random_csr
    )


def test_fingerprint_distinguishes_structure(small_random_csr,
                                             scattered_csr):
    assert matrix_fingerprint(small_random_csr) != matrix_fingerprint(
        scattered_csr
    )
    # same nnz pattern length, different column = different fingerprint
    a = CSRMatrix([0, 2], [0, 1], [1.0, 2.0], (1, 4))
    b = CSRMatrix([0, 2], [0, 2], [1.0, 2.0], (1, 4))
    assert matrix_fingerprint(a) != matrix_fingerprint(b)


# -- cache semantics ---------------------------------------------------


def test_second_optimize_hits_cache(small_random_csr, x300):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    first = opt.optimize(small_random_csr)
    assert not first.plan.cache_hit
    assert first.plan.total_overhead_seconds > 0.0

    second = opt.optimize(small_random_csr)
    assert second.plan.cache_hit
    assert second.plan.decision_seconds == 0.0
    assert second.plan.setup_seconds == 0.0
    assert second.plan.total_overhead_seconds == 0.0
    # identical decision and reused converted data
    assert second.plan.kernel_name == first.plan.kernel_name
    assert second.data is first.data
    np.testing.assert_allclose(
        second.matvec(x300), first.matvec(x300), rtol=1e-15
    )
    assert opt.plan_cache.hits == 1
    assert opt.plan_cache.misses == 1


def test_same_structure_new_values_reuses_decision(small_random_csr, rng,
                                                   x300):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    opt.optimize(small_random_csr)
    changed = _with_values(
        small_random_csr, rng.standard_normal(small_random_csr.nnz)
    )
    op = opt.optimize(changed)
    assert op.plan.cache_hit
    assert op.plan.decision_seconds == 0.0
    assert op.plan.setup_seconds > 0.0  # conversion re-ran, stays charged
    np.testing.assert_allclose(
        op.matvec(x300), changed.matvec(x300), rtol=1e-9, atol=1e-9
    )


def test_plan_hits_cache_too(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    first = opt.plan(small_random_csr)
    assert not first.cache_hit and first.decision_seconds > 0.0
    second = opt.plan(small_random_csr)
    assert second.cache_hit and second.decision_seconds == 0.0


def test_shared_cache_across_optimizers(small_random_csr):
    shared = PlanCache()
    a = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared)
    b = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared)
    a.optimize(small_random_csr)
    op = b.optimize(small_random_csr)
    assert op.plan.cache_hit
    assert shared.hits == 1 and shared.misses == 1


def test_cache_disabled(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=False)
    assert opt.plan_cache is None
    opt.optimize(small_random_csr)
    op = opt.optimize(small_random_csr)
    assert not op.plan.cache_hit
    assert op.plan.total_overhead_seconds > 0.0


def test_cache_rejects_bad_argument(small_random_csr):
    with pytest.raises(TypeError, match="plan_cache"):
        AdaptiveSpMV(KNL, plan_cache=object())


def test_cache_lru_eviction(rng):
    cache = PlanCache(maxsize=2)
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=cache)
    mats = []
    for seed in range(3):
        r = np.random.default_rng(seed)
        rows = np.repeat(np.arange(20), 3)
        cols = np.tile([1 + seed, 7 + seed, 13 + seed], 20)
        mats.append(CSRMatrix.from_arrays(
            rows, cols, r.standard_normal(60), (20, 30)
        ))
    for m in mats:
        opt.optimize(m)
    assert len(cache) == 2
    # the oldest entry was evicted -> re-optimizing it misses
    op = opt.optimize(mats[0])
    assert not op.plan.cache_hit


def test_cache_eviction_counter_and_repr(rng):
    cache = PlanCache(maxsize=2)
    opt = AdaptiveSpMV(KNL, classifier="profile", plan_cache=cache)
    for seed in range(4):
        r = np.random.default_rng(seed)
        rows = np.repeat(np.arange(20), 3)
        cols = np.tile([1 + seed, 7 + seed, 13 + seed], 20)
        opt.optimize(CSRMatrix.from_arrays(
            rows, cols, r.standard_normal(60), (20, 30)
        ))
    assert cache.evictions == 2
    assert "evictions=2" in repr(cache)
    # clear() only drops entries; the counters (and repr) stay truthful
    cache.clear()
    assert len(cache) == 0
    assert cache.evictions == 2
    assert "evictions=2" in repr(cache)
    cache.reset_stats()
    assert cache.evictions == 0
    assert cache.hits == 0 and cache.misses == 0
    assert cache.invalidations == 0


def test_cache_invalidate(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    opt.optimize(small_random_csr)
    cache = opt.plan_cache
    (key,) = cache._entries.keys()
    assert cache.invalidate(key)
    assert len(cache) == 0
    assert cache.invalidations == 1
    assert not cache.invalidate(key)  # already gone
    assert cache.invalidations == 1


def test_cache_is_thread_safe():
    import threading

    cache = PlanCache(maxsize=8)
    errors = []

    def hammer(tid):
        try:
            for i in range(300):
                key = (tid % 3, i % 12)
                entry = cache.get(key)
                if entry is None:
                    cache.store(key, object())
                if i % 50 == 0:
                    cache.invalidate(key)
                len(cache)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 8
    assert cache.hits + cache.misses == 8 * 300


def test_cache_clear(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    opt.optimize(small_random_csr)
    opt.plan_cache.clear()
    assert len(opt.plan_cache) == 0
    op = opt.optimize(small_random_csr)
    assert not op.plan.cache_hit


def test_different_machines_do_not_share_plans(small_random_csr):
    from repro.machine import KNC

    shared = PlanCache()
    a = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared)
    b = AdaptiveSpMV(KNC, classifier="profile", plan_cache=shared)
    a.optimize(small_random_csr)
    op = b.optimize(small_random_csr)
    assert not op.plan.cache_hit


# -- execution-configuration axis (nthreads / parallel config) ---------


def test_execution_config_partitions_cache(small_random_csr):
    """Plans tuned for one parallel configuration must never be served
    for another: nthreads and the parallel signature are key axes."""
    from repro.parallel import ParallelConfig

    shared = PlanCache()
    serial = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared)
    threaded = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=shared,
        parallel=ParallelConfig(4, "balanced-nnz"),
    )
    serial.optimize(small_random_csr)
    op = threaded.optimize(small_random_csr)
    assert not op.plan.cache_hit  # different execution signature
    # same config again -> hit
    assert threaded.optimize(small_random_csr).plan.cache_hit
    # different schedule under the same thread count -> miss
    other = AdaptiveSpMV(
        KNL, classifier="profile", plan_cache=shared,
        parallel=ParallelConfig(4, "static-rows"),
    )
    assert not other.optimize(small_random_csr).plan.cache_hit


def test_nthreads_partitions_cache(small_random_csr):
    shared = PlanCache()
    a = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared,
                     nthreads=2)
    b = AdaptiveSpMV(KNL, classifier="profile", plan_cache=shared,
                     nthreads=8)
    a.optimize(small_random_csr)
    assert not b.optimize(small_random_csr).plan.cache_hit
    assert b.optimize(small_random_csr).plan.cache_hit


def test_parallel_operator_from_optimized(small_random_csr, x300):
    """An optimizer built with a parallel config hands out operators
    whose ``parallel_operator()`` runs on the configured pool,
    bit-identical to the planned serial numeric plane."""
    from repro.parallel import ParallelConfig

    opt = AdaptiveSpMV(KNL, classifier="profile",
                       parallel=ParallelConfig(4, "balanced-nnz"))
    op = opt.optimize(small_random_csr)
    par = op.parallel_operator()
    np.testing.assert_array_equal(
        par.matvec(x300), small_random_csr.matvec(x300)
    )
    assert par.nthreads <= 4


def test_parallel_operator_requires_config(small_random_csr):
    opt = AdaptiveSpMV(KNL, classifier="profile")
    op = opt.optimize(small_random_csr)
    with pytest.raises(ValueError):
        op.parallel_operator()
    # explicit nthreads works without a stored config
    par = op.parallel_operator(nthreads=2)
    assert par.nthreads <= 2
