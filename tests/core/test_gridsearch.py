"""Unit tests for the hyperparameter grid search."""

import pytest

from repro.core import tune_profile_thresholds
from repro.machine import KNC
from repro.matrices import training_suite


@pytest.fixture(scope="module")
def corpus():
    return [
        t.matrix
        for t in training_suite(count=10, seed=13, min_rows=10_000,
                                max_rows=30_000)
    ]


def test_grid_is_exhaustive(corpus):
    res = tune_profile_thresholds(
        corpus, KNC, t_ml_grid=(1.1, 1.3), t_imb_grid=(1.1, 1.3),
        t_mb_grid=(0.75,),
    )
    assert len(res.points) == 4


def test_points_sorted_best_first(corpus):
    res = tune_profile_thresholds(
        corpus, KNC, t_ml_grid=(1.05, 1.25, 1.6),
        t_imb_grid=(1.05, 1.25, 1.6), t_mb_grid=(0.75,),
    )
    gains = [p.mean_speedup for p in res.points]
    assert gains == sorted(gains, reverse=True)
    assert res.best.mean_speedup == gains[0]


def test_best_gain_at_least_one(corpus):
    """Very strict thresholds classify nothing -> gain exactly 1.0;
    the best point can only match or beat that."""
    res = tune_profile_thresholds(
        corpus, KNC, t_ml_grid=(1.25, 50.0), t_imb_grid=(1.24, 50.0),
        t_mb_grid=(0.999,),
    )
    assert res.best.mean_speedup >= 1.0


def test_classified_counts_monotone_in_thresholds(corpus):
    res = tune_profile_thresholds(
        corpus, KNC, t_ml_grid=(1.05, 3.0), t_imb_grid=(1.05, 3.0),
        t_mb_grid=(0.75,),
    )
    by_thresholds = {
        (p.thresholds.t_ml, p.thresholds.t_imb): p.n_classified
        for p in res.points
    }
    assert by_thresholds[(1.05, 1.05)] >= by_thresholds[(3.0, 3.0)]


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        tune_profile_thresholds([], KNC)
