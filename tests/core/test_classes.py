"""Unit tests for bottleneck class definitions."""

import numpy as np
import pytest

from repro.core import (
    ALL_CLASSES,
    Bottleneck,
    classes_to_labels,
    format_classes,
    labels_to_classes,
)


def test_four_classes_in_paper_order():
    assert [c.value for c in ALL_CLASSES] == ["MB", "ML", "IMB", "CMP"]


def test_labels_roundtrip():
    for subset in (
        frozenset(),
        frozenset({Bottleneck.ML}),
        frozenset({Bottleneck.MB, Bottleneck.CMP}),
        frozenset(ALL_CLASSES),
    ):
        labels = classes_to_labels(subset)
        assert labels_to_classes(labels) == subset


def test_labels_vector_layout():
    labels = classes_to_labels({Bottleneck.ML, Bottleneck.IMB})
    np.testing.assert_array_equal(labels, [0, 1, 1, 0])


def test_labels_shape_validation():
    with pytest.raises(ValueError):
        labels_to_classes(np.array([1, 0]))


def test_format_classes_stable_order():
    s = format_classes(frozenset({Bottleneck.CMP, Bottleneck.MB}))
    assert s == "{MB, CMP}"
    assert format_classes(frozenset()) == "{}"
