"""Unit tests for the per-class performance bounds."""

import numpy as np
import pytest

from repro.core import measure_bounds
from repro.core.bounds import profiling_seconds
from repro.formats import CSRMatrix
from repro.machine import KNC, KNL


def test_bounds_all_positive(banded_csr, platform):
    b = measure_bounds(banded_csr, platform)
    for v in b.as_dict().values():
        assert v > 0


def test_peak_dominates_mb(banded_csr, platform):
    """P_peak assumes indexing is free; it must upper-bound P_MB."""
    b = measure_bounds(banded_csr, platform)
    assert b.p_peak > b.p_mb


def test_imb_bound_at_least_baseline(skewed_csr, banded_csr, platform):
    """Median thread time <= makespan, so P_IMB >= P_CSR."""
    for m in (skewed_csr, banded_csr):
        b = measure_bounds(m, platform)
        assert b.p_imb >= b.p_csr * 0.999


def test_imb_gap_large_for_skewed_small_for_regular():
    b_skew = measure_bounds(_big_skewed(), KNC)
    from repro.matrices.generators import banded

    b_reg = measure_bounds(banded(50_000, nnz_per_row=16, seed=3), KNC)
    assert b_skew.p_imb / b_skew.p_csr > 2.0
    assert b_reg.p_imb / b_reg.p_csr < 1.1


def _big_skewed():
    from repro.matrices.generators import banded, with_dense_rows

    return with_dense_rows(
        banded(50_000, nnz_per_row=4, bandwidth=8, seed=1),
        n_dense=2, dense_nnz=30_000, seed=2,
    )


def test_ml_gap_large_for_scattered_on_knc():
    from repro.matrices.generators import banded, random_uniform

    scattered = random_uniform(120_000, nnz_per_row=16.0, seed=4)
    regular = banded(120_000, nnz_per_row=16, seed=5)
    b_s = measure_bounds(scattered, KNC)
    b_r = measure_bounds(regular, KNC)
    assert b_s.p_ml / b_s.p_csr > 1.5
    assert b_r.p_ml / b_r.p_csr < 1.3


def test_empty_matrix_rejected():
    csr = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 1))
    with pytest.raises(ValueError):
        measure_bounds(csr, KNC)


def test_profiling_seconds_accounting(banded_csr):
    b = measure_bounds(banded_csr, KNL)
    t = profiling_seconds(b, banded_csr, iterations=64)
    # 64 iterations of three kernels, each at least as fast as baseline
    t_base = 2.0 * banded_csr.nnz / (b.p_csr * 1e9)
    assert t >= 64 * t_base  # baseline alone
    assert t <= 64 * 3 * t_base * 1.01


def test_bounds_str(banded_csr):
    text = str(measure_bounds(banded_csr, KNC))
    assert "P_CSR" in text and "knc" in text
