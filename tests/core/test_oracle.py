"""Unit tests for the oracle optimizer."""

import pytest

from repro.core import AdaptiveSpMV, oracle_configurations, oracle_search
from repro.machine import KNL


def test_configuration_space():
    configs = oracle_configurations()
    # 2^3 joint subsets x 3 IMB strategies
    assert len(configs) == 24
    assert () in configs
    assert ("compression", "prefetching", "unrolling", "decomposition") in [
        tuple(c) for c in configs
    ]


def test_oracle_never_below_baseline(banded_csr, skewed_csr):
    for m in (banded_csr, skewed_csr):
        choice = oracle_search(m, KNL, nthreads=32)
        assert choice.gflops >= choice.baseline.gflops
        assert choice.speedup_over_baseline >= 1.0
        assert choice.n_evaluated == 24


def test_oracle_dominates_adaptive_optimizer():
    from repro.matrices.generators import banded, with_dense_rows

    csr = with_dense_rows(
        banded(40_000, nnz_per_row=4, bandwidth=8, seed=31),
        n_dense=2, dense_nnz=25_000, seed=32,
    )
    choice = oracle_search(csr, KNL)
    opt = AdaptiveSpMV(KNL, classifier="profile")
    adaptive = opt.optimize(csr).simulate()
    assert choice.gflops >= adaptive.gflops * 0.999


def test_oracle_picks_decomposition_for_skew():
    from repro.matrices.generators import banded, with_dense_rows

    csr = with_dense_rows(
        banded(40_000, nnz_per_row=4, bandwidth=8, seed=33),
        n_dense=2, dense_nnz=25_000, seed=34,
    )
    choice = oracle_search(csr, KNL)
    assert "decomposition" in choice.optimizations
