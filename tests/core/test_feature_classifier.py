"""Unit tests for the feature-guided classifier."""

import numpy as np
import pytest

from repro.core import (
    Bottleneck,
    FeatureGuidedClassifier,
    ProfileGuidedClassifier,
)
from repro.machine import KNC
from repro.matrices import training_suite


@pytest.fixture(scope="module")
def small_corpus():
    return [
        t.matrix
        for t in training_suite(count=16, seed=9, min_rows=8_000,
                                max_rows=30_000)
    ]


@pytest.fixture(scope="module")
def trained(small_corpus):
    clf = FeatureGuidedClassifier(KNC)
    clf.fit_from_matrices(small_corpus)
    return clf


def test_training_report(trained, small_corpus):
    rep = trained.report
    assert rep.n_samples == len(small_corpus)
    assert rep.tree_depth >= 1
    assert sum(v for k, v in rep.label_counts.items() if k != "dummy") > 0


def test_predicts_class_sets(trained, small_corpus):
    for m in small_corpus[:4]:
        classes = trained.classify(m)
        assert isinstance(classes, frozenset)
        assert all(isinstance(c, Bottleneck) for c in classes)


def test_agreement_with_labeler_on_training_data(trained, small_corpus):
    """Resubstitution accuracy should be high (tree can overfit)."""
    labeler = ProfileGuidedClassifier(KNC)
    agree = sum(
        trained.classify(m) == labeler.classify(m) for m in small_corpus
    )
    assert agree >= int(0.7 * len(small_corpus))


def test_classify_with_cost_positive(trained, small_corpus):
    classes, cost = trained.classify_with_cost(small_corpus[0])
    assert cost > 0.0


def test_feature_cost_cheaper_than_profiling(trained, small_corpus):
    """The whole point of the feature-guided path (paper Table V)."""
    labeler = ProfileGuidedClassifier(KNC)
    m = small_corpus[0]
    _, feat_cost = trained.classify_with_cost(m)
    _, prof_cost = labeler.classify_with_cost(m)
    assert feat_cost < prof_cost / 5


def test_extraction_complexity_property():
    clf = FeatureGuidedClassifier(KNC, feature_names=("nnz_max", "density"))
    assert clf.extraction_complexity == "O(N)"
    clf2 = FeatureGuidedClassifier(KNC, feature_names=("misses_avg",))
    assert clf2.extraction_complexity == "O(NNZ)"


def test_unfitted_classifier_rejects(small_corpus):
    clf = FeatureGuidedClassifier(KNC)
    with pytest.raises(RuntimeError):
        clf.classify(small_corpus[0])


def test_explicit_labels_path(small_corpus):
    labels = [frozenset({Bottleneck.CMP})] * len(small_corpus)
    clf = FeatureGuidedClassifier(KNC)
    clf.fit_from_matrices(small_corpus, labels=labels)
    assert clf.classify(small_corpus[0]) == frozenset({Bottleneck.CMP})


def test_label_count_mismatch_rejected(small_corpus):
    clf = FeatureGuidedClassifier(KNC)
    with pytest.raises(ValueError):
        clf.fit_from_matrices(small_corpus, labels=[frozenset()])


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        FeatureGuidedClassifier(KNC).fit_from_matrices([])


def test_dispersion_alias_accepted():
    clf = FeatureGuidedClassifier(
        KNC, feature_names=("dispersion_avg", "nnz_max")
    )
    assert "scatter_avg" in clf.feature_names
