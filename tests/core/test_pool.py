"""Unit tests for the class -> optimization mapping (paper Table I)."""

import pytest

from repro.core import Bottleneck, OptimizationPool, PoolPolicy
from repro.matrices.features import extract_features


@pytest.fixture
def pool():
    return OptimizationPool()


def test_table1_single_class_mapping(pool, banded_csr):
    f = extract_features(banded_csr)
    assert pool.select({Bottleneck.MB}, f) == ("compression",)
    assert pool.select({Bottleneck.ML}, f) == ("prefetching",)
    assert pool.select({Bottleneck.CMP}, f) == ("unrolling",)


def test_empty_classes_select_nothing(pool, banded_csr):
    f = extract_features(banded_csr)
    assert pool.select(frozenset(), f) == ()
    kernel = pool.kernel_for(frozenset(), f)
    assert kernel.name == "csr"


def test_imb_subselection_decomposition_for_huge_rows(pool, skewed_csr):
    f = extract_features(skewed_csr)
    assert pool.select({Bottleneck.IMB}, f) == ("decomposition",)


def test_imb_subselection_auto_for_even_rows(pool, banded_csr):
    f = extract_features(banded_csr)
    assert pool.select({Bottleneck.IMB}, f) == ("auto-sched",)


def test_imb_needs_features_or_matrix(pool, skewed_csr):
    with pytest.raises(ValueError):
        pool.select({Bottleneck.IMB})
    # matrix alone is enough (features extracted internally)
    assert pool.select({Bottleneck.IMB}, csr=skewed_csr) == (
        "decomposition",
    )


def test_joint_application(pool, skewed_csr):
    f = extract_features(skewed_csr)
    names = pool.select(
        {Bottleneck.ML, Bottleneck.IMB, Bottleneck.CMP}, f
    )
    assert set(names) == {"prefetching", "decomposition", "unrolling"}
    kernel = pool.kernel_for(
        {Bottleneck.ML, Bottleneck.IMB, Bottleneck.CMP}, f
    )
    cfg = kernel.config
    assert cfg.prefetch and cfg.decompose and cfg.unroll and cfg.vectorize


def test_policy_threshold_controls_subselection(skewed_csr):
    f = extract_features(skewed_csr)
    ratio = f.nnz_max / max(f.nnz_avg, 1.0)
    below = OptimizationPool(PoolPolicy(uneven_row_ratio=ratio * 2))
    assert below.select({Bottleneck.IMB}, f) == ("auto-sched",)
    above = OptimizationPool(PoolPolicy(uneven_row_ratio=ratio / 2))
    assert above.select({Bottleneck.IMB}, f) == ("decomposition",)


def test_policy_validation():
    with pytest.raises(ValueError):
        PoolPolicy(uneven_row_ratio=1.0)
