"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.formats import COOMatrix


def test_canonicalization_sorts_by_row_then_col():
    coo = COOMatrix([2, 0, 0], [1, 5, 2], [1.0, 2.0, 3.0], (3, 6))
    assert coo.rows.tolist() == [0, 0, 2]
    assert coo.cols.tolist() == [2, 5, 1]
    assert coo.values.tolist() == [3.0, 2.0, 1.0]


def test_duplicates_are_summed():
    coo = COOMatrix([1, 1, 1], [4, 4, 2], [1.0, 2.5, 7.0], (3, 5))
    assert coo.nnz == 2
    dense = coo.to_dense()
    assert dense[1, 4] == pytest.approx(3.5)
    assert dense[1, 2] == pytest.approx(7.0)


def test_duplicates_kept_when_disabled():
    coo = COOMatrix([1, 1], [4, 4], [1.0, 2.5], (3, 5), sum_duplicates=False)
    assert coo.nnz == 2
    # matvec still accumulates both entries
    x = np.zeros(5)
    x[4] = 2.0
    assert coo.matvec(x)[1] == pytest.approx(7.0)


def test_matvec_matches_dense(small_random_csr, x300):
    coo = small_random_csr.to_coo()
    dense = coo.to_dense()
    np.testing.assert_allclose(coo.matvec(x300), dense @ x300, rtol=1e-12)


def test_matvec_rejects_bad_shape():
    coo = COOMatrix([0], [0], [1.0], (2, 3))
    with pytest.raises(ValueError, match="shape"):
        coo.matvec(np.zeros(2))


def test_out_of_bounds_indices_rejected():
    with pytest.raises(ValueError, match="row index"):
        COOMatrix([5], [0], [1.0], (3, 3))
    with pytest.raises(ValueError, match="column index"):
        COOMatrix([0], [9], [1.0], (3, 3))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="equal length"):
        COOMatrix([0, 1], [0], [1.0], (3, 3))


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        COOMatrix([], [], [], (0, 3))
    with pytest.raises(ValueError):
        COOMatrix([], [], [], (3,))


def test_from_dense_roundtrip():
    dense = np.array([[0.0, 1.5], [2.0, 0.0], [0.0, -3.0]])
    coo = COOMatrix.from_dense(dense)
    assert coo.nnz == 3
    np.testing.assert_array_equal(coo.to_dense(), dense)


def test_scipy_roundtrip(small_random_scipy):
    coo = COOMatrix.from_scipy(small_random_scipy)
    back = coo.to_scipy()
    assert (back != small_random_scipy).nnz == 0


def test_nbytes_accounting():
    coo = COOMatrix([0, 1], [1, 2], [1.0, 2.0], (3, 3))
    assert coo.index_nbytes() == 2 * 8 * 2   # two int64 arrays
    assert coo.value_nbytes() == 2 * 8
    assert coo.total_nbytes() == coo.index_nbytes() + coo.value_nbytes()


def test_empty_matrix():
    coo = COOMatrix([], [], [], (4, 4))
    assert coo.nnz == 0
    np.testing.assert_array_equal(coo.matvec(np.ones(4)), np.zeros(4))
