"""Unit tests for the SELL-C-sigma format."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, SellCSigmaMatrix


@pytest.mark.parametrize("chunk", [1, 4, 8, 16])
def test_matvec_matches_csr(small_random_csr, x300, chunk):
    m = SellCSigmaMatrix.from_csr(small_random_csr, chunk=chunk)
    np.testing.assert_allclose(
        m.matvec(x300), small_random_csr.matvec(x300), rtol=1e-12
    )


def test_row_permutation_is_permutation(skewed_csr):
    m = SellCSigmaMatrix.from_csr(skewed_csr, chunk=8)
    assert np.array_equal(
        np.sort(m.row_perm), np.arange(skewed_csr.nrows)
    )


def test_sigma_sorting_reduces_padding(skewed_csr):
    unsorted = SellCSigmaMatrix.from_csr(skewed_csr, chunk=8, sigma=8)
    sorted_ = SellCSigmaMatrix.from_csr(skewed_csr, chunk=8, sigma=1024)
    assert sorted_.padding_ratio < unsorted.padding_ratio


def test_sigma_window_respected():
    """Rows may only be permuted within their sigma window."""
    csr = CSRMatrix.from_arrays(
        list(range(8)) * 3,
        [0, 1, 2] * 8,
        [1.0] * 24,
        (8, 3),
    )
    m = SellCSigmaMatrix.from_csr(csr, chunk=2, sigma=4)
    for start in range(0, 8, 4):
        window = m.row_perm[start : start + 4]
        assert set(window.tolist()) == set(range(start, start + 4))


def test_uniform_rows_no_padding(banded_csr):
    # banded has near-constant row length -> minimal padding
    m = SellCSigmaMatrix.from_csr(banded_csr, chunk=8)
    assert m.padding_ratio < 1.1


def test_nnz_excludes_padding(skewed_csr):
    m = SellCSigmaMatrix.from_csr(skewed_csr, chunk=8)
    assert m.nnz == skewed_csr.nnz
    assert m.stored_elements >= m.nnz


def test_empty_and_empty_rows(empty_row_csr):
    m = SellCSigmaMatrix.from_csr(empty_row_csr, chunk=4)
    x = np.ones(6)
    np.testing.assert_allclose(m.matvec(x), empty_row_csr.matvec(x))


def test_chunk_validation():
    with pytest.raises(ValueError):
        SellCSigmaMatrix.from_csr(
            CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 1)),
            chunk=0,
        )


def test_bytes_accounting(banded_csr):
    m = SellCSigmaMatrix.from_csr(banded_csr, chunk=8)
    assert m.value_nbytes() == m.stored_elements * 8
    assert m.index_nbytes() > 0
