"""Unit tests for the format-conversion registry."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    DecomposedCSR,
    DeltaCSR,
    available_formats,
    convert,
    register_format,
)


def test_available_formats_contains_core_set():
    names = available_formats()
    for expected in ("csr", "coo", "delta-csr", "decomposed-csr"):
        assert expected in names


def test_convert_identity(small_random_csr):
    assert convert(small_random_csr, "csr") is small_random_csr


def test_convert_to_each_format(small_random_csr, x300):
    y0 = small_random_csr.matvec(x300)
    for name in ("coo", "delta-csr", "decomposed-csr"):
        out = convert(small_random_csr, name)
        np.testing.assert_allclose(out.matvec(x300), y0, rtol=1e-12)


def test_convert_forwards_params(small_random_csr):
    d = convert(small_random_csr, "delta-csr", width=16)
    assert isinstance(d, DeltaCSR) and d.width == 16
    dc = convert(small_random_csr, "decomposed-csr", threshold=5)
    assert isinstance(dc, DecomposedCSR) and dc.threshold == 5


def test_unknown_format_rejected(small_random_csr):
    with pytest.raises(ValueError, match="unknown format"):
        convert(small_random_csr, "bogus")


def test_register_custom_format(small_random_csr):
    register_format("negated-coo", lambda csr: COOMatrix(
        csr.row_ids_per_nnz(), csr.colind.astype(np.int64),
        -csr.values, csr.shape,
    ))
    out = convert(small_random_csr, "negated-coo")
    assert out.nnz == small_random_csr.nnz
    assert np.all(out.values < 0)


def test_register_rejects_non_callable():
    with pytest.raises(TypeError):
        register_format("bad", 42)
