"""Unit tests for delta-compressed CSR."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, DeltaCSR, choose_delta_width


def test_roundtrip_small_gaps(banded_csr):
    d = DeltaCSR.from_csr(banded_csr)
    assert d.width == 8
    np.testing.assert_array_equal(d.decode_colind(), banded_csr.colind)


def test_roundtrip_scattered(scattered_csr):
    d = DeltaCSR.from_csr(scattered_csr)
    np.testing.assert_array_equal(d.decode_colind(), scattered_csr.colind)


def test_forced_widths_roundtrip(scattered_csr):
    for width in (8, 16):
        d = DeltaCSR.from_csr(scattered_csr, width=width)
        assert d.width == width
        np.testing.assert_array_equal(
            d.decode_colind(), scattered_csr.colind
        )


def test_matvec_matches_csr(small_random_csr, x300):
    d = DeltaCSR.from_csr(small_random_csr)
    np.testing.assert_allclose(
        d.matvec(x300), small_random_csr.matvec(x300), rtol=1e-12
    )


def test_width_choice_narrow_band(banded_csr):
    assert choose_delta_width(banded_csr) == 8


def test_width_choice_wide_gaps():
    # gaps of ~1000 columns: 8-bit overflows everywhere -> 16-bit
    n = 500
    rowptr = np.arange(0, 4 * n + 1, 4, dtype=np.int64)
    colind = np.tile(np.array([0, 1000, 2000, 3000], dtype=np.int32), n)
    csr = CSRMatrix(rowptr, colind, np.ones(4 * n), (n, 4000))
    assert choose_delta_width(csr) == 16


def test_never_both_widths(scattered_csr):
    d = DeltaCSR.from_csr(scattered_csr)
    assert d.deltas.dtype in (np.uint8, np.uint16)  # one dtype for all


def test_row_starts_are_resets(small_random_csr):
    d = DeltaCSR.from_csr(small_random_csr)
    starts = small_random_csr.rowptr[:-1]
    starts = set(starts[starts < small_random_csr.nnz].tolist())
    assert starts.issubset(set(d.reset_pos.tolist()))


def test_compression_shrinks_index(banded_csr):
    d = DeltaCSR.from_csr(banded_csr)
    csr_index = banded_csr.index_nbytes()
    assert d.index_nbytes() < csr_index
    assert d.compression_ratio() > 1.5


def test_to_csr_roundtrip(small_random_csr):
    back = DeltaCSR.from_csr(small_random_csr).to_csr()
    np.testing.assert_array_equal(back.colind, small_random_csr.colind)
    np.testing.assert_array_equal(back.values, small_random_csr.values)
    np.testing.assert_array_equal(back.rowptr, small_random_csr.rowptr)


def test_empty_matrix():
    csr = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 5))
    d = DeltaCSR.from_csr(csr)
    assert d.nnz == 0
    assert d.decode_colind().size == 0


def test_empty_rows(empty_row_csr):
    d = DeltaCSR.from_csr(empty_row_csr)
    np.testing.assert_array_equal(d.decode_colind(), empty_row_csr.colind)


def test_invalid_width_rejected(banded_csr):
    with pytest.raises(ValueError, match="width"):
        DeltaCSR.from_csr(banded_csr, width=12)


def test_values_preserved(small_random_csr):
    d = DeltaCSR.from_csr(small_random_csr)
    np.testing.assert_array_equal(d.values, small_random_csr.values)
