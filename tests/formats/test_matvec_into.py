"""Tests for the in-place alpha/beta SpMV (vendor calling convention)."""

import numpy as np
import pytest

from repro.formats import DecomposedCSR, DeltaCSR


def test_basic_update(small_random_csr, x300, rng):
    y = rng.standard_normal(300)
    y0 = y.copy()
    out = small_random_csr.matvec_into(x300, y, alpha=2.0, beta=0.5)
    assert out is y
    np.testing.assert_allclose(
        y, 2.0 * small_random_csr.matvec(x300) + 0.5 * y0, rtol=1e-12
    )


def test_beta_zero_ignores_garbage(small_random_csr, x300):
    y = np.full(300, np.nan)
    small_random_csr.matvec_into(x300, y, beta=0.0)
    np.testing.assert_allclose(y, small_random_csr.matvec(x300))


def test_alpha_zero_scales_only(small_random_csr, x300, rng):
    y = rng.standard_normal(300)
    y0 = y.copy()
    small_random_csr.matvec_into(x300, y, alpha=0.0, beta=3.0)
    np.testing.assert_allclose(y, 3.0 * y0)


def test_identity_coefficients(small_random_csr, x300, rng):
    y = rng.standard_normal(300)
    y0 = y.copy()
    small_random_csr.matvec_into(x300, y, alpha=1.0, beta=1.0)
    np.testing.assert_allclose(
        y, small_random_csr.matvec(x300) + y0, rtol=1e-12
    )


def test_works_on_all_formats(small_random_csr, x300):
    expected = 1.5 * small_random_csr.matvec(x300)
    for fmt in (
        small_random_csr,
        small_random_csr.to_coo(),
        DeltaCSR.from_csr(small_random_csr),
        DecomposedCSR.from_csr(small_random_csr, threshold=10),
    ):
        y = np.zeros(300)
        fmt.matvec_into(x300, y, alpha=1.5)
        np.testing.assert_allclose(y, expected, rtol=1e-12)


def test_shape_and_dtype_validation(small_random_csr, x300):
    with pytest.raises(ValueError):
        small_random_csr.matvec_into(x300, np.zeros(5))
    with pytest.raises(TypeError):
        small_random_csr.matvec_into(x300, np.zeros(300, dtype=np.float32))
