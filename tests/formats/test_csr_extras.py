"""Tests for rmatvec and compensated SpMV."""

import math

import numpy as np
import pytest

from repro.formats import CSRMatrix


def test_rmatvec_matches_transpose(small_random_csr, rng):
    x = rng.standard_normal(small_random_csr.nrows)
    expected = small_random_csr.transpose().matvec(x)
    np.testing.assert_allclose(
        small_random_csr.rmatvec(x), expected, rtol=1e-12, atol=1e-12
    )


def test_rmatvec_rectangular():
    A = CSRMatrix.from_arrays([0, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0],
                              (2, 4))
    y = A.rmatvec(np.array([10.0, 100.0]))
    np.testing.assert_allclose(y, [10.0, 300.0, 20.0, 0.0])


def test_rmatvec_shape_validation(small_random_csr):
    with pytest.raises(ValueError):
        small_random_csr.rmatvec(np.zeros(5))


def test_rmatvec_adjoint_identity(small_random_csr, rng):
    """<A x, y> == <x, A^T y> — the defining adjoint property."""
    x = rng.standard_normal(small_random_csr.ncols)
    y = rng.standard_normal(small_random_csr.nrows)
    lhs = float(small_random_csr.matvec(x) @ y)
    rhs = float(x @ small_random_csr.rmatvec(y))
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_compensated_matches_plain_on_benign(small_random_csr, x300):
    np.testing.assert_allclose(
        small_random_csr.matvec_compensated(x300),
        small_random_csr.matvec(x300),
        rtol=1e-12,
        atol=1e-12,
    )


def test_compensated_recovers_cancellation():
    """The case plain fp summation loses: the compensated kernel must
    recover the exact fsum result."""
    vals = np.array([1e16, 1.0, -1e16, 1.0])
    csr = CSRMatrix([0, 4], [0, 1, 2, 3], vals, (1, 4))
    x = np.ones(4)
    exact = math.fsum(vals)
    assert csr.matvec_compensated(x)[0] == pytest.approx(exact)


def test_compensated_random_rows_match_fsum(rng):
    rows, cols, vals = [], [], []
    for r in range(12):
        k = int(rng.integers(1, 30))
        rows += [r] * k
        cols += list(rng.integers(0, 50, size=k))
        vals += list(rng.standard_normal(k) * 10.0 ** rng.integers(0, 12))
    csr = CSRMatrix.from_arrays(rows, cols, vals, (12, 50))
    x = rng.standard_normal(50)
    got = csr.matvec_compensated(x)
    for r in range(12):
        c, v = csr.row_slice(r)
        exact = math.fsum(v * x[c])
        assert got[r] == pytest.approx(exact, rel=1e-13, abs=1e-13)


def test_compensated_empty_rows(empty_row_csr):
    x = np.ones(6)
    np.testing.assert_allclose(
        empty_row_csr.matvec_compensated(x), empty_row_csr.matvec(x)
    )


def test_compensated_shape_validation(small_random_csr):
    with pytest.raises(ValueError):
        small_random_csr.matvec_compensated(np.zeros(7))


def test_compensated_one_long_row_among_empties():
    """Regression: one long row amid empty rows must still accumulate
    every element — the lockstep loop's early exit (taken when no row
    remains active) must not trigger while the long row has elements
    left."""
    n = 40
    rowptr = np.zeros(n + 1, dtype=np.int64)
    rowptr[21:] = 30  # row 20 holds all 30 nonzeros, the rest are empty
    vals = np.concatenate([[1e15], np.ones(28), [-1e15]])
    csr = CSRMatrix(rowptr, np.arange(30, dtype=np.int32), vals, (n, 30))
    y = csr.matvec_compensated(np.ones(30))
    assert y[20] == pytest.approx(math.fsum(vals))
    assert np.count_nonzero(y) == 1


def test_compensated_all_rows_empty():
    csr = CSRMatrix(np.zeros(5, dtype=np.int64), [], [], (4, 3))
    np.testing.assert_array_equal(
        csr.matvec_compensated(np.ones(3)), np.zeros(4)
    )
