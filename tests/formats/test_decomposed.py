"""Unit tests for the decomposed (long-row split) format."""

import numpy as np
import pytest

from repro.formats import (
    CSRMatrix,
    DecomposedCSR,
    default_long_row_threshold,
)


def test_long_rows_detected(skewed_csr):
    d = DecomposedCSR.from_csr(skewed_csr, threshold=50)
    assert d.n_long_rows == 2
    assert set(d.long_rows.tolist()) == {17, 500}


def test_short_part_has_long_rows_emptied(skewed_csr):
    d = DecomposedCSR.from_csr(skewed_csr, threshold=50)
    short_nnz = d.short.row_nnz()
    assert short_nnz[17] == 0 and short_nnz[500] == 0
    assert d.short.nnz + d.long_nnz == skewed_csr.nnz


def test_matvec_matches_csr(skewed_csr, rng):
    d = DecomposedCSR.from_csr(skewed_csr, threshold=50)
    x = rng.standard_normal(skewed_csr.ncols)
    np.testing.assert_allclose(
        d.matvec(x), skewed_csr.matvec(x), rtol=1e-12
    )


def test_no_long_rows_for_uniform(banded_csr, rng):
    d = DecomposedCSR.from_csr(banded_csr)
    assert d.n_long_rows == 0
    x = rng.standard_normal(banded_csr.ncols)
    np.testing.assert_allclose(d.matvec(x), banded_csr.matvec(x))


def test_to_csr_roundtrip(skewed_csr):
    d = DecomposedCSR.from_csr(skewed_csr, threshold=50)
    back = d.to_csr()
    np.testing.assert_array_equal(back.rowptr, skewed_csr.rowptr)
    np.testing.assert_array_equal(back.colind, skewed_csr.colind)
    np.testing.assert_allclose(back.values, skewed_csr.values)


def test_nnz_and_bytes_accounting(skewed_csr):
    d = DecomposedCSR.from_csr(skewed_csr, threshold=50)
    assert d.nnz == skewed_csr.nnz
    assert d.value_nbytes() == skewed_csr.value_nbytes()
    # index side carries the extra long-row structures
    assert d.index_nbytes() >= skewed_csr.index_nbytes()


def test_default_threshold_properties(skewed_csr, banded_csr):
    t_skew = default_long_row_threshold(skewed_csr, nthreads=64)
    assert t_skew >= 8
    # uniform matrix: threshold far above the max row length
    t_band = default_long_row_threshold(banded_csr, nthreads=64)
    assert t_band > int(banded_csr.row_nnz().max())


def test_invalid_threshold_rejected(banded_csr):
    with pytest.raises(ValueError, match="threshold"):
        DecomposedCSR.from_csr(banded_csr, threshold=0)


def test_threshold_boundary_exact():
    # row of exactly `threshold` nnz stays short; threshold+1 goes long
    rowptr = np.array([0, 3, 7], dtype=np.int64)
    colind = np.arange(7, dtype=np.int32)
    csr = CSRMatrix(rowptr, colind, np.ones(7), (2, 7))
    d = DecomposedCSR.from_csr(csr, threshold=3)
    assert d.n_long_rows == 1
    assert d.long_rows.tolist() == [1]


def test_empty_matrix():
    csr = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 3))
    d = DecomposedCSR.from_csr(csr, threshold=4)
    assert d.n_long_rows == 0
    assert d.matvec(np.ones(3)).tolist() == [0.0]
