"""Unit tests for the CSR format (the canonical execution format)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix


def test_matvec_matches_scipy(small_random_csr, small_random_scipy, x300):
    np.testing.assert_allclose(
        small_random_csr.matvec(x300), small_random_scipy @ x300, rtol=1e-12
    )


def test_matvec_handles_empty_rows(empty_row_csr):
    x = np.ones(6)
    y = empty_row_csr.matvec(x)
    assert y[0] == 0.0 and y[2] == 0.0 and y[4] == 0.0
    assert y[5] == pytest.approx(sum(range(5, 11)))


def test_matvec_rejects_bad_shape(small_random_csr):
    with pytest.raises(ValueError, match="shape"):
        small_random_csr.matvec(np.zeros(5))


def test_validation_rowptr_length():
    with pytest.raises(ValueError, match="rowptr"):
        CSRMatrix([0, 1], [0], [1.0], (2, 2))


def test_validation_rowptr_monotonic():
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRMatrix([0, 2, 1, 2], [0, 1], [1.0, 2.0], (3, 2))


def test_validation_rowptr_ends_at_nnz():
    with pytest.raises(ValueError, match="end at nnz"):
        CSRMatrix([0, 1, 3], [0, 1], [1.0, 2.0], (2, 2))


def test_validation_column_bounds():
    with pytest.raises(ValueError, match="column index"):
        CSRMatrix([0, 1], [7], [1.0], (1, 3))


def test_row_nnz_and_bandwidths(empty_row_csr):
    np.testing.assert_array_equal(
        empty_row_csr.row_nnz(), [0, 1, 0, 3, 0, 6]
    )
    bw = empty_row_csr.row_bandwidths()
    assert bw[1] == 0          # single element -> bandwidth 0
    assert bw[3] == 5 - 0      # columns 0..5
    assert bw[5] == 5 - 0
    assert bw[0] == 0          # empty row


def test_column_gaps_reset_at_row_starts():
    #   row0: cols 1, 3     row1: cols 0, 8
    csr = CSRMatrix([0, 2, 4], [1, 3, 0, 8], np.ones(4), (2, 9))
    np.testing.assert_array_equal(csr.column_gaps(), [0, 2, 0, 8])


def test_row_ids_per_nnz(empty_row_csr):
    ids = empty_row_csr.row_ids_per_nnz()
    np.testing.assert_array_equal(ids, [1, 3, 3, 3, 5, 5, 5, 5, 5, 5])


def test_row_slice(empty_row_csr):
    cols, vals = empty_row_csr.row_slice(3)
    np.testing.assert_array_equal(cols, [0, 2, 5])
    np.testing.assert_array_equal(vals, [2.0, 3.0, 4.0])


def test_submatrix_rows(small_random_csr, x300):
    sub = small_random_csr.submatrix_rows(50, 150)
    assert sub.shape == (100, 300)
    full = small_random_csr.matvec(x300)
    np.testing.assert_allclose(sub.matvec(x300), full[50:150], rtol=1e-12)


def test_submatrix_rows_bad_range(small_random_csr):
    with pytest.raises(ValueError):
        small_random_csr.submatrix_rows(200, 100)


def test_from_coo_roundtrip(small_random_csr):
    back = CSRMatrix.from_coo(small_random_csr.to_coo())
    np.testing.assert_array_equal(back.rowptr, small_random_csr.rowptr)
    np.testing.assert_array_equal(back.colind, small_random_csr.colind)
    np.testing.assert_array_equal(back.values, small_random_csr.values)


def test_from_arrays_merges_and_sorts():
    csr = CSRMatrix.from_arrays(
        [1, 0, 1], [2, 1, 2], [1.0, 5.0, 2.0], (2, 3)
    )
    assert csr.nnz == 2
    assert csr.to_dense()[1, 2] == pytest.approx(3.0)


def test_transpose(small_random_csr):
    t = small_random_csr.transpose()
    np.testing.assert_allclose(
        t.to_dense(), small_random_csr.to_dense().T, rtol=1e-12
    )


def test_scipy_roundtrip(small_random_csr):
    back = CSRMatrix.from_scipy(small_random_csr.to_scipy())
    np.testing.assert_array_equal(back.colind, small_random_csr.colind)


def test_nbytes_accounting(empty_row_csr):
    assert empty_row_csr.index_nbytes() == 7 * 8 + 10 * 4
    assert empty_row_csr.value_nbytes() == 10 * 8


def test_matmul_operator(small_random_csr, x300):
    np.testing.assert_allclose(
        small_random_csr @ x300, small_random_csr.matvec(x300)
    )


def test_matvec_accuracy_on_adversarial_cancellation():
    # Large cancelling values in one row: the result must stay within
    # a few ulps of the large terms (summation order is unspecified,
    # so exact recovery of the small entry is not required).
    vals = np.array([1e16, -1e16, 1.0])
    csr = CSRMatrix([0, 3], [0, 1, 2], vals, (1, 3))
    y = csr.matvec(np.ones(3))
    assert abs(y[0] - 1.0) <= 4.0  # ulp(1e16) == 2
