"""Unit tests for the batched (multi-RHS) ``matmat`` plane."""

import numpy as np
import pytest

import repro.formats.csr as csrmod
from repro.formats import CSRMatrix, available_formats, convert

RHS = 7

# Bound at import (collection) time: tests elsewhere register extra
# throwaway formats that would otherwise leak into the runtime loops.
FORMATS = available_formats()


@pytest.fixture
def X300(rng):
    return rng.standard_normal((300, RHS))


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_matches_scipy(small_random_csr, small_random_scipy, X300,
                              name):
    fmt = convert(small_random_csr, name)
    np.testing.assert_allclose(
        fmt.matmat(X300), small_random_scipy @ X300, rtol=1e-12, atol=1e-12
    )


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_columns_match_matvec(small_random_csr, X300, name):
    fmt = convert(small_random_csr, name)
    Y = fmt.matmat(X300)
    for j in range(RHS):
        np.testing.assert_allclose(
            Y[:, j], fmt.matvec(X300[:, j]), rtol=1e-12, atol=1e-12
        )


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_handles_empty_rows(empty_row_csr, name):
    fmt = convert(empty_row_csr, name)
    X = np.ones((6, 3))
    Y = fmt.matmat(X)
    assert Y.shape == (6, 3)
    np.testing.assert_array_equal(Y[[0, 2, 4]], 0.0)
    np.testing.assert_allclose(Y[5], sum(range(5, 11)))


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_empty_matrix(name):
    csr = CSRMatrix([0, 0, 0], [], [], (2, 4))
    fmt = convert(csr, name)
    Y = fmt.matmat(np.ones((4, 3)))
    np.testing.assert_array_equal(Y, np.zeros((2, 3)))


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_single_row(name):
    csr = CSRMatrix([0, 2], [1, 3], [2.0, -1.0], (1, 5))
    fmt = convert(csr, name)
    X = np.arange(10.0).reshape(5, 2)
    np.testing.assert_allclose(fmt.matmat(X), csr.to_dense() @ X)


@pytest.mark.parametrize("name", FORMATS)
def test_matmat_zero_rhs(small_random_csr, name):
    fmt = convert(small_random_csr, name)
    Y = fmt.matmat(np.zeros((300, 0)))
    assert Y.shape == (300, 0)


def test_matmat_tiled_path(small_random_csr, small_random_scipy, X300,
                           monkeypatch):
    """Forcing tiny tiles must not change the result (covers the
    tile-boundary, buffer-reuse and uniform-width fast paths)."""
    monkeypatch.setattr(csrmod, "_TILE_ELEMS", 8)
    for name in FORMATS:
        fmt = convert(small_random_csr, name)
        np.testing.assert_allclose(
            fmt.matmat(X300), small_random_scipy @ X300,
            rtol=1e-12, atol=1e-12,
        )


def test_matmat_uniform_rows_tiled(monkeypatch):
    """All rows the same width exercises the reshape-sum fast path."""
    rng = np.random.default_rng(0)
    nrows, width = 50, 4
    rows = np.repeat(np.arange(nrows), width)
    cols = np.tile([2, 5, 11, 23], nrows)
    csr = CSRMatrix.from_arrays(
        rows, cols, np.arange(1.0, nrows * width + 1), (nrows, 30)
    )
    assert np.all(np.diff(csr.rowptr) == width)
    X = rng.standard_normal((30, 3))
    expected = csr.to_dense() @ X
    np.testing.assert_allclose(csr.matmat(X), expected, rtol=1e-12)
    monkeypatch.setattr(csrmod, "_TILE_ELEMS", 16)
    np.testing.assert_allclose(csr.matmat(X), expected, rtol=1e-12)


def test_matmul_operator_dispatches_2d(small_random_csr, X300, x300):
    np.testing.assert_allclose(
        small_random_csr @ X300, small_random_csr.matmat(X300), rtol=1e-15
    )
    np.testing.assert_allclose(
        small_random_csr @ x300, small_random_csr.matvec(x300), rtol=1e-15
    )


def test_matmat_rejects_bad_shapes(small_random_csr):
    with pytest.raises(ValueError, match="shape"):
        small_random_csr.matmat(np.zeros((7, 3)))
    with pytest.raises(ValueError, match="shape"):
        small_random_csr.matmat(np.zeros((300, 3, 2)))


def test_matmat_accepts_noncontiguous(small_random_csr, rng):
    Xf = np.asfortranarray(rng.standard_normal((300, 4)))
    np.testing.assert_allclose(
        small_random_csr.matmat(Xf),
        small_random_csr.matmat(np.ascontiguousarray(Xf)),
        rtol=1e-15,
    )
