"""Unit tests for the BCSR format."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.formats.bcsr import BCSRMatrix


@pytest.mark.parametrize("block", [1, 2, 3, 4])
def test_matvec_matches_csr(small_random_csr, x300, block):
    bcsr = BCSRMatrix.from_csr(small_random_csr, block=block)
    np.testing.assert_allclose(
        bcsr.matvec(x300), small_random_csr.matvec(x300), rtol=1e-12
    )


def test_odd_dimensions_padding():
    """Dimensions not divisible by the block size must still work."""
    csr = CSRMatrix.from_arrays(
        [0, 2, 4, 4], [0, 4, 1, 4], [1.0, 2.0, 3.0, 4.0], (5, 5)
    )
    bcsr = BCSRMatrix.from_csr(csr, block=2)
    x = np.arange(5.0)
    np.testing.assert_allclose(bcsr.matvec(x), csr.matvec(x))


def test_fill_ratio_perfect_blocks():
    # fully dense 2x2 blocks -> fill 1.0
    dense = np.kron(np.eye(4), np.ones((2, 2)))
    csr = CSRMatrix.from_dense(dense)
    bcsr = BCSRMatrix.from_csr(csr, block=2)
    assert bcsr.fill_ratio == pytest.approx(1.0)
    assert bcsr.nblocks == 4


def test_fill_ratio_pointwise_diagonal():
    csr = CSRMatrix.from_dense(np.eye(8))
    bcsr = BCSRMatrix.from_csr(csr, block=2)
    assert bcsr.fill_ratio == pytest.approx(2.0)  # 2 of 4 slots used


def test_index_compression_vs_csr(banded_csr):
    bcsr = BCSRMatrix.from_csr(banded_csr, block=2)
    assert bcsr.index_nbytes() < banded_csr.index_nbytes()
    # but values inflate by the fill
    assert bcsr.value_nbytes() >= banded_csr.value_nbytes()


def test_to_csr_roundtrip(small_random_csr, x300):
    back = BCSRMatrix.from_csr(small_random_csr, block=3).to_csr()
    np.testing.assert_allclose(
        back.to_dense(), small_random_csr.to_dense(), rtol=1e-12
    )


def test_nnz_excludes_fill(small_random_csr):
    bcsr = BCSRMatrix.from_csr(small_random_csr, block=2)
    assert bcsr.nnz == small_random_csr.nnz
    assert bcsr.stored_elements >= bcsr.nnz


def test_empty_matrix():
    csr = CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 4))
    bcsr = BCSRMatrix.from_csr(csr, block=2)
    assert bcsr.nblocks == 0
    np.testing.assert_array_equal(bcsr.matvec(np.ones(4)), [0.0])


def test_block_validation():
    with pytest.raises(ValueError):
        BCSRMatrix.from_csr(
            CSRMatrix([0, 0], np.zeros(0, np.int32), np.zeros(0), (1, 1)),
            block=0,
        )
