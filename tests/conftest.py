"""Shared fixtures for the test suite.

Everything here is intentionally *small*: unit tests run on matrices of
a few hundred to a few thousand rows so the whole suite stays fast.
The integration tests that need realistic sizes build their own
matrices at a reduced ``scale``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import COOMatrix, CSRMatrix
from repro.machine import BROADWELL, KNC, KNL


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_random_csr():
    """300x300 random matrix, ~5% dense, canonical CSR."""
    S = sp.random(300, 300, density=0.05, random_state=7, format="csr")
    S.sort_indices()
    return CSRMatrix.from_scipy(S)


@pytest.fixture(scope="session")
def small_random_scipy():
    S = sp.random(300, 300, density=0.05, random_state=7, format="csr")
    S.sort_indices()
    return S


@pytest.fixture(scope="session")
def skewed_csr():
    """Matrix with 2 huge rows and many tiny ones (IMB archetype)."""
    rng = np.random.default_rng(3)
    n = 1000
    rows, cols, vals = [], [], []
    # tiny rows
    for frac in range(3):
        r = rng.integers(0, n, size=2 * n)
        c = rng.integers(0, n, size=2 * n)
        rows.append(r)
        cols.append(c)
    # two dense rows spanning every column
    for hot in (17, 500):
        c = np.arange(n)
        rows.append(np.full(c.size, hot))
        cols.append(c)
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


@pytest.fixture(scope="session")
def banded_csr():
    from repro.matrices.generators import banded

    return banded(2000, nnz_per_row=9, bandwidth=20, jitter=0.5, seed=5)


@pytest.fixture(scope="session")
def scattered_csr():
    from repro.matrices.generators import random_uniform

    return random_uniform(2000, nnz_per_row=12.0, seed=6)


@pytest.fixture(scope="session")
def empty_row_csr():
    """Matrix with empty rows, single-element rows and a dense row."""
    rowptr = np.array([0, 0, 1, 1, 4, 4, 10], dtype=np.int64)
    colind = np.array([3, 0, 2, 5, 0, 1, 2, 3, 4, 5], dtype=np.int32)
    values = np.arange(1.0, 11.0)
    return CSRMatrix(rowptr, colind, values, (6, 6))


@pytest.fixture(params=["knc", "knl", "broadwell"])
def platform(request):
    return {"knc": KNC, "knl": KNL, "broadwell": BROADWELL}[request.param]


@pytest.fixture(scope="session")
def x300(rng):
    return rng.standard_normal(300)
