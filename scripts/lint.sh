#!/bin/sh
# Lint gate: ruff when available, byte-compile fallback otherwise.
#
# CI images that ship ruff get the full `[tool.ruff]` policy from
# pyproject.toml; minimal images still get a syntax-level gate so a
# broken module can never merge silently. Exit status is the linter's.
set -eu

cd "$(dirname "$0")/.."

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff check src tests benchmarks"
    if command -v ruff >/dev/null 2>&1; then
        exec ruff check src tests benchmarks
    fi
    exec python -m ruff check src tests benchmarks
fi

echo "lint: ruff not installed; falling back to python -m compileall"
exec python -m compileall -q src tests benchmarks
