#!/bin/sh
# Full local gate: lint + tier-1 tests + perf smoke.
#
# One command that runs everything CI checks, in the order that fails
# fastest: the lint gate (scripts/lint.sh: ruff, or a byte-compile
# fallback on minimal images), then the tier-1 pytest suite, then the
# tests/perf smoke pass (benchmark-harness schema and the
# zero-allocation steady-state asserts). Exit status is the first
# failing stage's.
set -eu

cd "$(dirname "$0")/.."

echo "check: stage 1/3 lint"
sh scripts/lint.sh

echo "check: stage 2/3 tier-1 tests"
PYTHONPATH=src python -m pytest -x -q --ignore=tests/perf

echo "check: stage 3/3 perf smoke"
PYTHONPATH=src python -m pytest -x -q tests/perf

echo "check: all stages passed"
