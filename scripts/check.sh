#!/bin/sh
# Full local gate: lint + tier-1 tests + perf smoke + parallel smoke.
#
# One command that runs everything CI checks, in the order that fails
# fastest: the lint gate (scripts/lint.sh: ruff, or a byte-compile
# fallback on minimal images), then the tier-1 pytest suite, then the
# tests/perf smoke pass (benchmark-harness schema and the
# zero-allocation steady-state asserts), then the measured-parallel
# smoke gate: real thread-pool execution at nthreads=2 asserting the
# measured per-thread CPU-time imbalance sanity (balanced-nnz must not
# lose to static-rows on a skewed matrix). Exit status is the first
# failing stage's.
set -eu

cd "$(dirname "$0")/.."

echo "check: stage 1/4 lint"
sh scripts/lint.sh

echo "check: stage 2/4 tier-1 tests"
PYTHONPATH=src python -m pytest -x -q --ignore=tests/perf

echo "check: stage 3/4 perf smoke"
PYTHONPATH=src python -m pytest -x -q tests/perf

echo "check: stage 4/4 measured-parallel smoke (nthreads=2)"
PYTHONPATH=src python -m pytest -x -q -m perf_smoke tests/perf/test_parallel_smoke.py

echo "check: all stages passed"
