#!/bin/sh
# Full local gate: lint + tier-1 tests + perf smoke + parallel smoke +
# fault suite + watchdog smoke + engine permutation smoke +
# calibration smoke.
#
# One command that runs everything CI checks, in the order that fails
# fastest: the lint gate (scripts/lint.sh: ruff, or a byte-compile
# fallback on minimal images), then the tier-1 pytest suite, then the
# tests/perf smoke pass (benchmark-harness schema and the
# zero-allocation steady-state asserts), then the measured-parallel
# smoke gate (real thread-pool execution at nthreads=2 asserting the
# measured per-thread CPU-time imbalance sanity), then the full
# fault-injection suite with *warnings promoted to errors* (a stray
# RuntimeWarning inside a recovery path is a silent NaN leak), then the
# hang-injection watchdog smoke proving a hung worker is timed out and
# degraded within the deadline budget instead of blocking the caller,
# and finally the composable-engine smoke: a permutation matrix through
# the full guard+supervision stack on 2 threads (warnings as errors)
# plus the CLI engine-spec round-trip check, then the calibration
# smoke: `repro-spmv calibrate --quick` writes a host MachineProfile,
# a CalibratedModel plan folds it into the cache key, and the pytest
# smoke asserts execute spans carry predicted/measured Gflop/s and
# model_error_pct with refine() shrinking the error. Exit status is
# the first failing stage's.
set -eu

cd "$(dirname "$0")/.."

echo "check: stage 1/8 lint"
sh scripts/lint.sh

echo "check: stage 2/8 tier-1 tests"
PYTHONPATH=src python -m pytest -x -q --ignore=tests/perf

echo "check: stage 3/8 perf smoke"
PYTHONPATH=src python -m pytest -x -q tests/perf

echo "check: stage 4/8 measured-parallel smoke (nthreads=2)"
PYTHONPATH=src python -m pytest -x -q -m perf_smoke tests/perf/test_parallel_smoke.py

echo "check: stage 5/8 fault suite (warnings as errors)"
PYTHONPATH=src python -m pytest -x -q -W error::RuntimeWarning tests/faults

echo "check: stage 6/8 hang-injection watchdog smoke"
PYTHONPATH=src python -m pytest -x -q -k watchdog tests/faults/test_parallel_faults.py

echo "check: stage 7/8 engine permutation smoke (guard+supervision, 2 threads)"
PYTHONPATH=src python -m pytest -x -q -W error::RuntimeWarning \
    -k permutation_smoke_guard_supervision_two_threads \
    tests/engine/test_permutations.py
PYTHONPATH=src python -m repro.cli plan smallfem --explain \
    | grep -q "engine-spec round-trip: ok" \
    || { echo "check: engine-spec round-trip FAILED" >&2; exit 1; }

echo "check: stage 8/8 calibration smoke (quick profile + calibrated plan)"
calib_tmp="$(mktemp -d)"
trap 'rm -rf "$calib_tmp"' EXIT
PYTHONPATH=src python -m repro.cli calibrate --quick \
    -o "$calib_tmp/profile.json"
PYTHONPATH=src python -m repro.cli plan smallfem \
    --profile "$calib_tmp/profile.json" \
    | grep -q "cost_model=calibrated:" \
    || { echo "check: calibrated plan FAILED" >&2; exit 1; }
PYTHONPATH=src python -m pytest -x -q tests/model/test_calibration_smoke.py

echo "check: all stages passed"
