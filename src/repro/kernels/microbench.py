"""Micro-benchmark kernels used by the per-class performance bounds.

Two of the paper's bounds (Section III-B) are defined operationally, by
running a *modified* SpMV kernel:

* ``P_ML`` — :class:`RegularizedColindSpMV`: every ``colind`` entry is
  replaced by the current row index, converting all x accesses into
  repeated hits on one resident element. Index loads, loop structure
  and flop count are unchanged, so any performance delta versus the
  baseline isolates the cost of irregular x accesses.
* ``P_CMP`` — :class:`UnitStrideSpMV`: indirection is removed entirely;
  ``colind`` is neither loaded nor used and x is accessed unit-stride.
  The now-regular loop is auto-vectorizable, so this (very loose)
  bound exposes the compute ceiling.

Both kernels are *numerically different* from SpMV by construction —
they are measurement instruments, not solvers.

The module also hosts the host-side micro-timing harness
(:func:`time_callable` / :func:`time_kernel`) that
:func:`repro.model.profile.calibrate` builds machine profiles from.
Every timing warms up before measuring and reports the median of k
samples — a single cold sample folds first-touch page faults, lazy
imports and cache fills into the "kernel time" and would poison the
calibration scales.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix
from ..machine import KernelCost, MachineSpec
from ..sched import Partition
from .base import Kernel
from .costmodel import spmv_cost

__all__ = [
    "RegularizedColindSpMV",
    "UnitStrideSpMV",
    "MicroTiming",
    "time_callable",
    "time_kernel",
]


@dataclass(frozen=True)
class MicroTiming:
    """One micro-benchmark timing: warmed, median-of-k."""

    median_seconds: float
    best_seconds: float
    samples: tuple[float, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        return len(self.samples)


def time_callable(fn, *, repeats: int = 7,
                  warmup: int = 2) -> MicroTiming:
    """Time ``repeats`` calls of ``fn()`` after ``warmup`` discarded calls.

    The warmup calls run ``fn`` end to end (first-touch allocation,
    cache fill, any lazy setup) but contribute nothing to the
    statistics; the reported figure is the **median** sample, which is
    robust against one preempted repeat in a way neither a single
    sample nor the mean is. ``best_seconds`` (the minimum) is kept for
    scaling studies where noise only ever adds.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return MicroTiming(
        median_seconds=float(np.median(samples)),
        best_seconds=float(np.min(samples)),
        samples=tuple(samples),
        warmup=warmup,
    )


def time_kernel(kernel, data, x, *, repeats: int = 7,
                warmup: int = 2) -> MicroTiming:
    """Warmed median-of-k timing of one ``kernel.apply(data, x)``."""
    return time_callable(
        lambda: kernel.apply(data, x), repeats=repeats, warmup=warmup
    )


class RegularizedColindSpMV(Kernel):
    """P_ML micro-kernel: irregular x accesses made regular."""

    name = "microbench-regularized"
    optimizations = ("regularized-colind",)

    def apply(self, data: CSRMatrix, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (data.ncols,):
            raise ValueError(
                f"x must have shape ({data.ncols},), got {x.shape}"
            )
        # colind[j] := row index  =>  y[i] = (sum_j vals_ij) * x[i]
        row_sums = np.zeros(data.nrows, dtype=np.float64)
        lengths = np.diff(data.rowptr)
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size:
            row_sums[nonempty] = np.add.reduceat(
                data.values, data.rowptr[nonempty]
            )
        return row_sums * x[: data.nrows]

    def cost(self, data: CSRMatrix, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        return spmv_cost(
            data, machine, partition,
            vectorize=False,
            x_mode="sequential",
        )


class UnitStrideSpMV(Kernel):
    """P_CMP micro-kernel: indirection removed, unit-stride x access."""

    name = "microbench-unitstride"
    optimizations = ("unit-stride",)

    def apply(self, data: CSRMatrix, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (data.ncols,):
            raise ValueError(
                f"x must have shape ({data.ncols},), got {x.shape}"
            )
        row_sums = np.zeros(data.nrows, dtype=np.float64)
        lengths = np.diff(data.rowptr)
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size:
            row_sums[nonempty] = np.add.reduceat(
                data.values, data.rowptr[nonempty]
            )
        return row_sums * x[: data.nrows]

    def cost(self, data: CSRMatrix, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        # The bench still *allocates* the full CSR (it only skips the
        # colind loads), so the bandwidth level is chosen for the full
        # SpMV working set — only the traffic shrinks.
        full_ws = data.total_nbytes() + 8.0 * (data.nrows + data.ncols)
        return spmv_cost(
            data, machine, partition,
            vectorize=True,          # regular loops auto-vectorize
            index_bytes_per_nnz=0.0,  # colind not even loaded
            x_mode="unit",
            working_set_bytes=full_ws,
        )
