"""SpMV kernel variants: numeric + cost + preprocessing planes (S4)."""

from .base import Kernel
from .costmodel import row_compute_cycles, row_stream_bytes, spmv_cost
from .microbench import (
    MicroTiming,
    RegularizedColindSpMV,
    UnitStrideSpMV,
    time_callable,
    time_kernel,
)
from .preprocess_cost import (
    JIT_CODEGEN_SECONDS,
    decomposition_seconds,
    delta_conversion_seconds,
    feature_extraction_seconds,
    pass_seconds,
)
from .registry import (
    POOL_CONFIGS,
    QUARANTINE_THRESHOLD,
    clear_quarantine,
    is_quarantined,
    kernel_failure_count,
    kernel_failure_log,
    merged_pool_kernel,
    pairwise_optimization_kernels,
    pool_kernel,
    pool_names,
    quarantined_kernel_names,
    record_kernel_failure,
    register_pool_optimization,
    registered_pool_names,
    single_optimization_kernels,
)
from .bcsr import BCSRSpMV
from .sellcs import SellCSigmaSpMV
from .variants import ConfiguredSpMV, PreparedData, SpMVConfig, baseline_kernel

# Register BCSR as a ready-made plug-and-play optimization (block 2).
register_pool_optimization("bcsr", lambda: BCSRSpMV(block=2))
register_pool_optimization("sell-c-sigma", lambda: SellCSigmaSpMV(chunk=8))

__all__ = [
    "Kernel",
    "BCSRSpMV",
    "SellCSigmaSpMV",
    "SpMVConfig",
    "PreparedData",
    "ConfiguredSpMV",
    "baseline_kernel",
    "RegularizedColindSpMV",
    "UnitStrideSpMV",
    "MicroTiming",
    "time_callable",
    "time_kernel",
    "spmv_cost",
    "row_compute_cycles",
    "row_stream_bytes",
    "POOL_CONFIGS",
    "pool_kernel",
    "pool_names",
    "register_pool_optimization",
    "registered_pool_names",
    "merged_pool_kernel",
    "QUARANTINE_THRESHOLD",
    "record_kernel_failure",
    "kernel_failure_count",
    "kernel_failure_log",
    "is_quarantined",
    "quarantined_kernel_names",
    "clear_quarantine",
    "single_optimization_kernels",
    "pairwise_optimization_kernels",
    "JIT_CODEGEN_SECONDS",
    "pass_seconds",
    "delta_conversion_seconds",
    "decomposition_seconds",
    "feature_extraction_seconds",
]
