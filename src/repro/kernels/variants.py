"""Configurable SpMV kernel variants (the paper's optimization pool).

One :class:`SpMVConfig` captures the full cross-product of the paper's
Table I optimizations applied to the CSR baseline:

* ``vectorize``   — SIMD inner loop (part of the MB and CMP recipes);
* ``unroll``      — inner-loop unrolling (CMP recipe, with vectorize);
* ``prefetch``    — software prefetching of x (ML recipe);
* ``compress``    — delta-encoded column indices (MB recipe);
* ``decompose``   — long-row split + cooperative reduction (IMB recipe);
* ``schedule``    — row-partitioning policy (``auto`` is the second
  IMB recipe).

:class:`ConfiguredSpMV` implements the numeric, cost and preprocessing
planes for any such configuration, including joint application, which
is how the optimizer combines the recipes of multiple detected classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import check_in
from ..formats import CSRMatrix, DecomposedCSR, DeltaCSR
from ..machine import KernelCost, MachineSpec
from ..sched import Partition, make_partition
from .base import Kernel
from .costmodel import row_compute_cycles, spmv_cost
from .preprocess_cost import (
    JIT_CODEGEN_SECONDS,
    decomposition_seconds,
    delta_conversion_seconds,
)

__all__ = ["SpMVConfig", "PreparedData", "ConfiguredSpMV", "baseline_kernel"]

#: Per-long-row cooperative reduction latency factor (tree of partial
#: sums across threads; ~2 cache-line transfers per level).
_REDUCE_NS_PER_LEVEL = 100.0


@dataclass(frozen=True)
class SpMVConfig:
    """Optimization flags relative to the scalar CSR baseline."""

    vectorize: bool = False
    unroll: bool = False
    prefetch: bool = False
    compress: bool = False
    decompose: bool = False
    schedule: str = "balanced-nnz"
    delta_width: int | None = None          # None = automatic
    decompose_threshold: int | None = None  # None = automatic

    def __post_init__(self) -> None:
        check_in("schedule", self.schedule,
                 ("static-rows", "balanced-nnz", "auto", "dynamic"))
        if self.delta_width not in (None, 8, 16):
            raise ValueError("delta_width must be None, 8 or 16")

    @property
    def label(self) -> str:
        """Compact human-readable name, e.g. ``csr+vec+pf``."""
        tags = []
        if self.compress:
            tags.append("delta")
        if self.vectorize:
            tags.append("vec")
        if self.unroll:
            tags.append("unroll")
        if self.prefetch:
            tags.append("pf")
        if self.decompose:
            tags.append("split")
        if self.schedule != "balanced-nnz":
            tags.append(self.schedule)
        return "csr" + ("+" + "+".join(tags) if tags else "")

    @property
    def optimization_tags(self) -> tuple[str, ...]:
        tags = []
        if self.compress:
            tags.append("compression")
        if self.vectorize:
            tags.append("vectorization")
        if self.unroll:
            tags.append("unrolling")
        if self.prefetch:
            tags.append("prefetching")
        if self.decompose:
            tags.append("decomposition")
        if self.schedule == "auto":
            tags.append("auto-scheduling")
        return tuple(tags)

    def merged_with(self, other: "SpMVConfig") -> "SpMVConfig":
        """Joint application of two optimization recipes."""
        schedule = self.schedule
        if other.schedule != "balanced-nnz":
            schedule = other.schedule
        return SpMVConfig(
            vectorize=self.vectorize or other.vectorize,
            unroll=self.unroll or other.unroll,
            prefetch=self.prefetch or other.prefetch,
            compress=self.compress or other.compress,
            decompose=self.decompose or other.decompose,
            schedule=schedule,
            delta_width=self.delta_width or other.delta_width,
            decompose_threshold=(
                self.decompose_threshold or other.decompose_threshold
            ),
        )


@dataclass
class PreparedData:
    """Execution-format bundle produced by :meth:`ConfiguredSpMV.preprocess`."""

    csr: CSRMatrix
    delta: DeltaCSR | None = None
    decomposed: DecomposedCSR | None = None
    short_delta: DeltaCSR | None = None
    _long_csr: CSRMatrix | None = field(default=None, repr=False)

    @property
    def main_csr(self) -> CSRMatrix:
        """The row structure the partition and main loop run over."""
        return self.decomposed.short if self.decomposed is not None else self.csr

    def long_part_csr(self) -> CSRMatrix | None:
        """The long rows as a compact CSR (rows = long rows only)."""
        if self.decomposed is None or self.decomposed.n_long_rows == 0:
            return None
        if self._long_csr is None:
            d = self.decomposed
            self._long_csr = CSRMatrix(
                d.long_rowptr.copy(), d.long_colind.copy(),
                d.long_values.copy(), (d.n_long_rows, d.ncols),
                trusted=True,
            )
        return self._long_csr


class ConfiguredSpMV(Kernel):
    """SpMV kernel with an arbitrary combination of pool optimizations."""

    def __init__(self, config: SpMVConfig | None = None, **flags):
        if config is None:
            config = SpMVConfig(**flags)
        elif flags:
            config = replace(config, **flags)
        self.config = config
        self.name = config.label
        self.optimizations = config.optimization_tags
        self.schedule = config.schedule

    # -- preprocessing ---------------------------------------------------

    def preprocess(self, csr: CSRMatrix) -> PreparedData:
        cfg = self.config
        data = PreparedData(csr=csr)
        if cfg.decompose:
            data.decomposed = DecomposedCSR.from_csr(
                csr, threshold=cfg.decompose_threshold
            )
            if cfg.compress:
                data.short_delta = DeltaCSR.from_csr(
                    data.decomposed.short, width=cfg.delta_width
                )
        elif cfg.compress:
            data.delta = DeltaCSR.from_csr(csr, width=cfg.delta_width)
        return data

    def preprocessing_seconds(self, csr: CSRMatrix, machine: MachineSpec) -> float:
        cfg = self.config
        seconds = 0.0
        if cfg is not None and cfg != SpMVConfig():
            seconds += JIT_CODEGEN_SECONDS
        if cfg.compress:
            seconds += delta_conversion_seconds(csr, machine)
        if cfg.decompose:
            seconds += decomposition_seconds(csr, machine)
        return seconds

    # -- numeric plane -----------------------------------------------------

    def apply(self, data: PreparedData, x: np.ndarray,
              out: np.ndarray | None = None, workspace=None) -> np.ndarray:
        cfg = self.config
        if cfg.decompose:
            d = data.decomposed
            if data.short_delta is not None:
                # Exercise the delta-decode path for the short part.
                y = data.short_delta.matvec(x, out=out, workspace=workspace)
            else:
                y = d.short.matvec(x, out=out, workspace=workspace)
            long_csr = data.long_part_csr()
            if long_csr is not None:
                xs = np.asarray(x, dtype=np.float64)
                nlong = long_csr.nrows
                if workspace is not None:
                    tmp = workspace.buffer("cfg.long.y", nlong)
                    rowbuf = workspace.buffer("cfg.long.rows", nlong)
                else:
                    tmp = np.empty(nlong, dtype=np.float64)
                    rowbuf = np.empty(nlong, dtype=np.float64)
                long_csr.matvec(xs, out=tmp, workspace=workspace)
                # y[long_rows] += tmp without a fancy-index temporary.
                rows = d.long_rows_gather()
                np.take(y, rows, out=rowbuf, mode="clip")
                np.add(rowbuf, tmp, out=rowbuf)
                y[rows] = rowbuf
            return y
        if cfg.compress:
            return data.delta.matvec(x, out=out, workspace=workspace)
        return data.csr.matvec(x, out=out, workspace=workspace)

    def apply_multi(self, data: PreparedData, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        """Batched apply mirroring :meth:`apply`'s format dispatch.

        Delta decoding happens once per batch instead of once per
        vector, so the compressed paths gain the most from batching.
        """
        cfg = self.config
        if cfg.decompose:
            d = data.decomposed
            if data.short_delta is not None:
                Y = data.short_delta.matmat(X, out=out, workspace=workspace)
            else:
                Y = d.short.matmat(X, out=out, workspace=workspace)
            long_csr = data.long_part_csr()
            if long_csr is not None:
                nlong = long_csr.nrows
                k = Y.shape[1]
                if workspace is not None:
                    tmp = workspace.buffer("cfg.long.Y", (nlong, k))
                    rowbuf = workspace.buffer("cfg.long.Yrows", (nlong, k))
                else:
                    tmp = np.empty((nlong, k), dtype=np.float64)
                    rowbuf = np.empty((nlong, k), dtype=np.float64)
                long_csr.matmat(X, out=tmp, workspace=workspace)
                rows = d.long_rows_gather()
                np.take(Y, rows, axis=0, out=rowbuf, mode="clip")
                np.add(rowbuf, tmp, out=rowbuf)
                Y[rows] = rowbuf
            return Y
        if cfg.compress:
            return data.delta.matmat(X, out=out, workspace=workspace)
        return data.csr.matmat(X, out=out, workspace=workspace)

    # -- scheduling -----------------------------------------------------------

    def _schedulable(self, data: PreparedData):
        return data.main_csr

    # -- cost plane -------------------------------------------------------------

    def cost(self, data: PreparedData, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        cfg = self.config
        main = data.main_csr
        index_bytes = 4.0
        extra_row_bytes = 0.0
        if cfg.compress:
            delta = data.short_delta if cfg.decompose else data.delta
            index_bytes = delta.width / 8.0
            # Out-of-line reset entries (12 B each), amortized per row.
            if main.nrows:
                extra_row_bytes = 12.0 * delta.n_resets / main.nrows

        total_flops = 2.0 * data.csr.nnz
        ws = (
            data.csr.value_nbytes()
            + main.nrows * (8.0 + extra_row_bytes)
            + main.nnz * index_bytes
            + 8.0 * (data.csr.nrows + data.csr.ncols)
        )

        cost = spmv_cost(
            main, machine, partition,
            vectorize=cfg.vectorize,
            unroll=cfg.unroll,
            prefetch=cfg.prefetch,
            decode=cfg.compress,
            index_bytes_per_nnz=index_bytes,
            extra_index_bytes_per_row=extra_row_bytes,
            x_mode="gather",
            flops=total_flops,
            working_set_bytes=ws,
        )

        if cfg.decompose and data.decomposed.n_long_rows:
            cost = self._add_long_rows_cost(data, machine, partition, cost)
        return cost

    def _add_long_rows_cost(self, data: PreparedData, machine: MachineSpec,
                            partition: Partition, cost: KernelCost) -> KernelCost:
        """Phase 2 of the decomposed kernel: cooperative long rows.

        Every long row is split evenly across all threads (long rows
        vectorize well: contiguous value streams), followed by a
        tree reduction of partial sums and a phase barrier.
        """
        cfg = self.config
        d = data.decomposed
        T = partition.nthreads
        long_csr = data.long_part_csr()

        # Each thread processes a 1/T slice of every long row. Long-row
        # slices are contiguous value streams, so they vectorize well
        # regardless of the main loop's flag.
        chunk_nnz = np.diff(d.long_rowptr).astype(np.float64) / T
        cycles_per_thread = float(
            row_compute_cycles(
                np.maximum(chunk_nnz, 1.0), machine,
                vectorize=True,
                unroll=cfg.unroll,
                prefetch=cfg.prefetch,
                x_mode="gather",
            ).sum()
        )

        # Memory traffic of the long part, spread evenly.
        from ..machine.cache import x_access_cost

        xc = x_access_cost(long_csr, machine,
                           software_prefetch=cfg.prefetch)
        long_bytes = (
            d.long_nnz * 12.0 + float(xc.dram_bytes_per_row.sum())
        ) / T
        long_latency = float(xc.latency_ns_per_row.sum()) / T

        reduce_s = (
            d.n_long_rows
            * math.log2(max(T, 2))
            * _REDUCE_NS_PER_LEVEL
            * 1e-9
        )
        barrier_s = machine.parallel_overhead_seconds(T)

        extra = np.full(T, reduce_s + barrier_s)
        if cost.extra_seconds is not None:
            extra = extra + cost.extra_seconds
        return KernelCost(
            compute_cycles=cost.compute_cycles + cycles_per_thread,
            stream_bytes=cost.stream_bytes + long_bytes,
            latency_ns=cost.latency_ns + long_latency,
            mlp=cost.mlp,
            flops=cost.flops,
            working_set_bytes=cost.working_set_bytes + d.long_nnz * 12.0,
            extra_seconds=extra,
            max_unit_cycles=cost.max_unit_cycles,
            max_unit_latency_ns=cost.max_unit_latency_ns,
        )


def baseline_kernel() -> ConfiguredSpMV:
    """The paper's baseline: scalar CSR, nnz-balanced static partition,
    software prefetching disabled (icc ``-qopt-prefetch=0``)."""
    return ConfiguredSpMV(SpMVConfig())
