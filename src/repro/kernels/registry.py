"""Named registry of kernel variants (the optimization pool's atoms).

The five single optimizations swept by the paper's "trivial-single"
optimizer (and shown individually in Fig. 1) are composites of the
flag set, exactly as Table I defines them:

=============  =============================================
pool name       configuration
=============  =============================================
compression     delta column indices + vectorization (MB)
prefetching     software prefetch on x (ML)
decomposition   long-row split (IMB, uneven row lengths)
auto-sched      OpenMP ``auto`` schedule (IMB, unevenness)
unrolling       inner-loop unrolling + vectorization (CMP)
=============  =============================================
"""

from __future__ import annotations

import threading
from itertools import combinations

from .variants import ConfiguredSpMV, SpMVConfig, baseline_kernel

__all__ = [
    "POOL_CONFIGS",
    "pool_kernel",
    "pool_names",
    "register_pool_optimization",
    "registered_pool_names",
    "single_optimization_kernels",
    "pairwise_optimization_kernels",
    "merged_pool_kernel",
    "QUARANTINE_THRESHOLD",
    "record_kernel_failure",
    "kernel_failure_count",
    "kernel_failure_counts",
    "kernel_failure_log",
    "is_quarantined",
    "quarantined_kernel_names",
    "clear_quarantine",
]

POOL_CONFIGS: dict[str, SpMVConfig] = {
    "compression": SpMVConfig(compress=True, vectorize=True),
    "prefetching": SpMVConfig(prefetch=True),
    "decomposition": SpMVConfig(decompose=True),
    "auto-sched": SpMVConfig(schedule="auto"),
    "unrolling": SpMVConfig(unroll=True, vectorize=True),
}

#: User-registered optimizations (plug-and-play extension point). These
#: are resolvable by :func:`pool_kernel` / :func:`merged_pool_kernel`
#: and can be mapped to classes via
#: :class:`repro.core.pool.OptimizationPool`, but do NOT join the
#: canonical 5-optimization sweep the paper's trivial optimizers use.
_CUSTOM_CONFIGS: dict[str, SpMVConfig] = {}


def register_pool_optimization(name: str, config) -> None:
    """Register a custom optimization under ``name``.

    ``config`` is either an :class:`SpMVConfig` (a flag combination on
    the CSR kernel, freely mergeable with other optimizations) or a
    zero-argument *kernel factory* returning a
    :class:`~repro.kernels.base.Kernel` (an entirely different format/
    inner loop, e.g. BCSR — applicable only on its own).

    This is the paper's plug-and-play property: a new optimization can
    be assigned to a bottleneck class without retraining any classifier.
    Canonical names cannot be shadowed.
    """
    if name in POOL_CONFIGS:
        raise ValueError(f"cannot shadow canonical optimization {name!r}")
    if not (isinstance(config, SpMVConfig) or callable(config)):
        raise TypeError("config must be an SpMVConfig or a kernel factory")
    _CUSTOM_CONFIGS[name] = config


def registered_pool_names() -> tuple[str, ...]:
    """All resolvable optimization names (canonical + custom)."""
    return tuple(POOL_CONFIGS) + tuple(_CUSTOM_CONFIGS)


def _lookup(name: str) -> SpMVConfig:
    if name in POOL_CONFIGS:
        return POOL_CONFIGS[name]
    if name in _CUSTOM_CONFIGS:
        return _CUSTOM_CONFIGS[name]
    raise ValueError(
        f"unknown pool optimization {name!r}; "
        f"available: {registered_pool_names()}"
    )


def pool_names() -> tuple[str, ...]:
    """The canonical five single optimizations (paper Table I)."""
    return tuple(POOL_CONFIGS)


def pool_kernel(name: str):
    """One pool optimization (canonical or registered) by name."""
    entry = _lookup(name)
    if isinstance(entry, SpMVConfig):
        return ConfiguredSpMV(entry)
    return entry()


def merged_pool_kernel(names: tuple[str, ...] | list[str]):
    """Jointly apply several pool optimizations (paper Section III-E).

    Factory-registered optimizations (whole-kernel replacements such as
    BCSR) cannot be merged with flag-based ones; selecting one together
    with other optimizations is an error.
    """
    if not names:
        return baseline_kernel()
    entries = [( name, _lookup(name)) for name in names]
    factories = [n for n, e in entries if not isinstance(e, SpMVConfig)]
    if factories:
        if len(entries) > 1:
            raise ValueError(
                f"kernel-replacing optimization(s) {factories} cannot be "
                f"applied jointly with others ({[n for n, _ in entries]})"
            )
        return entries[0][1]()
    config = SpMVConfig()
    for _, entry in entries:
        config = config.merged_with(entry)
    return ConfiguredSpMV(config)


def single_optimization_kernels() -> dict[str, ConfiguredSpMV]:
    """The 5 single-optimization kernels (paper's trivial-single sweep)."""
    return {name: pool_kernel(name) for name in POOL_CONFIGS}


def pairwise_optimization_kernels() -> dict[str, ConfiguredSpMV]:
    """Singles + all 10 pairs (paper's trivial-combined sweep, 15 total)."""
    out = single_optimization_kernels()
    for a, b in combinations(POOL_CONFIGS, 2):
        out[f"{a}+{b}"] = merged_pool_kernel((a, b))
    return out


# -- kernel quarantine (per-variant failure accounting) ----------------
#
# The guarded execution layer (repro.guard.guarded) records every
# runtime fault of a kernel variant here, keyed by the variant's
# ``name``. Once a variant accumulates QUARANTINE_THRESHOLD failures it
# is *quarantined*: guarded wrappers stop calling it (falling back to
# the reference CSR kernel) and AdaptiveSpMV refuses to plan it.

QUARANTINE_THRESHOLD = 1

_quarantine_lock = threading.Lock()
_kernel_failures: dict[str, list[str]] = {}


def record_kernel_failure(name: str, reason: str) -> int:
    """Record one runtime fault of variant ``name``; returns its new
    failure count."""
    with _quarantine_lock:
        log = _kernel_failures.setdefault(str(name), [])
        log.append(str(reason))
        return len(log)


def kernel_failure_count(name: str) -> int:
    with _quarantine_lock:
        return len(_kernel_failures.get(str(name), ()))


def kernel_failure_counts() -> dict[str, int]:
    """Snapshot of every variant's failure count (telemetry export)."""
    with _quarantine_lock:
        return {name: len(log) for name, log in _kernel_failures.items()}


def kernel_failure_log(name: str) -> tuple[str, ...]:
    """The recorded failure reasons of variant ``name`` (oldest first)."""
    with _quarantine_lock:
        return tuple(_kernel_failures.get(str(name), ()))


def is_quarantined(name: str, threshold: int | None = None) -> bool:
    limit = QUARANTINE_THRESHOLD if threshold is None else int(threshold)
    return kernel_failure_count(name) >= max(limit, 1)


def quarantined_kernel_names(threshold: int | None = None) -> tuple[str, ...]:
    limit = QUARANTINE_THRESHOLD if threshold is None else int(threshold)
    limit = max(limit, 1)
    with _quarantine_lock:
        return tuple(
            name for name, log in _kernel_failures.items()
            if len(log) >= limit
        )


def clear_quarantine(name: str | None = None) -> None:
    """Forget recorded failures (all variants, or just ``name``)."""
    with _quarantine_lock:
        if name is None:
            _kernel_failures.clear()
        else:
            _kernel_failures.pop(str(name), None)
