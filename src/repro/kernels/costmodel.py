"""Shared per-row cost accounting for all CSR-family SpMV kernels.

The machine model (DESIGN.md Section 6) needs, per thread: core compute
cycles, streamed memory bytes, and exposed miss latency. This module
computes those as *per-row* arrays from the matrix structure and the
kernel's optimization flags, then folds them onto threads through the
row partition. Everything is vectorized over rows.

x-access modes
--------------
``"gather"``
    Normal SpMV: ``x[colind[j]]`` — irregular, costed by the cache
    model in :mod:`repro.machine.cache`.
``"sequential"``
    The paper's P_ML micro-kernel: ``colind`` entries are all set to
    the current row index, so the gather hits one resident element per
    row. Index loads still happen; miss latency vanishes.
``"unit"``
    The paper's P_CMP micro-kernel: indirection removed entirely —
    ``colind`` is not even loaded and x is accessed unit-stride. The
    now-regular inner loop is assumed auto-vectorized by the compiler
    (the reason matrices with dense rows "improve with vectorization"
    show ``P_CMP`` headroom).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in
from ..formats import CSRMatrix
from ..machine import KernelCost, MachineSpec
from ..machine.cache import x_access_cost
from ..sched import Partition

__all__ = ["row_compute_cycles", "row_stream_bytes", "spmv_cost"]

#: Vector-load cost per element when x accesses are regular (no gather).
_REGULAR_LOAD_CYCLES_PER_ELEM = 0.15

#: Rows at least this many SIMD iterations long benefit from unrolling.
_UNROLL_MIN_ITERS = 4

#: y traffic per row: write + read-for-ownership (write-allocate).
_Y_BYTES_PER_ROW = 16.0

#: rowptr traffic per row (int64 offsets, one new entry per row).
_ROWPTR_BYTES_PER_ROW = 8.0


def row_compute_cycles(
    row_nnz: np.ndarray,
    machine: MachineSpec,
    *,
    vectorize: bool = False,
    unroll: bool = False,
    prefetch: bool = False,
    decode: bool = False,
    x_mode: str = "gather",
) -> np.ndarray:
    """Core compute cycles per row for the configured inner loop."""
    check_in("x_mode", x_mode, ("gather", "sequential", "unit"))
    nnz = row_nnz.astype(np.float64)
    m = machine

    if x_mode == "gather":
        elem_access = m.gather_cycles_per_elem
    else:
        elem_access = _REGULAR_LOAD_CYCLES_PER_ELEM

    if vectorize:
        iters = np.ceil(nnz / m.simd_doubles)
        per_iter = m.vec_iter_base_cycles + elem_access * m.simd_doubles
        body = iters * per_iter
        overhead = np.full_like(nnz, m.vec_row_overhead_cycles)
        if unroll:
            long = iters >= _UNROLL_MIN_ITERS
            body = np.where(long, body / m.unroll_speedup, body)
            overhead = np.where(long, overhead * 0.7, overhead)
        cycles = overhead + body
    else:
        per_elem = m.scalar_cycles_per_nnz
        if x_mode != "gather":
            # Regular access: address arithmetic is simpler and the
            # load hits L1; discount part of the scalar cost.
            per_elem = max(per_elem - 1.0, 0.5)
        body = nnz * per_elem
        if unroll:
            long = nnz >= 2 * m.simd_doubles
            body = np.where(long, body / (0.5 + 0.5 * m.unroll_speedup), body)
        cycles = m.row_overhead_cycles + body

    if prefetch:
        cycles = cycles + nnz * m.prefetch_issue_cycles
    if decode:
        cycles = cycles + nnz * m.decode_cycles_per_nnz
    # Empty rows still pay the (scalar) loop bookkeeping.
    return np.where(row_nnz > 0, cycles,
                    float(m.row_overhead_cycles))


def row_stream_bytes(
    row_nnz: np.ndarray,
    *,
    index_bytes_per_nnz: float,
    extra_index_bytes_per_row: float = 0.0,
    x_dram_bytes: np.ndarray | None = None,
    x_mode: str = "gather",
) -> np.ndarray:
    """Streamed memory traffic per row (matrix arrays + y + x)."""
    nnz = row_nnz.astype(np.float64)
    a_bytes = nnz * (8.0 + index_bytes_per_nnz)
    per_row = (
        a_bytes
        + _ROWPTR_BYTES_PER_ROW
        + extra_index_bytes_per_row
        + _Y_BYTES_PER_ROW
    )
    if x_mode == "gather":
        if x_dram_bytes is not None:
            per_row = per_row + x_dram_bytes
    else:
        # One resident x element per row: negligible, line-amortized.
        per_row = per_row + 8.0
    return per_row


def spmv_cost(
    csr_structure: CSRMatrix,
    machine: MachineSpec,
    partition: Partition,
    *,
    vectorize: bool = False,
    unroll: bool = False,
    prefetch: bool = False,
    decode: bool = False,
    index_bytes_per_nnz: float = 4.0,
    extra_index_bytes_per_row: float = 0.0,
    x_mode: str = "gather",
    flops: float | None = None,
    working_set_bytes: float | None = None,
    extra_seconds: np.ndarray | None = None,
) -> KernelCost:
    """Assemble a :class:`~repro.machine.engine.KernelCost`.

    ``csr_structure`` supplies the row structure and, for
    ``x_mode="gather"``, the column pattern for the cache model; the
    byte accounting can be overridden (``index_bytes_per_nnz``) for
    compressed index formats whose row structure matches the CSR.
    """
    partition.validate_covers(csr_structure.nrows)
    row_nnz = csr_structure.row_nnz()

    cycles = row_compute_cycles(
        row_nnz, machine,
        vectorize=vectorize, unroll=unroll, prefetch=prefetch,
        decode=decode, x_mode=x_mode,
    )

    if x_mode == "gather":
        xc = x_access_cost(csr_structure, machine,
                           software_prefetch=prefetch)
        latency_per_row = xc.latency_ns_per_row
        x_bytes = xc.dram_bytes_per_row
    else:
        latency_per_row = np.zeros(csr_structure.nrows)
        x_bytes = None

    bytes_per_row = row_stream_bytes(
        row_nnz,
        index_bytes_per_nnz=index_bytes_per_nnz,
        extra_index_bytes_per_row=extra_index_bytes_per_row,
        x_dram_bytes=x_bytes,
        x_mode=x_mode,
    )

    if flops is None:
        flops = 2.0 * csr_structure.nnz
    if working_set_bytes is None:
        a_bytes = float(
            row_nnz.sum() * (8.0 + index_bytes_per_nnz)
            + csr_structure.nrows
            * (_ROWPTR_BYTES_PER_ROW + extra_index_bytes_per_row)
        )
        working_set_bytes = a_bytes + 8.0 * (
            csr_structure.nrows + csr_structure.ncols
        )

    return KernelCost(
        compute_cycles=partition.thread_sums(cycles),
        stream_bytes=partition.thread_sums(bytes_per_row),
        latency_ns=partition.thread_sums(latency_per_row),
        mlp=machine.mlp_prefetch if prefetch else machine.mlp,
        flops=float(flops),
        working_set_bytes=float(working_set_bytes),
        extra_seconds=extra_seconds,
        max_unit_cycles=float(cycles.max(initial=0.0)),
        max_unit_latency_ns=float(latency_per_row.max(initial=0.0)),
    )
