"""SELL-C-sigma SpMV kernel (extension payload, like BCSR).

Cost plane: chunks of ``C`` rows execute in SIMD lockstep — unit-stride
loads of values/indices, one gather per slot-row — so per-chunk cost is
``width`` SIMD iterations regardless of individual row lengths. The
price is the padding slots (streamed and computed on) and a permuted
output vector (one extra pass over y).
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from ..formats.sellcs import SellCSigmaMatrix
from ..machine import KernelCost, MachineSpec
from ..machine.cache import stream_cost
from ..sched import Partition, make_partition
from .base import Kernel
from .preprocess_cost import JIT_CODEGEN_SECONDS, pass_seconds

__all__ = ["SellCSigmaSpMV"]


class SellCSigmaSpMV(Kernel):
    """SELL-C-sigma SpMV; ``chunk`` defaults to the SIMD width at cost
    time (the format is built with the constructor's chunk)."""

    optimizations = ("sell-c-sigma", "vectorization")
    schedule = "balanced-nnz"

    def __init__(self, chunk: int = 8, sigma: int | None = None):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = int(chunk)
        self.sigma = sigma
        self.name = f"sell-{self.chunk}-{sigma if sigma else 32 * chunk}"
        # The sigma sort window is the regrouping granularity: splits
        # at window multiples reproduce the serial chunking exactly.
        self.row_align = max(int(sigma) if sigma else 32 * self.chunk,
                             self.chunk)

    # -- preprocessing ----------------------------------------------------

    def preprocess(self, csr: CSRMatrix) -> SellCSigmaMatrix:
        return SellCSigmaMatrix.from_csr(csr, chunk=self.chunk,
                                         sigma=self.sigma)

    def preprocessing_seconds(self, csr: CSRMatrix, machine: MachineSpec) -> float:
        # sigma-window sorts (short keys) + full array re-layout.
        nbytes = csr.nnz * (12.0 * 2) + 16.0 * csr.nrows
        return pass_seconds(nbytes, machine) + JIT_CODEGEN_SECONDS

    # -- numeric plane ------------------------------------------------------

    def apply(self, data: SellCSigmaMatrix, x: np.ndarray,
              out: np.ndarray | None = None, workspace=None) -> np.ndarray:
        return data.matvec(x, out=out, workspace=workspace)

    def apply_multi(self, data: SellCSigmaMatrix, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        return data.matmat(X, out=out, workspace=workspace)

    # -- scheduling -----------------------------------------------------------

    def partition(self, data: SellCSigmaMatrix, nthreads: int) -> Partition:
        # balance stored slots across threads over chunks
        proxy = self._chunk_proxy(data)
        return make_partition(proxy, nthreads, "balanced-nnz")

    @staticmethod
    def _chunk_proxy(data: SellCSigmaMatrix) -> CSRMatrix:
        """One proxy row per chunk, sized by its stored slots."""
        return CSRMatrix(
            data.chunk_ptr.copy(),
            np.zeros(int(data.chunk_ptr[-1]), dtype=np.int32),
            np.zeros(int(data.chunk_ptr[-1])),
            (data.nchunks, max(data.ncols, 1)),
            trusted=True,
        )

    def _schedulable(self, data):  # pragma: no cover
        raise NotImplementedError("SellCSigmaSpMV builds its own partition")

    # -- cost plane ---------------------------------------------------------------

    def cost(self, data: SellCSigmaMatrix, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        m = machine
        partition.validate_covers(data.nchunks)
        C = data.chunk
        width = data.chunk_len.astype(np.float64)

        # One SIMD iteration per slot-row processes min(C, simd) lanes.
        lanes_per_iter = min(C, m.simd_doubles)
        iters = width * np.ceil(C / lanes_per_iter)
        per_iter = (
            m.vec_iter_base_cycles
            + m.gather_cycles_per_elem * lanes_per_iter
        )
        cycles = m.vec_row_overhead_cycles + iters * per_iter

        # Traffic: padded slots stream fully; + chunk metadata; + the
        # y permutation writeback (16 B per row: load + store).
        slots = width * C
        bytes_per_chunk = slots * 12.0 + 16.0 + 16.0 * C

        # x gathers follow the stored (chunk-column-major) stream;
        # padding slots hit x[0], which is resident. The aggregate
        # latency/traffic is distributed over chunks by stored slots.
        total_share = slots / max(slots.sum(), 1.0)
        agg = _aggregate_x_cost(data, m)
        latency = agg["latency_ns"] * total_share
        bytes_per_chunk = bytes_per_chunk + agg["dram_bytes"] * total_share

        flops = 2.0 * data.nnz
        ws = data.total_nbytes() + 8.0 * (data.nrows + data.ncols)
        return KernelCost(
            compute_cycles=partition.thread_sums(cycles),
            stream_bytes=partition.thread_sums(bytes_per_chunk),
            latency_ns=partition.thread_sums(latency),
            mlp=m.mlp,
            flops=flops,
            working_set_bytes=ws,
            max_unit_cycles=float(cycles.max(initial=0.0)),
            max_unit_latency_ns=float(latency.max(initial=0.0)),
        )


def _aggregate_x_cost(data: SellCSigmaMatrix, machine: MachineSpec) -> dict:
    """Total x latency/traffic of the stored gather stream (issue
    order, padding slots excluded)."""
    mask = data.values != 0.0
    cols = data.colind[mask].astype(np.int64)
    return stream_cost(cols, data.ncols, machine)
