"""Kernel interface: numeric plane + cost plane + preprocessing cost.

Every SpMV kernel variant in this library exposes three planes:

* **numeric**: :meth:`Kernel.apply` computes the actual ``y = A @ x``
  with vectorized NumPy, so every transformation (delta decoding,
  decomposition, schedule permutation) is functionally verified against
  ``scipy.sparse`` in the test suite;
* **cost**: :meth:`Kernel.cost` produces the per-thread cycle/byte/
  latency terms the :class:`~repro.machine.engine.ExecutionEngine`
  turns into simulated execution times;
* **preprocessing**: :meth:`Kernel.preprocess` performs the actual
  format conversion, and :meth:`Kernel.preprocessing_seconds` charges
  its simulated setup cost (format conversion passes + JIT code
  generation), which the amortization analysis of paper Table V
  consumes.
"""

from __future__ import annotations

import abc

import numpy as np

from ..formats import CSRMatrix
from ..machine import KernelCost, MachineSpec
from ..sched import Partition, make_partition

__all__ = ["Kernel"]


class Kernel(abc.ABC):
    """Base class for SpMV kernel variants."""

    #: unique identifier, e.g. ``"csr"`` or ``"csr+vec+prefetch"``.
    name: str = "abstract"
    #: optimization tags applied relative to the scalar CSR baseline.
    optimizations: tuple[str, ...] = ()
    #: schedule policy name used by :meth:`partition`.
    schedule: str = "balanced-nnz"
    #: row granularity at which this kernel's execution format can be
    #: split without changing floating-point association. Row-local
    #: CSR-family kernels split anywhere (1); blocked/sorted formats
    #: (BCSR, SELL-C-sigma) regroup rows, so the parallel plane
    #: (:mod:`repro.parallel`) aligns chunk boundaries to this many
    #: rows to keep chunked execution bit-identical to serial.
    row_align: int = 1

    # -- preprocessing plane -------------------------------------------

    def preprocess(self, csr: CSRMatrix):
        """Convert ``csr`` into this kernel's execution format.

        The returned object is what :meth:`apply` / :meth:`cost` accept
        as ``data``. The default kernel executes CSR directly.
        """
        return csr

    def preprocessing_seconds(self, csr: CSRMatrix, machine: MachineSpec) -> float:
        """Simulated setup cost (conversion + JIT codegen) on ``machine``."""
        return 0.0

    # -- numeric plane ----------------------------------------------------

    @abc.abstractmethod
    def apply(self, data, x: np.ndarray, out: np.ndarray | None = None,
              workspace=None) -> np.ndarray:
        """Compute the kernel's result for input vector ``x``.

        ``out`` receives the result in place (validated against the
        kernel's output shape); ``workspace`` (a
        :class:`repro.memory.Workspace`) supplies reusable scratch
        buffers so repeat applies allocate nothing. Both are optional
        and default to the allocate-per-call behavior.
        """

    def apply_multi(self, data, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        """Batched numeric plane: ``Y = A @ X`` for ``X`` of shape
        ``(ncols, k)``.

        Column ``j`` of the result equals ``apply(data, X[:, j])``.
        Kernels whose execution format has a native ``matmat`` override
        this to amortize index traffic and any decode/permutation work
        over all ``k`` right-hand sides; the fallback stacks ``apply``
        calls.
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (ncols, k), got shape {X.shape}")
        cols = [self.apply(data, X[:, j], workspace=workspace)
                for j in range(X.shape[1])]
        if not cols:
            nrows = getattr(data, "nrows", 0)
            Y = np.zeros((nrows, 0), dtype=np.float64)
        else:
            Y = np.stack(cols, axis=1)
        if out is None:
            return Y
        from ..formats.base import check_out_buffer

        out = check_out_buffer(out, Y.shape, operand=X)
        out[:] = Y
        return out

    # -- cost plane -------------------------------------------------------

    @abc.abstractmethod
    def cost(self, data, machine: MachineSpec, partition: Partition) -> KernelCost:
        """Per-thread cost terms of one kernel execution."""

    # -- scheduling ---------------------------------------------------------

    def partition(self, data, nthreads: int) -> Partition:
        """Default row partition for this kernel at ``nthreads``."""
        return make_partition(self._schedulable(data), nthreads, self.schedule)

    def _schedulable(self, data):
        """The rowptr-bearing object the schedule should balance over."""
        return data

    # -- conveniences ------------------------------------------------------

    def run_numeric(self, csr: CSRMatrix, x: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        """Preprocess + apply in one step (tests & examples)."""
        data = self.preprocess(csr)
        x = np.asarray(x)
        if x.ndim == 2:
            return self.apply_multi(data, x, out=out, workspace=workspace)
        return self.apply(data, x, out=out, workspace=workspace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
