"""Simulated preprocessing/setup cost models (feeds paper Table V).

The paper's amortization analysis charges every optimizer the setup
work it actually performs: format conversion passes, JIT code
generation, feature extraction, micro-benchmark profiling runs. These
helpers express each as streamed passes over the matrix arrays at a
derated bandwidth (preprocessing is not as tuned as the kernel itself)
plus small fixed costs.
"""

from __future__ import annotations

from ..formats import CSRMatrix
from ..machine import MachineSpec

__all__ = [
    "JIT_CODEGEN_SECONDS",
    "pass_seconds",
    "delta_conversion_seconds",
    "decomposition_seconds",
    "feature_extraction_seconds",
]

#: Runtime (JIT) specialization of one kernel configuration. The paper
#: generates optimized code just-in-time; one compilation of a small
#: kernel costs on the order of ten milliseconds.
JIT_CODEGEN_SECONDS = 0.012

#: Preprocessing streams data at roughly half of STREAM bandwidth
#: (untuned single-pass loops with branches).
_PREPROCESS_BW_DERATE = 0.5

#: Fixed overhead per preprocessing step (allocation, dispatch).
_FIXED_SECONDS = 0.001


def pass_seconds(nbytes: float, machine: MachineSpec) -> float:
    """Time to stream ``nbytes`` through a preprocessing pass."""
    bw = machine.bw_main_gbs * 1e9 * _PREPROCESS_BW_DERATE
    return nbytes / bw + _FIXED_SECONDS


def delta_conversion_seconds(csr: CSRMatrix, machine: MachineSpec) -> float:
    """CSR -> DeltaCSR: gap scan, width choice, delta write (~3 passes)."""
    nbytes = csr.nnz * (4.0 + 4.0 + 2.0) + csr.rowptr.nbytes
    return pass_seconds(nbytes, machine)


def decomposition_seconds(csr: CSRMatrix, machine: MachineSpec) -> float:
    """CSR -> DecomposedCSR: row-length scan + full array restructure."""
    nbytes = 2.0 * (csr.total_nbytes())
    return pass_seconds(nbytes, machine)


def feature_extraction_seconds(
    csr: CSRMatrix, machine: MachineSpec, complexity: str
) -> float:
    """Cost of extracting a feature set of the given complexity class.

    ``O(N)`` features need the rowptr and per-row reductions; ``O(NNZ)``
    features additionally scan the column indices (paper Table II).
    """
    if complexity == "O(1)":
        return _FIXED_SECONDS
    if complexity == "O(N)":
        return pass_seconds(3.0 * 8.0 * csr.nrows, machine)
    if complexity == "O(NNZ)":
        return pass_seconds(
            3.0 * 8.0 * csr.nrows + 2.0 * 4.0 * csr.nnz, machine
        )
    raise ValueError(f"unknown complexity class {complexity!r}")
