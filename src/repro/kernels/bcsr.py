"""BCSR (register-blocked) SpMV kernel — plug-and-play pool payload.

Demonstrates the paper's extensibility claim with an optimization that
is *not* a flag on the CSR kernel: a genuinely different format and
inner loop. Registered under the name ``"bcsr"`` (see
:func:`repro.kernels.registry.register_pool_optimization`), it can be
mapped to the MB class as an alternative to delta compression — the A6
ablation quantifies when each wins.

Cost plane: one column index per block (index traffic / ``r^2``), a
dense ``r x r`` register tile per block (SIMD-friendly, one gather
address per block instead of one per element), but all fill-in zeros
are both computed on and streamed.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix
from ..formats.bcsr import BCSRMatrix
from ..machine import KernelCost, MachineSpec
from ..machine.cache import x_access_cost
from ..sched import Partition, make_partition
from .base import Kernel
from .preprocess_cost import JIT_CODEGEN_SECONDS, pass_seconds

__all__ = ["BCSRSpMV"]


class BCSRSpMV(Kernel):
    """Register-blocked SpMV with square blocks of size ``block``."""

    optimizations = ("register-blocking", "vectorization")
    schedule = "balanced-nnz"

    def __init__(self, block: int = 2):
        if block < 1:
            raise ValueError("block must be >= 1")
        self.block = int(block)
        self.name = f"bcsr{self.block}x{self.block}"
        # Rows regroup into r-row blocks: only block-aligned splits
        # preserve the per-row addend association.
        self.row_align = self.block

    # -- preprocessing -----------------------------------------------------

    def preprocess(self, csr: CSRMatrix) -> BCSRMatrix:
        return BCSRMatrix.from_csr(csr, block=self.block)

    def preprocessing_seconds(self, csr: CSRMatrix, machine: MachineSpec) -> float:
        # unique-key sort + dense block scatter: ~3 passes over the
        # nonzeros plus writing the (fill-inflated) block array.
        approx_fill = 2.0  # conservative estimate without converting
        nbytes = csr.nnz * (12.0 + approx_fill * 8.0) + csr.rowptr.nbytes
        return pass_seconds(nbytes, machine) + JIT_CODEGEN_SECONDS

    # -- numeric plane -------------------------------------------------------

    def apply(self, data: BCSRMatrix, x: np.ndarray,
              out: np.ndarray | None = None, workspace=None) -> np.ndarray:
        return data.matvec(x, out=out, workspace=workspace)

    def apply_multi(self, data: BCSRMatrix, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        return data.matmat(X, out=out, workspace=workspace)

    # -- scheduling ------------------------------------------------------------

    def partition(self, data: BCSRMatrix, nthreads: int) -> Partition:
        # balance stored blocks across threads over block rows
        proxy = CSRMatrix(
            data.block_rowptr.copy(),
            data.block_colind.copy(),
            np.ones(data.nblocks),
            (data.block_rowptr.size - 1,
             max(-(-data.ncols // data.block), 1)),
            trusted=True,
        )
        return make_partition(proxy, nthreads, "balanced-nnz")

    def _schedulable(self, data: BCSRMatrix):  # pragma: no cover
        raise NotImplementedError("BCSRSpMV builds its own partition")

    # -- cost plane ---------------------------------------------------------------

    def cost(self, data: BCSRMatrix, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        r = data.block
        m = machine
        nbrows = data.block_rowptr.size - 1
        partition.validate_covers(nbrows)

        blocks_per_brow = np.diff(data.block_rowptr).astype(np.float64)

        # Compute: per block, r SIMD rows of r elements each — dense
        # FMA tile with a single x-block load (one address per block).
        simd_iters_per_block = r * max(np.ceil(r / m.simd_doubles), 1.0)
        per_block_cycles = (
            m.vec_iter_base_cycles * simd_iters_per_block
            + m.gather_cycles_per_elem * r       # one gather per block row of x
        )
        cycles = (
            m.vec_row_overhead_cycles + blocks_per_brow * per_block_cycles
        )

        # Traffic: dense tiles (incl. fill) + one 4B index per block.
        bytes_per_brow = blocks_per_brow * (r * r * 8.0 + 4.0) + 8.0 + 16.0

        # x behaviour at block granularity via the block-coordinate CSR.
        proxy = CSRMatrix(
            data.block_rowptr.copy(), data.block_colind.copy(),
            np.ones(data.nblocks),
            (nbrows, max(-(-data.ncols // r), 1)),
            trusted=True,
        )
        xc = x_access_cost(proxy, m)
        latency = xc.latency_ns_per_row
        bytes_per_brow = bytes_per_brow + xc.dram_bytes_per_row

        flops = 2.0 * data.nnz  # useful flops exclude fill-in
        ws = data.total_nbytes() + 8.0 * (data.nrows + data.ncols)

        return KernelCost(
            compute_cycles=partition.thread_sums(cycles),
            stream_bytes=partition.thread_sums(bytes_per_brow),
            latency_ns=partition.thread_sums(latency),
            mlp=m.mlp,
            flops=flops,
            working_set_bytes=ws,
            max_unit_cycles=float(cycles.max(initial=0.0)),
            max_unit_latency_ns=float(latency.max(initial=0.0)),
        )
