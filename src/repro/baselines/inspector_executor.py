"""Inspector-Executor CSR analogue (MKL ``mkl_sparse_d_mv`` with
``mkl_sparse_optimize``).

The real Inspector-Executor analyzes the matrix once ("inspection") and
autotunes an internal execution strategy, at a nontrivial setup cost.
We model it faithfully to the properties the paper measures:

* it adapts the *schedule* and applies internal vectorization/index
  optimization — so it beats plain MKL CSR substantially on many
  matrices (4.89x average on KNL in the paper);
* its optimization space does **not** include software prefetching or
  long-row decomposition — so the paper's optimizer keeps an edge on
  latency-bound and extremely skewed matrices;
* its inspection + trial-run cost is charged, landing it between the
  feature-guided and trivial optimizers in the amortization table.

Availability mirrors the paper: the Inspector-Executor API does not
exist on KNC ("MKL Inspector-Executor is not available on KNC").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, SpMVConfig, pass_seconds
from ..machine import MachineSpec, RunResult
from ..model import AnalyticModel

__all__ = ["InspectorExecutor", "InspectorExecutorResult"]

#: Candidate internal strategies the inspector tries.
_CANDIDATES: tuple[SpMVConfig, ...] = (
    SpMVConfig(vectorize=True),                       # balanced-nnz + SIMD
    SpMVConfig(vectorize=True, schedule="auto"),      # chunked schedule
    SpMVConfig(vectorize=True, schedule="dynamic"),   # load balancing
    SpMVConfig(vectorize=True, compress=True),        # index compression
    SpMVConfig(vectorize=True, unroll=True),          # unrolled SIMD
)

#: Trial executions per candidate during inspection.
_TRIAL_RUNS = 8


@dataclass(frozen=True)
class InspectorExecutorResult:
    """Outcome of inspect+optimize for one matrix."""

    result: RunResult                 # executor performance
    chosen: SpMVConfig
    inspection_seconds: float         # full setup cost (t_pre)

    @property
    def gflops(self) -> float:
        return self.result.gflops


class InspectorExecutor:
    """MKL Inspector-Executor analogue for one target machine."""

    def __init__(self, machine: MachineSpec, nthreads: int | None = None):
        if machine.codename == "knc":
            raise ValueError(
                "the Inspector-Executor API is not available on KNC "
                "(as in the paper)"
            )
        self.machine = machine
        self.model = AnalyticModel(machine, nthreads)

    def optimize(self, csr: CSRMatrix) -> InspectorExecutorResult:
        """Inspect ``csr``, trial-run candidates, return the best."""
        if csr.nnz == 0:
            raise ValueError("cannot optimize an empty matrix")
        # Inspection: two analysis passes over the matrix arrays.
        t_pre = pass_seconds(2.0 * csr.total_nbytes(), self.machine)

        best: RunResult | None = None
        best_cfg: SpMVConfig | None = None
        for cfg in _CANDIDATES:
            kernel = ConfiguredSpMV(cfg)
            result = self.model.run(kernel, kernel.preprocess(csr))
            t_pre += _TRIAL_RUNS * result.seconds
            t_pre += kernel.preprocessing_seconds(csr, self.machine)
            if best is None or result.gflops > best.gflops:
                best, best_cfg = result, cfg

        final = RunResult(
            kernel_name="mkl-inspector-executor",
            machine_codename=best.machine_codename,
            nthreads=best.nthreads,
            seconds=best.seconds,
            thread_seconds=best.thread_seconds,
            flops=best.flops,
            total_bytes=best.total_bytes,
            schedule_kind=best.schedule_kind,
            breakdown=best.breakdown,
        )
        return InspectorExecutorResult(
            result=final, chosen=best_cfg, inspection_seconds=t_pre
        )
