"""Trivial (exhaustive) optimizers — paper Table V's straw men.

``trivial-single`` benchmarks each of the 5 single pool optimizations
on the input matrix and keeps the best; ``trivial-combined`` also
sweeps all 10 pairs (15 configurations total). Both are maximally
accurate and maximally expensive: every candidate pays its full
preprocessing *and* a 64-iteration timing run, which is exactly why the
paper builds classifiers instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats import CSRMatrix
from ..kernels import (
    pairwise_optimization_kernels,
    single_optimization_kernels,
)
from ..machine import MachineSpec, RunResult
from ..model import AnalyticModel

__all__ = ["TrivialResult", "TrivialOptimizer"]

#: Timing iterations per candidate (paper Section IV-D).
_BENCH_ITERATIONS = 64


@dataclass(frozen=True)
class TrivialResult:
    """Outcome of the exhaustive sweep for one matrix."""

    result: RunResult
    chosen: str
    sweep_seconds: float          # full setup cost (t_pre)
    n_candidates: int

    @property
    def gflops(self) -> float:
        return self.result.gflops


class TrivialOptimizer:
    """Sweep-everything optimizer (``mode`` = "single" or "combined")."""

    def __init__(self, machine: MachineSpec, mode: str = "single",
                 nthreads: int | None = None):
        if mode not in ("single", "combined"):
            raise ValueError(f"mode must be 'single' or 'combined', got {mode!r}")
        self.machine = machine
        self.mode = mode
        self.model = AnalyticModel(machine, nthreads)

    def candidates(self):
        if self.mode == "single":
            return single_optimization_kernels()
        return pairwise_optimization_kernels()

    def optimize(self, csr: CSRMatrix) -> TrivialResult:
        """Benchmark every candidate; keep the best; charge everything."""
        if csr.nnz == 0:
            raise ValueError("cannot optimize an empty matrix")
        t_pre = 0.0
        best: RunResult | None = None
        best_name = ""
        kernels = self.candidates()
        for name, kernel in kernels.items():
            t_pre += kernel.preprocessing_seconds(csr, self.machine)
            result = self.model.run(kernel, kernel.preprocess(csr))
            t_pre += _BENCH_ITERATIONS * result.seconds
            if best is None or result.gflops > best.gflops:
                best, best_name = result, name
        return TrivialResult(
            result=best,
            chosen=best_name,
            sweep_seconds=t_pre,
            n_candidates=len(kernels),
        )
