"""Vendor-library analogues and straw-man optimizers (system S8)."""

from .inspector_executor import InspectorExecutor, InspectorExecutorResult
from .mkl_csr import mkl_csr_kernel, run_mkl_csr
from .trivial import TrivialOptimizer, TrivialResult

__all__ = [
    "mkl_csr_kernel",
    "run_mkl_csr",
    "InspectorExecutor",
    "InspectorExecutorResult",
    "TrivialOptimizer",
    "TrivialResult",
]
