"""Vendor CSR SpMV baseline (Intel MKL ``mkl_dcsrmv`` analogue).

A well-engineered but *non-adaptive* kernel: fully vectorized inner
loop, static row-blocked parallelization. This mirrors the two key
properties of the real library the paper's comparisons rely on: it is
fast on regular matrices, and it has no matrix-specific adaptation —
row-blocked static scheduling loses badly on skewed matrices, and no
prefetching/compression/decomposition is ever applied.
"""

from __future__ import annotations

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, SpMVConfig
from ..machine import MachineSpec, RunResult
from ..model import AnalyticModel

__all__ = ["mkl_csr_kernel", "run_mkl_csr"]


def mkl_csr_kernel() -> ConfiguredSpMV:
    """The MKL-CSR analogue kernel (vectorized, static row blocks)."""
    kernel = ConfiguredSpMV(
        SpMVConfig(vectorize=True, schedule="static-rows")
    )
    kernel.name = "mkl-csr"
    return kernel


def run_mkl_csr(csr: CSRMatrix, machine: MachineSpec,
                nthreads: int | None = None) -> RunResult:
    """Simulate one MKL-CSR execution."""
    kernel = mkl_csr_kernel()
    model = AnalyticModel(machine, nthreads)
    return model.run(kernel, kernel.preprocess(csr))
