"""Staged planning pipeline (analyze → classify → select → transform →
execute) with per-stage telemetry.

The package splits :class:`~repro.core.optimizer.AdaptiveSpMV`'s
decision process into five explicitly composable stages
(:mod:`repro.pipeline.stages`), threads their state through a
:class:`PipelineContext`, records a :class:`Span` per stage on a
:class:`Tracer` (JSON-exportable; ``repro-spmv trace``), and provides
the one instrumented :class:`PipelineRunner` that every experiment
driver and benchmark measures through. See docs/observability.md.
"""

from .context import PipelineContext
from .runner import PipelineRunner
from .stages import (
    AnalyzeStage,
    ClassifyStage,
    ExecuteStage,
    SelectStage,
    Stage,
    TransformStage,
    default_planning_stages,
    run_stages,
)
from .tracer import TRACE_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "PipelineContext",
    "PipelineRunner",
    "Stage",
    "AnalyzeStage",
    "ClassifyStage",
    "SelectStage",
    "TransformStage",
    "ExecuteStage",
    "default_planning_stages",
    "run_stages",
]
