"""One instrumented runner for every experiment and benchmark loop.

Before the pipeline refactor, each ``experiments/fig*``/``table*``
driver and each ``benchmarks/`` module carried its own copy of the
``engine.run(kernel, kernel.preprocess(csr))`` idiom and its own
wall-clock repetition loop. :class:`PipelineRunner` centralizes both:

* :meth:`simulate` — preprocess + simulated execution of one kernel on
  one matrix (transform + execute spans when a tracer is attached);
* :meth:`run_optimized` — full staged planning (via an
  :class:`~repro.core.optimizer.AdaptiveSpMV`) followed by simulated
  execution, one trace for the whole journey;
* :meth:`time_seconds` — the wall-clock repetition loop (median or
  best-of) used wherever *real* elapsed time is the observable.

Every measurement taken through the runner can be traced, so the same
instrumentation that backs ``repro-spmv trace`` covers the experiment
drivers for free.
"""

from __future__ import annotations

import time

import numpy as np

from ..formats import CSRMatrix
from ..machine import MachineSpec, RunResult
from ..memory import Workspace
from ..model import AnalyticModel
from .context import PipelineContext
from .stages import ExecuteStage
from .tracer import Tracer

__all__ = ["PipelineRunner"]


class PipelineRunner:
    """Instrumented execution harness bound to one target machine.

    The runner owns a :class:`~repro.memory.workspace.Workspace` arena
    shared by every operator it drives through :meth:`run_optimized`,
    so repeat executions — even across different matrices of the same
    shape — reuse scratch buffers instead of reallocating them. The
    arena's hit/miss/bytes-held counters are exported on each execute
    span.

    ``model`` is the :class:`~repro.model.base.CostModel` every
    prediction runs through (default: a fresh analytic model for the
    runner's machine). With a :class:`~repro.model.CalibratedModel`,
    :meth:`measure_parallel`'s execute spans feed the predicted vs
    measured pairs back into the model's refinement buffer."""

    def __init__(self, machine: MachineSpec | None = None,
                 nthreads: int | None = None,
                 tracer: Tracer | None = None,
                 workspace: Workspace | None = None,
                 model=None):
        self.machine = machine
        self.nthreads = nthreads
        self.tracer = tracer if tracer is not None else Tracer()
        self.workspace = workspace if workspace is not None else Workspace()
        self.model = model

    def _require_machine(self) -> MachineSpec:
        if self.machine is None:
            raise ValueError("this runner was built without a machine")
        return self.machine

    def _require_model(self):
        if self.model is None:
            self.model = AnalyticModel(self._require_machine(),
                                       self.nthreads)
        return self.model

    # -- simulated execution -------------------------------------------

    def simulate(self, kernel, csr: CSRMatrix, data=None,
                 partition=None, label: str | None = None) -> RunResult:
        """Preprocess (unless ``data`` is given) and simulate ``kernel``.

        The canonical replacement for the old ad-hoc
        ``engine.run(kernel, kernel.preprocess(csr))`` pattern; records
        transform and execute spans on the runner's tracer.
        """
        machine = self._require_machine()
        model = self._require_model()
        name = label or kernel.name
        if data is None:
            with self.tracer.span("transform", kernel=name) as span:
                data = kernel.preprocess(csr)
                span.charged_seconds = kernel.preprocessing_seconds(
                    csr, machine
                )
        with self.tracer.span("execute", kernel=name) as span:
            result = model.run(kernel, data, partition,
                               nthreads=self.nthreads)
            span.set(**result.summary())
            span.set(cost_model=model.signature(),
                     predicted_gflops=float(result.gflops))
        return result

    def run_optimized(self, optimizer, csr: CSRMatrix):
        """Plan + preprocess + simulate through an ``AdaptiveSpMV``.

        Returns ``(operator, result)``; the optimizer's stage spans and
        the execute span land on this runner's tracer.
        """
        operator = optimizer.optimize(csr, tracer=self.tracer)
        # Drive the operator's numeric plane from the runner's shared
        # arena so scratch buffers persist across run_optimized calls.
        operator.workspace = self.workspace
        ctx = PipelineContext(
            csr=csr,
            machine=operator.machine,
            classifier=None,
            classifier_kind=operator.plan.classifier_kind,
            pool=None,
            nthreads=self.nthreads,
            model=self.model if self.model is not None
            else getattr(operator, "model", None),
            tracer=self.tracer,
        )
        ctx.kernel = operator.kernel
        ctx.data = operator.data
        stage = ExecuteStage()
        with self.tracer.span(stage.name) as span:
            stage.run(ctx, span)
            span.set(cache_hit=operator.plan.cache_hit,
                     workspace=self.workspace.counters())
        return operator, ctx.result

    # -- measured parallel execution -----------------------------------

    def measure_parallel(self, kernel, csr: CSRMatrix, nthreads: int,
                         schedule: str | None = None,
                         chunk_rows: int | None = None,
                         repeats: int = 3, data=None,
                         deadline_seconds: "float | str | None" = None,
                         max_retries: int = 2):
        """Run ``kernel`` for real on the shared-memory pool and return
        ``(result, measurement, supervision)``.

        ``result`` is the cost-plane :class:`~repro.machine.engine.
        RunResult` at ``nthreads`` (the prediction); ``measurement`` is
        the best-of-``repeats`` :class:`~repro.parallel.plane.
        ParallelMeasurement` with per-thread wall and CPU times from the
        actual threaded run (``None`` when every repeat degraded to the
        serial fallback); ``supervision`` is the last repeat's
        :class:`~repro.engine.supervision.SupervisionReport` — the
        degradation-ladder outcome under the optional
        ``deadline_seconds`` budget. One ``execute`` span carries all
        three, so traces show measured next to predicted imbalance and
        any demotions.
        """
        machine = self._require_machine()
        ctx = PipelineContext(
            csr=csr,
            machine=machine,
            classifier=None,
            classifier_kind="none",
            pool=None,
            nthreads=nthreads,
            model=self._require_model(),
            tracer=self.tracer,
        )
        ctx.kernel = kernel
        ctx.data = data
        stage = ExecuteStage(nthreads=nthreads, schedule=schedule,
                             chunk_rows=chunk_rows, repeats=repeats,
                             deadline_seconds=deadline_seconds,
                             max_retries=max_retries)
        with self.tracer.span(stage.name, kernel=kernel.name) as span:
            stage.run(ctx, span)
        return ctx.result, ctx.measured, ctx.supervision

    # -- wall-clock timing ---------------------------------------------

    def time_seconds(self, fn, repeats: int = 3, reduce: str = "median",
                     label: str | None = None) -> float:
        """Time ``repeats`` calls of ``fn()`` and reduce to one number.

        ``reduce`` is ``"median"`` (robust default) or ``"min"``
        (best-of, for scaling studies where noise only adds). The whole
        loop is recorded as one span carrying every repetition.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if reduce not in ("median", "min"):
            raise ValueError("reduce must be 'median' or 'min'")
        times: list[float] = []
        with self.tracer.span("time", label=label or getattr(
                fn, "__name__", "callable"), reduce=reduce) as span:
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            span.set(repeats=repeats, seconds=times)
        if reduce == "min":
            return float(np.min(times))
        return float(np.median(times))
