"""The state threaded through one staged planning run.

A :class:`PipelineContext` carries the inputs of a run (matrix, target
machine, classifier, pool, guard flag) and accumulates each stage's
products (features, classes, selected optimizations, configured kernel,
converted data, modeled costs). Stages communicate exclusively through
the context — no stage holds private state — which is what makes them
independently swappable and traceable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..formats import CSRMatrix
from ..machine import MachineSpec
from .tracer import Tracer

__all__ = ["PipelineContext"]


@dataclass
class PipelineContext:
    """Everything one planning/execution run reads and writes.

    Inputs are set by the caller; the remaining fields start empty and
    are filled by the stages (see :mod:`repro.pipeline.stages` for
    which stage owns which field).
    """

    # -- inputs --------------------------------------------------------
    csr: CSRMatrix
    machine: MachineSpec
    classifier: object
    classifier_kind: str
    pool: object
    guard: bool = False
    #: convert the execution format for real (``optimize``) or only
    #: charge its modeled cost (``plan``)?
    materialize: bool = True
    nthreads: int | None = None
    #: the optimizer's :class:`~repro.engine.ExecutorSpec` — folded
    #: into the built plan so a cached plan rebuilds the same stack.
    spec: object | None = None
    #: the :class:`~repro.model.base.CostModel` predictions run through
    #: (None: stages fall back to a fresh analytic model).
    model: object | None = None
    tracer: Tracer = field(default_factory=Tracer)

    # -- produced by the stages ---------------------------------------
    features: object | None = None          # analyze
    classes: object | None = None           # classify
    decision_seconds: float = 0.0           # classify (modeled cost)
    optimizations: tuple[str, ...] = ()     # select
    kernel: object | None = None            # select
    quarantined: tuple[str, ...] = ()       # select (substituted names)
    setup_seconds: float = 0.0              # transform (modeled cost)
    data: object | None = None              # transform (when materialized)
    result: object | None = None            # execute (RunResult)
    #: measured parallel run (:class:`~repro.parallel.plane.
    #: ParallelMeasurement`) when the execute stage ran on the real pool
    measured: object | None = None          # execute (nthreads= option)
    #: supervision outcome (:class:`~repro.engine.supervision.
    #: SupervisionReport`) of the measured parallel run — records the
    #: degradation ladder the execute stage walked, if any
    supervision: object | None = None       # execute (nthreads= option)

    def build_plan(self):
        """Freeze the run's decisions into an :class:`OptimizationPlan`."""
        from ..core.optimizer import OptimizationPlan

        if self.classes is None or self.kernel is None:
            raise RuntimeError(
                "pipeline incomplete: classify and select must run "
                "before a plan can be built"
            )
        plan = OptimizationPlan(
            classes=self.classes,
            optimizations=self.optimizations,
            kernel_name=self.kernel.name,
            decision_seconds=self.decision_seconds,
            setup_seconds=self.setup_seconds,
            classifier_kind=self.classifier_kind,
            quarantined=self.quarantined,
            cost_model=(
                self.model.signature() if self.model is not None
                else "analytic"
            ),
        )
        if self.spec is not None:
            from dataclasses import replace

            plan = replace(plan, executor_spec=self.spec)
        return plan
