"""Per-stage telemetry: spans, tracers, and their JSON export.

Every pipeline run (an :class:`~repro.core.optimizer.AdaptiveSpMV`
``plan()``/``optimize()`` call, or a :class:`~repro.pipeline.runner.
PipelineRunner` measurement) can carry a :class:`Tracer`. Each stage
records one :class:`Span` holding two distinct clocks:

* ``wall_seconds`` — real elapsed time of the stage *in this Python
  process* (how long the reproduction itself took);
* ``charged_seconds`` — the stage's *modeled* contribution to the
  optimizer overhead on the simulated target machine (what paper
  Table V amortizes). Summed over a run's spans this equals
  ``OptimizationPlan.total_overhead_seconds`` exactly.

Attributes are free-form but JSON-serializable: stages record cache
hit/miss, quarantine substitutions, guard fault counts, selected
optimizations, and so on. ``Tracer.to_json()`` /``Tracer.export(path)``
emit the schema documented in docs/observability.md.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["TRACE_SCHEMA_VERSION", "Span", "Tracer"]

#: Version of the exported span payload; bump on breaking changes.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value):
    """Coerce span attribute values to JSON-serializable equivalents."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class Span:
    """One traced pipeline stage."""

    name: str
    wall_seconds: float = 0.0
    charged_seconds: float = 0.0
    attributes: dict = field(default_factory=dict)

    def set(self, **attributes) -> "Span":
        """Merge attributes into the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": float(self.wall_seconds),
            "charged_seconds": float(self.charged_seconds),
            "attributes": _jsonable(self.attributes),
        }


class Tracer:
    """Collects the spans of one (or several) pipeline runs.

    A tracer is cheap and inert: creating one and never exporting it
    costs a list append per stage. Pass one tracer through several
    runs to build a single session trace.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes):
        """Record one span around a ``with`` block.

        The yielded :class:`Span` is mutable: the block sets
        ``charged_seconds`` and extra attributes as it learns them;
        wall time is measured automatically.
        """
        s = Span(name=name, attributes=dict(attributes))
        t0 = time.perf_counter()
        try:
            yield s
        finally:
            s.wall_seconds = time.perf_counter() - t0
            self.spans.append(s)

    def record(self, name: str, wall_seconds: float = 0.0,
               charged_seconds: float = 0.0, **attributes) -> Span:
        """Append a pre-measured span (no timing of our own)."""
        s = Span(name=name, wall_seconds=wall_seconds,
                 charged_seconds=charged_seconds,
                 attributes=dict(attributes))
        self.spans.append(s)
        return s

    # -- queries -------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with ``name`` (a stage may run more than once)."""
        return [s for s in self.spans if s.name == name]

    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.spans)

    def total_charged_seconds(self) -> float:
        """Modeled optimizer overhead across every recorded span."""
        return float(sum(s.charged_seconds for s in self.spans))

    def total_wall_seconds(self) -> float:
        return float(sum(s.wall_seconds for s in self.spans))

    # -- export --------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    def to_payload(self) -> dict:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "total_wall_seconds": self.total_wall_seconds(),
            "total_charged_seconds": self.total_charged_seconds(),
            "spans": self.to_dicts(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent)

    def export(self, path) -> None:
        """Write the JSON payload to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tracer {len(self.spans)} spans "
            f"charged={1e3 * self.total_charged_seconds():.2f}ms>"
        )
