"""The five pipeline stages: analyze → classify → select → transform → execute.

Each stage is a small object with a ``name`` and a ``run(ctx, span)``
method that reads and writes only the :class:`~repro.pipeline.context.
PipelineContext`. The split mirrors the paper's staged decision process
(and the analyze/decide/transform extension point of SMAT-style
autotuners):

==========  ========================================================
stage        responsibility
==========  ========================================================
analyze      extract structural features of the matrix
classify     detect bottleneck classes (+ modeled decision cost)
select       map classes to pool optimizations, configure the kernel,
             substitute quarantined variants, apply the guard wrapper
transform    charge the modeled setup cost; materialize the execution
             format when the run asks for it
execute      simulate one kernel execution on the target machine
==========  ========================================================

``AdaptiveSpMV`` composes the first four (see
:func:`default_planning_stages`); the :class:`~repro.pipeline.runner.
PipelineRunner` appends :class:`ExecuteStage`. Custom stages plug in by
matching the :class:`Stage` protocol — replace, reorder or extend via
``AdaptiveSpMV(stages=...)``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..kernels import baseline_kernel, is_quarantined
from ..kernels.registry import kernel_failure_count
from ..matrices.features import extract_features
from ..model import AnalyticModel, prediction_error_pct
from .context import PipelineContext
from .tracer import Span

__all__ = [
    "Stage",
    "AnalyzeStage",
    "ClassifyStage",
    "SelectStage",
    "TransformStage",
    "ExecuteStage",
    "default_planning_stages",
    "run_stages",
]


@runtime_checkable
class Stage(Protocol):
    """One step of the staged planning pipeline."""

    name: str

    def run(self, ctx: PipelineContext, span: Span) -> None:
        """Advance ``ctx``; record telemetry on ``span``."""
        ...  # pragma: no cover - protocol


class AnalyzeStage:
    """Extract the structural features every later stage decides from."""

    name = "analyze"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.features = extract_features(
            ctx.csr,
            llc_bytes=ctx.machine.llc_bytes,
            line_elems=ctx.machine.line_elems,
        )
        span.set(
            nrows=ctx.csr.nrows,
            ncols=ctx.csr.ncols,
            nnz=ctx.csr.nnz,
        )


class ClassifyStage:
    """Detect bottleneck classes; the paper's decision step."""

    name = "classify"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.classes, ctx.decision_seconds = (
            ctx.classifier.classify_with_cost(ctx.csr)
        )
        span.charged_seconds = ctx.decision_seconds
        from ..core.classes import format_classes

        span.set(
            classifier=ctx.classifier_kind,
            classes=format_classes(ctx.classes),
            decision_seconds=ctx.decision_seconds,
        )


class SelectStage:
    """Map classes to pool optimizations and configure the kernel.

    Quarantined variants are substituted by the baseline (recorded both
    in the plan and the span), and the guard wrapper is applied here so
    downstream stages see the kernel exactly as it will run.
    """

    name = "select"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.optimizations = ctx.pool.select(ctx.classes, ctx.features)
        kernel = (
            ctx.pool.kernel_for(ctx.classes, ctx.features)
            if ctx.optimizations
            else baseline_kernel()
        )
        quarantined: tuple[str, ...] = ()
        if ctx.optimizations and is_quarantined(kernel.name):
            # The selected variant is known-bad: plan the reference
            # kernel instead and record what was skipped.
            quarantined = (kernel.name,)
            kernel = baseline_kernel()
        if ctx.guard:
            from ..engine.layers import GuardLayer

            kernel = GuardLayer().wrap(kernel)
        ctx.kernel = kernel
        ctx.quarantined = quarantined
        span.set(
            optimizations=list(ctx.optimizations),
            kernel=kernel.name,
            guard=ctx.guard,
            quarantine_substitutions=list(quarantined),
            guard_fault_counts={
                name: kernel_failure_count(name)
                for name in quarantined + (kernel.name,)
                if kernel_failure_count(name)
            },
        )


class TransformStage:
    """Preprocess: charge the modeled setup cost, convert when asked."""

    name = "transform"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.setup_seconds = ctx.kernel.preprocessing_seconds(
            ctx.csr, ctx.machine
        )
        if ctx.materialize:
            ctx.data = ctx.kernel.preprocess(ctx.csr)
        span.charged_seconds = ctx.setup_seconds
        span.set(
            setup_seconds=ctx.setup_seconds,
            materialized=bool(ctx.materialize),
        )


class ExecuteStage:
    """Predict one kernel execution through the context's cost model.

    With ``nthreads`` set, additionally *runs* the kernel on the real
    shared-memory parallel plane — through an engine stack
    (:func:`repro.engine.build_executor` with a supervision layer), so a worker
    fault or a breached ``deadline_seconds`` degrades through the
    retry/serial ladder instead of crashing the pipeline — and records
    the measured per-thread wall and CPU times next to the model's
    prediction: the span then carries ``measured_imbalance`` (observed)
    and ``predicted_imbalance`` (cost-plane) for the same thread count,
    the ``predicted_gflops`` / ``measured_gflops`` /
    ``model_error_pct`` triple that feeds
    :meth:`~repro.model.CalibratedModel.refine`, plus the
    ``supervision`` ladder outcome when the run degraded.

    ``deadline_seconds`` accepts the string ``"auto"``: the watchdog
    budget is then derived from the model's own prediction
    (:meth:`~repro.model.AnalyticModel.suggest_deadline`) — tight when
    a refined calibrated model predicts host wall time, generous
    otherwise.
    """

    name = "execute"

    def __init__(self, nthreads: int | None = None,
                 schedule: str | None = None,
                 chunk_rows: int | None = None,
                 repeats: int = 1,
                 deadline_seconds: "float | str | None" = None,
                 max_retries: int = 2):
        if nthreads is not None and int(nthreads) < 1:
            raise ValueError("nthreads must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if isinstance(deadline_seconds, str) and deadline_seconds != "auto":
            raise ValueError(
                "deadline_seconds must be a number, None, or 'auto'"
            )
        self.nthreads = None if nthreads is None else int(nthreads)
        self.schedule = schedule
        self.chunk_rows = chunk_rows
        self.repeats = int(repeats)
        self.deadline_seconds = deadline_seconds
        self.max_retries = int(max_retries)

    @staticmethod
    def _model(ctx: PipelineContext):
        if ctx.model is not None:
            return ctx.model
        ctx.model = AnalyticModel(ctx.machine, ctx.nthreads)
        return ctx.model

    def run(self, ctx: PipelineContext, span: Span) -> None:
        if ctx.data is None:
            ctx.data = ctx.kernel.preprocess(ctx.csr)
        model = self._model(ctx)
        ctx.result = model.run(ctx.kernel, ctx.data,
                               nthreads=ctx.nthreads)
        span.set(**ctx.result.summary())
        span.set(cost_model=model.signature(),
                 predicted_gflops=float(ctx.result.gflops))
        if self.nthreads is not None:
            self._measure(ctx, span)

    def _resolve_deadline(self, ctx: PipelineContext,
                          model) -> float | None:
        if self.deadline_seconds != "auto":
            return self.deadline_seconds
        return model.suggest_deadline(ctx.kernel, ctx.data,
                                      nthreads=self.nthreads)

    def _measure(self, ctx: PipelineContext, span: Span) -> None:
        """Execute for real on the thread pool; span gets measured vs
        predicted imbalance and Gflop/s at the *measured* thread count."""
        import numpy as np

        from ..engine import ExecutorSpec, SupervisionSpec, build_executor
        from ..parallel import ParallelConfig

        model = self._model(ctx)
        schedule = self.schedule or getattr(
            ctx.kernel, "schedule", "balanced-nnz"
        )
        # No tracer here on purpose: the measurement's ladder outcome is
        # folded into *this* execute span below, not its own spans.
        sup = build_executor(
            ctx.csr,
            ExecutorSpec(
                parallel=ParallelConfig(nthreads=self.nthreads,
                                        schedule=schedule,
                                        chunk_rows=self.chunk_rows),
                supervision=SupervisionSpec(
                    deadline_seconds=self._resolve_deadline(ctx, model),
                    max_retries=self.max_retries,
                ),
            ),
            kernel=ctx.kernel,
        )
        x = np.ones(ctx.csr.ncols)
        best = None
        report = None
        for _ in range(self.repeats):
            sup.apply(x)
            report = sup.last_report
            m = sup.last_measurement
            if m is not None and (
                best is None or m.wall_seconds < best.wall_seconds
            ):
                best = m
        # Predicted imbalance at the same thread count as the run
        # (ctx.nthreads may differ, e.g. the machine default).
        predicted = ctx.result
        if ctx.nthreads != self.nthreads:
            predicted = model.run(ctx.kernel, ctx.data,
                                  nthreads=self.nthreads)
        ctx.measured = best
        ctx.supervision = report
        span.set(
            predicted_imbalance=predicted.imbalance,
            supervision=report.summary(),
        )
        if best is not None:
            flops = 2.0 * ctx.csr.nnz
            measured_gflops = (
                flops / best.wall_seconds / 1e9
                if best.wall_seconds > 0 else 0.0
            )
            error_pct = prediction_error_pct(
                predicted.gflops, measured_gflops
            )
            span.set(
                measured=best.summary(),
                measured_imbalance=best.imbalance,
                measured_wall_imbalance=best.wall_imbalance,
                parallel_nthreads=best.nthreads,
                parallel_schedule=best.schedule,
                predicted_gflops=float(predicted.gflops),
                measured_gflops=float(measured_gflops),
                model_error_pct=float(error_pct),
            )
            # Feed the online refinement loop: a calibrated model
            # accumulates the pair and folds it in on refine().
            observe = getattr(model, "observe", None)
            if observe is not None:
                observe(ctx.kernel.name, predicted.seconds,
                        best.wall_seconds)


def default_planning_stages() -> tuple[Stage, ...]:
    """The planning pipeline of :class:`~repro.core.optimizer.
    AdaptiveSpMV`: everything except execution."""
    return (AnalyzeStage(), ClassifyStage(), SelectStage(),
            TransformStage())


def run_stages(stages, ctx: PipelineContext) -> PipelineContext:
    """Run ``stages`` over ``ctx`` in order, one traced span each."""
    for stage in stages:
        with ctx.tracer.span(stage.name) as span:
            stage.run(ctx, span)
    return ctx
