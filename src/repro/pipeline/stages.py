"""The five pipeline stages: analyze → classify → select → transform → execute.

Each stage is a small object with a ``name`` and a ``run(ctx, span)``
method that reads and writes only the :class:`~repro.pipeline.context.
PipelineContext`. The split mirrors the paper's staged decision process
(and the analyze/decide/transform extension point of SMAT-style
autotuners):

==========  ========================================================
stage        responsibility
==========  ========================================================
analyze      extract structural features of the matrix
classify     detect bottleneck classes (+ modeled decision cost)
select       map classes to pool optimizations, configure the kernel,
             substitute quarantined variants, apply the guard wrapper
transform    charge the modeled setup cost; materialize the execution
             format when the run asks for it
execute      simulate one kernel execution on the target machine
==========  ========================================================

``AdaptiveSpMV`` composes the first four (see
:func:`default_planning_stages`); the :class:`~repro.pipeline.runner.
PipelineRunner` appends :class:`ExecuteStage`. Custom stages plug in by
matching the :class:`Stage` protocol — replace, reorder or extend via
``AdaptiveSpMV(stages=...)``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..kernels import baseline_kernel, is_quarantined
from ..kernels.registry import kernel_failure_count
from ..machine import ExecutionEngine
from ..matrices.features import extract_features
from .context import PipelineContext
from .tracer import Span

__all__ = [
    "Stage",
    "AnalyzeStage",
    "ClassifyStage",
    "SelectStage",
    "TransformStage",
    "ExecuteStage",
    "default_planning_stages",
    "run_stages",
]


@runtime_checkable
class Stage(Protocol):
    """One step of the staged planning pipeline."""

    name: str

    def run(self, ctx: PipelineContext, span: Span) -> None:
        """Advance ``ctx``; record telemetry on ``span``."""
        ...  # pragma: no cover - protocol


class AnalyzeStage:
    """Extract the structural features every later stage decides from."""

    name = "analyze"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.features = extract_features(
            ctx.csr,
            llc_bytes=ctx.machine.llc_bytes,
            line_elems=ctx.machine.line_elems,
        )
        span.set(
            nrows=ctx.csr.nrows,
            ncols=ctx.csr.ncols,
            nnz=ctx.csr.nnz,
        )


class ClassifyStage:
    """Detect bottleneck classes; the paper's decision step."""

    name = "classify"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.classes, ctx.decision_seconds = (
            ctx.classifier.classify_with_cost(ctx.csr)
        )
        span.charged_seconds = ctx.decision_seconds
        from ..core.classes import format_classes

        span.set(
            classifier=ctx.classifier_kind,
            classes=format_classes(ctx.classes),
            decision_seconds=ctx.decision_seconds,
        )


class SelectStage:
    """Map classes to pool optimizations and configure the kernel.

    Quarantined variants are substituted by the baseline (recorded both
    in the plan and the span), and the guard wrapper is applied here so
    downstream stages see the kernel exactly as it will run.
    """

    name = "select"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.optimizations = ctx.pool.select(ctx.classes, ctx.features)
        kernel = (
            ctx.pool.kernel_for(ctx.classes, ctx.features)
            if ctx.optimizations
            else baseline_kernel()
        )
        quarantined: tuple[str, ...] = ()
        if ctx.optimizations and is_quarantined(kernel.name):
            # The selected variant is known-bad: plan the reference
            # kernel instead and record what was skipped.
            quarantined = (kernel.name,)
            kernel = baseline_kernel()
        if ctx.guard:
            from ..engine.layers import GuardLayer

            kernel = GuardLayer().wrap(kernel)
        ctx.kernel = kernel
        ctx.quarantined = quarantined
        span.set(
            optimizations=list(ctx.optimizations),
            kernel=kernel.name,
            guard=ctx.guard,
            quarantine_substitutions=list(quarantined),
            guard_fault_counts={
                name: kernel_failure_count(name)
                for name in quarantined + (kernel.name,)
                if kernel_failure_count(name)
            },
        )


class TransformStage:
    """Preprocess: charge the modeled setup cost, convert when asked."""

    name = "transform"

    def run(self, ctx: PipelineContext, span: Span) -> None:
        ctx.setup_seconds = ctx.kernel.preprocessing_seconds(
            ctx.csr, ctx.machine
        )
        if ctx.materialize:
            ctx.data = ctx.kernel.preprocess(ctx.csr)
        span.charged_seconds = ctx.setup_seconds
        span.set(
            setup_seconds=ctx.setup_seconds,
            materialized=bool(ctx.materialize),
        )


class ExecuteStage:
    """Simulate one kernel execution on the target machine.

    With ``nthreads`` set, additionally *runs* the kernel on the real
    shared-memory parallel plane — through an engine stack
    (:func:`repro.engine.build_executor` with a supervision layer), so a worker
    fault or a breached ``deadline_seconds`` degrades through the
    retry/serial ladder instead of crashing the pipeline — and records
    the measured per-thread wall and CPU times next to the model's
    prediction: the span then carries ``measured_imbalance`` (observed)
    and ``predicted_imbalance`` (cost-plane) for the same thread count,
    plus the ``supervision`` ladder outcome when the run degraded.
    """

    name = "execute"

    def __init__(self, nthreads: int | None = None,
                 schedule: str | None = None,
                 chunk_rows: int | None = None,
                 repeats: int = 1,
                 deadline_seconds: float | None = None,
                 max_retries: int = 2):
        if nthreads is not None and int(nthreads) < 1:
            raise ValueError("nthreads must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.nthreads = None if nthreads is None else int(nthreads)
        self.schedule = schedule
        self.chunk_rows = chunk_rows
        self.repeats = int(repeats)
        self.deadline_seconds = deadline_seconds
        self.max_retries = int(max_retries)

    def run(self, ctx: PipelineContext, span: Span) -> None:
        if ctx.data is None:
            ctx.data = ctx.kernel.preprocess(ctx.csr)
        engine = ExecutionEngine(ctx.machine, ctx.nthreads)
        ctx.result = engine.run(ctx.kernel, ctx.data)
        span.set(**ctx.result.summary())
        if self.nthreads is not None:
            self._measure(ctx, span)

    def _measure(self, ctx: PipelineContext, span: Span) -> None:
        """Execute for real on the thread pool; span gets measured vs
        predicted imbalance at the *measured* thread count."""
        import numpy as np

        from ..engine import ExecutorSpec, SupervisionSpec, build_executor
        from ..parallel import ParallelConfig

        schedule = self.schedule or getattr(
            ctx.kernel, "schedule", "balanced-nnz"
        )
        # No tracer here on purpose: the measurement's ladder outcome is
        # folded into *this* execute span below, not its own spans.
        sup = build_executor(
            ctx.csr,
            ExecutorSpec(
                parallel=ParallelConfig(nthreads=self.nthreads,
                                        schedule=schedule,
                                        chunk_rows=self.chunk_rows),
                supervision=SupervisionSpec(
                    deadline_seconds=self.deadline_seconds,
                    max_retries=self.max_retries,
                ),
            ),
            kernel=ctx.kernel,
        )
        x = np.ones(ctx.csr.ncols)
        best = None
        report = None
        for _ in range(self.repeats):
            sup.apply(x)
            report = sup.last_report
            m = sup.last_measurement
            if m is not None and (
                best is None or m.wall_seconds < best.wall_seconds
            ):
                best = m
        # Predicted imbalance at the same thread count as the run
        # (ctx.nthreads may differ, e.g. the machine default).
        predicted = ctx.result
        if ctx.nthreads != self.nthreads:
            predicted = ExecutionEngine(ctx.machine, self.nthreads).run(
                ctx.kernel, ctx.data
            )
        ctx.measured = best
        ctx.supervision = report
        span.set(
            predicted_imbalance=predicted.imbalance,
            supervision=report.summary(),
        )
        if best is not None:
            span.set(
                measured=best.summary(),
                measured_imbalance=best.imbalance,
                measured_wall_imbalance=best.wall_imbalance,
                parallel_nthreads=best.nthreads,
                parallel_schedule=best.schedule,
            )


def default_planning_stages() -> tuple[Stage, ...]:
    """The planning pipeline of :class:`~repro.core.optimizer.
    AdaptiveSpMV`: everything except execution."""
    return (AnalyzeStage(), ClassifyStage(), SelectStage(),
            TransformStage())


def run_stages(stages, ctx: PipelineContext) -> PipelineContext:
    """Run ``stages`` over ``ctx`` in order, one traced span each."""
    for stage in stages:
        with ctx.tracer.span(stage.name) as span:
            stage.run(ctx, span)
    return ctx
