"""repro — adaptive bottleneck-classifying SpMV optimization.

A from-scratch reproduction of Elafrou, Goumas & Koziris, "Performance
Analysis and Optimization of Sparse Matrix-Vector Multiplication on
Modern Multi- and Many-Core Processors" (IPDPS 2017), including every
substrate it runs on: sparse formats, a synthetic matrix corpus, an
analytical multi/many-core performance simulator standing in for the
paper's KNC/KNL/Broadwell testbeds, SpMV kernel variants, a CART
decision tree, vendor-baseline analogues and iterative solvers.

Quickstart::

    from repro import AdaptiveSpMV, KNL, named_matrix

    A = named_matrix("ASIC_680k")
    optimizer = AdaptiveSpMV(KNL, classifier="profile")
    op = optimizer.optimize(A)
    print(op.plan)                 # detected classes + selected opts
    y = op.matvec(x)               # numerically exact SpMV
    print(op.simulate().gflops)    # simulated performance on KNL
"""

from .baselines import InspectorExecutor, TrivialOptimizer, mkl_csr_kernel, run_mkl_csr
from .errors import (
    FormatValidationError,
    KernelExecutionError,
    ReproError,
    SolverBreakdownError,
    ValidationIssue,
    ValidationReport,
)
from .core import (
    AdaptiveSpMV,
    Bottleneck,
    FeatureGuidedClassifier,
    OptimizationPlan,
    OptimizationPool,
    OptimizedSpMV,
    PerformanceBounds,
    PlanCache,
    ProfileGuidedClassifier,
    ProfileThresholds,
    amortization_study,
    classify_from_bounds,
    format_classes,
    matrix_fingerprint,
    measure_bounds,
    oracle_search,
    tune_profile_thresholds,
)
from .formats import COOMatrix, CSRMatrix, DecomposedCSR, DeltaCSR
from .kernels import ConfiguredSpMV, SpMVConfig, baseline_kernel
from .machine import (
    BROADWELL,
    KNC,
    KNL,
    ExecutionEngine,
    MachineSpec,
    PLATFORMS,
    RunResult,
    get_platform,
)
from .model import (
    AnalyticModel,
    CalibratedModel,
    CostModel,
    MachineProfile,
    Prediction,
    calibrate,
    prediction_error_pct,
)
from .matrices import (
    extract_features,
    load_suite,
    named_matrix,
    read_matrix_market,
    suite_names,
    training_suite,
    write_matrix_market,
)
from .guard import (
    GuardedKernel,
    clear_quarantine,
    is_quarantined,
    quarantined_kernel_names,
    validate_format,
)
from .parallel import (
    ParallelConfig,
    ParallelKernel,
    ParallelMeasurement,
    ParallelSpMV,
)
from .pipeline import PipelineContext, PipelineRunner, Tracer
from .engine import (
    Executor,
    ExecutorSpec,
    GuardLayer,
    ParallelLayer,
    SupervisedExecutor,
    SupervisionLayer,
    SupervisionSpec,
    TraceLayer,
    WorkspaceLayer,
    build_executor,
)
from .solvers import SolverReport, bicgstab, cg, gmres, jacobi_preconditioner

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # formats
    "COOMatrix",
    "CSRMatrix",
    "DeltaCSR",
    "DecomposedCSR",
    # machine
    "MachineSpec",
    "KNC",
    "KNL",
    "BROADWELL",
    "PLATFORMS",
    "get_platform",
    "ExecutionEngine",
    "RunResult",
    # matrices
    "named_matrix",
    "suite_names",
    "load_suite",
    "training_suite",
    "extract_features",
    "read_matrix_market",
    "write_matrix_market",
    # kernels
    "SpMVConfig",
    "ConfiguredSpMV",
    "baseline_kernel",
    # model
    "CostModel",
    "Prediction",
    "AnalyticModel",
    "CalibratedModel",
    "MachineProfile",
    "calibrate",
    "prediction_error_pct",
    # core
    "Bottleneck",
    "format_classes",
    "PerformanceBounds",
    "measure_bounds",
    "classify_from_bounds",
    "ProfileThresholds",
    "ProfileGuidedClassifier",
    "FeatureGuidedClassifier",
    "OptimizationPool",
    "AdaptiveSpMV",
    "OptimizationPlan",
    "OptimizedSpMV",
    "PlanCache",
    "matrix_fingerprint",
    "oracle_search",
    "tune_profile_thresholds",
    "amortization_study",
    # parallel
    "ParallelConfig",
    "ParallelKernel",
    "ParallelMeasurement",
    "ParallelSpMV",
    # pipeline
    "Tracer",
    "PipelineContext",
    "PipelineRunner",
    # engine
    "Executor",
    "ExecutorSpec",
    "SupervisionSpec",
    "build_executor",
    "GuardLayer",
    "ParallelLayer",
    "SupervisionLayer",
    "WorkspaceLayer",
    "TraceLayer",
    "SupervisedExecutor",
    # baselines
    "mkl_csr_kernel",
    "run_mkl_csr",
    "InspectorExecutor",
    "TrivialOptimizer",
    # solvers
    "cg",
    "bicgstab",
    "gmres",
    "jacobi_preconditioner",
    "SolverReport",
    # guard / error taxonomy
    "ReproError",
    "FormatValidationError",
    "KernelExecutionError",
    "SolverBreakdownError",
    "ValidationIssue",
    "ValidationReport",
    "validate_format",
    "GuardedKernel",
    "is_quarantined",
    "quarantined_kernel_names",
    "clear_quarantine",
]
