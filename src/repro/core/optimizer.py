"""The adaptive SpMV optimizer — the paper's end-to-end system.

``AdaptiveSpMV`` is a thin composition of the staged planning pipeline
(:mod:`repro.pipeline`): analyze → classify → select → transform, each
stage traced and independently swappable. The stages

1. classify the input matrix's bottlenecks (profile- or feature-guided);
2. map the detected classes to pool optimizations (Table I), jointly;
3. preprocess (format conversion + JIT codegen) and hand back an
   :class:`OptimizedSpMV` that is both numerically executable
   (``matvec`` / batched ``matmat``) and performance-simulatable
   (``simulate``), with its full setup-cost accounting attached.

The decision is frozen into an :class:`OptimizationPlan` — a
serializable IR (``to_dict``/``from_dict``, schema-versioned) — and
repeat matrices are served from a :class:`PlanCache`: a cheap
structural fingerprint (shape, nnz, rowptr/colind dtype + bytes) keys
the classification decision *and* the converted execution format, so
the Table V amortization overhead of a recurring operator drops to
~zero. Caches persist across processes (``PlanCache.save``/``load``):
a warm-started optimizer serves its first request at zero decision
cost, visible in ``OptimizationPlan.decision_seconds``.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..engine.spec import ExecutorSpec
from ..errors import PlanCacheWarning
from ..formats import CSRMatrix
from ..kernels import (
    ConfiguredSpMV,
    baseline_kernel,
    is_quarantined,
    merged_pool_kernel,
)
from ..machine import MachineSpec, RunResult
from ..memory import Workspace
from ..model import AnalyticModel
from ..model.signature import (
    body_checksum as _body_checksum,
    matrix_fingerprint,
    values_digest as _values_digest,
)
from ..pipeline import (
    PipelineContext,
    Tracer,
    default_planning_stages,
    run_stages,
)
from ..sched import Partition
from .classes import Bottleneck, ClassSet, format_classes
from .feature_classifier import FeatureGuidedClassifier
from .pool import DEFAULT_POOL, OptimizationPool
from .profile_classifier import ProfileGuidedClassifier

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "CACHE_SCHEMA_VERSION",
    "OptimizationPlan",
    "OptimizedSpMV",
    "AdaptiveSpMV",
    "PlanCache",
    "matrix_fingerprint",
    "plan_cache_load_recoveries",
    "reset_plan_cache_load_recoveries",
]

#: Version of the serialized :class:`OptimizationPlan` IR. v2 added the
#: ``executor_spec`` field (:class:`~repro.engine.ExecutorSpec`); v3
#: adds ``cost_model`` (which :class:`~repro.model.base.CostModel`
#: signature the decision was made under).
#: :meth:`OptimizationPlan.from_dict` still reads v1 and v2 payloads,
#: upgrading them to the default serial spec / analytic model — exactly
#: how those plans were decided — so old persisted caches stay loadable.
PLAN_SCHEMA_VERSION = 3

#: Version of the :meth:`PlanCache.save` file layout. v2 wraps the v1
#: payload in a ``{"checksum", "body"}`` envelope and is written
#: atomically (temp file + rename); see docs/robustness.md.
CACHE_SCHEMA_VERSION = 2


_recovery_lock = threading.Lock()
_load_recoveries = 0


def plan_cache_load_recoveries() -> int:
    """How many :meth:`PlanCache.load` calls degraded to an empty cache
    (truncated/corrupted/checksum-mismatched/old-schema file) since the
    process started or the counter was last reset."""
    with _recovery_lock:
        return _load_recoveries


def reset_plan_cache_load_recoveries() -> None:
    """Zero the load-recovery counter (tests, operator reset)."""
    global _load_recoveries
    with _recovery_lock:
        _load_recoveries = 0


def _count_load_recovery() -> None:
    global _load_recoveries
    with _recovery_lock:
        _load_recoveries += 1


# matrix_fingerprint / _values_digest / _body_checksum live in
# repro.model.signature now (one canonical content-hash implementation,
# format pinned by tests/model/test_signature.py); re-imported above so
# every existing call site and the public `matrix_fingerprint` export
# keep working unchanged.


@dataclass
class _CacheEntry:
    """One cached decision: the plan, the configured kernel, and (when
    values also match) the converted execution-format data.

    The entry also owns a :class:`~repro.memory.workspace.Workspace`
    arena so repeat service of the same matrix reuses the scratch
    buffers of previous applies — the numeric plane of a cache hit runs
    allocation-free in steady state."""

    plan: "OptimizationPlan"
    kernel: ConfiguredSpMV
    data: object | None
    values_digest: str | None
    workspace: Workspace | None = None

    def arena(self) -> Workspace:
        if self.workspace is None:
            self.workspace = Workspace()
        return self.workspace


def _kernel_from_plan(plan: "OptimizationPlan"):
    """Reconstruct a plan's kernel from its optimization names.

    Used when a cache entry is revived from disk: the configuration is
    fully determined by the (deterministic) optimization name list, so
    the rebuilt kernel is numerically identical to the one originally
    planned. A plan that recorded a quarantine substitution already
    runs the baseline.
    """
    if plan.quarantined or not plan.optimizations:
        return baseline_kernel()
    return merged_pool_kernel(plan.optimizations)


class PlanCache:
    """LRU cache of optimization plans keyed by matrix fingerprint.

    A structural hit skips classification entirely
    (``decision_seconds`` reported as 0). When the values digest also
    matches, the converted execution format is reused and
    ``setup_seconds`` drops to 0 as well; with different values the
    conversion re-runs (and stays charged) but the decision is still
    free. Instances can be shared between :class:`AdaptiveSpMV`
    optimizers to pool their decisions.

    All mutating operations take an internal lock, so one cache can be
    shared between optimizers running on different threads; the
    ``evictions`` / ``invalidations`` counters (visible in ``repr``)
    track LRU pressure and guard-layer entry drops respectively.

    Caches survive processes: :meth:`save` writes every entry's plan IR
    (keys + serialized :class:`OptimizationPlan`) as JSON, and
    :meth:`load` revives them with kernels rebuilt from the plan's
    optimization names. Revived entries carry no converted data — the
    first ``optimize()`` re-runs (and re-charges) the conversion but
    pays zero decision cost, which is the expensive half of Table V.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: why :meth:`load` degraded to this empty cache (None when the
        #: cache was built normally or loaded cleanly).
        self.load_recovery_reason: str | None = None

    def get(self, key: tuple) -> _CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: tuple, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (stale digest, quarantined kernel); returns
        whether the key was present."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.invalidations += 1
            return present

    def clear(self) -> None:
        """Drop every entry. Counters are kept — a clear is an
        operational event, not a statistical reset; see
        :meth:`reset_stats`."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/invalidation counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    # -- persistence ---------------------------------------------------

    def save(self, path) -> int:
        """Serialize every entry's key + plan IR as JSON at ``path``,
        crash-safely.

        The write is atomic: the payload lands in a same-directory temp
        file that is fsynced and then renamed over ``path``
        (``os.replace``), so a crash mid-save leaves either the old
        complete file or the new complete file — never a truncated
        hybrid, and never a stray partial (the temp file is removed on
        any write failure). The envelope carries a blake2b checksum of
        the canonicalized body so :meth:`load` can detect silent
        on-disk corruption.

        Converted execution-format data and kernel objects are not
        serialized (they are cheap to rebuild and process-local);
        loading restores zero-decision-cost service. Returns the number
        of entries written.
        """
        with self._lock:
            entries = [
                {"key": list(key), "plan": entry.plan.to_dict()}
                for key, entry in self._entries.items()
            ]
        body = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "maxsize": self.maxsize,
            "entries": entries,
        }
        payload = {"checksum": _body_checksum(body), "body": body}
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return len(entries)

    @classmethod
    def load(cls, path, maxsize: int | None = None, *,
             strict: bool = False) -> "PlanCache":
        """Revive a cache written by :meth:`save`.

        Kernels are rebuilt from each plan's optimization names
        (deterministic, so numerics are bit-identical to the original
        planning); entries whose kernel has been quarantined *since*
        the save are dropped on lookup exactly like live entries.

        An unusable file — truncated, corrupted at any byte offset,
        checksum-mismatched, pre-v2 layout, or an unknown schema
        version — does **not** raise by default: load degrades to an
        *empty* cache (plans are an optimization, not state a serving
        process can refuse to start without), emits a
        :class:`~repro.errors.PlanCacheWarning`, bumps the module-level
        :func:`plan_cache_load_recoveries` counter and records the
        reason on the returned cache as ``load_recovery_reason``.
        ``strict=True`` restores raising (``ValueError``) for tools
        that would rather fail than silently replan. A *missing* file
        still raises ``FileNotFoundError`` either way — that is a
        caller error, not corruption.
        """

        def recovered(reason: str) -> "PlanCache":
            if strict:
                raise ValueError(f"plan cache {path!r} unusable: {reason}")
            _count_load_recovery()
            warnings.warn(
                f"plan cache {path!r} unusable ({reason}); "
                f"serving from an empty cache",
                PlanCacheWarning,
                stacklevel=2,
            )
            cache = cls(maxsize=maxsize or 32)
            cache.load_recovery_reason = reason
            return cache

        with open(path) as fh:
            text = fh.read()
        try:
            payload = json.loads(text)
        except ValueError as exc:
            return recovered(f"not parseable as JSON ({exc})")
        if not isinstance(payload, dict):
            return recovered("payload is not a JSON object")
        if "checksum" not in payload or "body" not in payload:
            if "schema_version" in payload:
                return recovered(
                    f"unsupported plan-cache schema "
                    f"{payload.get('schema_version')!r} without checksum "
                    f"envelope (this build reads {CACHE_SCHEMA_VERSION})"
                )
            return recovered("missing checksum/body envelope")
        body = payload["body"]
        if not isinstance(body, dict):
            return recovered("body is not a JSON object")
        if _body_checksum(body) != payload["checksum"]:
            return recovered("checksum mismatch (file corrupted on disk)")
        version = body.get("schema_version")
        if version != CACHE_SCHEMA_VERSION:
            return recovered(
                f"unsupported plan-cache schema {version!r} "
                f"(this build reads {CACHE_SCHEMA_VERSION})"
            )
        cache = cls(maxsize=maxsize or int(body.get("maxsize", 32)))
        try:
            for item in body.get("entries", []):
                plan = OptimizationPlan.from_dict(item["plan"])
                # A revived plan must not claim its previous hit status.
                plan = replace(plan, cache_hit=False)
                key = tuple(item["key"])
                cache._entries[key] = _CacheEntry(
                    plan, _kernel_from_plan(plan), None, None
                )
        except Exception as exc:  # checksum passed but IR is invalid
            return recovered(
                f"invalid entry ({type(exc).__name__}: {exc})"
            )
        return cache

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {len(self)}/{self.maxsize} "
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} "
            f"invalidations={self.invalidations}>"
        )


@dataclass(frozen=True)
class OptimizationPlan:
    """What the optimizer decided for one matrix, and what it cost.

    The plan doubles as a serializable IR: :meth:`to_dict` /
    :meth:`from_dict` round-trip every field under
    :data:`PLAN_SCHEMA_VERSION`, which is what :meth:`PlanCache.save`
    persists.
    """

    classes: ClassSet
    optimizations: tuple[str, ...]
    kernel_name: str
    decision_seconds: float      # classification (profiling / features)
    setup_seconds: float         # conversion + JIT codegen
    classifier_kind: str
    cache_hit: bool = False      # served from a PlanCache?
    quarantined: tuple[str, ...] = ()  # variants skipped as quarantined
    #: how the planned kernel executes (:class:`~repro.engine.
    #: ExecutorSpec`): which middleware layers wrap it and with what
    #: configuration. Serialized with the plan, so a warm-started cache
    #: entry rebuilds the exact same stack in a fresh process.
    executor_spec: ExecutorSpec = field(default_factory=ExecutorSpec)
    #: signature of the :class:`~repro.model.base.CostModel` the
    #: decision was made under ("analytic", or
    #: "calibrated:<profile digest>"). v1/v2 payloads upgrade to
    #: "analytic" — the only model those builds had.
    cost_model: str = "analytic"

    @property
    def total_overhead_seconds(self) -> float:
        """Full optimizer overhead, the ``t_pre`` of paper Table V."""
        return self.decision_seconds + self.setup_seconds

    def to_dict(self) -> dict:
        """Serialize to the schema-versioned plan IR."""
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "classes": sorted(c.value for c in self.classes),
            "optimizations": list(self.optimizations),
            "kernel_name": self.kernel_name,
            "decision_seconds": float(self.decision_seconds),
            "setup_seconds": float(self.setup_seconds),
            "classifier_kind": self.classifier_kind,
            "cache_hit": bool(self.cache_hit),
            "quarantined": list(self.quarantined),
            "executor_spec": self.executor_spec.to_dict(),
            "cost_model": self.cost_model,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OptimizationPlan":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions.

        v1 payloads (written before the execution engine existed) carry
        no ``executor_spec`` and upgrade to the default serial spec; v2
        payloads (pre-cost-model) carry no ``cost_model`` and upgrade
        to ``"analytic"`` — in both cases exactly how those plans were
        decided and executed, so old caches load instead of dropping.
        """
        version = payload.get("schema_version")
        if version not in (1, 2, PLAN_SCHEMA_VERSION):
            raise ValueError(
                f"unsupported plan schema {version!r} "
                f"(this build reads {PLAN_SCHEMA_VERSION})"
            )
        spec_payload = payload.get("executor_spec")
        executor_spec = (
            ExecutorSpec() if spec_payload is None
            else ExecutorSpec.from_dict(spec_payload)
        )
        return cls(
            executor_spec=executor_spec,
            cost_model=payload.get("cost_model", "analytic"),
            classes=frozenset(
                Bottleneck(v) for v in payload["classes"]
            ),
            optimizations=tuple(payload["optimizations"]),
            kernel_name=payload["kernel_name"],
            decision_seconds=float(payload["decision_seconds"]),
            setup_seconds=float(payload["setup_seconds"]),
            classifier_kind=payload["classifier_kind"],
            cache_hit=bool(payload.get("cache_hit", False)),
            quarantined=tuple(payload.get("quarantined", ())),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        opts = "+".join(self.optimizations) if self.optimizations else "none"
        return (
            f"classes={format_classes(self.classes)} opts={opts} "
            f"overhead={1e3 * self.total_overhead_seconds:.2f}ms"
        )


@dataclass
class OptimizedSpMV:
    """A ready-to-run optimized SpMV operator."""

    csr: CSRMatrix
    kernel: ConfiguredSpMV
    data: object
    machine: MachineSpec
    plan: OptimizationPlan
    partition: Partition | None = field(default=None, repr=False)
    #: scratch arena reused across applies; shared with the plan-cache
    #: entry that produced this operator, so repeat service keeps its
    #: warm buffers.
    workspace: Workspace = field(default_factory=Workspace, repr=False)
    #: the optimizer's :class:`~repro.parallel.ParallelConfig` (None
    #: for serial planning); consumed by :meth:`parallel_operator`.
    parallel_config: object | None = field(default=None, repr=False)
    #: the :class:`~repro.model.base.CostModel` predictions run through
    #: (None falls back to a fresh analytic model on first use).
    model: object | None = field(default=None, repr=False)
    #: memoized :class:`~repro.engine.KernelExecutor` behind
    #: ``matvec``/``matmat``; rebuilt whenever ``kernel``/``data`` are
    #: reassigned (identity-checked per call, so live mutation of the
    #: operator keeps working).
    _engine_cache: object | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    def _engine(self):
        """The serial engine leaf this operator applies through."""
        from ..engine.executor import KernelExecutor

        cached = self._engine_cache
        if (
            cached is None
            or cached.kernel is not self.kernel
            or cached.data is not self.data
        ):
            cached = KernelExecutor(self.csr, self.kernel, data=self.data)
            self._engine_cache = cached
        return cached

    def executor(self, spec: ExecutorSpec | None = None, *, tracer=None):
        """Assemble the full engine stack for the planned kernel.

        Defaults to the plan's own :class:`~repro.engine.ExecutorSpec`
        (``plan.executor_spec``), sharing this operator's warm
        workspace arena; pass ``spec=`` to compose a different stack
        over the same planned kernel and data.
        """
        from ..engine.layers import build_executor

        if spec is None:
            spec = self.plan.executor_spec
        arena = self.workspace
        if spec.workspace == "thread-local" and not arena.thread_local:
            # The operator's warm arena is single-threaded; a spec that
            # asks for thread-local isolation gets a fresh arena rather
            # than a silently-shared one.
            arena = None
        return build_executor(self.csr, spec, kernel=self.kernel,
                              data=self.data, tracer=tracer,
                              workspace=arena)

    def matvec(self, x: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """Numerically compute ``A @ x`` through the optimized kernel.

        With ``out=`` the result lands in the caller-owned buffer and,
        after a warm-up apply populates the operator's workspace, the
        steady state allocates no new arrays."""
        return self._engine().apply(x, out=out, workspace=self.workspace)

    def matmat(self, X: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """Batched ``A @ X`` for ``X`` of shape ``(ncols, k)`` through
        the kernel's multi-RHS plane."""
        return self._engine().apply_multi(X, out=out,
                                          workspace=self.workspace)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def parallel_operator(self, nthreads: int | None = None,
                          schedule: str | None = None,
                          chunk_rows: int | None = None):
        """Lift this operator onto the real parallel execution plane.

        Returns a :class:`~repro.parallel.ParallelSpMV` that runs the
        *planned* kernel on a thread pool. Defaults come from the
        optimizer's :class:`~repro.parallel.ParallelConfig` when one was
        supplied (``AdaptiveSpMV(..., parallel=...)`` — also recorded
        on ``plan.executor_spec.parallel``); otherwise ``nthreads``
        must be given.
        """
        from ..parallel import ParallelSpMV

        cfg = self.parallel_config
        if cfg is None:
            cfg = self.plan.executor_spec.parallel
        if nthreads is None:
            if cfg is None:
                raise ValueError(
                    "nthreads is required when the plan has no "
                    "parallel config"
                )
            nthreads = cfg.nthreads
        if schedule is None:
            schedule = cfg.schedule if cfg is not None else "balanced-nnz"
        if chunk_rows is None and cfg is not None:
            chunk_rows = cfg.chunk_rows
        return ParallelSpMV(self.csr, self.kernel, nthreads=nthreads,
                            schedule=schedule, chunk_rows=chunk_rows)

    def simulate(self, nthreads: int | None = None) -> RunResult:
        """Predicted execution on the target machine, through the
        operator's cost model (calibrated when planned that way).

        ``nthreads=None`` means the machine's full thread count — the
        pre-model default — independent of the model's own default, so
        operators planned at a reduced thread count keep reporting the
        same headline number they always did.
        """
        if self.model is None:
            self.model = AnalyticModel(self.machine)
        if nthreads is None:
            nthreads = self.machine.total_threads
        return self.model.run(self.kernel, self.data, self.partition,
                              nthreads=nthreads)


class AdaptiveSpMV:
    """Matrix- and architecture-adaptive SpMV optimizer.

    Parameters
    ----------
    machine
        Target platform specification.
    classifier
        ``"profile"`` for the online profile-guided classifier, or a
        trained :class:`FeatureGuidedClassifier`/custom object with
        ``classify_with_cost(csr) -> (classes, seconds)``.
    pool
        Optimization pool (class -> optimization mapping).
    plan_cache
        ``None`` (default) gives the optimizer a private
        :class:`PlanCache`; pass a shared :class:`PlanCache` (possibly
        revived via :meth:`PlanCache.load`) to pool decisions across
        optimizers or warm-start across processes, or ``False`` to
        disable caching.
    guard
        When true, the selected kernel is wrapped by the engine's
        :class:`~repro.engine.GuardLayer`: runtime faults quarantine
        the variant and fall back to the reference CSR numeric plane
        instead of escaping. Independently of ``guard``, the optimizer
        never *plans* an already-quarantined variant (it substitutes
        the baseline kernel and notes the skipped name in
        ``OptimizationPlan.quarantined``), and cached entries whose
        kernel has since been quarantined are invalidated on lookup.
    spec
        A full :class:`~repro.engine.ExecutorSpec` describing the
        execution stack plans should carry. Subsumes the ``guard`` /
        ``parallel`` shorthands (which are folded in when ``spec`` is
        omitted); the spec is recorded on every built plan
        (``plan.executor_spec``) and its non-observability axes
        partition the plan-cache keys.
    stages
        The planning pipeline to compose (default:
        :func:`~repro.pipeline.stages.default_planning_stages`, i.e.
        analyze → classify → select → transform). Replace or extend to
        swap individual stages without touching the others.
    model
        The :class:`~repro.model.base.CostModel` every prediction in
        the pipeline runs through (default: a fresh
        :class:`~repro.model.AnalyticModel` — the pre-model behavior,
        including unchanged plan-cache keys). Pass a
        :class:`~repro.model.CalibratedModel` to classify, select and
        predict against host-calibrated estimates; its profile
        signature folds into the cache keys, so recalibration
        invalidates stale plans.
    """

    def __init__(
        self,
        machine: MachineSpec,
        classifier="profile",
        pool: OptimizationPool | None = None,
        nthreads: int | None = None,
        plan_cache: "PlanCache | None | bool" = None,
        guard: bool = False,
        stages=None,
        parallel=None,
        spec: ExecutorSpec | None = None,
        model=None,
    ):
        self.machine = machine
        self.pool = pool or DEFAULT_POOL
        self.nthreads = nthreads
        if model is None:
            model = AnalyticModel(machine, nthreads)
        elif model.machine is not machine and model.machine.name != machine.name:
            raise ValueError(
                f"model targets machine {model.machine.name!r}, "
                f"optimizer targets {machine.name!r}"
            )
        #: the :class:`~repro.model.base.CostModel` behind every
        #: prediction this optimizer makes.
        self.model = model
        if parallel is not None and not hasattr(parallel, "signature"):
            raise TypeError(
                "parallel must be a repro.parallel.ParallelConfig "
                "(or any object with a signature() method), got "
                f"{type(parallel).__name__}"
            )
        if spec is None:
            spec = ExecutorSpec(guard=bool(guard), parallel=parallel)
        else:
            if not isinstance(spec, ExecutorSpec):
                raise TypeError(
                    "spec must be a repro.engine.ExecutorSpec, got "
                    f"{type(spec).__name__}"
                )
            # The shorthands compose *into* an explicit spec rather
            # than silently losing against it.
            if guard and not spec.guard:
                spec = replace(spec, guard=True)
            if parallel is not None and spec.parallel is None:
                spec = replace(spec, parallel=parallel)
        #: the :class:`~repro.engine.ExecutorSpec` recorded on every
        #: plan this optimizer builds; its parallel/supervision/
        #: workspace axes partition the plan-cache keys.
        self.spec = spec
        self.guard = spec.guard
        #: optional :class:`~repro.parallel.ParallelConfig`; folded into
        #: cache keys and attached to optimized operators.
        self.parallel = spec.parallel
        self.stages = (
            tuple(stages) if stages is not None
            else default_planning_stages()
        )
        if plan_cache is None:
            self.plan_cache: PlanCache | None = PlanCache()
        elif plan_cache is False:
            self.plan_cache = None
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            raise TypeError(
                "plan_cache must be a PlanCache, None, or False"
            )
        if classifier == "profile":
            self._classifier = ProfileGuidedClassifier(
                machine, nthreads=nthreads, model=self.model
            )
            self.classifier_kind = "profile-guided"
        elif isinstance(classifier, FeatureGuidedClassifier):
            self._classifier = classifier
            self.classifier_kind = "feature-guided"
        elif hasattr(classifier, "classify_with_cost"):
            self._classifier = classifier
            self.classifier_kind = type(classifier).__name__
        else:
            raise TypeError(
                "classifier must be 'profile', a FeatureGuidedClassifier, "
                "or provide classify_with_cost()"
            )

    def _cache_key(self, fingerprint: str) -> tuple:
        """Cache key: the decision depends on the matrix structure, the
        target machine, the classifier and the pool mapping.

        Every component is a *content* string — no object identities —
        so keys are stable across processes and safe to persist
        (:meth:`PlanCache.save`). The pool contributes its
        :meth:`~repro.core.pool.OptimizationPool.content_signature`;
        the execution configuration (``nthreads`` plus the parallel
        plane's :meth:`~repro.parallel.ParallelConfig.signature`)
        contributes the final component, so plans tuned for one thread
        count / schedule policy are never served for another.
        """
        return (
            fingerprint,
            self.machine.name,
            self.classifier_kind,
            self.pool.content_signature(),
            self._execution_signature(),
        )

    def _execution_signature(self) -> str:
        """Content string of the execution configuration axis.

        Delegates to :meth:`~repro.engine.ExecutorSpec.cache_signature`,
        which excludes the guard/trace axes (guarding re-wraps on
        lookup, tracing is observability) and collapses to the exact
        pre-engine strings for legacy-equivalent specs, so plan caches
        saved by earlier builds still warm-start. The cost model's
        :meth:`~repro.model.base.CostModel.cache_signature` is appended
        only when non-empty — the analytic model contributes nothing
        (legacy keys byte-identical), a calibrated model contributes
        its profile digest (recalibration invalidates stale plans).
        """
        nthreads = "default" if self.nthreads is None else int(self.nthreads)
        sig = f"nthreads={nthreads};{self.spec.cache_signature()}"
        model_sig = self.model.cache_signature()
        if model_sig:
            sig = f"{sig};{model_sig}"
        return sig

    def _run_stages(self, csr: CSRMatrix, materialize: bool,
                    tracer: Tracer) -> PipelineContext:
        """Run the planning pipeline over a fresh context."""
        ctx = PipelineContext(
            csr=csr,
            machine=self.machine,
            classifier=self._classifier,
            classifier_kind=self.classifier_kind,
            pool=self.pool,
            guard=self.guard,
            materialize=materialize,
            nthreads=self.nthreads,
            spec=self.spec,
            model=self.model,
            tracer=tracer,
        )
        return run_stages(self.stages, ctx)

    def _lookup(self, csr: CSRMatrix, tracer: Tracer | None = None):
        """Return ``(key, entry)`` for ``csr``; both None with caching off.

        A cached entry whose kernel has since been quarantined is stale:
        it is invalidated here and reported as a miss so the plan is
        redone against the current quarantine list. Entries revived
        from disk (or shared with an unguarded optimizer) are re-wrapped
        in the guard when this optimizer guards.
        """
        if self.plan_cache is None:
            return None, None
        key = self._cache_key(matrix_fingerprint(csr))
        entry = self.plan_cache.get(key)
        invalidated = False
        if (
            entry is not None
            and entry.plan.optimizations
            and is_quarantined(entry.kernel.name)
        ):
            self.plan_cache.invalidate(key)
            entry = None
            invalidated = True
        if entry is not None and self.guard:
            from ..engine.layers import GuardLayer

            layer = GuardLayer()
            if not layer.is_guarded(entry.kernel):
                # Revived/shared entry planned without the guard: wrap
                # it and drop its data (typed for the unwrapped kernel).
                entry = _CacheEntry(
                    entry.plan, layer.wrap(entry.kernel), None, None
                )
                self.plan_cache.store(key, entry)
        if tracer is not None:
            tracer.record(
                "cache",
                hit=entry is not None,
                invalidated_stale=invalidated,
                fingerprint=key[0],
            )
        return key, entry

    def plan(self, csr: CSRMatrix,
             tracer: Tracer | None = None) -> OptimizationPlan:
        """Classify and select optimizations without converting data.

        Pass a :class:`~repro.pipeline.tracer.Tracer` to receive one
        span per pipeline stage (the ``repro-spmv plan --explain``
        breakdown); the spans' ``charged_seconds`` sum to the returned
        plan's ``total_overhead_seconds``.
        """
        own_tracer = tracer if tracer is not None else Tracer()
        key, entry = self._lookup(csr, own_tracer)
        if entry is not None:
            # A hit serves *this* optimizer's execution stack (the
            # cached decision is shared; e.g. a guarded optimizer hits
            # an unguarded entry and re-wraps on lookup).
            plan = replace(entry.plan, decision_seconds=0.0,
                           cache_hit=True, executor_spec=self.spec)
            # The retained setup forecast is charged to the cache span
            # so traced stage totals always match the plan.
            own_tracer.spans[-1].charged_seconds = plan.setup_seconds
            return plan
        ctx = self._run_stages(csr, materialize=False, tracer=own_tracer)
        plan = ctx.build_plan()
        if key is not None:
            self.plan_cache.store(
                key, _CacheEntry(plan, ctx.kernel, None, None)
            )
        return plan

    def optimize(self, csr: CSRMatrix,
                 tracer: Tracer | None = None) -> OptimizedSpMV:
        """Full pipeline: classify, select, preprocess, return operator.

        Repeat matrices are served from the plan cache: a structural
        hit skips classification (``decision_seconds == 0``), and when
        the values digest matches too the converted data is reused
        outright (``setup_seconds == 0``) — the operator is ready at
        zero amortization overhead.
        """
        own_tracer = tracer if tracer is not None else Tracer()
        key, entry = self._lookup(csr, own_tracer)
        digest = _values_digest(csr) if key is not None else None
        if entry is not None:
            kernel = entry.kernel
            if entry.data is not None and entry.values_digest == digest:
                plan = replace(entry.plan, decision_seconds=0.0,
                               setup_seconds=0.0, cache_hit=True,
                               executor_spec=self.spec)
                return OptimizedSpMV(
                    csr=csr, kernel=kernel, data=entry.data,
                    machine=self.machine, plan=plan,
                    workspace=entry.arena(),
                    parallel_config=self.parallel,
                    model=self.model,
                )
            # Same structure, new values: the decision is free but the
            # format conversion must re-run and stays charged.
            with own_tracer.span("transform", kernel=kernel.name,
                                 materialized=True) as span:
                data = kernel.preprocess(csr)
                span.charged_seconds = entry.plan.setup_seconds
            entry.data = data
            entry.values_digest = digest
            plan = replace(entry.plan, decision_seconds=0.0,
                           cache_hit=True, executor_spec=self.spec)
            return OptimizedSpMV(
                csr=csr, kernel=kernel, data=data,
                machine=self.machine, plan=plan,
                workspace=entry.arena(),
                parallel_config=self.parallel,
                model=self.model,
            )
        ctx = self._run_stages(csr, materialize=True, tracer=own_tracer)
        plan = ctx.build_plan()
        entry = _CacheEntry(plan, ctx.kernel, ctx.data, digest)
        if key is not None:
            self.plan_cache.store(key, entry)
        return OptimizedSpMV(
            csr=csr,
            kernel=ctx.kernel,
            data=ctx.data,
            machine=self.machine,
            plan=plan,
            workspace=entry.arena(),
            parallel_config=self.parallel,
            model=self.model,
        )
