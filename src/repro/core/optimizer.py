"""The adaptive SpMV optimizer — the paper's end-to-end system.

``AdaptiveSpMV`` ties the pieces together:

1. classify the input matrix's bottlenecks (profile- or feature-guided);
2. map the detected classes to pool optimizations (Table I), jointly;
3. preprocess (format conversion + JIT codegen) and hand back an
   :class:`OptimizedSpMV` that is both numerically executable
   (``matvec``) and performance-simulatable (``simulate``), with its
   full setup-cost accounting attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, baseline_kernel
from ..machine import ExecutionEngine, MachineSpec, RunResult
from ..matrices.features import extract_features
from ..sched import Partition
from .classes import ClassSet, format_classes
from .feature_classifier import FeatureGuidedClassifier
from .pool import DEFAULT_POOL, OptimizationPool
from .profile_classifier import ProfileGuidedClassifier

__all__ = ["OptimizationPlan", "OptimizedSpMV", "AdaptiveSpMV"]


@dataclass(frozen=True)
class OptimizationPlan:
    """What the optimizer decided for one matrix, and what it cost."""

    classes: ClassSet
    optimizations: tuple[str, ...]
    kernel_name: str
    decision_seconds: float      # classification (profiling / features)
    setup_seconds: float         # conversion + JIT codegen
    classifier_kind: str

    @property
    def total_overhead_seconds(self) -> float:
        """Full optimizer overhead, the ``t_pre`` of paper Table V."""
        return self.decision_seconds + self.setup_seconds

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        opts = "+".join(self.optimizations) if self.optimizations else "none"
        return (
            f"classes={format_classes(self.classes)} opts={opts} "
            f"overhead={1e3 * self.total_overhead_seconds:.2f}ms"
        )


@dataclass
class OptimizedSpMV:
    """A ready-to-run optimized SpMV operator."""

    csr: CSRMatrix
    kernel: ConfiguredSpMV
    data: object
    machine: MachineSpec
    plan: OptimizationPlan
    partition: Partition | None = field(default=None, repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Numerically compute ``A @ x`` through the optimized kernel."""
        return self.kernel.apply(self.data, x)

    __matmul__ = matvec

    def simulate(self, nthreads: int | None = None) -> RunResult:
        """Simulated execution on the target machine."""
        engine = ExecutionEngine(self.machine, nthreads)
        return engine.run(self.kernel, self.data, self.partition)


class AdaptiveSpMV:
    """Matrix- and architecture-adaptive SpMV optimizer.

    Parameters
    ----------
    machine
        Target platform specification.
    classifier
        ``"profile"`` for the online profile-guided classifier, or a
        trained :class:`FeatureGuidedClassifier`/custom object with
        ``classify_with_cost(csr) -> (classes, seconds)``.
    pool
        Optimization pool (class -> optimization mapping).
    """

    def __init__(
        self,
        machine: MachineSpec,
        classifier="profile",
        pool: OptimizationPool | None = None,
        nthreads: int | None = None,
    ):
        self.machine = machine
        self.pool = pool or DEFAULT_POOL
        self.nthreads = nthreads
        if classifier == "profile":
            self._classifier = ProfileGuidedClassifier(
                machine, nthreads=nthreads
            )
            self.classifier_kind = "profile-guided"
        elif isinstance(classifier, FeatureGuidedClassifier):
            self._classifier = classifier
            self.classifier_kind = "feature-guided"
        elif hasattr(classifier, "classify_with_cost"):
            self._classifier = classifier
            self.classifier_kind = type(classifier).__name__
        else:
            raise TypeError(
                "classifier must be 'profile', a FeatureGuidedClassifier, "
                "or provide classify_with_cost()"
            )

    def plan(self, csr: CSRMatrix) -> OptimizationPlan:
        """Classify and select optimizations without building the kernel."""
        classes, decision_seconds = self._classifier.classify_with_cost(csr)
        features = extract_features(
            csr,
            llc_bytes=self.machine.llc_bytes,
            line_elems=self.machine.line_elems,
        )
        optimizations = self.pool.select(classes, features)
        kernel = self.pool.kernel_for(classes, features)
        setup_seconds = kernel.preprocessing_seconds(csr, self.machine)
        return OptimizationPlan(
            classes=classes,
            optimizations=optimizations,
            kernel_name=kernel.name,
            decision_seconds=decision_seconds,
            setup_seconds=setup_seconds,
            classifier_kind=self.classifier_kind,
        )

    def optimize(self, csr: CSRMatrix) -> OptimizedSpMV:
        """Full pipeline: classify, select, preprocess, return operator."""
        plan = self.plan(csr)
        kernel = (
            self.pool.kernel_for(plan.classes, csr=csr)
            if plan.optimizations
            else baseline_kernel()
        )
        data = kernel.preprocess(csr)
        return OptimizedSpMV(
            csr=csr,
            kernel=kernel,
            data=data,
            machine=self.machine,
            plan=plan,
        )
