"""The adaptive SpMV optimizer — the paper's end-to-end system.

``AdaptiveSpMV`` ties the pieces together:

1. classify the input matrix's bottlenecks (profile- or feature-guided);
2. map the detected classes to pool optimizations (Table I), jointly;
3. preprocess (format conversion + JIT codegen) and hand back an
   :class:`OptimizedSpMV` that is both numerically executable
   (``matvec`` / batched ``matmat``) and performance-simulatable
   (``simulate``), with its full setup-cost accounting attached.

Repeat matrices are served from a :class:`PlanCache`: a cheap
structural fingerprint (shape, nnz, rowptr/colind digest) keys the
classification decision *and* the converted execution format, so the
Table V amortization overhead of a recurring operator drops to ~zero —
the cache hit is visible in ``OptimizationPlan.decision_seconds`` /
``setup_seconds``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, baseline_kernel, is_quarantined
from ..machine import ExecutionEngine, MachineSpec, RunResult
from ..matrices.features import extract_features
from ..sched import Partition
from .classes import ClassSet, format_classes
from .feature_classifier import FeatureGuidedClassifier
from .pool import DEFAULT_POOL, OptimizationPool
from .profile_classifier import ProfileGuidedClassifier

__all__ = [
    "OptimizationPlan",
    "OptimizedSpMV",
    "AdaptiveSpMV",
    "PlanCache",
    "matrix_fingerprint",
]


def matrix_fingerprint(csr: CSRMatrix) -> str:
    """Cheap structural fingerprint of a CSR matrix.

    Hashes shape, nnz and the raw ``rowptr``/``colind`` bytes (one
    linear pass, no numeric work) — two matrices with the same
    fingerprint have identical sparsity structure, which is all the
    classifiers and format conversions depend on. Values are digested
    separately (see :class:`PlanCache`) so a matrix whose coefficients
    changed but whose structure did not can still reuse its plan.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(
        np.array([csr.shape[0], csr.shape[1], csr.nnz],
                 dtype=np.int64).tobytes()
    )
    h.update(np.ascontiguousarray(csr.rowptr).tobytes())
    h.update(np.ascontiguousarray(csr.colind).tobytes())
    return h.hexdigest()


def _values_digest(csr: CSRMatrix) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(csr.values).tobytes())
    return h.hexdigest()


@dataclass
class _CacheEntry:
    """One cached decision: the plan, the configured kernel, and (when
    values also match) the converted execution-format data."""

    plan: "OptimizationPlan"
    kernel: ConfiguredSpMV
    data: object | None
    values_digest: str | None


class PlanCache:
    """LRU cache of optimization plans keyed by matrix fingerprint.

    A structural hit skips classification entirely
    (``decision_seconds`` reported as 0). When the values digest also
    matches, the converted execution format is reused and
    ``setup_seconds`` drops to 0 as well; with different values the
    conversion re-runs (and stays charged) but the decision is still
    free. Instances can be shared between :class:`AdaptiveSpMV`
    optimizers to pool their decisions.

    All mutating operations take an internal lock, so one cache can be
    shared between optimizers running on different threads; the
    ``evictions`` / ``invalidations`` counters (visible in ``repr``)
    track LRU pressure and guard-layer entry drops respectively.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple) -> _CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: tuple, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (stale digest, quarantined kernel); returns
        whether the key was present."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.invalidations += 1
            return present

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {len(self)}/{self.maxsize} "
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} "
            f"invalidations={self.invalidations}>"
        )


@dataclass(frozen=True)
class OptimizationPlan:
    """What the optimizer decided for one matrix, and what it cost."""

    classes: ClassSet
    optimizations: tuple[str, ...]
    kernel_name: str
    decision_seconds: float      # classification (profiling / features)
    setup_seconds: float         # conversion + JIT codegen
    classifier_kind: str
    cache_hit: bool = False      # served from a PlanCache?
    quarantined: tuple[str, ...] = ()  # variants skipped as quarantined

    @property
    def total_overhead_seconds(self) -> float:
        """Full optimizer overhead, the ``t_pre`` of paper Table V."""
        return self.decision_seconds + self.setup_seconds

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        opts = "+".join(self.optimizations) if self.optimizations else "none"
        return (
            f"classes={format_classes(self.classes)} opts={opts} "
            f"overhead={1e3 * self.total_overhead_seconds:.2f}ms"
        )


@dataclass
class OptimizedSpMV:
    """A ready-to-run optimized SpMV operator."""

    csr: CSRMatrix
    kernel: ConfiguredSpMV
    data: object
    machine: MachineSpec
    plan: OptimizationPlan
    partition: Partition | None = field(default=None, repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Numerically compute ``A @ x`` through the optimized kernel."""
        return self.kernel.apply(self.data, x)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched ``A @ X`` for ``X`` of shape ``(ncols, k)`` through
        the kernel's multi-RHS plane."""
        return self.kernel.apply_multi(self.data, X)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def simulate(self, nthreads: int | None = None) -> RunResult:
        """Simulated execution on the target machine."""
        engine = ExecutionEngine(self.machine, nthreads)
        return engine.run(self.kernel, self.data, self.partition)


class AdaptiveSpMV:
    """Matrix- and architecture-adaptive SpMV optimizer.

    Parameters
    ----------
    machine
        Target platform specification.
    classifier
        ``"profile"`` for the online profile-guided classifier, or a
        trained :class:`FeatureGuidedClassifier`/custom object with
        ``classify_with_cost(csr) -> (classes, seconds)``.
    pool
        Optimization pool (class -> optimization mapping).
    plan_cache
        ``None`` (default) gives the optimizer a private
        :class:`PlanCache`; pass a shared :class:`PlanCache` to pool
        decisions across optimizers, or ``False`` to disable caching.
    guard
        When true, the selected kernel is wrapped in a
        :class:`~repro.guard.guarded.GuardedKernel`: runtime faults
        quarantine the variant and fall back to the reference CSR
        numeric plane instead of escaping. Independently of ``guard``,
        the optimizer never *plans* an already-quarantined variant (it
        substitutes the baseline kernel and notes the skipped name in
        ``OptimizationPlan.quarantined``), and cached entries whose
        kernel has since been quarantined are invalidated on lookup.
    """

    def __init__(
        self,
        machine: MachineSpec,
        classifier="profile",
        pool: OptimizationPool | None = None,
        nthreads: int | None = None,
        plan_cache: "PlanCache | None | bool" = None,
        guard: bool = False,
    ):
        self.machine = machine
        self.pool = pool or DEFAULT_POOL
        self.nthreads = nthreads
        self.guard = bool(guard)
        if plan_cache is None:
            self.plan_cache: PlanCache | None = PlanCache()
        elif plan_cache is False:
            self.plan_cache = None
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            raise TypeError(
                "plan_cache must be a PlanCache, None, or False"
            )
        if classifier == "profile":
            self._classifier = ProfileGuidedClassifier(
                machine, nthreads=nthreads
            )
            self.classifier_kind = "profile-guided"
        elif isinstance(classifier, FeatureGuidedClassifier):
            self._classifier = classifier
            self.classifier_kind = "feature-guided"
        elif hasattr(classifier, "classify_with_cost"):
            self._classifier = classifier
            self.classifier_kind = type(classifier).__name__
        else:
            raise TypeError(
                "classifier must be 'profile', a FeatureGuidedClassifier, "
                "or provide classify_with_cost()"
            )

    def _cache_key(self, fingerprint: str) -> tuple:
        """Cache key: the decision depends on the matrix structure, the
        target machine, the classifier and the pool mapping."""
        return (
            fingerprint,
            self.machine.name,
            self.classifier_kind,
            id(self.pool),
        )

    def _plan_and_kernel(self, csr: CSRMatrix):
        """Classify, select and configure once; the single source of
        truth for both :meth:`plan` and :meth:`optimize`."""
        classes, decision_seconds = self._classifier.classify_with_cost(csr)
        features = extract_features(
            csr,
            llc_bytes=self.machine.llc_bytes,
            line_elems=self.machine.line_elems,
        )
        optimizations = self.pool.select(classes, features)
        kernel = (
            self.pool.kernel_for(classes, features)
            if optimizations
            else baseline_kernel()
        )
        quarantined: tuple[str, ...] = ()
        if optimizations and is_quarantined(kernel.name):
            # The selected variant is known-bad: plan the reference
            # kernel instead and record what was skipped.
            quarantined = (kernel.name,)
            kernel = baseline_kernel()
        if self.guard:
            from ..guard.guarded import GuardedKernel

            kernel = GuardedKernel(kernel)
        setup_seconds = kernel.preprocessing_seconds(csr, self.machine)
        plan = OptimizationPlan(
            classes=classes,
            optimizations=optimizations,
            kernel_name=kernel.name,
            decision_seconds=decision_seconds,
            setup_seconds=setup_seconds,
            classifier_kind=self.classifier_kind,
            quarantined=quarantined,
        )
        return plan, kernel

    def _lookup(self, csr: CSRMatrix):
        """Return ``(key, entry)`` for ``csr``; both None with caching off.

        A cached entry whose kernel has since been quarantined is stale:
        it is invalidated here and reported as a miss so the plan is
        redone against the current quarantine list.
        """
        if self.plan_cache is None:
            return None, None
        key = self._cache_key(matrix_fingerprint(csr))
        entry = self.plan_cache.get(key)
        if (
            entry is not None
            and entry.plan.optimizations
            and is_quarantined(entry.kernel.name)
        ):
            self.plan_cache.invalidate(key)
            entry = None
        return key, entry

    def plan(self, csr: CSRMatrix) -> OptimizationPlan:
        """Classify and select optimizations without converting data."""
        key, entry = self._lookup(csr)
        if entry is not None:
            return replace(entry.plan, decision_seconds=0.0,
                           cache_hit=True)
        plan, kernel = self._plan_and_kernel(csr)
        if key is not None:
            self.plan_cache.store(
                key, _CacheEntry(plan, kernel, None, None)
            )
        return plan

    def optimize(self, csr: CSRMatrix) -> OptimizedSpMV:
        """Full pipeline: classify, select, preprocess, return operator.

        Repeat matrices are served from the plan cache: a structural
        hit skips classification (``decision_seconds == 0``), and when
        the values digest matches too the converted data is reused
        outright (``setup_seconds == 0``) — the operator is ready at
        zero amortization overhead.
        """
        key, entry = self._lookup(csr)
        digest = _values_digest(csr) if key is not None else None
        if entry is not None:
            kernel = entry.kernel
            if entry.data is not None and entry.values_digest == digest:
                plan = replace(entry.plan, decision_seconds=0.0,
                               setup_seconds=0.0, cache_hit=True)
                return OptimizedSpMV(
                    csr=csr, kernel=kernel, data=entry.data,
                    machine=self.machine, plan=plan,
                )
            # Same structure, new values: the decision is free but the
            # format conversion must re-run and stays charged.
            data = kernel.preprocess(csr)
            entry.data = data
            entry.values_digest = digest
            plan = replace(entry.plan, decision_seconds=0.0,
                           cache_hit=True)
            return OptimizedSpMV(
                csr=csr, kernel=kernel, data=data,
                machine=self.machine, plan=plan,
            )
        plan, kernel = self._plan_and_kernel(csr)
        data = kernel.preprocess(csr)
        if key is not None:
            self.plan_cache.store(
                key, _CacheEntry(plan, kernel, data, digest)
            )
        return OptimizedSpMV(
            csr=csr,
            kernel=kernel,
            data=data,
            machine=self.machine,
            plan=plan,
        )
