"""Feature-guided classifier (paper Section III-D).

A multilabel CART decision tree trained *offline*: the training corpus
is labeled by the profile-guided classifier on the target machine (the
paper's labeling choice, Section III-D-3), then the tree learns to
predict the class set from cheap structural features alone. At runtime
only feature extraction (O(N) or O(NNZ)) and an O(log n) tree query are
needed — the lightest optimizer in Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..formats import CSRMatrix
from ..kernels import feature_extraction_seconds
from ..machine import MachineSpec
from ..matrices.features import (
    FEATURE_COMPLEXITY,
    PAPER_ONNZ_SUBSET,
    canonical_feature_name,
    extract_features,
)
from ..ml import DecisionTree
from .classes import ClassSet, classes_to_labels, labels_to_classes
from .profile_classifier import ProfileGuidedClassifier

__all__ = ["FeatureGuidedClassifier", "TrainingReport"]


@dataclass(frozen=True)
class TrainingReport:
    """Provenance of one trained feature-guided classifier."""

    n_samples: int
    feature_names: tuple[str, ...]
    label_counts: dict[str, int]
    tree_depth: int
    tree_leaves: int


@dataclass
class FeatureGuidedClassifier:
    """Decision-tree classifier over structural matrix features.

    Parameters
    ----------
    machine
        Target platform; used for the ``size`` feature's LLC capacity
        and for labeling during :meth:`fit_from_matrices`.
    feature_names
        Feature subset to use (default: the paper's best O(NNZ) subset
        from Table IV).
    max_depth, min_samples_leaf
        CART regularization.
    """

    machine: MachineSpec
    feature_names: Sequence[str] = PAPER_ONNZ_SUBSET
    max_depth: int | None = 12
    min_samples_leaf: int = 2
    tree: DecisionTree | None = field(default=None, repr=False)
    report: TrainingReport | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.feature_names = tuple(
            canonical_feature_name(n) for n in self.feature_names
        )

    # -- feature extraction -------------------------------------------------

    def features_of(self, csr: CSRMatrix) -> np.ndarray:
        fv = extract_features(
            csr,
            llc_bytes=self.machine.llc_bytes,
            line_elems=self.machine.line_elems,
        )
        return fv.as_array(self.feature_names)

    @property
    def extraction_complexity(self) -> str:
        """Worst extraction complexity across the selected features."""
        order = {"O(1)": 0, "O(N)": 1, "O(NNZ)": 2}
        worst = max(self.feature_names, key=lambda n: order[FEATURE_COMPLEXITY[n]])
        return FEATURE_COMPLEXITY[worst]

    # -- training ---------------------------------------------------------------

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "FeatureGuidedClassifier":
        """Fit from a precomputed feature matrix and label matrix."""
        self.tree = DecisionTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
        ).fit(X, Y)
        return self

    def fit_from_matrices(
        self,
        matrices: Sequence[CSRMatrix],
        labeler: ProfileGuidedClassifier | None = None,
        labels: Sequence[ClassSet] | None = None,
    ) -> "FeatureGuidedClassifier":
        """Label a corpus (profile-guided, unless given) and train.

        This is the paper's offline stage: 210 matrices, labels from the
        profile-guided classifier on the target machine.
        """
        matrices = list(matrices)
        if not matrices:
            raise ValueError("training corpus is empty")
        if labels is None:
            labeler = labeler or ProfileGuidedClassifier(self.machine)
            labels = [labeler.classify(m) for m in matrices]
        labels = list(labels)
        if len(labels) != len(matrices):
            raise ValueError("labels must match matrices")
        X = np.array([self.features_of(m) for m in matrices])
        Y = np.array([classes_to_labels(c) for c in labels])
        self.fit(X, Y)
        counts = {
            name: int(Y[:, i].sum())
            for i, name in enumerate(("MB", "ML", "IMB", "CMP"))
        }
        counts["dummy"] = int(np.sum(~Y.any(axis=1)))
        self.report = TrainingReport(
            n_samples=len(matrices),
            feature_names=tuple(self.feature_names),
            label_counts=counts,
            tree_depth=self.tree.depth,
            tree_leaves=self.tree.n_leaves,
        )
        return self

    # -- persistence ---------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trained classifier as JSON (the offline stage's
        artifact, shippable to runtimes that never profile)."""
        import json

        if self.tree is None:
            raise RuntimeError("classifier is not trained")
        payload = {
            "machine": self.machine.codename,
            "feature_names": list(self.feature_names),
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "tree": self.tree.to_dict(),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)

    @classmethod
    def load(cls, path) -> "FeatureGuidedClassifier":
        """Rebuild a classifier saved by :meth:`save`."""
        import json

        from ..machine import get_platform
        from ..ml import DecisionTree

        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        clf = cls(
            machine=get_platform(payload["machine"]),
            feature_names=tuple(payload["feature_names"]),
            max_depth=payload["max_depth"],
            min_samples_leaf=payload["min_samples_leaf"],
        )
        clf.tree = DecisionTree.from_dict(payload["tree"])
        return clf

    # -- inference ---------------------------------------------------------------

    def classify(self, csr: CSRMatrix) -> ClassSet:
        """Predicted bottleneck classes of ``csr``."""
        if self.tree is None:
            raise RuntimeError(
                "classifier is not trained; call fit_from_matrices first"
            )
        labels = self.tree.predict(self.features_of(csr)[None, :])[0]
        return labels_to_classes(labels)

    def classify_with_cost(self, csr: CSRMatrix) -> tuple[ClassSet, float]:
        """Classes plus the simulated online decision cost (seconds).

        Only feature extraction costs anything; the tree query is
        O(log n_samples) and negligible.
        """
        classes = self.classify(csr)
        seconds = feature_extraction_seconds(
            csr, self.machine, self.extraction_complexity
        )
        return classes, seconds
