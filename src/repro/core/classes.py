"""Bottleneck classes (paper Section III-A).

The optimizer formulates optimization selection as multiclass,
multilabel classification where classes are *performance bottlenecks*,
not optimizations — the property that makes the framework plug-and-play
(optimizations can be swapped per class without retraining).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable

import numpy as np

__all__ = [
    "Bottleneck",
    "ClassSet",
    "ALL_CLASSES",
    "EMPTY_CLASSES",
    "classes_to_labels",
    "labels_to_classes",
    "format_classes",
]


class Bottleneck(enum.Enum):
    """One SpMV performance bottleneck."""

    #: Memory Bandwidth bound: bandwidth utilization near peak, usually
    #: a regular sparsity structure.
    MB = "MB"
    #: Memory Latency bound: poor x locality that hardware prefetchers
    #: cannot cover.
    ML = "ML"
    #: Thread IMBalanced: uneven row lengths or regionally different
    #: sparsity patterns.
    IMB = "IMB"
    #: CoMPute bound: cache-resident working sets near the roofline
    #: ridge, or nonzeros concentrated in a few dense rows, or dominant
    #: short-row loop overhead.
    CMP = "CMP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ClassSet = FrozenSet[Bottleneck]

ALL_CLASSES: tuple[Bottleneck, ...] = (
    Bottleneck.MB,
    Bottleneck.ML,
    Bottleneck.IMB,
    Bottleneck.CMP,
)

#: The "dummy" outcome: not worth applying any pool optimization.
EMPTY_CLASSES: ClassSet = frozenset()


def classes_to_labels(classes: Iterable[Bottleneck]) -> np.ndarray:
    """Binary label vector in :data:`ALL_CLASSES` order."""
    cs = frozenset(classes)
    unknown = cs - set(ALL_CLASSES)
    if unknown:
        raise ValueError(f"unknown classes: {unknown}")
    return np.array(
        [1 if c in cs else 0 for c in ALL_CLASSES], dtype=np.int64
    )


def labels_to_classes(labels) -> ClassSet:
    """Inverse of :func:`classes_to_labels`."""
    labels = np.asarray(labels)
    if labels.shape != (len(ALL_CLASSES),):
        raise ValueError(
            f"labels must have shape ({len(ALL_CLASSES)},), got {labels.shape}"
        )
    return frozenset(c for c, v in zip(ALL_CLASSES, labels) if v)


def format_classes(classes: ClassSet) -> str:
    """Stable human-readable rendering, e.g. ``{ML, IMB}`` or ``{}``."""
    names = [c.value for c in ALL_CLASSES if c in classes]
    return "{" + ", ".join(names) + "}"
