"""The paper's primary contribution (system S6): bottleneck-classifying
adaptive SpMV optimization."""

from .amortization import AmortizationCase, AmortizationSummary, amortization_study
from .bounds import PerformanceBounds, measure_bounds, profiling_seconds
from .classes import (
    ALL_CLASSES,
    EMPTY_CLASSES,
    Bottleneck,
    ClassSet,
    classes_to_labels,
    format_classes,
    labels_to_classes,
)
from .feature_classifier import FeatureGuidedClassifier, TrainingReport
from .gridsearch import GridPoint, GridSearchResult, tune_profile_thresholds
from .optimizer import (
    CACHE_SCHEMA_VERSION,
    PLAN_SCHEMA_VERSION,
    AdaptiveSpMV,
    OptimizationPlan,
    OptimizedSpMV,
    PlanCache,
    matrix_fingerprint,
    plan_cache_load_recoveries,
    reset_plan_cache_load_recoveries,
)
from .oracle import OracleChoice, oracle_configurations, oracle_search
from .partitioned_ml import (
    ExtendedProfileClassifier,
    PartitionedMLDetector,
    PartitionedMLReport,
    PartitionGain,
)
from .pool import DEFAULT_POOL, OptimizationPool, PoolPolicy
from .profile_classifier import (
    ProfileGuidedClassifier,
    ProfileThresholds,
    classify_from_bounds,
)

__all__ = [
    "Bottleneck",
    "ClassSet",
    "ALL_CLASSES",
    "EMPTY_CLASSES",
    "classes_to_labels",
    "labels_to_classes",
    "format_classes",
    "PerformanceBounds",
    "measure_bounds",
    "profiling_seconds",
    "ProfileThresholds",
    "ProfileGuidedClassifier",
    "classify_from_bounds",
    "PartitionedMLDetector",
    "PartitionedMLReport",
    "PartitionGain",
    "ExtendedProfileClassifier",
    "FeatureGuidedClassifier",
    "TrainingReport",
    "OptimizationPool",
    "PoolPolicy",
    "DEFAULT_POOL",
    "AdaptiveSpMV",
    "OptimizationPlan",
    "OptimizedSpMV",
    "PlanCache",
    "PLAN_SCHEMA_VERSION",
    "CACHE_SCHEMA_VERSION",
    "matrix_fingerprint",
    "plan_cache_load_recoveries",
    "reset_plan_cache_load_recoveries",
    "OracleChoice",
    "oracle_search",
    "oracle_configurations",
    "GridPoint",
    "GridSearchResult",
    "tune_profile_thresholds",
    "AmortizationCase",
    "AmortizationSummary",
    "amortization_study",
]
