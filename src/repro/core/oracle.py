"""Oracle optimizer: the perfect selector (paper Fig. 7's upper line).

The oracle sweeps the space of configurations the adaptive optimizer
could ever produce — every subset of {compression, prefetching,
unrolling} jointly with every IMB strategy {none, decomposition,
auto-sched} — simulates each, and keeps the fastest. Its setup cost is
by definition not charged (it is an upper bound on achievable
performance, not a practical optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, baseline_kernel, merged_pool_kernel
from ..machine import MachineSpec, RunResult
from ..model import AnalyticModel

__all__ = ["OracleChoice", "oracle_search", "oracle_configurations"]

_JOINT = ("compression", "prefetching", "unrolling")
_IMB = (None, "decomposition", "auto-sched")


def oracle_configurations() -> list[tuple[str, ...]]:
    """All optimization combinations reachable by the optimizer."""
    configs: list[tuple[str, ...]] = []
    for r in range(len(_JOINT) + 1):
        for joint in combinations(_JOINT, r):
            for imb in _IMB:
                names = tuple(joint) + ((imb,) if imb else ())
                configs.append(names)
    return configs


@dataclass(frozen=True)
class OracleChoice:
    """Best configuration found by the exhaustive sweep."""

    optimizations: tuple[str, ...]
    result: RunResult
    baseline: RunResult
    n_evaluated: int

    @property
    def gflops(self) -> float:
        return self.result.gflops

    @property
    def speedup_over_baseline(self) -> float:
        return self.result.gflops / self.baseline.gflops


def oracle_search(
    csr: CSRMatrix,
    machine: MachineSpec,
    nthreads: int | None = None,
) -> OracleChoice:
    """Exhaustively find the best pool configuration for ``csr``."""
    model = AnalyticModel(machine, nthreads)
    base = baseline_kernel()
    baseline = model.run(base, base.preprocess(csr))

    best_names: tuple[str, ...] = ()
    best = baseline
    n = 0
    for names in oracle_configurations():
        kernel: ConfiguredSpMV = (
            merged_pool_kernel(names) if names else baseline_kernel()
        )
        result = model.run(kernel, kernel.preprocess(csr))
        n += 1
        if result.gflops > best.gflops:
            best = result
            best_names = names
    return OracleChoice(
        optimizations=best_names,
        result=best,
        baseline=baseline,
        n_evaluated=n,
    )
