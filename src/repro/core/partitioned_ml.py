"""Partitioned irregularity detection — the paper's future-work idea.

Section IV-C, on the rajat30 miss: "the benchmark that exposes
irregularity for the profile-guided classifier can actually detect the
irregularity in this matrix by looking at it in partitions, instead of
looking at it as a whole. We intend to extend our classification
approach to incorporate this idea in future work."

The failure mode: in matrices that mix a few huge compute-bound rows
with a large latency-bound remainder, the whole-matrix ``P_ML``
micro-benchmark is dominated by the dense rows, so the ML headroom of
the remainder never clears ``T_ML``. Splitting the row space into
nnz-balanced partitions and running the baseline/regularized pair *per
partition* exposes the latency-bound region.

:class:`PartitionedMLDetector` implements exactly that, and
:class:`ExtendedProfileClassifier` grafts it onto the stock
profile-guided classifier: the ML class is added when *either* the
whole-matrix rule fires *or* enough of the matrix's nonzeros live in
partitions whose local ML gain clears the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix
from ..kernels import RegularizedColindSpMV, baseline_kernel
from ..machine import MachineSpec
from ..model import AnalyticModel
from ..sched import balanced_nnz
from .bounds import PROFILING_ITERATIONS
from .classes import Bottleneck, ClassSet
from .profile_classifier import ProfileGuidedClassifier, ProfileThresholds

__all__ = [
    "PartitionGain",
    "PartitionedMLReport",
    "PartitionedMLDetector",
    "ExtendedProfileClassifier",
]


@dataclass(frozen=True)
class PartitionGain:
    """ML headroom of one row partition."""

    row_start: int
    row_stop: int
    nnz: int
    p_csr: float
    p_ml: float

    @property
    def gain(self) -> float:
        return self.p_ml / self.p_csr if self.p_csr > 0 else 1.0


@dataclass(frozen=True)
class PartitionedMLReport:
    """Outcome of the per-partition irregularity analysis."""

    partitions: tuple[PartitionGain, ...]
    ml_nnz_fraction: float       # nnz share of partitions above threshold
    whole_matrix_gain: float
    detected: bool

    @property
    def max_gain(self) -> float:
        return max((p.gain for p in self.partitions), default=1.0)


class PartitionedMLDetector:
    """Detects latency-bound *regions* hidden from the global P_ML bench.

    Parameters
    ----------
    machine
        Target platform.
    n_partitions
        Number of nnz-balanced row blocks to analyze.
    t_ml
        Per-partition gain threshold (same semantics as the
        classifier's ``T_ML``).
    min_nnz_fraction
        Minimum share of the matrix's nonzeros that must live in
        above-threshold partitions for the ML class to be added.
    """

    def __init__(
        self,
        machine: MachineSpec,
        n_partitions: int = 8,
        t_ml: float = 1.25,
        min_nnz_fraction: float = 0.25,
        nthreads: int | None = None,
    ):
        if n_partitions < 2:
            raise ValueError("n_partitions must be >= 2")
        if t_ml <= 1.0:
            raise ValueError("t_ml must exceed 1.0")
        if not 0.0 < min_nnz_fraction <= 1.0:
            raise ValueError("min_nnz_fraction must be in (0, 1]")
        self.machine = machine
        self.n_partitions = n_partitions
        self.t_ml = t_ml
        self.min_nnz_fraction = min_nnz_fraction
        self.nthreads = nthreads

    def analyze(self, csr: CSRMatrix) -> PartitionedMLReport:
        """Per-partition baseline vs regularized analysis."""
        if csr.nnz == 0:
            raise ValueError("cannot analyze an empty matrix")
        model = AnalyticModel(self.machine, self.nthreads)
        base = baseline_kernel()
        reg = RegularizedColindSpMV()

        whole = self._gain_of(model, base, reg, csr)

        # nnz-balanced row blocks (never splitting a row).
        bounds = balanced_nnz(csr, self.n_partitions).boundaries
        gains: list[PartitionGain] = []
        for i in range(self.n_partitions):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi <= lo:
                continue
            block = csr.submatrix_rows(lo, hi)
            if block.nnz == 0:
                continue
            r_csr = model.run(base, base.preprocess(block))
            r_ml = model.run(reg, block)
            gains.append(
                PartitionGain(
                    row_start=lo,
                    row_stop=hi,
                    nnz=block.nnz,
                    p_csr=r_csr.gflops,
                    p_ml=r_ml.gflops,
                )
            )

        ml_nnz = sum(p.nnz for p in gains if p.gain > self.t_ml)
        frac = ml_nnz / csr.nnz
        return PartitionedMLReport(
            partitions=tuple(gains),
            ml_nnz_fraction=frac,
            whole_matrix_gain=whole,
            detected=frac >= self.min_nnz_fraction,
        )

    def profiling_seconds(self, report: PartitionedMLReport,
                          iterations: int = PROFILING_ITERATIONS) -> float:
        """Extra profiling cost of the per-partition benchmarks."""
        seconds = 0.0
        for p in report.partitions:
            flops = 2.0 * p.nnz
            seconds += flops / (p.p_csr * 1e9) + flops / (p.p_ml * 1e9)
        return iterations * seconds

    @staticmethod
    def _gain_of(model, base, reg, csr) -> float:
        r_csr = model.run(base, base.preprocess(csr))
        r_ml = model.run(reg, csr)
        return r_ml.gflops / r_csr.gflops


class ExtendedProfileClassifier(ProfileGuidedClassifier):
    """Profile-guided classifier + partitioned irregularity detection.

    Drop-in replacement for :class:`ProfileGuidedClassifier` (works with
    :class:`~repro.core.optimizer.AdaptiveSpMV`); adds the ML class when
    the partitioned detector fires, and charges the extra profiling
    cost in :meth:`classify_with_cost`.
    """

    def __init__(
        self,
        machine: MachineSpec,
        thresholds: ProfileThresholds | None = None,
        nthreads: int | None = None,
        n_partitions: int = 8,
        min_nnz_fraction: float = 0.25,
    ):
        super().__init__(machine, thresholds, nthreads)
        self.detector = PartitionedMLDetector(
            machine,
            n_partitions=n_partitions,
            t_ml=self.thresholds.t_ml,
            min_nnz_fraction=min_nnz_fraction,
            nthreads=nthreads,
        )

    def classify(self, csr: CSRMatrix) -> ClassSet:
        classes = super().classify(csr)
        if Bottleneck.ML not in classes:
            report = self.detector.analyze(csr)
            if report.detected:
                classes = classes | {Bottleneck.ML}
        return frozenset(classes)

    def classify_with_cost(self, csr: CSRMatrix) -> tuple[ClassSet, float]:
        classes, cost = super().classify_with_cost(csr)
        if Bottleneck.ML not in classes:
            report = self.detector.analyze(csr)
            cost += self.detector.profiling_seconds(report)
            if report.detected:
                classes = frozenset(classes | {Bottleneck.ML})
        return classes, cost
