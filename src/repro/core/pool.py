"""Class -> optimization mapping (paper Table I) with IMB sub-selection.

========  =========================================================
class      optimization
========  =========================================================
MB         column-index delta compression + vectorization
ML         software prefetching on x
IMB        matrix decomposition *or* OpenMP ``auto`` scheduling,
           selected by structural features: highly uneven row
           lengths (``nnz_max`` vs ``nnz_avg``) -> decomposition;
           computational unevenness (``bw_sd``) -> auto scheduling
CMP        inner-loop unrolling + vectorization
========  =========================================================

When multiple bottlenecks are detected the corresponding optimizations
are applied jointly (Section III-E). The pool is a registry so that
optimizations can be replaced per class without touching the
classifiers — the plug-and-play property the paper argues for.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..formats import CSRMatrix
from ..kernels import ConfiguredSpMV, merged_pool_kernel
from ..matrices.features import FeatureVector, extract_features
from .classes import Bottleneck, ClassSet

__all__ = ["PoolPolicy", "OptimizationPool", "DEFAULT_POOL"]

#: ``nnz_max / max(nnz_avg, 1)`` above this means "highly uneven row
#: lengths": a single row blows the per-thread budget, so decomposition
#: (which a schedule cannot emulate) is selected.
_UNEVEN_ROW_RATIO = 32.0


@dataclass(frozen=True)
class PoolPolicy:
    """Tunable knobs of the optimization pool."""

    uneven_row_ratio: float = _UNEVEN_ROW_RATIO

    def __post_init__(self) -> None:
        if self.uneven_row_ratio <= 1.0:
            raise ValueError("uneven_row_ratio must exceed 1.0")


class OptimizationPool:
    """Maps detected bottleneck class sets to kernel configurations.

    The mapping is a plug-and-play registry: each class maps to an
    optimization *name* (resolved via :mod:`repro.kernels.registry`,
    which accepts user-registered optimizations) or to a callable
    ``f(features) -> name`` for feature-dependent sub-selection — the
    default IMB entry is exactly that. Overriding an entry swaps the
    optimization for that class without touching any classifier, the
    modularity property the paper argues for over format-selection
    autotuners (Section V).
    """

    def __init__(self, policy: PoolPolicy | None = None,
                 mapping: dict | None = None):
        self.policy = policy or PoolPolicy()
        self.mapping: dict[Bottleneck, object] = {
            Bottleneck.MB: "compression",
            Bottleneck.ML: "prefetching",
            Bottleneck.IMB: self.imb_strategy,
            Bottleneck.CMP: "unrolling",
        }
        if mapping:
            self.override(**{c.value: m for c, m in mapping.items()})

    def override(self, **entries) -> "OptimizationPool":
        """Replace per-class optimizations, e.g. ``override(MB="vec16")``.

        Values are optimization names or callables ``f(features) -> name``.
        Returns self for chaining.
        """
        for key, value in entries.items():
            try:
                bottleneck = Bottleneck(key)
            except ValueError:
                raise ValueError(f"unknown class {key!r}") from None
            if not (isinstance(value, str) or callable(value)):
                raise TypeError(
                    f"mapping for {key} must be a name or callable"
                )
            self.mapping[bottleneck] = value
        return self

    def content_signature(self) -> str:
        """Stable content signature of this pool's mapping and policy.

        The signature describes *what the pool maps to*, not which
        object holds the mapping: string entries contribute their name,
        callable entries their qualified function name. Two pools with
        identical mappings and policies share a signature in any
        process, which makes it safe as a plan-cache key component
        (including for caches persisted via ``PlanCache.save``) —
        unlike ``id(pool)``, which is unstable across processes and can
        collide after garbage collection reuses an address.

        The string format itself lives in :func:`repro.model.signature.
        mapping_signature` (shared with every other content-addressed
        artifact) and is pinned by ``tests/model/test_signature.py`` —
        persisted plan-cache keys embed it verbatim.
        """
        from ..model.signature import mapping_signature

        return mapping_signature(self.mapping, asdict(self.policy))

    def imb_strategy(self, features: FeatureVector) -> str:
        """Pick the IMB sub-optimization from structural features."""
        ratio = features.nnz_max / max(features.nnz_avg, 1.0)
        if ratio > self.policy.uneven_row_ratio:
            return "decomposition"
        return "auto-sched"

    def select(self, classes: ClassSet,
               features: FeatureVector | None = None,
               csr: CSRMatrix | None = None) -> tuple[str, ...]:
        """Pool optimization names for the detected ``classes``.

        ``features`` (or ``csr``, from which they are extracted) is
        required only when a feature-dependent mapping entry (by
        default: IMB) is triggered.
        """
        names: list[str] = []
        for bottleneck in (Bottleneck.MB, Bottleneck.ML, Bottleneck.IMB,
                           Bottleneck.CMP):
            if bottleneck not in classes:
                continue
            entry = self.mapping[bottleneck]
            if callable(entry):
                if features is None:
                    if csr is None:
                        raise ValueError(
                            f"{bottleneck.value} sub-selection needs "
                            "features or the matrix"
                        )
                    features = extract_features(csr)
                entry = entry(features)
            names.append(entry)
        return tuple(names)

    def kernel_for(self, classes: ClassSet,
                   features: FeatureVector | None = None,
                   csr: CSRMatrix | None = None) -> ConfiguredSpMV:
        """The jointly-configured kernel for the detected classes.

        An empty class set returns the baseline (not worth optimizing).
        """
        return merged_pool_kernel(self.select(classes, features, csr))


DEFAULT_POOL = OptimizationPool()
