"""Hyperparameter grid search (paper Section III-C).

The thresholds of the profile-guided classifier "have been tuned using
grid search, which simply performs an exhaustive search through the
specified hyperparameter space for a combination of values that
maximizes some performance metric. We choose to maximize the average
performance gain of the corresponding optimizations on a large set of
matrices."

:func:`tune_profile_thresholds` reproduces exactly that: for each
threshold combination, classify every corpus matrix, build the selected
kernel, simulate it, and score the geometric-mean speedup over the
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

from ..formats import CSRMatrix
from ..machine import MachineSpec
from ..model import AnalyticModel
from ..matrices.features import extract_features
from .bounds import PerformanceBounds, measure_bounds
from .pool import OptimizationPool
from .profile_classifier import ProfileThresholds, classify_from_bounds

__all__ = ["GridPoint", "GridSearchResult", "tune_profile_thresholds"]


@dataclass(frozen=True)
class GridPoint:
    """One evaluated threshold combination."""

    thresholds: ProfileThresholds
    mean_speedup: float          # geometric mean over the corpus
    n_classified: int            # matrices with a nonempty class set


@dataclass(frozen=True)
class GridSearchResult:
    """Full sweep outcome, best first."""

    points: tuple[GridPoint, ...]

    @property
    def best(self) -> GridPoint:
        return self.points[0]


def tune_profile_thresholds(
    matrices: Sequence[CSRMatrix],
    machine: MachineSpec,
    t_ml_grid: Sequence[float] = (1.05, 1.15, 1.25, 1.35, 1.5),
    t_imb_grid: Sequence[float] = (1.04, 1.14, 1.24, 1.34, 1.5),
    t_mb_grid: Sequence[float] = (0.75,),
    nthreads: int | None = None,
    pool: OptimizationPool | None = None,
) -> GridSearchResult:
    """Exhaustive threshold search maximizing mean optimization gain.

    Bounds are measured once per matrix (the expensive part) and reused
    across the whole grid; so are the per-configuration kernel
    simulations, memoized by selected-optimization tuple.
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("corpus is empty")
    pool = pool or OptimizationPool()
    model = AnalyticModel(machine, nthreads)

    bounds: list[PerformanceBounds] = [
        measure_bounds(m, machine, nthreads) for m in matrices
    ]
    features = [
        extract_features(m, llc_bytes=machine.llc_bytes,
                         line_elems=machine.line_elems)
        for m in matrices
    ]
    base_gflops = [b.p_csr for b in bounds]

    # Memoize kernel simulations per (matrix index, optimization tuple).
    memo: dict[tuple[int, tuple[str, ...]], float] = {}

    def speedup(i: int, opts: tuple[str, ...]) -> float:
        if not opts:
            return 1.0
        key = (i, opts)
        if key not in memo:
            from ..kernels import merged_pool_kernel

            kernel = merged_pool_kernel(opts)
            result = model.run(kernel, kernel.preprocess(matrices[i]))
            memo[key] = result.gflops / base_gflops[i]
        return memo[key]

    points: list[GridPoint] = []
    for t_ml, t_imb, t_mb in product(t_ml_grid, t_imb_grid, t_mb_grid):
        th = ProfileThresholds(t_ml=t_ml, t_imb=t_imb, t_mb=t_mb)
        gains = np.empty(len(matrices))
        n_classified = 0
        for i in range(len(matrices)):
            classes = classify_from_bounds(bounds[i], th)
            opts = pool.select(classes, features[i])
            if opts:
                n_classified += 1
            gains[i] = speedup(i, opts)
        points.append(
            GridPoint(
                thresholds=th,
                mean_speedup=float(np.exp(np.mean(np.log(gains)))),
                n_classified=n_classified,
            )
        )
    points.sort(key=lambda p: -p.mean_speedup)
    return GridSearchResult(points=tuple(points))
