"""Profile-guided (rule-based) classifier — paper Fig. 5.

Classification compares the per-class upper bounds against the measured
baseline::

    class <- {}
    if P_IMB / P_CSR > T_IMB:                       class += {IMB}
    if P_ML  / P_CSR > T_ML:                        class += {ML}
    if P_CSR ~ P_MB and P_MB < P_CMP < P_peak:      class += {MB}
    if P_MB > P_CMP or P_CMP > P_peak:              class += {CMP}

``T_ML`` and ``T_IMB`` are the paper's hyperparameters (1.25 and 1.24,
found by exhaustive grid search maximizing the average gain of the
resulting optimizations — reproduced in :mod:`repro.core.gridsearch`).
The paper renders "P_CSR ~ P_MB" without a number; we parameterize the
approximation as ``P_CSR / P_MB >= t_mb``.

An empty result is meaningful: the matrix is not worth optimizing with
any pool optimization (the feature classifier's "dummy" class).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats import CSRMatrix
from ..machine import MachineSpec
from ..model import AnalyticModel, PerformanceBounds, profiling_seconds
from .classes import Bottleneck, ClassSet

__all__ = ["ProfileThresholds", "ProfileGuidedClassifier", "classify_from_bounds"]


@dataclass(frozen=True)
class ProfileThresholds:
    """Hyperparameters of the rule-based classifier."""

    t_ml: float = 1.25      # paper's grid-searched value
    t_imb: float = 1.24     # paper's grid-searched value
    t_mb: float = 0.75      # "P_CSR ~ P_MB" tolerance (ratio >= t_mb)

    def __post_init__(self) -> None:
        if self.t_ml <= 1.0 or self.t_imb <= 1.0:
            raise ValueError("t_ml and t_imb must exceed 1.0")
        if not 0.0 < self.t_mb <= 1.0:
            raise ValueError("t_mb must be in (0, 1]")


def classify_from_bounds(
    bounds: PerformanceBounds,
    thresholds: ProfileThresholds = ProfileThresholds(),
) -> ClassSet:
    """Apply the Fig. 5 decision rules to measured bounds."""
    classes: set[Bottleneck] = set()
    if bounds.p_csr <= 0:
        raise ValueError("baseline performance must be positive")

    if bounds.p_imb / bounds.p_csr > thresholds.t_imb:
        classes.add(Bottleneck.IMB)
    if bounds.p_ml / bounds.p_csr > thresholds.t_ml:
        classes.add(Bottleneck.ML)
    if (
        bounds.p_csr / bounds.p_mb >= thresholds.t_mb
        and bounds.p_mb < bounds.p_cmp < bounds.p_peak
    ):
        classes.add(Bottleneck.MB)
    if bounds.p_mb > bounds.p_cmp or bounds.p_cmp > bounds.p_peak:
        classes.add(Bottleneck.CMP)
    return frozenset(classes)


class ProfileGuidedClassifier:
    """Classifies matrices by online profiling on a target machine.

    ``model`` is the :class:`~repro.model.base.CostModel` the bounds are
    derived from (default: the pure analytic model). Passing a
    :class:`~repro.model.CalibratedModel` makes the Fig. 5 rules decide
    from host-calibrated bounds — the same thresholds, better inputs.
    """

    def __init__(
        self,
        machine: MachineSpec,
        thresholds: ProfileThresholds | None = None,
        nthreads: int | None = None,
        model=None,
    ):
        self.machine = machine
        self.thresholds = thresholds or ProfileThresholds()
        self.nthreads = nthreads
        self.model = (
            model if model is not None
            else AnalyticModel(machine, nthreads)
        )

    def bounds(self, csr: CSRMatrix) -> PerformanceBounds:
        """The measured bounds this classifier decides from."""
        return self.model.bounds(csr)

    def classify(self, csr: CSRMatrix) -> ClassSet:
        """Detected bottleneck classes of ``csr`` on the target machine."""
        return classify_from_bounds(self.bounds(csr), self.thresholds)

    def classify_with_cost(self, csr: CSRMatrix) -> tuple[ClassSet, float]:
        """Classes plus the simulated online profiling cost (seconds)."""
        bounds = self.bounds(csr)
        classes = classify_from_bounds(bounds, self.thresholds)
        return classes, profiling_seconds(bounds, csr)
