"""Amortization analysis — paper Section IV-D and Table V.

In an iterative solver, an optimized SpMV pays off only after its setup
overhead is recovered:

    N_iters,min = t_pre / (t_MKL - t_optimizer)

where ``t_MKL`` is one MKL-CSR SpMV, ``t_optimizer`` one optimized SpMV
and ``t_pre`` the full optimizer overhead (classification + conversion
+ codegen, or the whole sweep for the trivial optimizers). Table V
reports the best/average/worst ``N_iters,min`` per optimizer over the
matrix suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines import InspectorExecutor, TrivialOptimizer, mkl_csr_kernel
from ..formats import CSRMatrix
from ..machine import MachineSpec
from ..model import AnalyticModel
from .feature_classifier import FeatureGuidedClassifier
from .optimizer import AdaptiveSpMV

__all__ = ["AmortizationCase", "AmortizationSummary", "amortization_study"]


@dataclass(frozen=True)
class AmortizationCase:
    """One (optimizer, matrix) amortization data point."""

    optimizer: str
    matrix: str
    t_pre: float
    t_mkl: float
    t_opt: float

    @property
    def n_iters_min(self) -> float:
        """Iterations to amortize; inf when the optimizer never wins."""
        gain = self.t_mkl - self.t_opt
        if gain <= 0:
            return math.inf
        return self.t_pre / gain


@dataclass(frozen=True)
class AmortizationSummary:
    """Table V row: best/average/worst over the beneficial matrices."""

    optimizer: str
    n_best: float
    n_avg: float
    n_worst: float
    n_beneficial: int
    n_total: int

    @classmethod
    def from_cases(cls, optimizer: str,
                   cases: Sequence[AmortizationCase]) -> "AmortizationSummary":
        finite = [c.n_iters_min for c in cases if math.isfinite(c.n_iters_min)]
        if not finite:
            return cls(optimizer, math.inf, math.inf, math.inf, 0, len(cases))
        return cls(
            optimizer=optimizer,
            n_best=float(np.min(finite)),
            n_avg=float(np.mean(finite)),
            n_worst=float(np.max(finite)),
            n_beneficial=len(finite),
            n_total=len(cases),
        )


def amortization_study(
    matrices: Sequence[tuple[str, CSRMatrix]],
    machine: MachineSpec,
    feature_classifier: FeatureGuidedClassifier | None = None,
    nthreads: int | None = None,
    include_inspector_executor: bool | None = None,
) -> dict[str, AmortizationSummary]:
    """Reproduce Table V for ``matrices`` on ``machine``.

    ``matrices`` is a sequence of ``(name, csr)``. A trained
    ``feature_classifier`` enables the feature-guided row. The
    Inspector-Executor row is skipped on KNC (not available there),
    matching the paper.
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("matrix suite is empty")
    model = AnalyticModel(machine, nthreads)
    mkl = mkl_csr_kernel()
    if include_inspector_executor is None:
        include_inspector_executor = machine.codename != "knc"

    cases: dict[str, list[AmortizationCase]] = {}

    def record(opt_name: str, mat_name: str, t_pre: float,
               t_mkl: float, t_opt: float) -> None:
        cases.setdefault(opt_name, []).append(
            AmortizationCase(opt_name, mat_name, t_pre, t_mkl, t_opt)
        )

    prof = AdaptiveSpMV(machine, classifier="profile", nthreads=nthreads)
    feat = (
        AdaptiveSpMV(machine, classifier=feature_classifier,
                     nthreads=nthreads)
        if feature_classifier is not None
        else None
    )

    for name, csr in matrices:
        t_mkl = model.run(mkl, mkl.preprocess(csr)).seconds

        for mode in ("single", "combined"):
            trivial = TrivialOptimizer(machine, mode=mode, nthreads=nthreads)
            res = trivial.optimize(csr)
            record(f"trivial-{mode}", name, res.sweep_seconds,
                   t_mkl, res.result.seconds)

        for label, optimizer in (
            ("profile-guided", prof),
            ("feature-guided", feat),
        ):
            if optimizer is None:
                continue
            operator = optimizer.optimize(csr)
            t_opt = operator.simulate(nthreads).seconds
            record(label, name, operator.plan.total_overhead_seconds,
                   t_mkl, t_opt)

        if include_inspector_executor:
            ie = InspectorExecutor(machine, nthreads)
            res = ie.optimize(csr)
            record("mkl-inspector-executor", name, res.inspection_seconds,
                   t_mkl, res.result.seconds)

    return {
        opt: AmortizationSummary.from_cases(opt, cs)
        for opt, cs in cases.items()
    }
