"""Per-class performance bounds (paper Section III-B) — compat surface.

The bound derivation itself lives on the cost-model protocol now
(:meth:`repro.model.AnalyticModel.bounds` /
:meth:`repro.model.CalibratedModel.bounds`); this module keeps the
long-standing ``measure_bounds(csr, machine)`` entry point and re-exports
:class:`~repro.model.base.PerformanceBounds` and
:func:`~repro.model.base.profiling_seconds` so existing imports keep
working. New code should take a :class:`~repro.model.base.CostModel`
and call ``model.bounds(csr)`` directly — that is what lets a
calibrated model reshape the classification thresholds' inputs.
"""

from __future__ import annotations

from ..formats import CSRMatrix
from ..machine import MachineSpec
from ..model import (
    PROFILING_ITERATIONS,
    AnalyticModel,
    PerformanceBounds,
    profiling_seconds,
)

__all__ = [
    "PerformanceBounds",
    "measure_bounds",
    "profiling_seconds",
    "PROFILING_ITERATIONS",
]


def measure_bounds(
    csr: CSRMatrix,
    machine: MachineSpec,
    nthreads: int | None = None,
    *,
    model=None,
) -> PerformanceBounds:
    """Run the bound-and-bottleneck analysis for ``csr`` on ``machine``.

    ``model`` overrides the default :class:`~repro.model.AnalyticModel`
    (e.g. with a calibrated one); ``machine``/``nthreads`` are ignored
    when it is given.
    """
    if model is None:
        model = AnalyticModel(machine, nthreads)
    return model.bounds(csr)
