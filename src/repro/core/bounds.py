"""Per-class performance bounds (paper Section III-B).

For every bottleneck class, an upper bound on CSR SpMV performance is
derived by *removing* the corresponding bottleneck:

* ``P_MB``   — analytic: minimum traffic at maximum sustainable
  bandwidth, ``2*NNZ / ((M_A_csr,min + M_xy,min) / B_max)``;
* ``P_ML``   — operational: the regularized-colind micro-kernel
  (irregular x accesses made regular);
* ``P_IMB``  — from the baseline run's *median* per-thread time
  (median, not mean, to discount outliers);
* ``P_CMP``  — operational: the unit-stride micro-kernel (indirection
  removed entirely) — a very loose bound;
* ``P_peak`` — format-independent: only the values array must move
  (all indexing compressed away).

Only ``P_ML`` and ``P_CMP`` need micro-benchmarks at runtime; ``P_MB``
and ``P_peak`` need just ``B_max``, and ``P_IMB`` falls out of the
baseline run — which is exactly the paper's accounting of profiling
cost, reproduced by :func:`profiling_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats import CSRMatrix
from ..machine import ExecutionEngine, MachineSpec, RunResult
from ..kernels import RegularizedColindSpMV, UnitStrideSpMV, baseline_kernel

__all__ = ["PerformanceBounds", "measure_bounds", "profiling_seconds"]

#: The paper times 64 SpMV iterations per micro-benchmark "to get valid
#: timing measurements" (Section IV-D).
PROFILING_ITERATIONS = 64


@dataclass(frozen=True)
class PerformanceBounds:
    """Baseline performance and per-class upper bounds (Gflop/s)."""

    p_csr: float
    p_mb: float
    p_ml: float
    p_imb: float
    p_cmp: float
    p_peak: float
    baseline: RunResult
    machine_codename: str

    def as_dict(self) -> dict[str, float]:
        return {
            "P_CSR": self.p_csr,
            "P_MB": self.p_mb,
            "P_ML": self.p_ml,
            "P_IMB": self.p_imb,
            "P_CMP": self.p_cmp,
            "P_peak": self.p_peak,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        vals = " ".join(f"{k}={v:.2f}" for k, v in self.as_dict().items())
        return f"<bounds [{self.machine_codename}] {vals} Gflop/s>"


def measure_bounds(
    csr: CSRMatrix,
    machine: MachineSpec,
    nthreads: int | None = None,
) -> PerformanceBounds:
    """Run the bound-and-bottleneck analysis for ``csr`` on ``machine``."""
    if csr.nnz == 0:
        raise ValueError("cannot analyze an empty matrix")
    engine = ExecutionEngine(machine, nthreads)
    flops = 2.0 * csr.nnz

    base = baseline_kernel()
    r_csr = engine.run(base, base.preprocess(csr))

    # Analytic bounds: compulsory traffic at peak sustainable bandwidth.
    m_xy = 8.0 * (csr.ncols + csr.nrows)
    ws = csr.total_nbytes() + m_xy
    bw = machine.bandwidth_for_working_set(ws)
    p_mb = flops / ((csr.total_nbytes() + m_xy) / bw) / 1e9
    p_peak = flops / ((csr.value_nbytes() + m_xy) / bw) / 1e9

    # Operational bounds: modified micro-kernels through the same engine.
    r_ml = engine.run(RegularizedColindSpMV(), csr)
    r_cmp = engine.run(UnitStrideSpMV(), csr)

    # Imbalance bound: median thread busy time of the baseline run,
    # plus the same launch overhead every run pays.
    t_median = (
        r_csr.median_thread_seconds
        + machine.parallel_overhead_seconds(r_csr.nthreads)
    )
    p_imb = flops / t_median / 1e9

    return PerformanceBounds(
        p_csr=r_csr.gflops,
        p_mb=p_mb,
        p_ml=r_ml.gflops,
        p_imb=p_imb,
        p_cmp=r_cmp.gflops,
        p_peak=p_peak,
        baseline=r_csr,
        machine_codename=machine.codename,
    )


def profiling_seconds(bounds: PerformanceBounds, csr: CSRMatrix,
                      iterations: int = PROFILING_ITERATIONS) -> float:
    """Online profiling cost of the profile-guided classifier.

    Three kernels are timed on the target matrix (baseline, P_ML and
    P_CMP micro-kernels), ``iterations`` runs each; ``P_MB``/``P_peak``
    are analytic and ``P_IMB`` is a by-product of the baseline run.
    """
    flops = 2.0 * csr.nnz
    per_iter = sum(
        flops / (p * 1e9) for p in (bounds.p_csr, bounds.p_ml, bounds.p_cmp)
    )
    return iterations * per_iter
