"""Workspace arenas: named, reusable scratch buffers for hot loops.

Every ``matvec``/``matmat``/``apply`` in the execution plane needs
short-lived intermediates (the ``values * x[colind]`` product array,
SELL-C-sigma gather buffers, decomposed-CSR partial sums, padded
x/y images of the BCSR kernel). Allocating them per call puts the
allocator and the page-fault handler on the steady-state path of every
solver iteration — exactly the repeat-execution regime the paper's
amortization analysis (Table V) prices. A :class:`Workspace` owns those
intermediates instead: buffers are keyed by ``(name, shape, dtype)``,
created once on first use (a *miss*) and handed back on every
subsequent request (a *hit*), so a repeat execution of the same plan
runs with zero new array allocations.

One arena is attached per reusable execution context: the plan-cache
entry behind an :class:`~repro.core.optimizer.OptimizedSpMV` (repeat
``optimize()`` calls of one plan share one arena), a
:class:`~repro.pipeline.runner.PipelineRunner`, and a
:class:`~repro.engine.guard.GuardedKernel`. The hit/miss/bytes-held
counters are exported into tracer spans (see docs/observability.md).

Buffers are handed out *dirty* — callers must overwrite or zero them.

Threading: the default arena is single-threaded — two threads asking
for the same ``(name, shape, dtype)`` would receive the *same* array
and corrupt each other's intermediates. The parallel execution plane
(:mod:`repro.parallel`) therefore uses ``Workspace(thread_local=True)``:
each OS thread that calls :meth:`buffer` gets its own private store of
buffers (and its own hit/miss counters), so pool workers reuse scratch
across calls without ever sharing an array. The accounting surface
(``hits``/``misses``/``bytes_held``/``counters``) aggregates over all
per-thread stores. See docs/parallelism.md.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Workspace"]


class _Store:
    """One thread's private buffer dictionary plus counters."""

    __slots__ = ("buffers", "hits", "misses")

    def __init__(self) -> None:
        self.buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0


class Workspace:
    """Arena of named, shape/dtype-keyed reusable NumPy buffers."""

    __slots__ = ("_shared", "_local", "_stores", "_lock")

    def __init__(self, *, thread_local: bool = False) -> None:
        self._lock = threading.Lock()
        if thread_local:
            self._shared: _Store | None = None
            self._local = threading.local()
            self._stores: list[_Store] = []
        else:
            self._shared = _Store()
            self._local = None
            self._stores = [self._shared]

    @property
    def thread_local(self) -> bool:
        """True when each calling thread owns a private buffer store."""
        return self._shared is None

    def _store(self) -> _Store:
        if self._shared is not None:
            return self._shared
        store = getattr(self._local, "store", None)
        if store is None:
            store = _Store()
            self._local.store = store
            with self._lock:
                self._stores.append(store)
        return store

    def buffer(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Return the buffer registered under ``(name, shape, dtype)``.

        The first request allocates (a *miss*); later requests return
        the same array (a *hit*). Contents are undefined on every
        request — treat the buffer as uninitialized scratch. In
        thread-local mode the lookup (and the returned array) is private
        to the calling thread.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        key = (name, shape, np.dtype(dtype).str)
        store = self._store()
        buf = store.buffers.get(key)
        if buf is None:
            store.misses += 1
            buf = np.empty(shape, dtype=dtype)
            store.buffers[key] = buf
        else:
            store.hits += 1
        return buf

    # -- accounting -----------------------------------------------------

    def _snapshot(self) -> list[_Store]:
        with self._lock:
            return list(self._stores)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._snapshot())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._snapshot())

    @property
    def nbuffers(self) -> int:
        return sum(len(s.buffers) for s in self._snapshot())

    @property
    def nstores(self) -> int:
        """Number of per-thread buffer stores created so far."""
        return len(self._snapshot())

    def bytes_held(self) -> int:
        """Total bytes currently owned by the arena (all threads)."""
        return int(
            sum(
                b.nbytes
                for s in self._snapshot()
                for b in s.buffers.values()
            )
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from an existing buffer."""
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def counters(self) -> dict:
        """JSON-ready counter snapshot (exported into tracer spans)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "hit_rate": float(self.hit_rate),
            "buffers": self.nbuffers,
            "bytes_held": self.bytes_held(),
            "thread_local": bool(self.thread_local),
            "stores": self.nstores,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (buffers are kept)."""
        for s in self._snapshot():
            s.hits = 0
            s.misses = 0

    def clear(self) -> None:
        """Drop every buffer (in every per-thread store) and reset the
        counters. Per-thread stores stay registered and are reused."""
        for s in self._snapshot():
            s.buffers.clear()
            s.hits = 0
            s.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = " thread-local" if self.thread_local else ""
        return (
            f"<Workspace{mode} {self.nbuffers} buffers "
            f"{self.bytes_held()} B hits={self.hits} "
            f"misses={self.misses}>"
        )
