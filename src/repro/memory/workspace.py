"""Workspace arenas: named, reusable scratch buffers for hot loops.

Every ``matvec``/``matmat``/``apply`` in the execution plane needs
short-lived intermediates (the ``values * x[colind]`` product array,
SELL-C-sigma gather buffers, decomposed-CSR partial sums, padded
x/y images of the BCSR kernel). Allocating them per call puts the
allocator and the page-fault handler on the steady-state path of every
solver iteration — exactly the repeat-execution regime the paper's
amortization analysis (Table V) prices. A :class:`Workspace` owns those
intermediates instead: buffers are keyed by ``(name, shape, dtype)``,
created once on first use (a *miss*) and handed back on every
subsequent request (a *hit*), so a repeat execution of the same plan
runs with zero new array allocations.

One arena is attached per reusable execution context: the plan-cache
entry behind an :class:`~repro.core.optimizer.OptimizedSpMV` (repeat
``optimize()`` calls of one plan share one arena), a
:class:`~repro.pipeline.runner.PipelineRunner`, and a
:class:`~repro.guard.guarded.GuardedKernel`. The hit/miss/bytes-held
counters are exported into tracer spans (see docs/observability.md).

Buffers are handed out *dirty* — callers must overwrite or zero them.
A workspace is not thread-safe; use one arena per thread.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Arena of named, shape/dtype-keyed reusable NumPy buffers."""

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def buffer(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Return the buffer registered under ``(name, shape, dtype)``.

        The first request allocates (a *miss*); later requests return
        the same array (a *hit*). Contents are undefined on every
        request — treat the buffer as uninitialized scratch.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        key = (name, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    # -- accounting -----------------------------------------------------

    @property
    def nbuffers(self) -> int:
        return len(self._buffers)

    def bytes_held(self) -> int:
        """Total bytes currently owned by the arena."""
        return int(sum(b.nbytes for b in self._buffers.values()))

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from an existing buffer."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """JSON-ready counter snapshot (exported into tracer spans)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "hit_rate": float(self.hit_rate),
            "buffers": self.nbuffers,
            "bytes_held": self.bytes_held(),
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (buffers are kept)."""
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop every buffer and reset the counters."""
        self._buffers.clear()
        self.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Workspace {self.nbuffers} buffers "
            f"{self.bytes_held()} B hits={self.hits} "
            f"misses={self.misses}>"
        )
