"""Memory plane: caller-owned buffer arenas for the zero-allocation
execution path (see docs/performance.md)."""

from .workspace import Workspace

__all__ = ["Workspace"]
