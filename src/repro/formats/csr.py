"""Compressed Sparse Row (CSR) format — the canonical format of this library.

The CSR layout follows the paper's Section II: a ``rowptr`` array of
``N + 1`` offsets, a ``colind`` array with the column of each nonzero
(32-bit, as in vendor libraries) and a ``values`` array (float64, the
paper uses double precision throughout).

Beyond storage, :class:`CSRMatrix` carries the vectorized row-statistics
helpers (row lengths, bandwidths, nonzero gaps) that both the feature
extractor (paper Table II) and the machine cost model are built on.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_shape_2d, ensure_1d
from .base import SparseFormat

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseFormat):
    """Sparse matrix in CSR format with canonical (sorted) column order.

    Parameters
    ----------
    rowptr : array_like of int, length ``nrows + 1``
        ``rowptr[i]:rowptr[i+1]`` delimits row ``i`` in the data arrays.
    colind : array_like of int
        Column index of every nonzero, strictly increasing within a row.
    values : array_like of float
        Value of every nonzero.
    shape : (int, int)
        Logical matrix dimensions.
    """

    format_name = "csr"

    __slots__ = ("rowptr", "colind", "values", "_shape")

    def __init__(self, rowptr, colind, values, shape):
        self._shape = check_shape_2d("shape", shape)
        rowptr = ensure_1d("rowptr", rowptr, dtype=np.int64)
        colind = ensure_1d("colind", colind, dtype=np.int32)
        values = ensure_1d("values", values, dtype=np.float64)
        nrows = self._shape[0]
        if rowptr.size != nrows + 1:
            raise ValueError(
                f"rowptr must have length nrows + 1 = {nrows + 1}, got {rowptr.size}"
            )
        if rowptr[0] != 0 or rowptr[-1] != colind.size:
            raise ValueError("rowptr must start at 0 and end at nnz")
        if np.any(np.diff(rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")
        if colind.size != values.size:
            raise ValueError("colind and values must have equal length")
        if colind.size:
            if colind.min() < 0 or colind.max() >= self._shape[1]:
                raise ValueError("column index out of bounds")
        self.rowptr = rowptr
        self.colind = colind
        self.values = values

    # -- SparseFormat interface ---------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def _validate_structure(self, report) -> None:
        from .base import (
            check_equal_length,
            check_index_bounds,
            check_pointer_array,
        )

        ptr_ok = check_pointer_array(
            report, "rowptr", self.rowptr,
            nseg=self.nrows, end=self.colind.size,
        )
        check_equal_length(report, "colind", self.colind,
                           "values", self.values)
        check_index_bounds(report, "colind", self.colind, self.ncols)
        if ptr_ok and self.colind.size:
            # Canonical CSR keeps columns strictly increasing per row;
            # duplicates or disorder silently break reduceat kernels.
            gaps = np.diff(self.colind.astype(np.int64))
            interior = np.ones(self.colind.size - 1, dtype=bool)
            starts = self.rowptr[1:-1]
            starts = starts[(starts > 0) & (starts <= interior.size)]
            interior[starts - 1] = False
            bad = np.flatnonzero(interior & (gaps <= 0))
            if bad.size:
                p = int(bad[0]) + 1
                report.add(
                    "colind-unsorted",
                    f"colind not strictly increasing within its row at "
                    f"position {p} (value {int(self.colind[p])})",
                )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A @ x`` via a segmented gather-multiply-reduce."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        products = self.values * x[self.colind]
        # Row-segmented sum: cumulative sum sampled at row boundaries.
        return _segment_sums(products, self.rowptr)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Compute ``Y = A @ X`` for a dense block of right-hand sides.

        One pass over the nonzeros regardless of ``k``: each gathered
        row of ``X`` serves all ``k`` vectors, so index traffic and the
        irregular x-access stream are amortized ``k``-fold (the SpMM
        optimization of Saule et al., arXiv:1302.1078). Work is tiled
        over row-aligned nnz blocks so the ``(nnz, k)`` product
        intermediate stays cache-resident.
        """
        X = self._check_matmat_input(X)
        return _segment_matmat(
            self.colind, self.values, self.rowptr, X, self.nrows
        )

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A.T @ x`` without materializing the transpose.

        One scatter-add pass over the nonzeros; used by normal-equation
        solvers and PageRank-style rank propagation, where building an
        explicit transpose would double the memory footprint.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.nrows,):
            raise ValueError(f"x must have shape ({self.nrows},), got {x.shape}")
        y = np.zeros(self.ncols, dtype=np.float64)
        np.add.at(y, self.colind, self.values * x[self.row_ids_per_nnz()])
        return y

    def matvec_compensated(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` with Neumaier-compensated row sums.

        For ill-conditioned rows (large cancelling entries) the plain
        kernel's summation error grows with row length; this variant
        carries a per-row compensation term. Costs ~3x the flops — use
        it for verification and accuracy-critical final residuals, not
        in inner loops.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        products = self.values * x[self.colind]
        y = np.zeros(self.nrows, dtype=np.float64)
        comp = np.zeros(self.nrows, dtype=np.float64)
        # Sequential Neumaier accumulation per row, vectorized across
        # rows by processing the k-th element of every row in lockstep.
        max_len = int(self.row_nnz().max(initial=0))
        for k in range(max_len):
            starts = self.rowptr[:-1] + k
            active = starts < self.rowptr[1:]
            r = np.flatnonzero(active)
            if r.size == 0:
                break
            idx = starts[r]
            v = products[idx]
            t = y[r] + v
            big = np.abs(y[r]) >= np.abs(v)
            comp[r] += np.where(big, (y[r] - t) + v, (v - t) + y[r])
            y[r] = t
        return y + comp

    def index_nbytes(self) -> int:
        return int(self.rowptr.nbytes + self.colind.nbytes)

    def value_nbytes(self) -> int:
        return int(self.values.nbytes)

    # -- row statistics (consumed by features + machine model) --------

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros in every row (``nnz_i`` in the paper)."""
        return np.diff(self.rowptr)

    def row_bandwidths(self) -> np.ndarray:
        """Column span ``bw_i`` of every row.

        Defined as in the paper: the column distance between the first
        and the last nonzero element of the row. Rows with fewer than
        two nonzeros have bandwidth 0.
        """
        bw = np.zeros(self.nrows, dtype=np.int64)
        nnz = self.row_nnz()
        nonempty = nnz > 0
        starts = self.rowptr[:-1][nonempty]
        ends = self.rowptr[1:][nonempty] - 1
        bw[nonempty] = self.colind[ends].astype(np.int64) - self.colind[starts]
        return bw

    def column_gaps(self) -> np.ndarray:
        """Gap to the previous nonzero in the same row, per nonzero.

        The first nonzero of every row gets gap 0 (no predecessor).
        Used by the ``clustering`` and ``misses`` features and by the
        cache model of the x-vector access stream.
        """
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        gaps = np.empty(self.nnz, dtype=np.int64)
        gaps[0] = 0
        gaps[1:] = np.diff(self.colind.astype(np.int64))
        starts = self.rowptr[:-1]
        starts = starts[(starts < self.nnz)]
        gaps[starts] = 0
        return gaps

    def row_ids_per_nnz(self) -> np.ndarray:
        """Row index of every stored nonzero (inverse of rowptr)."""
        return np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_nnz()
        )

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(colind, values)`` views of row ``i``."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.colind[lo:hi], self.values[lo:hi]

    def submatrix_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Extract rows ``start:stop`` as a new CSR matrix (same ncols)."""
        if not (0 <= start <= stop <= self.nrows):
            raise ValueError(f"invalid row range [{start}, {stop})")
        lo, hi = int(self.rowptr[start]), int(self.rowptr[stop])
        return CSRMatrix(
            self.rowptr[start : stop + 1] - lo,
            self.colind[lo:hi].copy(),
            self.values[lo:hi].copy(),
            (stop - start, self.ncols),
        )

    # -- constructors & conversions -----------------------------------

    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Convert a canonical :class:`~repro.formats.coo.COOMatrix`."""
        nrows = coo.shape[0]
        rowptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(rowptr, coo.rows + 1, 1)
        np.cumsum(rowptr, out=rowptr)
        return cls(rowptr, coo.cols.astype(np.int32), coo.values, coo.shape)

    @classmethod
    def from_arrays(cls, rows, cols, values, shape) -> "CSRMatrix":
        """Build directly from unsorted triplets (via COO canonicalization)."""
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix(rows, cols, values, shape))

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        csr = mat.tocsr()
        csr.sort_indices()
        csr.sum_duplicates()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.colind, self.rowptr), shape=self._shape
        )

    def to_coo(self):
        from .coo import COOMatrix

        return COOMatrix(
            self.row_ids_per_nnz(),
            self.colind.astype(np.int64),
            self.values,
            self._shape,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self._shape, dtype=np.float64)
        out[self.row_ids_per_nnz(), self.colind] = self.values
        return out

    def transpose(self) -> "CSRMatrix":
        """Return A^T in CSR form (i.e. this matrix in CSC, re-sorted)."""
        coo = self.to_coo()
        from .coo import COOMatrix

        flipped = COOMatrix(
            coo.cols, coo.rows, coo.values, (self.ncols, self.nrows)
        )
        return CSRMatrix.from_coo(flipped)


def _segment_sums(data: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Sum ``data`` within segments delimited by ``boundaries``.

    ``boundaries`` has ``nseg + 1`` entries; segment ``i`` covers
    ``data[boundaries[i]:boundaries[i+1]]``. Empty segments sum to 0.
    Uses ``np.add.reduceat`` on the non-empty segments, which avoids the
    cancellation error a global cumulative sum would accumulate.
    """
    out = np.zeros(boundaries.size - 1, dtype=np.float64)
    if data.size == 0:
        return out
    lengths = np.diff(boundaries)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(data, boundaries[nonempty])
    return out


#: Element budget for the (tile_nnz, k) product intermediate of the
#: batched kernel: 2^15 float64 = 256 KiB, sized so the gathered
#: product tile stays L2-resident (measured optimum on this suite;
#: larger tiles spill and lose the batching win on banded matrices).
_TILE_ELEMS = 32768


def _segment_matmat(colind: np.ndarray, values: np.ndarray,
                    segptr: np.ndarray, X: np.ndarray,
                    nseg: int) -> np.ndarray:
    """Batched segmented gather-multiply-reduce: ``out[i] = sum over
    segment i of values[j] * X[colind[j]]``.

    ``segptr`` has ``nseg + 1`` entries delimiting the segments (rows).
    The 2-D gather ``X[colind]`` and per-segment ``np.add.reduceat``
    along axis 0 run in row-aligned nnz tiles so the ``(tile, k)``
    product buffer stays within ``_TILE_ELEMS`` elements; small
    problems take a single-shot path with no tiling overhead.
    """
    k = X.shape[1]
    out = np.zeros((nseg, k), dtype=np.float64)
    nnz = values.size
    if nnz == 0 or k == 0:
        return out
    lengths = np.diff(segptr)
    # Empty segments must be masked out of reduceat (it would otherwise
    # grab the *next* segment's leading element); hoist the check so the
    # common all-rows-populated case skips the mask work per tile.
    has_empty = bool(lengths.min(initial=1) == 0)
    tile = max(_TILE_ELEMS // max(k, 1), 1)
    if nnz <= tile:
        products = X[colind]
        products *= values[:, None]
        if not has_empty:
            L = int(lengths[0])
            if nnz == nseg * L and bool((lengths == L).all()):
                # Uniform-width rows: a dense axis-1 sum beats the
                # per-segment reduceat loop.
                return products.reshape(nseg, L, k).sum(axis=1)
            return np.add.reduceat(products, segptr[:-1], axis=0)
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(
                products, segptr[nonempty], axis=0
            )
        return out
    # Tiled path: advance whole segments at a time so reduceat never
    # straddles a tile boundary; a segment longer than the tile budget
    # is taken alone (the buffer is sized for the longest segment).
    buf_rows = int(min(nnz, max(tile, lengths.max(initial=0))))
    buf = np.empty((buf_rows, k), dtype=np.float64)
    s0 = 0
    while s0 < nseg:
        s1 = int(np.searchsorted(segptr, segptr[s0] + tile, side="right")) - 1
        s1 = min(max(s1, s0 + 1), nseg)
        lo, hi = int(segptr[s0]), int(segptr[s1])
        products = buf[: hi - lo]
        np.take(X, colind[lo:hi], axis=0, out=products)
        products *= values[lo:hi, None]
        if not has_empty:
            L = int(lengths[s0])
            if hi - lo == (s1 - s0) * L and bool(
                (lengths[s0:s1] == L).all()
            ):
                products.reshape(s1 - s0, L, k).sum(
                    axis=1, out=out[s0:s1]
                )
            else:
                np.add.reduceat(
                    products, segptr[s0:s1] - lo, axis=0, out=out[s0:s1]
                )
        else:
            nonempty = np.flatnonzero(lengths[s0:s1] > 0)
            if nonempty.size:
                out[s0 + nonempty] = np.add.reduceat(
                    products, segptr[s0:s1][nonempty] - lo, axis=0
                )
        s0 = s1
    return out
