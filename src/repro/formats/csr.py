"""Compressed Sparse Row (CSR) format — the canonical format of this library.

The CSR layout follows the paper's Section II: a ``rowptr`` array of
``N + 1`` offsets, a ``colind`` array with the column of each nonzero
(32-bit, as in vendor libraries) and a ``values`` array (float64, the
paper uses double precision throughout).

Beyond storage, :class:`CSRMatrix` carries the vectorized row-statistics
helpers (row lengths, bandwidths, nonzero gaps) that both the feature
extractor (paper Table II) and the machine cost model are built on.

The numeric kernels participate in the zero-allocation execution plane
(docs/performance.md): every kernel accepts ``out=`` and ``workspace=``
so repeat executions write into caller-owned buffers, and the
structure-derived iteration plans (segment boundaries, the CSC
permutation for ``rmatvec``, the length-sorted row order of the
compensated kernel) are computed once and cached on the matrix —
structural arrays are immutable by contract, only ``values`` may be
swapped/mutated by plan rebuilds.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_shape_2d, ensure_1d
from .base import (
    SparseFormat,
    check_out_buffer,
    contiguous_operand,
    gather_index,
)

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseFormat):
    """Sparse matrix in CSR format with canonical (sorted) column order.

    Parameters
    ----------
    rowptr : array_like of int, length ``nrows + 1``
        ``rowptr[i]:rowptr[i+1]`` delimits row ``i`` in the data arrays.
    colind : array_like of int
        Column index of every nonzero, strictly increasing within a row.
    values : array_like of float
        Value of every nonzero.
    shape : (int, int)
        Logical matrix dimensions.
    trusted : bool
        When True, skip the O(nnz) structural checks. Only for arrays
        produced by our own converters and plan rebuilds, where the
        invariants hold by construction; untrusted inputs go through
        the default path (or ``validate()``).
    """

    format_name = "csr"

    __slots__ = ("rowptr", "colind", "values", "_shape",
                 "_row_ids", "_seg", "_csc", "_comp", "_ipcol")

    def __init__(self, rowptr, colind, values, shape, *, trusted=False):
        self._shape = check_shape_2d("shape", shape)
        rowptr = ensure_1d("rowptr", rowptr, dtype=np.int64)
        colind = ensure_1d("colind", colind, dtype=np.int32)
        values = ensure_1d("values", values, dtype=np.float64)
        if not trusted:
            nrows = self._shape[0]
            if rowptr.size != nrows + 1:
                raise ValueError(
                    f"rowptr must have length nrows + 1 = {nrows + 1}, "
                    f"got {rowptr.size}"
                )
            if rowptr[0] != 0 or rowptr[-1] != colind.size:
                raise ValueError("rowptr must start at 0 and end at nnz")
            if np.any(np.diff(rowptr) < 0):
                raise ValueError("rowptr must be non-decreasing")
            if colind.size != values.size:
                raise ValueError("colind and values must have equal length")
            if colind.size:
                if colind.min() < 0 or colind.max() >= self._shape[1]:
                    raise ValueError("column index out of bounds")
        self.rowptr = rowptr
        self.colind = colind
        self.values = values
        # Structure-derived plan caches (lazy; values-independent).
        self._row_ids = None
        self._seg = None
        self._csc = None
        self._comp = None
        self._ipcol = None

    # -- SparseFormat interface ---------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def _validate_structure(self, report) -> None:
        from .base import (
            check_equal_length,
            check_index_bounds,
            check_pointer_array,
        )

        ptr_ok = check_pointer_array(
            report, "rowptr", self.rowptr,
            nseg=self.nrows, end=self.colind.size,
        )
        check_equal_length(report, "colind", self.colind,
                           "values", self.values)
        check_index_bounds(report, "colind", self.colind, self.ncols)
        if ptr_ok and self.colind.size:
            # Canonical CSR keeps columns strictly increasing per row;
            # duplicates or disorder silently break reduceat kernels.
            gaps = np.diff(self.colind.astype(np.int64))
            interior = np.ones(self.colind.size - 1, dtype=bool)
            starts = self.rowptr[1:-1]
            starts = starts[(starts > 0) & (starts <= interior.size)]
            interior[starts - 1] = False
            bad = np.flatnonzero(interior & (gaps <= 0))
            if bad.size:
                p = int(bad[0]) + 1
                report.add(
                    "colind-unsorted",
                    f"colind not strictly increasing within its row at "
                    f"position {p} (value {int(self.colind[p])})",
                )

    # -- cached iteration plans ---------------------------------------

    def _segment_plan(self) -> "_SegmentPlan":
        """Row-segment reduction plan for rowptr (cached)."""
        if self._seg is None:
            self._seg = _SegmentPlan(self.rowptr)
        return self._seg

    def _gather_cols(self) -> np.ndarray:
        """``colind`` as contiguous ``intp`` (cached): the gather
        kernels would otherwise re-cast the compressed int32 indices on
        every apply, allocating an nnz-sized temporary each call."""
        if self._ipcol is None:
            self._ipcol = gather_index(self.colind)
        return self._ipcol

    def _csc_plan(self):
        """Cached column-major traversal: ``(perm, rows_csc, colplan)``.

        ``perm`` is the stable sort of ``colind`` (so nonzeros of one
        column keep their original relative order — this is what makes
        the reduceat path bit-identical to the ``np.add.at`` scatter),
        ``rows_csc`` is the row id of every nonzero in that order, and
        ``colplan`` is the column-segment reduction plan.
        """
        if self._csc is None:
            # intp index arrays: keeps the per-call gathers cast-free.
            perm = gather_index(np.argsort(self.colind, kind="stable"))
            rows_csc = gather_index(self.row_ids_per_nnz()[perm])
            colptr = np.zeros(self.ncols + 1, dtype=np.int64)
            counts = np.bincount(self.colind, minlength=self.ncols)
            np.cumsum(counts, out=colptr[1:])
            self._csc = (perm, rows_csc, _SegmentPlan(colptr))
        return self._csc

    def _comp_plan(self):
        """Cached lockstep plan for the compensated kernel:
        ``(order, sorted_nnz, base, maxlen)`` with rows sorted by
        ascending length so each step-``k`` slice is a contiguous
        suffix of ``order``.
        """
        if self._comp is None:
            row_nnz = self.row_nnz()
            order = np.argsort(row_nnz, kind="stable")
            sorted_nnz = row_nnz[order]
            base = self.rowptr[:-1][order]
            maxlen = int(sorted_nnz[-1]) if sorted_nnz.size else 0
            self._comp = (order, sorted_nnz, base, maxlen)
        return self._comp

    # -- numeric kernels ----------------------------------------------

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Compute ``y = A @ x`` via a segmented gather-multiply-reduce.

        With ``out=`` the result is written into the caller-owned
        buffer; with ``workspace=`` the gathered-products intermediate
        comes from the arena, so a repeat call allocates nothing.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        if out is None:
            y = np.empty(self.nrows, dtype=np.float64)
        else:
            y = check_out_buffer(out, (self.nrows,), operand=x)
        x = contiguous_operand(x, workspace, "csr.matvec.x")
        if workspace is not None:
            products = workspace.buffer("csr.matvec.products", self.nnz)
        else:
            products = np.empty(self.nnz, dtype=np.float64)
        # mode="clip" (indices are validated at construction): the
        # default mode="raise" forces np.take through a buffered path
        # that allocates an nnz-sized temporary on every call.
        np.take(x, self._gather_cols(), out=products, mode="clip")
        np.multiply(products, self.values, out=products)
        _segment_sums_into(products, self._segment_plan(), y,
                           workspace, "csr.matvec")
        return y

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Compute ``Y = A @ X`` for a dense block of right-hand sides.

        One pass over the nonzeros regardless of ``k``: each gathered
        row of ``X`` serves all ``k`` vectors, so index traffic and the
        irregular x-access stream are amortized ``k``-fold (the SpMM
        optimization of Saule et al., arXiv:1302.1078). Work is tiled
        over row-aligned nnz blocks so the ``(nnz, k)`` product
        intermediate stays cache-resident.
        """
        X = self._check_matmat_input(X)
        if out is not None:
            out = check_out_buffer(out, (self.nrows, X.shape[1]),
                                   operand=X)
        return _segment_matmat(
            self._gather_cols(), self.values, self.rowptr, X,
            self.nrows, out=out, workspace=workspace,
            plan=self._segment_plan(), name="csr",
        )

    def rmatvec(self, x: np.ndarray, out: np.ndarray | None = None,
                workspace=None) -> np.ndarray:
        """Compute ``y = A.T @ x`` without materializing the transpose.

        Traverses the nonzeros in cached column-major (CSC) order and
        reduces each column segment with ``np.add.reduceat`` — an order
        of magnitude faster than the equivalent ``np.add.at`` scatter,
        and bit-identical to it because the stable permutation keeps
        each column's contributions in original order. Used by
        normal-equation solvers and PageRank-style rank propagation,
        where an explicit transpose would double the memory footprint.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.nrows,):
            raise ValueError(f"x must have shape ({self.nrows},), got {x.shape}")
        if out is None:
            y = np.empty(self.ncols, dtype=np.float64)
        else:
            y = check_out_buffer(out, (self.ncols,), operand=x)
        x = contiguous_operand(x, workspace, "csr.rmatvec.x")
        perm, rows_csc, colplan = self._csc_plan()
        if workspace is not None:
            products = workspace.buffer("csr.rmatvec.products", self.nnz)
            vals = workspace.buffer("csr.rmatvec.values", self.nnz)
        else:
            products = np.empty(self.nnz, dtype=np.float64)
            vals = np.empty(self.nnz, dtype=np.float64)
        np.take(x, rows_csc, out=products, mode="clip")
        np.take(self.values, perm, out=vals, mode="clip")
        np.multiply(products, vals, out=products)
        _segment_sums_into(products, colplan, y, workspace, "csr.rmatvec")
        return y

    def matvec_compensated(self, x: np.ndarray,
                           out: np.ndarray | None = None,
                           workspace=None) -> np.ndarray:
        """``A @ x`` with Neumaier-compensated row sums.

        For ill-conditioned rows (large cancelling entries) the plain
        kernel's summation error grows with row length; this variant
        carries a per-row compensation term. Costs ~3x the flops — use
        it for verification and accuracy-critical final residuals, not
        in inner loops.

        The lockstep sweep (k-th element of every row per step) runs
        off a cached length-sorted row order, so the per-step active
        set is a contiguous suffix view and all per-step work happens
        in preallocated scratch slices — no per-iteration mask rebuild
        or allocation.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        n = self.nrows
        x = contiguous_operand(x, workspace, "csr.comp.x")
        order, sorted_nnz, base, maxlen = self._comp_plan()

        def scratch(name, size, dtype=np.float64):
            if workspace is not None:
                return workspace.buffer("csr.comp." + name, size, dtype)
            return np.empty(size, dtype=dtype)

        products = scratch("products", self.nnz)
        np.take(x, self._gather_cols(), out=products, mode="clip")
        np.multiply(products, self.values, out=products)
        if out is None:
            y = np.zeros(n, dtype=np.float64)
        else:
            y = check_out_buffer(out, (n,), operand=x)
            y[:] = 0.0
        comp = scratch("comp", n)
        comp[:] = 0.0
        # Rows still active at step k are those with nnz > k: the
        # suffix order[searchsorted(sorted_nnz, k, "right"):]. Size the
        # scratch for step 0 (every nonempty row); later steps use
        # leading slices.
        m0 = n - int(np.searchsorted(sorted_nnz, 0, side="right"))
        idx = scratch("idx", m0, np.intp)
        v = scratch("v", m0)
        yr = scratch("yr", m0)
        t = scratch("t", m0)
        a = scratch("a", m0)
        b = scratch("b", m0)
        notbig = scratch("notbig", m0, bool)
        for k in range(maxlen):
            s = int(np.searchsorted(sorted_nnz, k, side="right"))
            r = order[s:]
            m = r.size
            if m == 0:
                break
            ik = idx[:m]
            np.add(base[s:], k, out=ik)
            vk = v[:m]
            np.take(products, ik, out=vk, mode="clip")
            yk = yr[:m]
            np.take(y, r, out=yk, mode="clip")
            tk = t[:m]
            np.add(yk, vk, out=tk)
            # Neumaier branch select: |y| >= |v| keeps (y - t) + v,
            # otherwise (v - t) + y. Computed branch-free in scratch.
            ak = a[:m]
            bk = b[:m]
            nb = notbig[:m]
            np.abs(yk, out=ak)
            np.abs(vk, out=bk)
            np.less(ak, bk, out=nb)           # nb = not (|y| >= |v|)
            np.subtract(yk, tk, out=ak)
            np.add(ak, vk, out=ak)            # (y - t) + v
            np.subtract(vk, tk, out=bk)
            np.add(bk, yk, out=bk)            # (v - t) + y
            np.copyto(ak, bk, where=nb)
            np.take(comp, r, out=yk, mode="clip")  # yk no longer needed
            np.add(yk, ak, out=yk)
            comp[r] = yk
            y[r] = tk
        np.add(y, comp, out=y)
        return y

    def index_nbytes(self) -> int:
        return int(self.rowptr.nbytes + self.colind.nbytes)

    def value_nbytes(self) -> int:
        return int(self.values.nbytes)

    # -- row statistics (consumed by features + machine model) --------

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros in every row (``nnz_i`` in the paper)."""
        return np.diff(self.rowptr)

    def row_bandwidths(self) -> np.ndarray:
        """Column span ``bw_i`` of every row.

        Defined as in the paper: the column distance between the first
        and the last nonzero element of the row. Rows with fewer than
        two nonzeros have bandwidth 0.
        """
        bw = np.zeros(self.nrows, dtype=np.int64)
        nnz = self.row_nnz()
        nonempty = nnz > 0
        starts = self.rowptr[:-1][nonempty]
        ends = self.rowptr[1:][nonempty] - 1
        bw[nonempty] = self.colind[ends].astype(np.int64) - self.colind[starts]
        return bw

    def column_gaps(self) -> np.ndarray:
        """Gap to the previous nonzero in the same row, per nonzero.

        The first nonzero of every row gets gap 0 (no predecessor).
        Used by the ``clustering`` and ``misses`` features and by the
        cache model of the x-vector access stream.
        """
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        gaps = np.empty(self.nnz, dtype=np.int64)
        gaps[0] = 0
        gaps[1:] = np.diff(self.colind.astype(np.int64))
        starts = self.rowptr[:-1]
        starts = starts[(starts < self.nnz)]
        gaps[starts] = 0
        return gaps

    def row_ids_per_nnz(self) -> np.ndarray:
        """Row index of every stored nonzero (inverse of rowptr, cached)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.nrows, dtype=np.int64), self.row_nnz()
            )
        return self._row_ids

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(colind, values)`` views of row ``i``."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.colind[lo:hi], self.values[lo:hi]

    def submatrix_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Extract rows ``start:stop`` as a new CSR matrix (same ncols)."""
        if not (0 <= start <= stop <= self.nrows):
            raise ValueError(f"invalid row range [{start}, {stop})")
        lo, hi = int(self.rowptr[start]), int(self.rowptr[stop])
        return CSRMatrix(
            self.rowptr[start : stop + 1] - lo,
            self.colind[lo:hi].copy(),
            self.values[lo:hi].copy(),
            (stop - start, self.ncols),
            trusted=True,
        )

    # -- constructors & conversions -----------------------------------

    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Convert a canonical :class:`~repro.formats.coo.COOMatrix`."""
        nrows = coo.shape[0]
        rowptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(rowptr, coo.rows + 1, 1)
        np.cumsum(rowptr, out=rowptr)
        return cls(rowptr, coo.cols.astype(np.int32), coo.values, coo.shape,
                   trusted=True)

    @classmethod
    def from_arrays(cls, rows, cols, values, shape) -> "CSRMatrix":
        """Build directly from unsorted triplets (via COO canonicalization)."""
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix(rows, cols, values, shape))

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        csr = mat.tocsr()
        csr.sort_indices()
        csr.sum_duplicates()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.colind, self.rowptr), shape=self._shape
        )

    def to_coo(self):
        from .coo import COOMatrix

        return COOMatrix(
            self.row_ids_per_nnz(),
            self.colind.astype(np.int64),
            self.values,
            self._shape,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self._shape, dtype=np.float64)
        out[self.row_ids_per_nnz(), self.colind] = self.values
        return out

    def transpose(self) -> "CSRMatrix":
        """Return A^T in CSR form (i.e. this matrix in CSC, re-sorted)."""
        coo = self.to_coo()
        from .coo import COOMatrix

        flipped = COOMatrix(
            coo.cols, coo.rows, coo.values, (self.ncols, self.nrows)
        )
        return CSRMatrix.from_coo(flipped)


class _SegmentPlan:
    """Precomputed reduction plan over a CSR-style offset array.

    Hoists the per-call ``np.diff``/``np.flatnonzero``/uniformity work
    of the segmented kernels into a one-time, structure-only object
    that formats cache next to their pointer arrays.
    """

    __slots__ = ("nseg", "lengths", "has_empty", "nonempty", "starts",
                 "maxlen", "uniform")

    def __init__(self, segptr: np.ndarray):
        self.nseg = int(segptr.size - 1)
        lengths = np.diff(segptr)
        self.lengths = lengths
        self.maxlen = int(lengths.max(initial=0))
        self.has_empty = bool(lengths.min(initial=1) == 0)
        if self.has_empty:
            self.nonempty = np.flatnonzero(lengths > 0)
            self.starts = segptr[self.nonempty]
            self.uniform = 0
        else:
            self.nonempty = None
            self.starts = segptr[:-1]
            total = int(segptr[-1])
            L = int(lengths[0]) if self.nseg else 0
            uniform = (
                self.nseg > 0
                and total == self.nseg * L
                and bool((lengths == L).all())
            )
            self.uniform = L if uniform else 0


def _segment_sums_into(data: np.ndarray, plan: _SegmentPlan,
                       out: np.ndarray, workspace=None,
                       name: str = "seg") -> np.ndarray:
    """Sum ``data`` within ``plan``'s segments, writing into ``out``.

    Empty segments sum to 0. The dense (no-empty-segment) path reduces
    straight into ``out``; the sparse path reduces the nonempty
    segments into a workspace buffer (or a fresh temporary) and
    scatters.
    """
    if not plan.has_empty:
        if plan.nseg:
            np.add.reduceat(data, plan.starts, out=out)
        return out
    out[:] = 0.0
    if plan.nonempty.size:
        if workspace is not None:
            tmp = workspace.buffer(name + ".nonempty", plan.nonempty.size)
            np.add.reduceat(data, plan.starts, out=tmp)
            out[plan.nonempty] = tmp
        else:
            out[plan.nonempty] = np.add.reduceat(data, plan.starts)
    return out


def _segment_sums(data: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Sum ``data`` within segments delimited by ``boundaries``.

    ``boundaries`` has ``nseg + 1`` entries; segment ``i`` covers
    ``data[boundaries[i]:boundaries[i+1]]``. Empty segments sum to 0.
    Uses ``np.add.reduceat`` on the non-empty segments, which avoids the
    cancellation error a global cumulative sum would accumulate.
    """
    out = np.zeros(boundaries.size - 1, dtype=np.float64)
    if data.size == 0:
        return out
    lengths = np.diff(boundaries)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(data, boundaries[nonempty])
    return out


#: Element budget for the (tile_nnz, k) product intermediate of the
#: batched kernel: 2^15 float64 = 256 KiB, sized so the gathered
#: product tile stays L2-resident (measured optimum on this suite;
#: larger tiles spill and lose the batching win on banded matrices).
_TILE_ELEMS = 32768


def _segment_matmat(colind: np.ndarray, values: np.ndarray,
                    segptr: np.ndarray, X: np.ndarray,
                    nseg: int, out: np.ndarray | None = None,
                    workspace=None, plan: _SegmentPlan | None = None,
                    name: str = "seg") -> np.ndarray:
    """Batched segmented gather-multiply-reduce: ``out[i] = sum over
    segment i of values[j] * X[colind[j]]``.

    ``segptr`` has ``nseg + 1`` entries delimiting the segments (rows).
    The 2-D gather ``X[colind]`` and per-segment ``np.add.reduceat``
    along axis 0 run in row-aligned nnz tiles so the ``(tile, k)``
    product buffer stays within ``_TILE_ELEMS`` elements; small
    problems take a single-shot path with no tiling overhead.

    ``out`` (validated by the caller) receives the result in place;
    ``workspace`` supplies the product-tile buffers; ``plan`` supplies
    a cached :class:`_SegmentPlan` so nothing structure-derived is
    recomputed per call.
    """
    k = X.shape[1]
    nnz = values.size
    if plan is None:
        plan = _SegmentPlan(segptr)
    if out is None:
        out = np.empty((nseg, k), dtype=np.float64)
    if nnz == 0 or k == 0:
        out[:] = 0.0
        return out
    vcol = values[:, None]
    tile = max(_TILE_ELEMS // max(k, 1), 1)
    if nnz <= tile:
        if workspace is not None:
            products = workspace.buffer(name + ".matmat.products", (nnz, k))
            np.take(X, colind, axis=0, out=products, mode="clip")
        else:
            products = X[colind]
        np.multiply(products, vcol, out=products)
        if not plan.has_empty:
            if plan.uniform:
                # Uniform-width rows: a dense axis-1 sum beats the
                # per-segment reduceat loop.
                products.reshape(nseg, plan.uniform, k).sum(axis=1, out=out)
            else:
                np.add.reduceat(products, plan.starts, axis=0, out=out)
            return out
        out[:] = 0.0
        if plan.nonempty.size:
            out[plan.nonempty] = np.add.reduceat(
                products, plan.starts, axis=0
            )
        return out
    # Tiled path: advance whole segments at a time so reduceat never
    # straddles a tile boundary; a segment longer than the tile budget
    # is taken alone (the buffer is sized for the longest segment).
    lengths = plan.lengths
    buf_rows = int(min(nnz, max(tile, plan.maxlen)))
    if workspace is not None:
        buf = workspace.buffer(name + ".matmat.tile", (buf_rows, k))
    else:
        buf = np.empty((buf_rows, k), dtype=np.float64)
    has_empty = plan.has_empty
    s0 = 0
    while s0 < nseg:
        s1 = int(np.searchsorted(segptr, segptr[s0] + tile, side="right")) - 1
        s1 = min(max(s1, s0 + 1), nseg)
        lo, hi = int(segptr[s0]), int(segptr[s1])
        products = buf[: hi - lo]
        np.take(X, colind[lo:hi], axis=0, out=products, mode="clip")
        np.multiply(products, vcol[lo:hi], out=products)
        if not has_empty:
            L = int(lengths[s0])
            if hi - lo == (s1 - s0) * L and bool(
                (lengths[s0:s1] == L).all()
            ):
                products.reshape(s1 - s0, L, k).sum(
                    axis=1, out=out[s0:s1]
                )
            else:
                np.add.reduceat(
                    products, segptr[s0:s1] - lo, axis=0, out=out[s0:s1]
                )
        else:
            nonempty = np.flatnonzero(lengths[s0:s1] > 0)
            if nonempty.size:
                out[s0 + nonempty] = np.add.reduceat(
                    products, segptr[s0:s1][nonempty] - lo, axis=0
                )
            empty = np.flatnonzero(lengths[s0:s1] == 0)
            out[s0 + empty] = 0.0
        s0 = s1
    return out
