"""Format conversion dispatcher.

A tiny registry so that optimizers can request "convert this CSR matrix
into format X" by name, mirroring the plug-and-play structure of the
optimization pool (paper Section III).
"""

from __future__ import annotations

from typing import Any, Callable

from .csr import CSRMatrix
from .decomposed import DecomposedCSR
from .delta import DeltaCSR

__all__ = ["convert", "available_formats", "register_format"]

_CONVERTERS: dict[str, Callable[..., Any]] = {}


def register_format(name: str, converter: Callable[..., Any]) -> None:
    """Register ``converter(csr, **params)`` under ``name``."""
    if not callable(converter):
        raise TypeError("converter must be callable")
    _CONVERTERS[name] = converter


def available_formats() -> tuple[str, ...]:
    """Names accepted by :func:`convert`."""
    return tuple(sorted(_CONVERTERS))


def convert(csr: CSRMatrix, name: str, **params: Any):
    """Convert ``csr`` to the named format.

    Parameters are forwarded to the format constructor, e.g.
    ``convert(csr, "delta-csr", width=8)``.
    """
    try:
        converter = _CONVERTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown format {name!r}; available: {available_formats()}"
        ) from None
    return converter(csr, **params)


register_format("csr", lambda csr: csr)
register_format("coo", lambda csr: csr.to_coo())
register_format("delta-csr", DeltaCSR.from_csr)
register_format("bcsr", __import__("repro.formats.bcsr", fromlist=["BCSRMatrix"]).BCSRMatrix.from_csr)
register_format("sell-c-sigma", __import__("repro.formats.sellcs", fromlist=["SellCSigmaMatrix"]).SellCSigmaMatrix.from_csr)
register_format("decomposed-csr", DecomposedCSR.from_csr)
