"""Coordinate (COO) sparse format.

COO is the interchange format of this library: matrix generators and the
Matrix Market reader produce COO, which is then converted to
:class:`repro.formats.csr.CSRMatrix` (the canonical execution format) or
to one of the optimized formats.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_shape_2d, ensure_1d
from .base import SparseFormat, check_out_buffer, contiguous_operand

__all__ = ["COOMatrix"]


class COOMatrix(SparseFormat):
    """Sparse matrix in coordinate format.

    Parameters
    ----------
    rows, cols : array_like of int
        Row/column index of each stored element.
    values : array_like of float
        Value of each stored element.
    shape : (int, int)
        Logical matrix dimensions.
    sum_duplicates : bool
        When True (default), duplicate ``(row, col)`` entries are summed
        during canonicalization, mirroring ``scipy.sparse`` semantics.
    trusted : bool
        When True, the triplets are taken as already canonical (sorted
        by ``(row, col)``, duplicates merged, indices in bounds) and the
        O(nnz log nnz) canonicalization pass is skipped. Only for arrays
        produced by our own converters.
    """

    format_name = "coo"

    __slots__ = ("rows", "cols", "values", "_shape", "_seg")

    def __init__(self, rows, cols, values, shape, *,
                 sum_duplicates: bool = True, trusted: bool = False):
        self._shape = check_shape_2d("shape", shape)
        rows = ensure_1d("rows", rows, dtype=np.int64)
        cols = ensure_1d("cols", cols, dtype=np.int64)
        values = ensure_1d("values", values, dtype=np.float64)
        if not trusted:
            if not (rows.size == cols.size == values.size):
                raise ValueError(
                    "rows, cols and values must have equal length, got "
                    f"{rows.size}, {cols.size}, {values.size}"
                )
            if rows.size:
                if rows.min(initial=0) < 0 or rows.max(initial=0) >= self._shape[0]:
                    raise ValueError("row index out of bounds")
                if cols.min(initial=0) < 0 or cols.max(initial=0) >= self._shape[1]:
                    raise ValueError("column index out of bounds")
            # Canonicalize: sort by (row, col), optionally merging
            # duplicates.
            order = np.lexsort((cols, rows))
            rows, cols, values = rows[order], cols[order], values[order]
            if sum_duplicates and rows.size:
                key_change = np.empty(rows.size, dtype=bool)
                key_change[0] = True
                key_change[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
                group = np.cumsum(key_change) - 1
                ngroups = int(group[-1]) + 1
                merged = np.zeros(ngroups, dtype=np.float64)
                np.add.at(merged, group, values)
                rows = rows[key_change]
                cols = cols[key_change]
                values = merged
        self.rows = rows
        self.cols = cols
        self.values = values
        self._seg = None

    # -- SparseFormat interface ---------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def _validate_structure(self, report) -> None:
        from .base import check_equal_length, check_index_bounds

        check_equal_length(report, "rows", self.rows, "cols", self.cols)
        check_equal_length(report, "rows", self.rows,
                           "values", self.values)
        rows_ok = check_index_bounds(report, "rows", self.rows, self.nrows)
        cols_ok = check_index_bounds(report, "cols", self.cols, self.ncols)
        if (rows_ok and cols_ok and self.rows.size > 1
                and self.rows.size == self.cols.size):
            # Canonical COO is sorted by (row, col) with duplicates
            # merged; the batched kernel builds row segments from runs.
            key = self.rows * np.int64(self.ncols) + self.cols
            bad = np.flatnonzero(np.diff(key) <= 0)
            if bad.size:
                p = int(bad[0]) + 1
                report.add(
                    "entries-unsorted",
                    f"entries not in strict (row, col) order at position "
                    f"{p} (row {int(self.rows[p])}, col {int(self.cols[p])})",
                )

    def _row_segments(self):
        """Cached row-run segmentation of the canonical entry order:
        ``(seg_rows, segptr, plan)`` where run ``s`` covers entries
        ``segptr[s]:segptr[s+1]`` of output row ``seg_rows[s]``."""
        if self._seg is None:
            from .csr import _SegmentPlan

            change = np.empty(self.rows.size, dtype=bool)
            if self.rows.size:
                change[0] = True
                change[1:] = np.diff(self.rows) != 0
            starts = np.flatnonzero(change)
            segptr = np.append(starts, self.rows.size)
            self._seg = (self.rows[starts], segptr, _SegmentPlan(segptr))
        return self._seg

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """``y = A @ x`` via the cached row-run segmentation.

        Canonical sorting makes each output row a contiguous run, so
        the same reduceat reduction as CSR applies — no ``np.add.at``
        scatter is needed.
        """
        from .csr import _segment_sums_into

        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        if out is None:
            y = np.zeros(self.nrows, dtype=np.float64)
        else:
            y = check_out_buffer(out, (self.nrows,), operand=x)
            y[:] = 0.0
        if self.values.size == 0:
            return y
        x = contiguous_operand(x, workspace, "coo.x")
        seg_rows, segptr, plan = self._row_segments()
        if workspace is not None:
            products = workspace.buffer("coo.products", self.values.size)
            sums = workspace.buffer("coo.sums", seg_rows.size)
        else:
            products = np.empty(self.values.size, dtype=np.float64)
            sums = np.empty(seg_rows.size, dtype=np.float64)
        np.take(x, self.cols, out=products, mode="clip")
        np.multiply(products, self.values, out=products)
        _segment_sums_into(products, plan, sums, workspace, "coo")
        y[seg_rows] = sums
        return y

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Batched ``Y = A @ X``: one gather pass serves all columns.

        Entries are canonically sorted by ``(row, col)``, so runs of
        equal row index form contiguous segments and the CSR segmented
        batched kernel applies directly — no scatter-add over ``k``-wide
        rows is needed.
        """
        from .csr import _segment_matmat

        X = self._check_matmat_input(X)
        k = X.shape[1]
        if out is None:
            Y = np.zeros((self.nrows, k), dtype=np.float64)
        else:
            Y = check_out_buffer(out, (self.nrows, k), operand=X)
            Y[:] = 0.0
        if self.values.size == 0 or k == 0:
            return Y
        seg_rows, segptr, plan = self._row_segments()
        if workspace is not None:
            sums = workspace.buffer("coo.matmat.sums", (seg_rows.size, k))
        else:
            sums = np.empty((seg_rows.size, k), dtype=np.float64)
        _segment_matmat(
            self.cols, self.values, segptr, X, seg_rows.size,
            out=sums, workspace=workspace, plan=plan, name="coo",
        )
        Y[seg_rows] = sums
        return Y

    def index_nbytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes)

    def value_nbytes(self) -> int:
        return int(self.values.nbytes)

    # -- constructors & conversions -----------------------------------

    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build from a dense 2-D array, keeping exact nonzeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Build from any scipy.sparse matrix."""
        coo = mat.tocoo()
        return cls(coo.row, coo.col, coo.data, coo.shape)

    def to_scipy(self):
        """Return a ``scipy.sparse.coo_matrix`` copy."""
        import scipy.sparse as sp

        return sp.coo_matrix(
            (self.values, (self.rows, self.cols)), shape=self._shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array (small matrices only)."""
        out = np.zeros(self._shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out
