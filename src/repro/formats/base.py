"""Abstract interface shared by all sparse-matrix storage formats.

Every format in :mod:`repro.formats` exposes

* the logical matrix (``shape``, ``nnz``),
* a numeric plane: :meth:`SparseFormat.matvec` computes ``y = A @ x``
  and :meth:`SparseFormat.matmat` computes the batched ``Y = A @ X``
  for a dense block of right-hand sides, both with vectorized NumPy,
  used for correctness and by the solvers, and
* a storage-accounting plane: :meth:`SparseFormat.index_nbytes` /
  :meth:`SparseFormat.value_nbytes`, used by the machine model to derive
  memory traffic and by the paper's per-class performance bounds
  (``M_{A_format,min} = S_format`` in Section III-B).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["SparseFormat"]


class SparseFormat(abc.ABC):
    """Base class for sparse matrix storage formats."""

    #: short identifier used in reports, e.g. ``"csr"``.
    format_name: str = "abstract"

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, cols)`` of the matrix."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored (explicit) nonzero elements."""

    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x`` as a new float64 vector."""

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Return ``A @ X`` for a dense block of right-hand sides.

        ``X`` has shape ``(ncols, k)``; the result has shape
        ``(nrows, k)`` and its column ``j`` equals ``matvec(X[:, j])``.
        Concrete formats override this with a single-pass vectorized
        kernel that amortizes index traffic over all ``k`` vectors (the
        SpMM optimization of Saule et al.); this fallback stacks
        ``matvec`` calls and is only used by formats without a native
        batched kernel.
        """
        X = self._check_matmat_input(X)
        out = np.empty((self.nrows, X.shape[1]), dtype=np.float64)
        for j in range(X.shape[1]):
            out[:, j] = self.matvec(X[:, j])
        return out

    def _check_matmat_input(self, X: np.ndarray) -> np.ndarray:
        """Validate and normalize a multi-RHS operand to C-contiguous
        float64 of shape ``(ncols, k)``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.ncols:
            raise ValueError(
                f"X must have shape ({self.ncols}, k), got {X.shape}"
            )
        return X

    @abc.abstractmethod
    def index_nbytes(self) -> int:
        """Bytes used by indexing structures (rowptr/colind/deltas/...)."""

    @abc.abstractmethod
    def value_nbytes(self) -> int:
        """Bytes used by the stored numeric values."""

    def total_nbytes(self) -> int:
        """Total bytes of the matrix representation."""
        return self.index_nbytes() + self.value_nbytes()

    def matvec_into(self, x: np.ndarray, y: np.ndarray,
                    alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
        """General SpMV update ``y = alpha * A @ x + beta * y`` in place.

        Matches the vendor-library (``mkl_dcsrmv``) calling convention
        the paper benchmarks against. ``y`` is updated and returned.
        """
        y = np.asarray(y)
        if y.shape != (self.nrows,):
            raise ValueError(f"y must have shape ({self.nrows},), got {y.shape}")
        if y.dtype != np.float64:
            raise TypeError("y must be float64 (updated in place)")
        if beta == 0.0:
            y[:] = 0.0
        elif beta != 1.0:
            y *= beta
        product = self.matvec(x)
        if alpha == 1.0:
            y += product
        elif alpha != 0.0:
            y += alpha * product
        return y

    # -- conveniences -------------------------------------------------

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r, c = self.shape
        return (
            f"<{type(self).__name__} {r}x{c} nnz={self.nnz} "
            f"bytes={self.total_nbytes()}>"
        )
