"""Abstract interface shared by all sparse-matrix storage formats.

Every format in :mod:`repro.formats` exposes

* the logical matrix (``shape``, ``nnz``),
* a numeric plane: :meth:`SparseFormat.matvec` computes ``y = A @ x``
  and :meth:`SparseFormat.matmat` computes the batched ``Y = A @ X``
  for a dense block of right-hand sides, both with vectorized NumPy,
  used for correctness and by the solvers, and
* a storage-accounting plane: :meth:`SparseFormat.index_nbytes` /
  :meth:`SparseFormat.value_nbytes`, used by the machine model to derive
  memory traffic and by the paper's per-class performance bounds
  (``M_{A_format,min} = S_format`` in Section III-B).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ValidationReport

__all__ = ["SparseFormat", "check_out_buffer", "contiguous_operand",
           "gather_index", "trust_out_buffer"]


class _TrustedOut(np.ndarray):
    """Marker view over an already-validated ``out=`` buffer.

    The engine boundary (:mod:`repro.engine`) validates a caller-owned
    output buffer exactly once with :func:`check_out_buffer` and then
    passes a ``_TrustedOut`` *view* of it inward; every nested format
    and kernel recognizes the marker and skips re-validation. Slices of
    a trusted view stay trusted (NumPy preserves the subclass), which
    is what lets the parallel plane hand disjoint per-chunk ``out``
    slices to workers without one validation per chunk per apply.

    The view shares memory with the original array — writes through it
    land in the caller's buffer.
    """

    __slots__ = ()


def trust_out_buffer(out: np.ndarray) -> np.ndarray:
    """Mark an already-validated buffer as trusted for nested calls.

    Only call this *after* :func:`check_out_buffer` accepted ``out``
    (including the aliasing check against the operand): the returned
    view short-circuits every downstream ``check_out_buffer``.
    """
    if isinstance(out, _TrustedOut):
        return out
    return out.view(_TrustedOut)


def gather_index(indices: np.ndarray) -> np.ndarray:
    """Return ``indices`` as a C-contiguous ``np.intp`` array.

    ``np.take`` casts any other index dtype to ``intp`` on every call,
    allocating an index-sized temporary each time — formats cache the
    result of this function next to their (compressed, e.g. int32)
    index arrays so steady-state gathers are allocation-free. When
    ``indices`` is already contiguous ``intp`` the input is returned
    unchanged (no copy).
    """
    return np.ascontiguousarray(indices, dtype=np.intp)


def contiguous_operand(x: np.ndarray, workspace,
                       name: str) -> np.ndarray:
    """Return ``x`` as a C-contiguous operand for the gather kernels.

    ``np.take`` silently copies a non-contiguous source (e.g. a column
    view of a multi-RHS block) into a fresh buffer on every call. A
    contiguous ``x`` passes through untouched; otherwise the copy goes
    through the workspace arena when one is supplied, keeping the
    steady state allocation-free. Values are unchanged either way, so
    results stay bit-identical.
    """
    if x.flags.c_contiguous:
        return x
    if workspace is None:
        return np.ascontiguousarray(x)
    buf = workspace.buffer(name, x.shape)
    np.copyto(buf, x)
    return buf


def check_out_buffer(out: np.ndarray, shape: tuple, *,
                     operand: np.ndarray | None = None,
                     name: str = "out") -> np.ndarray:
    """Validate a caller-owned output buffer for the ``out=`` plane.

    The buffer must be a C-contiguous float64 ndarray of exactly
    ``shape``, and must not alias ``operand`` (the kernel writes
    ``out`` while still reading the operand, so overlap would corrupt
    the result). The alias check uses :func:`numpy.may_share_memory`
    (cheap bounds test): disjoint slices of one base array are
    conservatively rejected.

    A :func:`trust_out_buffer` view passes through unchecked: it was
    already validated once at the engine boundary, and re-validating on
    every nested format/kernel call (the old double-validation path)
    only burned cycles in the hot loop.
    """
    if isinstance(out, _TrustedOut):
        return out
    if not isinstance(out, np.ndarray):
        raise TypeError(
            f"{name} must be a numpy.ndarray, got {type(out).__name__}"
        )
    if out.dtype != np.float64:
        raise TypeError(f"{name} must be float64, got {out.dtype}")
    if out.shape != tuple(shape):
        raise ValueError(
            f"{name} must have shape {tuple(shape)}, got {out.shape}"
        )
    if not out.flags.c_contiguous:
        raise ValueError(f"{name} must be C-contiguous")
    if not out.flags.writeable:
        raise ValueError(f"{name} must be writeable")
    if operand is not None and np.may_share_memory(out, operand):
        raise ValueError(
            f"{name} must not share memory with the input operand"
        )
    return out


class SparseFormat(abc.ABC):
    """Base class for sparse matrix storage formats."""

    #: short identifier used in reports, e.g. ``"csr"``.
    format_name: str = "abstract"

    # -- validation plane ---------------------------------------------

    def validate(self, *, strict: bool = True,
                 check_values: bool = True) -> ValidationReport:
        """Check the structural invariants (and optionally value
        finiteness) of this format's stored arrays.

        Constructors reject many malformed inputs up front, but arrays
        can be corrupted after construction (in-place mutation, buggy
        converters, fault injection); ``validate`` re-checks every
        invariant the kernels rely on.

        With ``strict=True`` (the default) a
        :class:`~repro.errors.FormatValidationError` is raised listing
        every detected issue; with ``strict=False`` (permissive mode)
        the full :class:`~repro.errors.ValidationReport` is returned and
        never raises — callers inspect ``report.ok``.
        """
        report = ValidationReport(self.format_name)
        self._validate_structure(report)
        if check_values:
            self._validate_values(report)
        if strict:
            report.raise_if_failed()
        return report

    def _validate_structure(self, report: ValidationReport) -> None:
        """Format-specific structural checks (overridden per format)."""

    def _value_arrays(self):
        """``(name, array)`` pairs of numeric payloads to finiteness-check."""
        values = getattr(self, "values", None)
        return [("values", values)] if values is not None else []

    def _validate_values(self, report: ValidationReport) -> None:
        for name, arr in self._value_arrays():
            bad = ~np.isfinite(arr)
            if bad.any():
                flat = np.flatnonzero(bad.ravel())
                report.add(
                    "non-finite-values",
                    f"{name} contains {flat.size} non-finite entrie(s) "
                    f"(first at flat index {int(flat[0])})",
                )

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, cols)`` of the matrix."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored (explicit) nonzero elements."""

    @abc.abstractmethod
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Return ``A @ x`` as a float64 vector.

        ``out`` (validated with :func:`check_out_buffer`) receives the
        result in place; ``workspace`` (a
        :class:`repro.memory.Workspace`) supplies the kernel's scratch
        intermediates. Both default to None, which allocates as before.
        """

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Return ``A @ X`` for a dense block of right-hand sides.

        ``X`` has shape ``(ncols, k)``; the result has shape
        ``(nrows, k)`` and its column ``j`` equals ``matvec(X[:, j])``.
        Concrete formats override this with a single-pass vectorized
        kernel that amortizes index traffic over all ``k`` vectors (the
        SpMM optimization of Saule et al.); this fallback stacks
        ``matvec`` calls and is only used by formats without a native
        batched kernel.
        """
        X = self._check_matmat_input(X)
        if out is None:
            out = np.empty((self.nrows, X.shape[1]), dtype=np.float64)
        else:
            out = check_out_buffer(out, (self.nrows, X.shape[1]),
                                   operand=X)
        for j in range(X.shape[1]):
            out[:, j] = self.matvec(X[:, j], workspace=workspace)
        return out

    def _check_matmat_input(self, X: np.ndarray) -> np.ndarray:
        """Validate and normalize a multi-RHS operand to C-contiguous
        float64 of shape ``(ncols, k)``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.ncols:
            raise ValueError(
                f"X must have shape ({self.ncols}, k), got {X.shape}"
            )
        return X

    @abc.abstractmethod
    def index_nbytes(self) -> int:
        """Bytes used by indexing structures (rowptr/colind/deltas/...)."""

    @abc.abstractmethod
    def value_nbytes(self) -> int:
        """Bytes used by the stored numeric values."""

    def total_nbytes(self) -> int:
        """Total bytes of the matrix representation."""
        return self.index_nbytes() + self.value_nbytes()

    def matvec_into(self, x: np.ndarray, y: np.ndarray,
                    alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
        """General SpMV update ``y = alpha * A @ x + beta * y`` in place.

        Matches the vendor-library (``mkl_dcsrmv``) calling convention
        the paper benchmarks against. ``y`` is updated and returned.
        """
        y = np.asarray(y)
        if y.shape != (self.nrows,):
            raise ValueError(f"y must have shape ({self.nrows},), got {y.shape}")
        if y.dtype != np.float64:
            raise TypeError("y must be float64 (updated in place)")
        if beta == 0.0:
            y[:] = 0.0
        elif beta != 1.0:
            y *= beta
        product = self.matvec(x)
        if alpha == 1.0:
            y += product
        elif alpha != 0.0:
            y += alpha * product
        return y

    # -- conveniences -------------------------------------------------

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r, c = self.shape
        return (
            f"<{type(self).__name__} {r}x{c} nnz={self.nnz} "
            f"bytes={self.total_nbytes()}>"
        )


# -- shared validation checks (used by the concrete formats) ----------


def check_pointer_array(report: ValidationReport, name: str,
                        ptr: np.ndarray, *, nseg: int, end: int) -> bool:
    """Validate a CSR-style offset array: length ``nseg + 1``, starts at
    0, non-decreasing, ends exactly at ``end``.

    Returns True when the pointer is safe to *index with* (monotone and
    in range), so callers can gate derived checks on it.
    """
    ok = True
    if ptr.ndim != 1 or ptr.size != nseg + 1:
        report.add(
            f"{name}-length",
            f"{name} must have {nseg + 1} entries, got shape {ptr.shape}",
        )
        return False
    if ptr[0] != 0:
        report.add(f"{name}-start", f"{name}[0] must be 0, got {int(ptr[0])}")
        ok = False
    drops = np.flatnonzero(np.diff(ptr) < 0)
    if drops.size:
        p = int(drops[0])
        report.add(
            f"{name}-nonmonotonic",
            f"{name} decreases at position {p + 1} "
            f"({int(ptr[p])} -> {int(ptr[p + 1])})",
        )
        ok = False
    if ptr[-1] != end:
        report.add(
            f"{name}-end",
            f"{name}[-1] must equal {end}, got {int(ptr[-1])}",
        )
        ok = False
    return ok


def check_index_bounds(report: ValidationReport, name: str,
                       idx: np.ndarray, upper: int) -> bool:
    """Validate that every index lies in ``[0, upper)``."""
    if idx.size == 0:
        return True
    ok = True
    lo = int(idx.min())
    hi = int(idx.max())
    if lo < 0:
        p = int(np.flatnonzero(idx < 0)[0])
        report.add(
            f"{name}-negative",
            f"{name}[{p}] = {int(idx[p])} is negative",
        )
        ok = False
    if hi >= upper:
        p = int(np.flatnonzero(idx >= upper)[0])
        report.add(
            f"{name}-out-of-bounds",
            f"{name}[{p}] = {int(idx[p])} exceeds bound {upper - 1}",
        )
        ok = False
    return ok


def check_equal_length(report: ValidationReport, name_a: str,
                       a: np.ndarray, name_b: str, b: np.ndarray) -> bool:
    """Validate that two parallel arrays have equal length."""
    if a.shape[0] != b.shape[0]:
        report.add(
            "length-mismatch",
            f"{name_a} ({a.shape[0]}) and {name_b} ({b.shape[0]}) "
            f"must have equal length",
        )
        return False
    return True
