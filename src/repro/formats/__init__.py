"""Sparse matrix storage formats (system S1 in DESIGN.md).

Canonical execution format is :class:`CSRMatrix`; :class:`COOMatrix`
is the interchange format; :class:`DeltaCSR` and :class:`DecomposedCSR`
are the optimized layouts used by the MB- and IMB-class optimizations.
"""

from .base import SparseFormat
from .bcsr import BCSRMatrix
from .convert import available_formats, convert, register_format
from .coo import COOMatrix
from .csr import CSRMatrix
from .decomposed import DecomposedCSR, default_long_row_threshold
from .delta import DeltaCSR, choose_delta_width
from .sellcs import SellCSigmaMatrix

__all__ = [
    "SparseFormat",
    "BCSRMatrix",
    "SellCSigmaMatrix",
    "COOMatrix",
    "CSRMatrix",
    "DeltaCSR",
    "DecomposedCSR",
    "choose_delta_width",
    "default_long_row_threshold",
    "convert",
    "available_formats",
    "register_format",
]
