"""SELL-C-sigma — the sliced, sorted ELLPACK format.

Kreutzer et al., "A unified sparse matrix data format for efficient
general sparse matrix-vector multiplication on modern processors with
wide SIMD units" (SIAM J. Sci. Comput. 2014) — cited by the paper as
one of the footprint-compressing formats motivating its related work.

Layout: rows are sorted by descending length within windows of
``sigma`` rows, then grouped into *chunks* of ``C`` consecutive rows;
each chunk is padded to its longest row and stored column-major, so a
SIMD unit of width ``C`` processes ``C`` rows in lockstep with unit-
stride loads of values and column indices. Sorting within sigma-windows
keeps rows of similar length together, bounding the padding overhead
while limiting how far the output permutation strays from the original
order.

Like BCSR, this is an extension payload for the plug-and-play pool
(kernel in :mod:`repro.kernels.sellcs`), not part of the paper's
low-preprocessing pool.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from .base import (
    SparseFormat,
    check_out_buffer,
    contiguous_operand,
    gather_index,
)
from .csr import (
    CSRMatrix,
    _SegmentPlan,
    _segment_matmat,
    _segment_sums_into,
)

__all__ = ["SellCSigmaMatrix"]


class SellCSigmaMatrix(SparseFormat):
    """SELL-C-sigma storage. Build with :meth:`from_csr`."""

    format_name = "sell-c-sigma"

    __slots__ = ("chunk_ptr", "chunk_len", "colind", "values",
                 "row_perm", "chunk", "sigma", "_shape", "_nnz", "_rm")

    def __init__(self, chunk_ptr, chunk_len, colind, values, row_perm,
                 chunk, sigma, shape, nnz, *, trusted=False):
        self.chunk_ptr = np.ascontiguousarray(chunk_ptr, dtype=np.int64)
        self.chunk_len = np.ascontiguousarray(chunk_len, dtype=np.int64)
        self.colind = np.ascontiguousarray(colind, dtype=np.int32)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.row_perm = np.ascontiguousarray(row_perm, dtype=np.int64)
        self.chunk = int(chunk)
        self.sigma = int(sigma)
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = int(nnz)
        self._rm = None
        if not trusted:
            nchunks = self.chunk_len.size
            if self.chunk_ptr.size != nchunks + 1:
                raise ValueError("chunk_ptr must have nchunks + 1 entries")
            if self.colind.size != self.values.size:
                raise ValueError("colind and values must have equal length")

    @classmethod
    def from_csr(cls, csr: CSRMatrix, chunk: int = 8,
                 sigma: int | None = None) -> "SellCSigmaMatrix":
        """Convert ``csr``; ``sigma`` defaults to ``32 * chunk``."""
        check_positive("chunk", chunk)
        C = int(chunk)
        if sigma is None:
            sigma = 32 * C
        sigma = max(int(sigma), C)

        nrows = csr.nrows
        row_nnz = csr.row_nnz()
        # sort rows by descending length within sigma windows
        perm = np.arange(nrows, dtype=np.int64)
        for start in range(0, nrows, sigma):
            stop = min(start + sigma, nrows)
            window = perm[start:stop]
            order = np.argsort(-row_nnz[window], kind="stable")
            perm[start:stop] = window[order]

        sorted_nnz = row_nnz[perm]
        nchunks = -(-nrows // C)
        chunk_len = np.zeros(nchunks, dtype=np.int64)
        for ci in range(nchunks):
            lo, hi = ci * C, min((ci + 1) * C, nrows)
            chunk_len[ci] = sorted_nnz[lo:hi].max(initial=0)
        chunk_ptr = np.zeros(nchunks + 1, dtype=np.int64)
        np.cumsum(chunk_len * C, out=chunk_ptr[1:])

        total = int(chunk_ptr[-1])
        colind = np.zeros(total, dtype=np.int32)
        values = np.zeros(total, dtype=np.float64)
        # scatter each row into its column-major chunk slots
        for ci in range(nchunks):
            base = chunk_ptr[ci]
            width = chunk_len[ci]
            for lane in range(C):
                r = ci * C + lane
                if r >= nrows:
                    break
                row = perm[r]
                lo, hi = csr.rowptr[row], csr.rowptr[row + 1]
                k = hi - lo
                if k == 0:
                    continue
                slots = base + lane + C * np.arange(k)
                colind[slots] = csr.colind[lo:hi]
                values[slots] = csr.values[lo:hi]
        return cls(chunk_ptr, chunk_len, colind, values, perm, C, sigma,
                   csr.shape, csr.nnz, trusted=True)

    # -- SparseFormat interface ------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._nnz

    def _validate_structure(self, report) -> None:
        from .base import (
            check_equal_length,
            check_index_bounds,
            check_pointer_array,
        )

        C = self.chunk
        if C < 1:
            report.add("chunk-size", f"chunk must be >= 1, got {C}")
            return
        nchunks = self.chunk_len.size
        ptr_ok = check_pointer_array(
            report, "chunk_ptr", self.chunk_ptr,
            nseg=nchunks, end=self.values.size,
        )
        if (self.chunk_len < 0).any():
            p = int(np.flatnonzero(self.chunk_len < 0)[0])
            report.add(
                "chunk-len-negative",
                f"chunk_len[{p}] = {int(self.chunk_len[p])} is negative",
            )
        elif ptr_ok:
            # Slot/chunk consistency: each chunk stores exactly
            # chunk_len[ci] * C column-major slots.
            widths = np.diff(self.chunk_ptr)
            bad = np.flatnonzero(widths != self.chunk_len * C)
            if bad.size:
                p = int(bad[0])
                report.add(
                    "chunk-slot-mismatch",
                    f"chunk {p} spans {int(widths[p])} slots but "
                    f"chunk_len * C = {int(self.chunk_len[p]) * C}",
                )
        check_equal_length(report, "colind", self.colind,
                           "values", self.values)
        check_index_bounds(report, "colind", self.colind, self.ncols)
        if self.row_perm.size != self.nrows or not np.array_equal(
            np.sort(self.row_perm), np.arange(self.nrows, dtype=np.int64)
        ):
            report.add(
                "row-perm-invalid",
                f"row_perm is not a permutation of 0..{self.nrows - 1}",
            )
        if self._nnz > self.values.size:
            report.add(
                "nnz-accounting",
                f"logical nnz={self._nnz} exceeds the "
                f"{self.values.size} stored slots",
            )

    @property
    def nchunks(self) -> int:
        return int(self.chunk_len.size)

    @property
    def stored_elements(self) -> int:
        """Physically stored slots, including padding."""
        return int(self.values.size)

    @property
    def padding_ratio(self) -> float:
        """Stored / logical elements (1.0 = no padding)."""
        return self.stored_elements / max(self._nnz, 1)

    def _row_major(self):
        """Lazily regroup the column-major chunk storage into per-slot
        row-major segments.

        Returns ``(rm_colind, rm_values, rm_ptr, rm_plan)`` where
        segment ``s`` of the ``nchunks * C`` padded output rows covers
        ``rm_*[rm_ptr[s]:rm_ptr[s+1]]`` and ``rm_plan`` is the cached
        :class:`~repro.formats.csr._SegmentPlan` over ``rm_ptr``. The
        permutation sorts slots by ``(chunk, lane)`` with a stable key,
        turning the lane-interleaved chunk layout into contiguous rows
        that a single segmented reduction can consume — this removes
        the per-chunk Python loop from both ``matvec`` and ``matmat``.
        """
        if self._rm is None:
            C = self.chunk
            total = self.values.size
            widths = np.diff(self.chunk_ptr)
            chunk_of_slot = np.repeat(
                np.arange(self.nchunks, dtype=np.int64), widths
            )
            lane = (
                np.arange(total, dtype=np.int64)
                - self.chunk_ptr[chunk_of_slot]
            ) % C
            order = np.argsort(chunk_of_slot * C + lane, kind="stable")
            rm_ptr = np.zeros(self.nchunks * C + 1, dtype=np.int64)
            np.cumsum(np.repeat(self.chunk_len, C), out=rm_ptr[1:])
            # intp colind: keeps the per-apply gather cast-free.
            self._rm = (gather_index(self.colind[order]),
                        self.values[order], rm_ptr,
                        _SegmentPlan(rm_ptr))
        return self._rm

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        if out is None:
            y = np.empty(self.nrows, dtype=np.float64)
        else:
            y = check_out_buffer(out, (self.nrows,), operand=x)
        x = contiguous_operand(x, workspace, "sellcs.x")
        # padded slots have colind 0 and value 0.0: they contribute
        # value * x[0] == 0, so no masking is needed
        rm_colind, rm_values, rm_ptr, rm_plan = self._row_major()
        npad = self.nchunks * self.chunk
        if workspace is not None:
            products = workspace.buffer("sellcs.products", rm_values.size)
            y_perm = workspace.buffer("sellcs.y_perm", npad)
        else:
            products = np.empty(rm_values.size, dtype=np.float64)
            y_perm = np.empty(npad, dtype=np.float64)
        np.take(x, rm_colind, out=products, mode="clip")
        np.multiply(products, rm_values, out=products)
        _segment_sums_into(products, rm_plan, y_perm, workspace, "sellcs")
        # row_perm is a full permutation: every output row is written.
        y[self.row_perm] = y_perm[: self.nrows]
        return y

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Batched apply on the row-major view: the slot permutation is
        computed once and reused across all applies, and each gathered
        row of ``X`` serves all ``k`` right-hand sides."""
        X = self._check_matmat_input(X)
        k = X.shape[1]
        if out is None:
            Y = np.empty((self.nrows, k), dtype=np.float64)
        else:
            Y = check_out_buffer(out, (self.nrows, k), operand=X)
        rm_colind, rm_values, rm_ptr, rm_plan = self._row_major()
        npad = self.nchunks * self.chunk
        if workspace is not None:
            Y_perm = workspace.buffer("sellcs.Y_perm", (npad, k))
        else:
            Y_perm = np.empty((npad, k), dtype=np.float64)
        _segment_matmat(
            rm_colind, rm_values, rm_ptr, X, npad,
            out=Y_perm, workspace=workspace, plan=rm_plan, name="sellcs",
        )
        Y[self.row_perm] = Y_perm[: self.nrows]
        return Y

    def index_nbytes(self) -> int:
        return int(
            self.chunk_ptr.nbytes + self.chunk_len.nbytes
            + self.colind.nbytes + self.row_perm.nbytes
        )

    def value_nbytes(self) -> int:
        return int(self.values.nbytes)
