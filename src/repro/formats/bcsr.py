"""Block CSR (BCSR) — register-blocked sparse format.

The classic OSKI/SPARSITY optimization the paper's related-work section
discusses: nonzeros are stored in small dense ``r x c`` blocks, one
column index per *block*. Index traffic drops by ~``r*c``x, and the
inner loop becomes a dense register-tiled kernel — at the price of
explicitly stored zeros (*fill-in*) wherever a block is only partially
populated.

This format is not part of the paper's pool (it needs nontrivial
autotuning of the block size, against the paper's lightweightness
goal); it is included as the demonstration payload for the pool's
plug-and-play extension point (see ``repro.kernels.bcsr``) and the A6
ablation comparing it against delta compression for the MB class.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from .base import SparseFormat, check_out_buffer, contiguous_operand
from .csr import CSRMatrix

__all__ = ["BCSRMatrix"]


class BCSRMatrix(SparseFormat):
    """Sparse matrix in block-CSR format with square ``block`` tiles.

    Build with :meth:`from_csr`. Blocks are aligned to the grid
    ``(row // block, col // block)``; partially filled blocks store
    explicit zeros (``fill_ratio`` reports the inflation).
    """

    format_name = "bcsr"

    __slots__ = ("block_rowptr", "block_colind", "block_values", "block",
                 "_shape", "_nnz", "_plan")

    def __init__(self, block_rowptr, block_colind, block_values, block,
                 shape, nnz, *, trusted=False):
        self.block_rowptr = np.ascontiguousarray(block_rowptr, dtype=np.int64)
        self.block_colind = np.ascontiguousarray(block_colind, dtype=np.int32)
        self.block_values = np.ascontiguousarray(block_values,
                                                 dtype=np.float64)
        self.block = int(block)
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = int(nnz)
        self._plan = None
        if not trusted:
            nblocks = self.block_colind.size
            if self.block_values.shape != (nblocks, self.block, self.block):
                raise ValueError(
                    "block_values must have shape (nblocks, block, block)"
                )
            if self.block_rowptr[-1] != nblocks:
                raise ValueError("block_rowptr must end at nblocks")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block: int = 2) -> "BCSRMatrix":
        """Tile ``csr`` into ``block x block`` dense blocks."""
        check_positive("block", block)
        r = int(block)
        nrows, ncols = csr.shape
        nbrows = -(-nrows // r)
        nbcols = -(-ncols // r)

        if csr.nnz == 0:
            return cls(
                np.zeros(nbrows + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                np.zeros((0, r, r)),
                r, csr.shape, 0,
            )

        rows = csr.row_ids_per_nnz()
        cols = csr.colind.astype(np.int64)
        brow = rows // r
        bcol = cols // r
        key = brow * nbcols + bcol
        uniq, inverse = np.unique(key, return_inverse=True)
        nblocks = uniq.size

        values = np.zeros((nblocks, r, r), dtype=np.float64)
        np.add.at(values, (inverse, rows % r, cols % r), csr.values)

        u_brow = (uniq // nbcols).astype(np.int64)
        u_bcol = (uniq % nbcols).astype(np.int32)
        block_rowptr = np.zeros(nbrows + 1, dtype=np.int64)
        np.add.at(block_rowptr, u_brow + 1, 1)
        np.cumsum(block_rowptr, out=block_rowptr)
        # uniq is sorted by key = brow*nbcols + bcol, i.e. already in
        # block-row-major order; no further permutation needed.
        return cls(block_rowptr, u_bcol, values, r, csr.shape, csr.nnz,
                   trusted=True)

    def to_csr(self) -> CSRMatrix:
        """Back to CSR, dropping the explicit fill-in zeros."""
        r = self.block
        nblocks = self.block_colind.size
        brow = np.repeat(
            np.arange(self.block_rowptr.size - 1, dtype=np.int64),
            np.diff(self.block_rowptr),
        )
        rows = (
            brow[:, None, None] * r
            + np.arange(r)[None, :, None]
        ) * np.ones((1, 1, r), dtype=np.int64)
        cols = (
            self.block_colind.astype(np.int64)[:, None, None] * r
            + np.arange(r)[None, None, :]
        ) * np.ones((1, r, 1), dtype=np.int64)
        mask = self.block_values != 0.0
        in_range = (rows < self.nrows) & (cols < self.ncols)
        keep = mask & in_range
        return CSRMatrix.from_arrays(
            rows[keep], cols[keep], self.block_values[keep], self._shape
        )

    # -- SparseFormat interface --------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        """Logical nonzeros (excluding fill-in)."""
        return self._nnz

    def _validate_structure(self, report) -> None:
        from .base import check_index_bounds, check_pointer_array

        r = self.block
        if r < 1:
            report.add("block-size", f"block must be >= 1, got {r}")
            return
        nbrows = -(-self.nrows // r)
        nbcols = -(-self.ncols // r)
        nblocks = self.block_colind.size
        check_pointer_array(
            report, "block_rowptr", self.block_rowptr,
            nseg=nbrows, end=nblocks,
        )
        check_index_bounds(
            report, "block_colind", self.block_colind, nbcols
        )
        if self.block_values.shape != (nblocks, r, r):
            report.add(
                "block-values-shape",
                f"block_values must have shape ({nblocks}, {r}, {r}), "
                f"got {self.block_values.shape}",
            )
        stored = int(np.count_nonzero(self.block_values))
        if stored > self._nnz:
            # Fill-in slots are explicit zeros; more *nonzero* entries
            # than the logical nnz means values leaked into padding.
            report.add(
                "nnz-accounting",
                f"{stored} nonzero stored values exceed logical "
                f"nnz={self._nnz}",
            )

    def _value_arrays(self):
        return [("block_values", self.block_values)]

    @property
    def nblocks(self) -> int:
        return int(self.block_colind.size)

    @property
    def stored_elements(self) -> int:
        """Physically stored values, including fill-in zeros."""
        return int(self.nblocks * self.block * self.block)

    @property
    def fill_ratio(self) -> float:
        """Stored / logical elements (1.0 = perfect blocks)."""
        return self.stored_elements / max(self._nnz, 1)

    def _block_plan(self):
        """Cached structure-derived apply plan:
        ``(xidx, seg, pad_cols, nbrows)`` where ``xidx[b]`` are the
        ``block`` padded-x indices gathered by block ``b`` and ``seg``
        is the block-row :class:`~repro.formats.csr._SegmentPlan`."""
        if self._plan is None:
            from .csr import _SegmentPlan

            r = self.block
            xidx = (
                self.block_colind.astype(np.int64)[:, None] * r
                + np.arange(r, dtype=np.int64)[None, :]
            )
            self._plan = (
                xidx,
                _SegmentPlan(self.block_rowptr),
                -(-self.ncols // r) * r,
                int(self.block_rowptr.size - 1),
            )
        return self._plan

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """``y = A @ x``: each dense block multiplies its ``block``-wide
        slab of a padded x, and per-block-row sums reduce with
        ``np.add.reduceat`` (blocks are stored block-row-major)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x must have shape ({self.ncols},), got {x.shape}")
        r = self.block
        n = self.nrows
        x = contiguous_operand(x, workspace, "bcsr.x")
        xidx, seg, pad_cols, nbrows = self._block_plan()

        def scratch(name, shape):
            if workspace is not None:
                return workspace.buffer("bcsr." + name, shape)
            return np.empty(shape, dtype=np.float64)

        if out is None:
            y = np.empty(n, dtype=np.float64)
        else:
            y = check_out_buffer(out, (n,), operand=x)
        yp = y if nbrows * r == n else scratch("yp", nbrows * r)
        if not self.nblocks:
            yp[:] = 0.0
        else:
            if pad_cols == self.ncols:
                xp = x
            else:
                xp = scratch("xp", pad_cols)
                xp[: self.ncols] = x
                xp[self.ncols:] = 0.0
            xblocks = scratch("xblocks", (self.nblocks, r))
            np.take(xp, xidx, out=xblocks, mode="clip")
            contrib = scratch("contrib", (self.nblocks, r))
            np.einsum("bij,bj->bi", self.block_values, xblocks,
                      out=contrib)
            ypv = yp.reshape(nbrows, r)
            if not seg.has_empty:
                np.add.reduceat(contrib, seg.starts, axis=0, out=ypv)
            else:
                ypv[:] = 0.0
                if seg.nonempty.size:
                    ypv[seg.nonempty] = np.add.reduceat(
                        contrib, seg.starts, axis=0
                    )
        if yp is not y:
            y[:] = yp[:n]
        return y

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Batched ``Y = A @ X``: each dense block multiplies a
        ``(block, k)`` slab of ``X`` (a small dense GEMM), and the
        per-block-row reduction uses ``np.add.reduceat`` because blocks
        are stored block-row-major. Work is tiled over block-row-aligned
        ranges so the ``(blocks, r, k)`` contribution intermediate stays
        cache-resident.
        """
        from .csr import _TILE_ELEMS

        X = self._check_matmat_input(X)
        r = self.block
        k = X.shape[1]
        n = self.nrows
        xidx, seg, pad_cols, nbrows = self._block_plan()

        def scratch(name, shape):
            if workspace is not None:
                return workspace.buffer("bcsr." + name, shape)
            return np.empty(shape, dtype=np.float64)

        if out is None:
            Y = np.empty((n, k), dtype=np.float64)
        else:
            Y = check_out_buffer(out, (n, k), operand=X)
        Yp = Y if nbrows * r == n else scratch("Yp", (nbrows * r, k))
        if not (self.nblocks and k):
            Yp[:] = 0.0
            if Yp is not Y:
                Y[:] = Yp[:n]
            return Y
        if pad_cols == self.ncols:
            Xp = X
        else:
            Xp = scratch("Xp", (pad_cols, k))
            Xp[: self.ncols] = X
            Xp[self.ncols:] = 0.0
        Yview = Yp.reshape(nbrows, r, k)
        blocks_per_row = seg.lengths
        has_empty = seg.has_empty
        tile = max(_TILE_ELEMS // max(r * k, 1), 1)
        max_blocks = int(min(self.nblocks, max(tile, seg.maxlen)))
        xb = scratch("xblocks3", (max_blocks, r, k))
        cb = scratch("contrib3", (max_blocks, r, k))
        s0 = 0
        while s0 < nbrows:
            s1 = int(np.searchsorted(
                self.block_rowptr, self.block_rowptr[s0] + tile,
                side="right",
            )) - 1
            s1 = min(max(s1, s0 + 1), nbrows)
            lo = int(self.block_rowptr[s0])
            hi = int(self.block_rowptr[s1])
            if hi > lo:
                xblocks = xb[: hi - lo]
                np.take(Xp, xidx[lo:hi], axis=0, out=xblocks,
                        mode="clip")
                contrib = cb[: hi - lo]
                np.einsum(
                    "bij,bjk->bik", self.block_values[lo:hi], xblocks,
                    out=contrib,
                )
                if not has_empty:
                    np.add.reduceat(
                        contrib, self.block_rowptr[s0:s1] - lo, axis=0,
                        out=Yview[s0:s1],
                    )
                else:
                    nonempty = np.flatnonzero(blocks_per_row[s0:s1] > 0)
                    if nonempty.size:
                        Yview[s0 + nonempty] = np.add.reduceat(
                            contrib,
                            self.block_rowptr[s0:s1][nonempty] - lo,
                            axis=0,
                        )
                    empty = np.flatnonzero(blocks_per_row[s0:s1] == 0)
                    Yview[s0 + empty] = 0.0
            else:
                Yview[s0:s1] = 0.0
            s0 = s1
        if Yp is not Y:
            Y[:] = Yp[:n]
        return Y

    def index_nbytes(self) -> int:
        return int(self.block_rowptr.nbytes + self.block_colind.nbytes)

    def value_nbytes(self) -> int:
        return int(self.block_values.nbytes)
