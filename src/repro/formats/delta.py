"""Delta-compressed CSR (column-index delta encoding).

This implements the MB-class optimization of the paper (Table I):
column indices are stored as deltas to the previous nonzero in the same
row, using **either** 8-bit **or** 16-bit unsigned deltas for the whole
matrix — "never both, in order to limit the branching overhead"
(Section III-E). Delta indexing for SpMV goes back to Pooch & Nieder.

Positions where a delta cannot be represented (the first nonzero of a
row, or a gap wider than the delta width) are *reset points*: the
absolute 32-bit column index is stored out-of-line in ``reset_col`` and
the in-line delta is 0. Decoding is fully vectorized via a segmented
cumulative sum between reset points.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in
from .base import SparseFormat
from .csr import CSRMatrix

__all__ = ["DeltaCSR", "choose_delta_width"]

_MAX_DELTA = {8: np.iinfo(np.uint8).max, 16: np.iinfo(np.uint16).max}
_DTYPE = {8: np.uint8, 16: np.uint16}


def choose_delta_width(csr: CSRMatrix) -> int:
    """Pick the delta width (8 or 16 bits) for ``csr``.

    Chooses whichever single width minimizes the encoded index
    footprint: ``nnz * width/8`` bytes of in-line deltas plus 12 bytes
    per reset point (row starts plus overflowing gaps). Matches the
    paper's "8- or 16-bit deltas wherever possible, but never both"
    policy with a footprint-optimal tie-break.
    """
    if csr.nnz == 0:
        return 8
    gaps = csr.column_gaps()
    row_starts = min(np.count_nonzero(csr.row_nnz() > 0), csr.nnz)

    def footprint(width: int) -> int:
        resets = row_starts + int(
            np.count_nonzero(gaps > _MAX_DELTA[width])
        )
        return csr.nnz * (width // 8) + 12 * resets

    return 8 if footprint(8) <= footprint(16) else 16


class DeltaCSR(SparseFormat):
    """CSR with delta-encoded column indices.

    Build with :meth:`from_csr`; the raw constructor takes the already
    encoded arrays and is primarily for internal/test use.
    """

    format_name = "delta-csr"

    __slots__ = (
        "rowptr",
        "deltas",
        "reset_pos",
        "reset_col",
        "values",
        "width",
        "_shape",
        "_decoded",
    )

    def __init__(self, rowptr, deltas, reset_pos, reset_col, values, shape,
                 width, *, trusted=False):
        self.width = check_in("width", int(width), (8, 16))
        self.rowptr = np.ascontiguousarray(rowptr, dtype=np.int64)
        self.deltas = np.ascontiguousarray(deltas, dtype=_DTYPE[self.width])
        self.reset_pos = np.ascontiguousarray(reset_pos, dtype=np.int64)
        self.reset_col = np.ascontiguousarray(reset_col, dtype=np.int32)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self._shape = (int(shape[0]), int(shape[1]))
        self._decoded = None
        if not trusted:
            if self.deltas.size != self.values.size:
                raise ValueError("deltas and values must have equal length")
            if self.reset_pos.size != self.reset_col.size:
                raise ValueError(
                    "reset_pos and reset_col must have equal length"
                )
            if self.values.size and (
                self.reset_pos.size == 0 or self.reset_pos[0] != 0
            ):
                raise ValueError("the first nonzero must be a reset point")
            if np.any(np.diff(self.reset_pos) <= 0):
                raise ValueError("reset_pos must be strictly increasing")

    # -- construction --------------------------------------------------

    @classmethod
    def from_csr(cls, csr: CSRMatrix, width: int | None = None) -> "DeltaCSR":
        """Encode a CSR matrix. ``width`` of None selects automatically."""
        if width is None:
            width = choose_delta_width(csr)
        check_in("width", width, (8, 16))
        nnz = csr.nnz
        if nnz == 0:
            return cls(
                csr.rowptr.copy(),
                np.zeros(0, dtype=_DTYPE[width]),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                csr.values.copy(),
                csr.shape,
                width,
            )
        gaps = csr.column_gaps()
        row_start = np.zeros(nnz, dtype=bool)
        starts = csr.rowptr[:-1]
        row_start[starts[starts < nnz]] = True
        overflow = gaps > _MAX_DELTA[width]
        reset = row_start | overflow
        reset_pos = np.flatnonzero(reset)
        reset_col = csr.colind[reset_pos]
        deltas = gaps.copy()
        deltas[reset_pos] = 0
        return cls(
            csr.rowptr.copy(),
            deltas.astype(_DTYPE[width]),
            reset_pos,
            reset_col,
            csr.values.copy(),
            csr.shape,
            width,
        )

    def decode_colind(self) -> np.ndarray:
        """Reconstruct the absolute int32 column indices (vectorized)."""
        nnz = self.values.size
        if nnz == 0:
            return np.zeros(0, dtype=np.int32)
        csum = np.cumsum(self.deltas.astype(np.int64))
        seg_len = np.diff(np.append(self.reset_pos, nnz))
        base = np.repeat(
            self.reset_col.astype(np.int64) - csum[self.reset_pos], seg_len
        )
        return (base + csum).astype(np.int32)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix(
            self.rowptr.copy(),
            self.decode_colind(),
            self.values.copy(),
            self._shape,
        )

    def _decoded_csr(self) -> CSRMatrix:
        """Cached CSR view for the numeric plane.

        Decoding is structure-only, so it happens once; the view
        *shares* ``rowptr`` and ``values`` with this matrix (no copy),
        so in-place value updates stay visible. The cost plane still
        charges the decode per apply — this cache only removes the
        redundant recomputation from the repeat-execution path.
        """
        if self._decoded is None:
            self._decoded = CSRMatrix(
                self.rowptr, self.decode_colind(), self.values,
                self._shape, trusted=True,
            )
        return self._decoded

    # -- SparseFormat interface ----------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def _validate_structure(self, report) -> None:
        from .base import (
            check_equal_length,
            check_index_bounds,
            check_pointer_array,
        )

        nnz = self.values.size
        ptr_ok = check_pointer_array(
            report, "rowptr", self.rowptr, nseg=self.nrows, end=nnz
        )
        check_equal_length(report, "deltas", self.deltas,
                           "values", self.values)
        resets_ok = True
        if self.reset_pos.size != self.reset_col.size:
            report.add(
                "length-mismatch",
                f"reset_pos ({self.reset_pos.size}) and reset_col "
                f"({self.reset_col.size}) must have equal length",
            )
            resets_ok = False
        if nnz and (self.reset_pos.size == 0 or self.reset_pos[0] != 0):
            report.add(
                "reset-pos-start",
                "the first nonzero must be a reset point",
            )
            resets_ok = False
        if np.any(np.diff(self.reset_pos) <= 0):
            report.add(
                "reset-pos-nonmonotonic",
                "reset_pos must be strictly increasing",
            )
            resets_ok = False
        if not check_index_bounds(report, "reset_pos", self.reset_pos,
                                  max(nnz, 1)):
            resets_ok = False
        check_index_bounds(report, "reset_col", self.reset_col, self.ncols)
        if (resets_ok and self.reset_pos.size
                and self.deltas.size == nnz
                and (self.deltas[self.reset_pos] != 0).any()):
            p = int(np.flatnonzero(self.deltas[self.reset_pos] != 0)[0])
            report.add(
                "reset-delta-nonzero",
                f"in-line delta at reset point {int(self.reset_pos[p])} "
                f"must be 0",
            )
        if ptr_ok and resets_ok and self.deltas.size == nnz:
            # Decoded absolute columns must land inside the matrix.
            decoded = self.decode_colind().astype(np.int64)
            check_index_bounds(report, "decoded-colind", decoded,
                               self.ncols)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        # Numeric plane: run the CSR kernel on the cached decoded view.
        # The cost plane (repro.kernels.compressed) charges the decode
        # to compute cycles and the smaller delta array to memory
        # traffic.
        return self._decoded_csr().matvec(x, out=out, workspace=workspace)

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        # One decode serves the whole batch (and, via the cache, every
        # later apply): the decode cost is amortized over all k
        # right-hand sides and all repeat executions.
        return self._decoded_csr().matmat(X, out=out, workspace=workspace)

    def index_nbytes(self) -> int:
        reset_bytes = self.reset_pos.nbytes + self.reset_col.nbytes
        return int(self.rowptr.nbytes + self.deltas.nbytes + reset_bytes)

    def value_nbytes(self) -> int:
        return int(self.values.nbytes)

    # -- accounting helpers ---------------------------------------------

    @property
    def n_resets(self) -> int:
        return int(self.reset_pos.size)

    def compression_ratio(self) -> float:
        """Index bytes of plain CSR divided by index bytes of this format."""
        csr_index = self.rowptr.nbytes + 4 * self.values.size
        return float(csr_index) / max(self.index_nbytes(), 1)
