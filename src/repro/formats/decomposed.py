"""Decomposed CSR for matrices with highly uneven row lengths.

Implements the IMB-class "matrix decomposition" optimization of the
paper (Fig. 6 / Fig. 7 of the text): the matrix is split into

* a *short part* — all rows whose length is at most ``threshold``,
  stored as a regular CSR with the long rows left empty, and
* a *long part* — the few very long rows, stored contiguously.

SpMV then runs in two steps: the short part uses the ordinary
row-partitioned kernel (long rows are skipped for free because they are
empty), and every long row is computed by *all* threads cooperatively
followed by a reduction of partial sums, which removes the imbalance a
single monster row would otherwise cause.
"""

from __future__ import annotations

import numpy as np

from .base import (
    SparseFormat,
    check_out_buffer,
    contiguous_operand,
    gather_index,
)
from .csr import (
    CSRMatrix,
    _SegmentPlan,
    _segment_matmat,
    _segment_sums_into,
)

__all__ = ["DecomposedCSR", "default_long_row_threshold"]


def default_long_row_threshold(csr: CSRMatrix, nthreads: int = 64) -> int:
    """Heuristic row-length cutoff above which a row is "long".

    A row is worth decomposing when it alone exceeds the average
    per-thread share of nonzeros by a wide margin, because a static row
    partitioning cannot split it. We use a quarter of the fair
    per-thread share, floored at 8x the mean row length (so near-uniform
    matrices decompose nothing).
    """
    if csr.nrows == 0 or csr.nnz == 0:
        return 1
    fair_share = csr.nnz / max(nthreads, 1)
    mean_len = csr.nnz / csr.nrows
    return int(max(fair_share / 4.0, 8.0 * mean_len, 8.0))


class DecomposedCSR(SparseFormat):
    """Two-part (short rows + long rows) CSR decomposition."""

    format_name = "decomposed-csr"

    __slots__ = (
        "short",
        "long_rows",
        "long_rowptr",
        "long_colind",
        "long_values",
        "threshold",
        "_shape",
        "_longseg",
        "_ipcols",
        "_iprows",
    )

    def __init__(self, short, long_rows, long_rowptr, long_colind, long_values,
                 threshold, shape, *, trusted=False):
        self.short = short
        self.long_rows = np.ascontiguousarray(long_rows, dtype=np.int64)
        self.long_rowptr = np.ascontiguousarray(long_rowptr, dtype=np.int64)
        self.long_colind = np.ascontiguousarray(long_colind, dtype=np.int32)
        self.long_values = np.ascontiguousarray(long_values, dtype=np.float64)
        self.threshold = int(threshold)
        self._shape = (int(shape[0]), int(shape[1]))
        self._longseg = None
        self._ipcols = None
        self._iprows = None
        if not trusted:
            if self.long_rowptr.size != self.long_rows.size + 1:
                raise ValueError(
                    "long_rowptr must have len(long_rows) + 1 entries"
                )
            if self.long_colind.size != self.long_values.size:
                raise ValueError("long_colind and long_values must match")

    @classmethod
    def from_csr(cls, csr: CSRMatrix, threshold: int | None = None,
                 nthreads: int = 64) -> "DecomposedCSR":
        """Split ``csr`` into short and long parts at ``threshold`` nnz/row."""
        if threshold is None:
            threshold = default_long_row_threshold(csr, nthreads)
        threshold = int(threshold)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        row_nnz = csr.row_nnz()
        long_rows = np.flatnonzero(row_nnz > threshold)
        keep = np.ones(csr.nnz, dtype=bool)
        for r in long_rows:  # few long rows by construction
            keep[csr.rowptr[r] : csr.rowptr[r + 1]] = False

        short_counts = row_nnz.copy()
        short_counts[long_rows] = 0
        short_rowptr = np.zeros(csr.nrows + 1, dtype=np.int64)
        np.cumsum(short_counts, out=short_rowptr[1:])
        short = CSRMatrix(
            short_rowptr, csr.colind[keep], csr.values[keep], csr.shape,
            trusted=True,
        )

        long_counts = row_nnz[long_rows]
        long_rowptr = np.zeros(long_rows.size + 1, dtype=np.int64)
        np.cumsum(long_counts, out=long_rowptr[1:])
        return cls(
            short,
            long_rows,
            long_rowptr,
            csr.colind[~keep],
            csr.values[~keep],
            threshold,
            csr.shape,
            trusted=True,
        )

    def to_csr(self) -> CSRMatrix:
        """Reassemble the original CSR matrix (rows in canonical order)."""
        row_nnz = self.short.row_nnz().copy()
        row_nnz[self.long_rows] = np.diff(self.long_rowptr)
        rowptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=rowptr[1:])
        colind = np.empty(self.nnz, dtype=np.int32)
        values = np.empty(self.nnz, dtype=np.float64)
        # Both parts store their rows in ascending row order, and each
        # output slot belongs to exactly one part, so a boolean mask per
        # nonzero scatters both parts in two contiguous-copy passes.
        is_long_row = np.zeros(self.nrows, dtype=bool)
        is_long_row[self.long_rows] = True
        out_is_long = np.repeat(is_long_row, row_nnz)
        colind[out_is_long] = self.long_colind
        values[out_is_long] = self.long_values
        colind[~out_is_long] = self.short.colind
        values[~out_is_long] = self.short.values
        return CSRMatrix(rowptr, colind, values, self._shape, trusted=True)

    # -- SparseFormat interface ----------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.short.nnz + self.long_values.size)

    def _validate_structure(self, report) -> None:
        from .base import (
            check_equal_length,
            check_index_bounds,
            check_pointer_array,
        )

        short_report = self.short.validate(strict=False,
                                           check_values=False)
        report.extend(short_report, prefix="short.")
        rows_ok = check_index_bounds(report, "long_rows", self.long_rows,
                                     self.nrows)
        if self.long_rows.size > 1 and np.any(np.diff(self.long_rows) <= 0):
            report.add(
                "long-rows-nonmonotonic",
                "long_rows must be strictly increasing",
            )
            rows_ok = False
        check_pointer_array(
            report, "long_rowptr", self.long_rowptr,
            nseg=self.long_rows.size, end=self.long_values.size,
        )
        check_equal_length(report, "long_colind", self.long_colind,
                           "long_values", self.long_values)
        check_index_bounds(report, "long_colind", self.long_colind,
                           self.ncols)
        if rows_ok and short_report.ok and self.long_rows.size:
            overlap = np.flatnonzero(
                self.short.row_nnz()[self.long_rows] > 0
            )
            if overlap.size:
                r = int(self.long_rows[overlap[0]])
                report.add(
                    "long-row-overlap",
                    f"row {r} is stored in both the short and the long "
                    f"part",
                )

    def _value_arrays(self):
        return [
            ("short.values", self.short.values),
            ("long_values", self.long_values),
        ]

    @property
    def n_long_rows(self) -> int:
        return int(self.long_rows.size)

    @property
    def long_nnz(self) -> int:
        return int(self.long_values.size)

    def _long_plan(self) -> _SegmentPlan:
        if self._longseg is None:
            self._longseg = _SegmentPlan(self.long_rowptr)
        return self._longseg

    def long_cols_gather(self) -> np.ndarray:
        """``long_colind`` as contiguous ``intp`` (cached), so the
        per-apply gather never re-casts the int32 indices."""
        if self._ipcols is None:
            self._ipcols = gather_index(self.long_colind)
        return self._ipcols

    def long_rows_gather(self) -> np.ndarray:
        """``long_rows`` as contiguous ``intp`` (cached), for the
        alloc-free read-modify-write of the long-row outputs."""
        if self._iprows is None:
            self._iprows = gather_index(self.long_rows)
        return self._iprows

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is not None:
            out = check_out_buffer(out, (self.nrows,), operand=x)
        # One contiguous copy serves both the short CSR kernel (which
        # would otherwise make its own) and the long-row gather below.
        x = contiguous_operand(x, workspace, "csr.matvec.x")
        y = self.short.matvec(x, out=out, workspace=workspace)
        nlong = self.long_rows.size
        if nlong:
            if workspace is not None:
                products = workspace.buffer("dcsr.long.products",
                                            self.long_values.size)
                sums = workspace.buffer("dcsr.long.sums", nlong)
                rowbuf = workspace.buffer("dcsr.long.rows", nlong)
            else:
                products = np.empty(self.long_values.size, dtype=np.float64)
                sums = np.empty(nlong, dtype=np.float64)
                rowbuf = np.empty(nlong, dtype=np.float64)
            np.take(x, self.long_cols_gather(), out=products,
                    mode="clip")
            np.multiply(products, self.long_values, out=products)
            _segment_sums_into(products, self._long_plan(), sums,
                               workspace, "dcsr.long")
            # y[long_rows] += sums without a fancy-index temporary
            # (long_rows is duplicate-free by construction).
            rows = self.long_rows_gather()
            np.take(y, rows, out=rowbuf, mode="clip")
            np.add(rowbuf, sums, out=rowbuf)
            y[rows] = rowbuf
        return y

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        """Batched two-part apply: short part via the CSR batched
        kernel, long rows via the same segmented kernel on their
        contiguous storage."""
        X = self._check_matmat_input(X)
        k = X.shape[1]
        if out is not None:
            out = check_out_buffer(out, (self.nrows, k), operand=X)
        Y = self.short.matmat(X, out=out, workspace=workspace)
        nlong = self.long_rows.size
        if nlong:
            if workspace is not None:
                sums = workspace.buffer("dcsr.long.matmat.sums", (nlong, k))
                rowbuf = workspace.buffer("dcsr.long.matmat.rows", (nlong, k))
            else:
                sums = np.empty((nlong, k), dtype=np.float64)
                rowbuf = np.empty((nlong, k), dtype=np.float64)
            _segment_matmat(
                self.long_cols_gather(), self.long_values,
                self.long_rowptr, X, nlong, out=sums,
                workspace=workspace, plan=self._long_plan(),
                name="dcsr.long",
            )
            rows = self.long_rows_gather()
            np.take(Y, rows, axis=0, out=rowbuf, mode="clip")
            np.add(rowbuf, sums, out=rowbuf)
            Y[rows] = rowbuf
        return Y

    def index_nbytes(self) -> int:
        return int(
            self.short.index_nbytes()
            + self.long_rows.nbytes
            + self.long_rowptr.nbytes
            + self.long_colind.nbytes
        )

    def value_nbytes(self) -> int:
        return int(self.short.value_nbytes() + self.long_values.nbytes)
