"""Shared argument-validation helpers.

These helpers raise early, with messages that name the offending
argument, so that user errors surface at API boundaries instead of deep
inside vectorized NumPy code.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_in",
    "ensure_1d",
    "ensure_dtype",
    "check_shape_2d",
]


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``allowed`` and return it."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def ensure_1d(name: str, array: Any, dtype: Any = None) -> np.ndarray:
    """Coerce ``array`` to a contiguous 1-D ndarray, validating shape."""
    out = np.ascontiguousarray(array, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return out


def ensure_dtype(name: str, array: np.ndarray, dtypes: Sequence[Any]) -> np.ndarray:
    """Validate that ``array.dtype`` is one of ``dtypes``."""
    if array.dtype not in [np.dtype(d) for d in dtypes]:
        raise TypeError(
            f"{name} must have dtype in {[np.dtype(d).name for d in dtypes]}, "
            f"got {array.dtype.name}"
        )
    return array


def check_shape_2d(name: str, shape: Sequence[int]) -> tuple[int, int]:
    """Validate a 2-tuple of positive dimensions and return it."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != 2:
        raise ValueError(f"{name} must be a 2-tuple, got {shape!r}")
    if shape[0] <= 0 or shape[1] <= 0:
        raise ValueError(f"{name} dimensions must be positive, got {shape!r}")
    return shape
