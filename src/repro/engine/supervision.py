"""Supervision middleware: deadline-aware fault-tolerant execution.

This module is the engine-side home of the supervised parallel plane
(historically ``repro.parallel.supervisor``, which now re-exports from
here). :class:`SupervisedExecutor` wraps the parallel execution plane
(:class:`~repro.parallel.plane.ParallelKernel`) with the degradation
ladder a serving system needs when a worker crashes, hangs past its
deadline, or poisons its partition:

1. run at the requested thread count (or at a previously *demoted*
   width, see below);
2. on failure, retry with bounded exponential backoff at half the
   thread count, repeatedly, down to one thread (at most
   ``max_retries`` retries);
3. finally fall back to the serial zero-alloc CSR kernel — the same
   bit-identical reference :class:`~repro.engine.guard.GuardedKernel`
   recovers onto — so the caller still gets a correct result.

Every rung is bit-identical to serial by the parallel plane's
construction (contiguous row chunks, disjoint ``out`` slices, no
cross-thread reduction), so degrading never changes numerics — only
wall time.

Demotions are recorded in a quarantine-style process-global registry
keyed by :meth:`~repro.parallel.plane.ParallelConfig.signature`, so a
configuration that already failed starts directly at its demoted width
instead of re-walking the ladder on every apply, and planners
(:class:`~repro.pipeline.stages.ExecuteStage`, the plan cache) can
consult :func:`demoted_target` before re-planning a degraded setup.
Each apply optionally records a ``supervise`` Tracer span carrying the
full :class:`SupervisionReport` (see docs/observability.md).

Deadline semantics: ``deadline_seconds`` is a *total* budget for one
``matvec``/``matmat`` call across every parallel rung. Each rung's
watchdog gets the remaining budget; a rung that breaches it has its
thread pool recycled (:func:`~repro.parallel.pool.recycle_executor` —
the abandoned hung workers must not leak into the next apply) and the
ladder drops to the next rung. When the budget is exhausted the ladder
jumps straight to the serial fallback, which is never subject to the
deadline: guaranteed progress beats a late error for a serving stack
(see docs/robustness.md).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..errors import ParallelExecutionError
from ..formats import CSRMatrix
from ..kernels.base import Kernel

__all__ = [
    "AttemptRecord",
    "SupervisionReport",
    "SupervisedExecutor",
    "record_demotion",
    "demoted_target",
    "demotion_count",
    "demotion_log",
    "clear_demotions",
]


# -- demotion registry (quarantine-style, process-global) ---------------

_demotion_lock = threading.Lock()
#: config signature -> {"target", "reason", "events"}
_demotions: dict[str, dict] = {}


def record_demotion(signature: str, target_nthreads: int,
                    reason: str) -> None:
    """Record that ``signature`` degraded to ``target_nthreads``
    (``0`` means serial fallback). Repeated demotions of the same
    configuration keep the *lowest* target seen and bump ``events``."""
    target = int(target_nthreads)
    with _demotion_lock:
        entry = _demotions.get(signature)
        if entry is None:
            _demotions[signature] = {
                "target": target, "reason": reason, "events": 1,
            }
        else:
            entry["events"] += 1
            if target < entry["target"]:
                entry["target"] = target
                entry["reason"] = reason


def demoted_target(signature: str) -> int | None:
    """Demoted thread count for a config signature (``0`` = serial),
    or ``None`` when the configuration never failed."""
    with _demotion_lock:
        entry = _demotions.get(signature)
        return None if entry is None else int(entry["target"])


def demotion_count() -> int:
    """Total demotion events recorded since the last clear."""
    with _demotion_lock:
        return sum(e["events"] for e in _demotions.values())


def demotion_log() -> dict[str, dict]:
    """Snapshot of the registry (telemetry, CLI reports, tests)."""
    with _demotion_lock:
        return {sig: dict(entry) for sig, entry in _demotions.items()}


def clear_demotions() -> None:
    """Forget every recorded demotion (tests, operator reset)."""
    with _demotion_lock:
        _demotions.clear()


# -- supervision report -------------------------------------------------

class AttemptRecord:
    """One rung of the degradation ladder, as actually executed."""

    __slots__ = ("nthreads", "mode", "outcome", "wall_seconds", "detail")

    def __init__(self, nthreads: int, mode: str, outcome: str,
                 wall_seconds: float, detail: str = ""):
        self.nthreads = int(nthreads)
        #: ``"parallel"`` | ``"serial"``.
        self.mode = mode
        #: ``"ok"`` | ``"worker-fault"`` | ``"deadline"`` | ``"poisoned"``.
        self.outcome = outcome
        self.wall_seconds = float(wall_seconds)
        self.detail = detail

    def label(self) -> str:
        name = "serial" if self.mode == "serial" else f"t{self.nthreads}"
        return name if self.outcome == "ok" else f"{name}!{self.outcome}"

    def to_dict(self) -> dict:
        return {
            "nthreads": self.nthreads,
            "mode": self.mode,
            "outcome": self.outcome,
            "wall_seconds": self.wall_seconds,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AttemptRecord {self.label()}>"


class SupervisionReport:
    """What one supervised apply did: every attempt, the final mode,
    and whether the configuration was demoted for future applies."""

    __slots__ = ("attempts", "final_mode", "final_nthreads", "demoted",
                 "wall_seconds", "deadline_seconds")

    def __init__(self, attempts, final_mode: str, final_nthreads: int,
                 demoted: bool, wall_seconds: float,
                 deadline_seconds: float | None):
        self.attempts = tuple(attempts)
        self.final_mode = final_mode
        self.final_nthreads = int(final_nthreads)
        self.demoted = bool(demoted)
        self.wall_seconds = float(wall_seconds)
        self.deadline_seconds = deadline_seconds

    @property
    def degraded(self) -> bool:
        """Whether any attempt failed (the ladder had to move)."""
        return any(a.outcome != "ok" for a in self.attempts)

    def ladder(self) -> str:
        """Human-readable rung trace, e.g. ``t4!worker-fault -> t2 ->``
        (used by the CLI report and error messages)."""
        return " -> ".join(a.label() for a in self.attempts)

    def summary(self) -> dict:
        """JSON-ready snapshot (tracer spans, CLI)."""
        return {
            "final_mode": self.final_mode,
            "final_nthreads": self.final_nthreads,
            "demoted": self.demoted,
            "degraded": self.degraded,
            "attempts": [a.to_dict() for a in self.attempts],
            "ladder": self.ladder(),
            "wall_seconds": self.wall_seconds,
            "deadline_seconds": self.deadline_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SupervisionReport {self.ladder()}>"


# -- supervised executor ------------------------------------------------

class SupervisedExecutor:
    """Fault-tolerant executor over the parallel plane.

    Exposes the engine's ``apply``/``apply_multi`` protocol (plus the
    historical ``matvec``/``matmat`` aliases), but a worker crash,
    hang, or poisoned partition never escapes as a partial result: the
    call walks the degradation ladder (retry at reduced width, then the
    serial zero-alloc CSR fallback) and returns a bit-identical result,
    or — only when even serial execution is impossible — raises the
    last :class:`~repro.errors.ParallelExecutionError`.

    Per-rung :class:`~repro.parallel.plane.ParallelKernel` instances
    and their preprocessed data are cached, so a ladder that settles at
    a lower width pays preprocessing once, not per apply.
    """

    def __init__(self, csr: CSRMatrix, kernel: Kernel | None = None, *,
                 nthreads: int, schedule: str = "balanced-nnz",
                 chunk_rows: int | None = None,
                 deadline_seconds: float | None = None,
                 max_retries: int = 2,
                 backoff_seconds: float = 0.001,
                 serial_fallback: bool = True,
                 tracer=None):
        if int(nthreads) < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        if kernel is None:
            from ..kernels.variants import baseline_kernel

            kernel = baseline_kernel()
        self.csr = csr
        self.inner = kernel
        self.nthreads = int(nthreads)
        self.schedule = schedule
        self.chunk_rows = chunk_rows
        self.deadline_seconds = deadline_seconds
        self.max_retries = max(0, int(max_retries))
        self.backoff_seconds = float(backoff_seconds)
        self.serial_fallback = bool(serial_fallback)
        self.tracer = tracer
        #: rung width -> (ParallelKernel, ParallelData), built lazily.
        self._rungs: dict[int, tuple] = {}
        #: report of the most recent apply.
        self.last_report: SupervisionReport | None = None
        # Poison detection mirrors GuardedKernel rule 3: only when the
        # matrix and operand are finite is a non-finite output a fault.
        self._values_finite = bool(np.isfinite(csr.values).all())
        # Prime the requested rung so construction fails fast on a bad
        # partition and the first apply pays no preprocessing.
        self._rung(self.nthreads)

    # -- rung management ------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def signature(self) -> str:
        """Demotion-registry key (the parallel config signature)."""
        kernel, _ = self._rung(self.nthreads)
        return kernel.config.signature()

    @property
    def last_measurement(self):
        """Per-thread clocks (:class:`~repro.parallel.plane.
        ParallelMeasurement`) of the final *successful* parallel rung
        (``None`` after a serial fallback or before the first apply)."""
        if self.last_report is None:
            return None
        if self.last_report.final_mode != "parallel":
            return None
        kernel, _ = self._rung(self.last_report.final_nthreads)
        return kernel.last_measurement

    def _rung(self, width: int) -> tuple:
        rung = self._rungs.get(width)
        if rung is None:
            from ..parallel.plane import ParallelKernel

            kernel = ParallelKernel(self.inner, nthreads=width,
                                    schedule=self.schedule,
                                    chunk_rows=self.chunk_rows)
            rung = (kernel, kernel.preprocess(self.csr))
            self._rungs[width] = rung
        return rung

    def _widths(self) -> list[int]:
        """Parallel rung widths to try, honoring prior demotions.

        Starts at the requested width (or the registry's demoted width
        when this configuration already failed), then halves down to
        one thread, bounded by ``max_retries`` extra rungs. A demoted
        target of ``0`` means "go straight to serial": no parallel
        rungs at all.
        """
        start = self.nthreads
        demoted = demoted_target(self.signature)
        if demoted is not None:
            if demoted < 1:
                return []
            start = min(start, demoted)
        widths = [start]
        while widths[-1] > 1 and len(widths) <= self.max_retries:
            widths.append(max(1, widths[-1] // 2))
        return widths

    # -- poisoned-partition detection -----------------------------------

    def _poison_failures(self, kernel, data, y: np.ndarray,
                         x: np.ndarray) -> list:
        """Non-finite output rows attributed back to their chunks.

        Returns ``[]`` when the output is clean *or* when non-finite
        values are legitimate (matrix or operand already non-finite).
        """
        if not self._values_finite or not np.isfinite(x).all():
            return []
        finite_rows = (
            np.isfinite(y) if y.ndim == 1 else np.isfinite(y).all(axis=1)
        )
        if finite_rows.all():
            return []
        from ..errors import ChunkFailure

        bad_rows = np.flatnonzero(~finite_rows)
        failures = []
        for ci, chunk in enumerate(data.chunks):
            n_bad = int(
                np.count_nonzero(
                    (bad_rows >= chunk.lo) & (bad_rows < chunk.hi)
                )
            )
            if n_bad:
                failures.append(ChunkFailure(
                    chunk_index=ci, row_lo=chunk.lo, row_hi=chunk.hi,
                    thread_slot=chunk.tid, kind="poisoned",
                    detail=f"{n_bad} non-finite row(s)",
                ))
        return failures

    # -- ladder execution -----------------------------------------------

    def apply(self, x: np.ndarray, out: np.ndarray | None = None,
              workspace=None) -> np.ndarray:
        return self._apply(x, out, workspace, multi=False)

    def apply_multi(self, X: np.ndarray, out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        return self._apply(X, out, workspace, multi=True)

    # Historical operator-facade surface (SupervisedSpMV).
    matvec = apply
    matmat = apply_multi

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.apply_multi(x)
        return self.apply(x)

    def describe(self) -> str:
        """Human-readable stack composition, innermost last."""
        return (
            f"supervised[t{self.nthreads}/{self.schedule}"
            f",retries={self.max_retries}] -> kernel[{self.inner.name}]"
        )

    def _serial(self, x: np.ndarray, out, workspace, *,
                multi: bool) -> np.ndarray:
        # The reference zero-alloc CSR kernel — identical recovery
        # target to GuardedKernel's fallback, bit-identical to every
        # parallel rung by the plane's construction.
        if multi:
            return self.csr.matmat(x, out=out, workspace=workspace)
        return self.csr.matvec(x, out=out, workspace=workspace)

    def _apply(self, x: np.ndarray, out, workspace, *,
               multi: bool) -> np.ndarray:
        started = time.perf_counter()
        budget = self.deadline_seconds
        attempts: list[AttemptRecord] = []
        last_error: ParallelExecutionError | None = None
        result = None
        final_mode = "serial"
        final_width = 0

        for n_attempt, width in enumerate(self._widths()):
            remaining = None
            if budget is not None:
                remaining = budget - (time.perf_counter() - started)
                if remaining <= 0.0:
                    break  # budget gone: straight to serial
            kernel, data = self._rung(width)
            t0 = time.perf_counter()
            try:
                if multi:
                    y = kernel.apply_multi(data, x, out=out,
                                           workspace=workspace,
                                           deadline_seconds=remaining)
                else:
                    y = kernel.apply(data, x, out=out,
                                     workspace=workspace,
                                     deadline_seconds=remaining)
            except ParallelExecutionError as exc:
                last_error = exc
                attempts.append(AttemptRecord(
                    width, "parallel", exc.kind,
                    time.perf_counter() - t0, detail=str(exc),
                ))
                if exc.kind == "deadline":
                    # The breached rung abandoned hung workers inside
                    # its pool; retire it so the next apply at this
                    # width gets a fresh team.
                    from ..parallel.pool import recycle_executor

                    recycle_executor(width)
            else:
                poison = self._poison_failures(kernel, data, y, x)
                if poison:
                    last_error = ParallelExecutionError(
                        "poisoned", tuple(poison), nthreads=width,
                        schedule=self.schedule,
                        wall_seconds=time.perf_counter() - t0,
                        deadline_seconds=remaining,
                    )
                    attempts.append(AttemptRecord(
                        width, "parallel", "poisoned",
                        time.perf_counter() - t0,
                        detail=str(last_error),
                    ))
                    if out is not None:
                        np.asarray(out).fill(np.nan)
                else:
                    attempts.append(AttemptRecord(
                        width, "parallel", "ok",
                        time.perf_counter() - t0,
                    ))
                    result = y
                    final_mode = "parallel"
                    final_width = width
                    break
            if self.backoff_seconds > 0.0:
                pause = min(
                    self.backoff_seconds * 2.0 ** n_attempt, 0.1
                )
                if budget is not None:
                    pause = min(
                        pause,
                        max(budget - (time.perf_counter() - started),
                            0.0),
                    )
                if pause > 0.0:
                    time.sleep(pause)

        if result is None:
            if not self.serial_fallback:
                if last_error is None:  # pragma: no cover - defensive
                    last_error = ParallelExecutionError(
                        "worker-fault", nthreads=self.nthreads,
                        schedule=self.schedule,
                    )
                self._finish(attempts, "failed", 0, started)
                raise last_error
            t0 = time.perf_counter()
            result = self._serial(x, out, workspace, multi=multi)
            attempts.append(AttemptRecord(
                0, "serial", "ok", time.perf_counter() - t0,
            ))
            final_mode = "serial"
            final_width = 0

        self._finish(attempts, final_mode, final_width, started)
        return result

    def _finish(self, attempts, final_mode: str, final_width: int,
                started: float) -> None:
        degraded = any(a.outcome != "ok" for a in attempts)
        # Record a demotion only when a failure actually drove the
        # ladder below the requested width — an apply that starts at an
        # already-demoted width and succeeds adds nothing new.
        demote = degraded and (
            final_mode != "parallel" or final_width < self.nthreads
        )
        if demote:
            reasons = sorted(
                {a.outcome for a in attempts if a.outcome != "ok"}
            )
            record_demotion(
                self.signature,
                final_width if final_mode == "parallel" else 0,
                "+".join(reasons),
            )
        report = SupervisionReport(
            attempts, final_mode, final_width, demote,
            time.perf_counter() - started, self.deadline_seconds,
        )
        self.last_report = report
        if self.tracer is not None:
            self.tracer.record(
                "supervise", wall_seconds=report.wall_seconds,
                supervision=report.summary(),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} t={self.nthreads} {self.schedule!r} "
            f"deadline={self.deadline_seconds} "
            f"retries={self.max_retries} {self.csr!r}>"
        )
