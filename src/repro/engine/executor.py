"""The executor protocol and the terminal executors.

An :class:`Executor` is the engine's one execution surface: ``apply``
(single RHS) and ``apply_multi`` (batched RHS), both honoring the
zero-allocation ``out=``/``workspace=`` contract of the formats and
kernels. Every middleware layer (:mod:`repro.engine.layers`) consumes
an executor (or lifts a kernel into one) and produces another executor,
so stacks compose mechanically instead of each feature hand-wiring its
own wrapper.

Two terminal executors live here:

* :class:`KernelExecutor` — run one preprocessed kernel serially (the
  engine's leaf; what ``OptimizedSpMV.matvec`` executes through);
* :class:`ParallelExecutor` — run the kernel's partition on the
  shared-memory thread pool (:class:`~repro.parallel.plane.
  ParallelKernel`), bit-identical to serial by construction.

For callers that predate the engine, every executor also exposes the
operator-facade aliases ``matvec``/``matmat``/``__matmul__``/``shape``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..formats import CSRMatrix
from ..kernels.base import Kernel

__all__ = ["Executor", "ExecutorBase", "KernelExecutor",
           "ParallelExecutor"]


@runtime_checkable
class Executor(Protocol):
    """One composed execution stack: the engine's run-time surface."""

    def apply(self, x: np.ndarray, out: np.ndarray | None = None,
              workspace=None) -> np.ndarray:
        """Compute ``A @ x`` (1-D operand) through the stack."""
        ...  # pragma: no cover - protocol

    def apply_multi(self, X: np.ndarray, out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        """Compute the batched ``A @ X`` (2-D operand) through the
        stack."""
        ...  # pragma: no cover - protocol


class ExecutorBase:
    """Shared operator-facade surface of every engine executor."""

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    # Operator-facade aliases: solvers and legacy call sites speak
    # matvec/matmat; the engine protocol speaks apply/apply_multi.
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        return self.apply(x, out=out, workspace=workspace)

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None) -> np.ndarray:
        return self.apply_multi(X, out=out, workspace=workspace)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.apply_multi(x)
        return self.apply(x)

    def describe(self) -> str:
        """Human-readable stack composition, innermost last."""
        return type(self).__name__


class KernelExecutor(ExecutorBase):
    """Terminal executor: one preprocessed kernel, run serially."""

    def __init__(self, csr: CSRMatrix, kernel: Kernel | None = None,
                 data=None):
        if kernel is None:
            from ..kernels.variants import baseline_kernel

            kernel = baseline_kernel()
        self.csr = csr
        self.kernel = kernel
        self.data = data if data is not None else kernel.preprocess(csr)

    def apply(self, x: np.ndarray, out: np.ndarray | None = None,
              workspace=None) -> np.ndarray:
        return self.kernel.apply(self.data, x, out=out,
                                 workspace=workspace)

    def apply_multi(self, X: np.ndarray, out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        return self.kernel.apply_multi(self.data, X, out=out,
                                       workspace=workspace)

    def describe(self) -> str:
        return f"kernel[{self.kernel.name}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelExecutor {self.kernel!r} {self.csr!r}>"


class ParallelExecutor(ExecutorBase):
    """Terminal executor: the kernel's partition on the thread pool.

    The engine-side core of the historical
    :class:`~repro.parallel.plane.ParallelSpMV` facade: one
    :class:`~repro.parallel.plane.ParallelKernel` plus its preprocessed
    per-chunk data, applying contiguous row blocks into disjoint
    ``out=`` slices — bit-identical to serial execution by
    construction.
    """

    def __init__(self, csr: CSRMatrix, kernel: Kernel | None = None, *,
                 nthreads: int, schedule: str = "balanced-nnz",
                 chunk_rows: int | None = None):
        from ..parallel.plane import ParallelKernel

        if kernel is None:
            from ..kernels.variants import baseline_kernel

            kernel = baseline_kernel()
        self.csr = csr
        self.kernel = ParallelKernel(kernel, nthreads=nthreads,
                                     schedule=schedule,
                                     chunk_rows=chunk_rows)
        self.data = self.kernel.preprocess(csr)

    @property
    def nthreads(self) -> int:
        return self.data.nthreads

    @property
    def partition(self):
        return self.data.partition

    @property
    def last_measurement(self):
        return self.kernel.last_measurement

    def apply(self, x: np.ndarray, out: np.ndarray | None = None,
              workspace=None,
              deadline_seconds: float | None = None) -> np.ndarray:
        return self.kernel.apply(self.data, x, out=out,
                                 workspace=workspace,
                                 deadline_seconds=deadline_seconds)

    def apply_multi(self, X: np.ndarray, out: np.ndarray | None = None,
                    workspace=None,
                    deadline_seconds: float | None = None) -> np.ndarray:
        return self.kernel.apply_multi(self.data, X, out=out,
                                       workspace=workspace,
                                       deadline_seconds=deadline_seconds)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None,
               deadline_seconds: float | None = None) -> np.ndarray:
        return self.apply(x, out=out, workspace=workspace,
                          deadline_seconds=deadline_seconds)

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None,
               deadline_seconds: float | None = None) -> np.ndarray:
        return self.apply_multi(X, out=out, workspace=workspace,
                                deadline_seconds=deadline_seconds)

    def describe(self) -> str:
        return (
            f"parallel[t{self.kernel.nthreads}/"
            f"{self.kernel.schedule}] -> kernel[{self.kernel.inner.name}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParallelExecutor {self.kernel!r} {self.csr!r}>"
