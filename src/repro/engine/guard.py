"""Guard middleware: catch kernel faults, quarantine, fall back.

This module is the engine-side home of the guarded execution layer
(historically ``repro.guard.guarded``, which now re-exports from here).
:class:`GuardedKernel` wraps any :class:`~repro.kernels.base.Kernel`
and turns three classes of runtime misbehavior into a recorded failure
plus a transparent fallback to the reference CSR kernel:

* the variant **raises** during ``preprocess`` / ``apply`` /
  ``apply_multi``;
* the variant returns output of the **wrong shape or dtype**;
* the variant produces **non-finite output from finite input** (the
  matrix values and the operand were finite, the result is not — a
  kernel bug, not IEEE propagation).

Failures are recorded per variant name in the kernel registry's
quarantine store (:func:`repro.kernels.registry.record_kernel_failure`);
once a variant reaches the quarantine threshold every guarded wrapper
stops calling it and :class:`~repro.core.optimizer.AdaptiveSpMV`
refuses to plan it. The fallback result is computed by
``csr.matvec`` / ``csr.matmat`` on the original matrix — bit-identical
to the baseline CSR kernel's numeric plane.

The guard is also the engine's *validation boundary* for caller-owned
``out=`` buffers: the buffer is validated exactly once here
(:func:`~repro.formats.base.check_out_buffer`) and passed inward as a
:func:`~repro.formats.base.trust_out_buffer` view, so the wrapped
kernel and its formats skip their own re-validation instead of
re-checking the same buffer on every nested call.
"""

from __future__ import annotations

import inspect

import numpy as np

from ..formats import CSRMatrix
from ..formats.base import check_out_buffer, trust_out_buffer
from ..kernels.base import Kernel
from ..kernels.registry import is_quarantined, record_kernel_failure
from ..machine import KernelCost, MachineSpec
from ..sched import Partition, make_partition

__all__ = ["GuardedData", "GuardedKernel"]


def _accepts_out(method) -> bool:
    """True when ``method`` can take the ``out=``/``workspace=`` pair.

    Guarded wrappers accept arbitrary inner kernels, including legacy
    and test kernels whose ``apply(self, data, x)`` predates the
    zero-allocation plane; those are called without the keywords and
    their result is copied into ``out`` after validation.
    """
    try:
        params = inspect.signature(method).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return True
    return "out" in params and "workspace" in params


class GuardedData:
    """Execution bundle of a guarded kernel: the wrapped variant's data
    plus the original CSR kept for fallback."""

    __slots__ = ("inner", "csr", "values_finite")

    def __init__(self, inner, csr: CSRMatrix, values_finite: bool):
        self.inner = inner          # None when preprocess failed/skipped
        self.csr = csr
        self.values_finite = values_finite

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fallback" if self.inner is None else "ok"
        return f"<GuardedData {state} {self.csr!r}>"


class GuardedKernel(Kernel):
    """Wrap ``inner`` so its faults quarantine it instead of escaping.

    The wrapper is name-transparent (``name`` / ``optimizations`` /
    ``schedule`` delegate to the wrapped variant) so plans, caches and
    reports see the variant they selected; only the failure behavior
    changes.
    """

    def __init__(self, inner: Kernel, workspace=None):
        if isinstance(inner, GuardedKernel):
            inner = inner.inner
        self.inner = inner
        self.name = inner.name
        self.optimizations = inner.optimizations
        self.schedule = inner.schedule
        self.row_align = getattr(inner, "row_align", 1)
        #: faults caught by *this wrapper* (the registry aggregates per
        #: variant name across wrappers); exported by pipeline tracers.
        self.failure_events = 0
        #: default :class:`~repro.memory.workspace.Workspace` arena used
        #: when the caller does not pass one explicitly.
        self.workspace = workspace
        # Legacy/test kernels may predate the out=/workspace= plane;
        # probe once at wrap time so apply() stays cheap.
        self._apply_takes_out = _accepts_out(inner.apply)
        self._multi_takes_out = _accepts_out(inner.apply_multi)

    def _record(self, reason: str) -> None:
        self.failure_events += 1
        record_kernel_failure(self.inner.name, reason)

    # -- preprocessing -------------------------------------------------

    def preprocess(self, csr: CSRMatrix) -> GuardedData:
        values_finite = bool(np.isfinite(csr.values).all())
        if is_quarantined(self.inner.name):
            return GuardedData(None, csr, values_finite)
        try:
            inner_data = self.inner.preprocess(csr)
        except Exception as exc:
            self._record(
                f"preprocess raised {type(exc).__name__}: {exc}"
            )
            inner_data = None
        return GuardedData(inner_data, csr, values_finite)

    def preprocessing_seconds(self, csr: CSRMatrix,
                              machine: MachineSpec) -> float:
        if is_quarantined(self.inner.name):
            return 0.0
        return self.inner.preprocessing_seconds(csr, machine)

    # -- numeric plane -------------------------------------------------

    def apply(self, data: GuardedData, x: np.ndarray,
              out: np.ndarray | None = None, workspace=None) -> np.ndarray:
        workspace = workspace if workspace is not None else self.workspace
        trusted = None
        if out is not None:
            # Validate once at the engine boundary; everything nested
            # (the wrapped variant, the CSR fallback) sees the trusted
            # view and skips re-validation.
            out = check_out_buffer(out, (data.csr.nrows,), operand=x)
            trusted = trust_out_buffer(out)
        y = self._guarded(data, x, multi=False, out=trusted,
                          workspace=workspace)
        if y is None:
            # The variant may have written garbage into a caller-owned
            # out buffer before failing; the fallback recomputes fully.
            y = data.csr.matvec(x, out=trusted, workspace=workspace)
        if out is not None:
            if y is not out and y is not trusted:
                np.copyto(out, y)
            return out
        return y

    def apply_multi(self, data: GuardedData, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None) -> np.ndarray:
        workspace = workspace if workspace is not None else self.workspace
        trusted = None
        if out is not None:
            X = np.asarray(X)
            out = check_out_buffer(out, (data.csr.nrows, X.shape[1]),
                                   operand=X)
            trusted = trust_out_buffer(out)
        Y = self._guarded(data, X, multi=True, out=trusted,
                          workspace=workspace)
        if Y is None:
            Y = data.csr.matmat(X, out=trusted, workspace=workspace)
        if out is not None:
            if Y is not out and Y is not trusted:
                np.copyto(out, Y)
            return out
        return Y

    def _guarded(self, data: GuardedData, x: np.ndarray,
                 *, multi: bool, out: np.ndarray | None = None,
                 workspace=None) -> np.ndarray | None:
        """Run the wrapped variant; None means 'use the CSR fallback'."""
        name = self.inner.name
        if data.inner is None or is_quarantined(name):
            return None
        takes_out = self._multi_takes_out if multi else self._apply_takes_out
        kwargs = {"out": out, "workspace": workspace} if takes_out else {}
        try:
            result = (
                self.inner.apply_multi(data.inner, x, **kwargs)
                if multi
                else self.inner.apply(data.inner, x, **kwargs)
            )
        except Exception as exc:
            self._record(f"apply raised {type(exc).__name__}: {exc}")
            return None
        expected = (
            (data.csr.nrows, np.asarray(x).shape[1])
            if multi
            else (data.csr.nrows,)
        )
        if not isinstance(result, np.ndarray) or result.shape != expected:
            got = getattr(result, "shape", type(result).__name__)
            self._record(
                f"apply returned shape {got}, expected {expected}"
            )
            return None
        if (
            data.values_finite
            and bool(np.isfinite(x).all())
            and not bool(np.isfinite(result).all())
        ):
            self._record(
                "apply produced non-finite output from finite input"
            )
            return None
        return result

    # -- cost plane & scheduling --------------------------------------

    def cost(self, data: GuardedData, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        if data.inner is None or is_quarantined(self.inner.name):
            from ..kernels.variants import baseline_kernel

            base = baseline_kernel()
            return base.cost(base.preprocess(data.csr), machine, partition)
        return self.inner.cost(data.inner, machine, partition)

    def partition(self, data: GuardedData, nthreads: int) -> Partition:
        if data.inner is None or is_quarantined(self.inner.name):
            return make_partition(data.csr, nthreads, "balanced-nnz")
        return self.inner.partition(data.inner, nthreads)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GuardedKernel {self.inner!r}>"
