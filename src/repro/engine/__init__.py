"""repro.engine — the composable middleware execution engine.

One execution surface (:class:`Executor`: ``apply``/``apply_multi``
with the zero-allocation ``out=``/``workspace=`` contract), five
middleware layers (guard, parallel, supervision, workspace, trace) and
a declarative, schema-versioned :class:`ExecutorSpec` that
:func:`build_executor` assembles into a stack. Specs serialize into
the :class:`~repro.core.optimizer.OptimizationPlan` IR, so a
warm-started plan rebuilds the exact same stack in a fresh process::

    from repro.engine import ExecutorSpec, SupervisionSpec, build_executor
    from repro.parallel import ParallelConfig

    spec = ExecutorSpec(guard=True,
                        parallel=ParallelConfig(nthreads=4),
                        supervision=SupervisionSpec(deadline_seconds=0.5),
                        workspace="thread-local")
    engine = build_executor(csr, spec)
    y = engine.apply(x)                     # == csr.matvec(x), bit-identical

See docs/architecture.md ("The execution engine") for the layer-stack
diagram and the composition rules.
"""

from .executor import Executor, ExecutorBase, KernelExecutor, ParallelExecutor
from .guard import GuardedData, GuardedKernel
from .layers import (
    GuardLayer,
    ParallelLayer,
    SupervisionLayer,
    TraceExecutor,
    TraceLayer,
    WorkspaceExecutor,
    WorkspaceLayer,
    build_executor,
)
from .spec import (
    ENGINE_SPEC_SCHEMA_VERSION,
    WORKSPACE_MODES,
    ExecutorSpec,
    SupervisionSpec,
)
from .supervision import (
    AttemptRecord,
    SupervisedExecutor,
    SupervisionReport,
    clear_demotions,
    demoted_target,
    demotion_count,
    demotion_log,
    record_demotion,
)

__all__ = [
    "ENGINE_SPEC_SCHEMA_VERSION",
    "WORKSPACE_MODES",
    "AttemptRecord",
    "Executor",
    "ExecutorBase",
    "ExecutorSpec",
    "GuardLayer",
    "GuardedData",
    "GuardedKernel",
    "KernelExecutor",
    "ParallelExecutor",
    "ParallelLayer",
    "SupervisedExecutor",
    "SupervisionLayer",
    "SupervisionReport",
    "SupervisionSpec",
    "TraceExecutor",
    "TraceLayer",
    "WorkspaceExecutor",
    "WorkspaceLayer",
    "build_executor",
    "clear_demotions",
    "demoted_target",
    "demotion_count",
    "demotion_log",
    "record_demotion",
]
