"""The five middleware layers and the stack assembler.

Each layer is a tiny object that either *wraps a kernel* (the guard
operates at kernel granularity so it composes under the parallel
plane), *lifts a kernel into an executor* (parallel / supervision are
where execution strategy is decided), or *wraps an executor*
(workspace injection, tracing). :func:`build_executor` assembles them
in the one canonical order from a declarative
:class:`~repro.engine.spec.ExecutorSpec`::

    trace( workspace( supervision|parallel|kernel( guard(kernel) ) ) )

The composed stack is bit-identical to the hand-written wrappers it
replaced: the guard still quarantines and falls back to CSR, the
parallel plane still writes disjoint ``out=`` slices of contiguous row
chunks, and the supervision ladder still degrades
retry -> reduced width -> serial exactly as
``SupervisedSpMV`` did (it *is* the same implementation, reached
through :class:`SupervisionLayer`).
"""

from __future__ import annotations

from ..formats import CSRMatrix
from ..kernels.base import Kernel
from ..memory import Workspace
from .executor import ExecutorBase, KernelExecutor, ParallelExecutor
from .guard import GuardedKernel
from .spec import ExecutorSpec, SupervisionSpec
from .supervision import SupervisedExecutor

__all__ = [
    "GuardLayer",
    "ParallelLayer",
    "SupervisionLayer",
    "WorkspaceLayer",
    "TraceLayer",
    "build_executor",
]


class GuardLayer:
    """Kernel middleware: quarantine faults, fall back to CSR."""

    name = "guard"

    @staticmethod
    def is_guarded(kernel) -> bool:
        return isinstance(kernel, GuardedKernel)

    def wrap(self, kernel: Kernel) -> Kernel:
        """Wrap ``kernel`` in the guard; idempotent on an already
        guarded kernel (same object back, no re-wrap)."""
        if self.is_guarded(kernel):
            return kernel
        return GuardedKernel(kernel)


class ParallelLayer:
    """Lift a kernel onto the shared-memory thread pool."""

    name = "parallel"

    def __init__(self, config):
        if not hasattr(config, "nthreads"):
            raise TypeError(
                "ParallelLayer needs a ParallelConfig-like object, "
                f"got {type(config).__name__}"
            )
        self.config = config

    def lift(self, csr: CSRMatrix,
             kernel: Kernel | None = None) -> ParallelExecutor:
        return ParallelExecutor(
            csr, kernel,
            nthreads=self.config.nthreads,
            schedule=self.config.schedule,
            chunk_rows=self.config.chunk_rows,
        )


class SupervisionLayer:
    """Lift a kernel onto the fault-tolerant degradation ladder."""

    name = "supervision"

    def __init__(self, config, supervision: SupervisionSpec | None = None,
                 tracer=None):
        if not hasattr(config, "nthreads"):
            raise TypeError(
                "SupervisionLayer needs a ParallelConfig-like object, "
                f"got {type(config).__name__}"
            )
        self.config = config
        self.supervision = (
            supervision if supervision is not None else SupervisionSpec()
        )
        self.tracer = tracer

    def lift(self, csr: CSRMatrix,
             kernel: Kernel | None = None) -> SupervisedExecutor:
        sup = self.supervision
        return SupervisedExecutor(
            csr, kernel,
            nthreads=self.config.nthreads,
            schedule=self.config.schedule,
            chunk_rows=self.config.chunk_rows,
            deadline_seconds=sup.deadline_seconds,
            max_retries=sup.max_retries,
            backoff_seconds=sup.backoff_seconds,
            serial_fallback=sup.serial_fallback,
            tracer=self.tracer,
        )


class _DelegatingExecutor(ExecutorBase):
    """Executor wrapper base: unknown attributes (``last_report``,
    ``last_measurement``, ``partition``, ``csr``, ...) resolve through
    the wrapped executor, so outer layers never hide inner telemetry."""

    def __init__(self, inner):
        self.inner = inner

    def __getattr__(self, name):
        # Only reached for attributes not found on the wrapper itself.
        return getattr(self.inner, name)


class WorkspaceExecutor(_DelegatingExecutor):
    """Injects a default scratch arena into every apply."""

    def __init__(self, inner, arena: Workspace):
        super().__init__(inner)
        self.arena = arena

    def apply(self, x, out=None, workspace=None):
        return self.inner.apply(
            x, out=out,
            workspace=workspace if workspace is not None else self.arena,
        )

    def apply_multi(self, X, out=None, workspace=None):
        return self.inner.apply_multi(
            X, out=out,
            workspace=workspace if workspace is not None else self.arena,
        )

    def describe(self) -> str:
        mode = "thread-local" if self.arena.thread_local else "shared"
        return f"workspace[{mode}] -> {self.inner.describe()}"


class WorkspaceLayer:
    """Give the stack a default :class:`~repro.memory.Workspace` arena.

    ``mode`` is ``"shared"`` (one arena, single-threaded reuse) or
    ``"thread-local"`` (per-thread buffer stores, safe under the
    parallel plane). An existing arena can be injected via ``arena=``
    (e.g. the plan-cache entry's warm arena).
    """

    name = "workspace"

    def __init__(self, mode: str = "shared",
                 arena: Workspace | None = None):
        if mode not in ("shared", "thread-local"):
            raise ValueError(
                f"mode must be 'shared' or 'thread-local', got {mode!r}"
            )
        self.mode = mode
        self.arena = (
            arena if arena is not None
            else Workspace(thread_local=(mode == "thread-local"))
        )

    def wrap(self, executor) -> WorkspaceExecutor:
        return WorkspaceExecutor(executor, self.arena)


class TraceExecutor(_DelegatingExecutor):
    """Records one ``engine.apply`` span per apply on a tracer."""

    def __init__(self, inner, tracer):
        super().__init__(inner)
        self.tracer = tracer

    def apply(self, x, out=None, workspace=None):
        with self.tracer.span("engine.apply",
                              stack=self.inner.describe()) as span:
            y = self.inner.apply(x, out=out, workspace=workspace)
            span.set(rows=int(y.shape[0]))
        return y

    def apply_multi(self, X, out=None, workspace=None):
        with self.tracer.span("engine.apply_multi",
                              stack=self.inner.describe()) as span:
            Y = self.inner.apply_multi(X, out=out, workspace=workspace)
            span.set(rows=int(Y.shape[0]), rhs=int(Y.shape[1]))
        return Y

    def describe(self) -> str:
        return f"trace -> {self.inner.describe()}"


class TraceLayer:
    """Wrap an executor so every apply records an engine span."""

    name = "trace"

    def __init__(self, tracer):
        self.tracer = tracer

    def wrap(self, executor) -> TraceExecutor:
        return TraceExecutor(executor, self.tracer)


def build_executor(csr: CSRMatrix, spec: ExecutorSpec | None = None, *,
                   kernel: Kernel | None = None, data=None,
                   tracer=None, workspace: Workspace | None = None):
    """Assemble the executor stack described by ``spec``.

    Parameters
    ----------
    csr
        The matrix the stack executes.
    spec
        The declarative stack description (default: a bare serial
        :class:`~repro.engine.executor.KernelExecutor`).
    kernel
        The planned kernel to run (default: the baseline CSR kernel).
        An already-guarded kernel is not re-wrapped.
    data
        Optional preprocessed data for ``kernel`` (serial stacks only;
        ignored — and rebuilt — when the guard wraps a fresh kernel or
        a parallel layer re-chunks the matrix).
    tracer
        Tracer for the supervision layer's ``supervise`` spans and the
        trace layer's ``engine.apply`` spans. Created automatically
        when ``spec.trace`` is set and none is given.
    workspace
        Existing arena to inject (implies a workspace wrap even when
        ``spec.workspace == "none"``), e.g. a plan-cache entry's warm
        buffers.
    """
    if spec is None:
        spec = ExecutorSpec()
    if kernel is None:
        from ..kernels.variants import baseline_kernel

        kernel = baseline_kernel()
    if spec.trace and tracer is None:
        from ..pipeline.tracer import Tracer

        tracer = Tracer()

    if spec.guard:
        guarded = GuardLayer().wrap(kernel)
        if guarded is not kernel:
            data = None  # preprocessed for the unguarded kernel
            kernel = guarded

    if spec.parallel is not None:
        if spec.supervision is not None:
            executor = SupervisionLayer(
                spec.parallel, spec.supervision, tracer=tracer
            ).lift(csr, kernel)
        else:
            executor = ParallelLayer(spec.parallel).lift(csr, kernel)
    else:
        executor = KernelExecutor(csr, kernel, data=data)

    if spec.workspace != "none" or workspace is not None:
        mode = spec.workspace if spec.workspace != "none" else "shared"
        executor = WorkspaceLayer(mode=mode, arena=workspace).wrap(executor)

    if spec.trace:
        executor = TraceLayer(tracer).wrap(executor)
    return executor
