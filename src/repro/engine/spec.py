"""Declarative, schema-versioned execution-stack specification.

An :class:`ExecutorSpec` describes one composed execution stack — which
middleware layers (:mod:`repro.engine.layers`) wrap the planned kernel
and with what configuration — as plain data:

* ``guard`` — wrap the kernel in the guard layer (fault quarantine +
  bit-identical CSR fallback);
* ``parallel`` — a :class:`~repro.parallel.plane.ParallelConfig`; when
  set, applies run on the shared-memory thread pool;
* ``supervision`` — a :class:`SupervisionSpec` (requires ``parallel``);
  failures degrade through the retry/serial ladder instead of raising;
* ``workspace`` — ``"none"`` | ``"shared"`` | ``"thread-local"``: give
  the stack its own default scratch arena;
* ``trace`` — record one ``engine.apply`` span per apply.

Specs serialize (:meth:`ExecutorSpec.to_dict` / ``from_dict`` under
:data:`ENGINE_SPEC_SCHEMA_VERSION`) and are folded into the
:class:`~repro.core.optimizer.OptimizationPlan` IR and the plan-cache
keys, so a warm-started plan reconstructs the exact same stack in a
fresh process (``repro.engine.build_executor(csr, plan.executor_spec)``).

Cache-key semantics: :meth:`ExecutorSpec.cache_signature` deliberately
excludes the ``guard`` and ``trace`` axes. Guarding re-wraps a cached
kernel on lookup (guarded and unguarded optimizers *share* plan
entries — see ``AdaptiveSpMV._lookup``) and tracing is pure
observability; neither changes what was planned. The parallel,
supervision and workspace axes do partition the cache. For a spec
without supervision/workspace the signature degenerates to the exact
pre-engine strings (``"serial"`` / ``ParallelConfig.signature()``), so
plan caches saved by earlier builds still warm-start bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.plane import ParallelConfig

__all__ = [
    "ENGINE_SPEC_SCHEMA_VERSION",
    "SupervisionSpec",
    "ExecutorSpec",
    "WORKSPACE_MODES",
]

#: Version of the serialized :class:`ExecutorSpec` layout.
ENGINE_SPEC_SCHEMA_VERSION = 1

#: Valid values of :attr:`ExecutorSpec.workspace`.
WORKSPACE_MODES = ("none", "shared", "thread-local")


@dataclass(frozen=True)
class SupervisionSpec:
    """Configuration of the supervision layer's degradation ladder.

    Field defaults match :class:`~repro.engine.supervision.
    SupervisedExecutor` exactly, so ``SupervisionSpec()`` reproduces the
    historical ``SupervisedSpMV`` behavior bit-for-bit.
    """

    deadline_seconds: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.001
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if float(self.backoff_seconds) < 0.0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )

    def signature(self) -> str:
        """Stable content string (cache keys, reports)."""
        deadline = (
            "none" if self.deadline_seconds is None
            else f"{float(self.deadline_seconds):g}"
        )
        return (
            f"supervise:deadline={deadline}"
            f",retries={int(self.max_retries)}"
            f",backoff={float(self.backoff_seconds):g}"
            f",serial_fallback={int(bool(self.serial_fallback))}"
        )

    def to_dict(self) -> dict:
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_retries": int(self.max_retries),
            "backoff_seconds": float(self.backoff_seconds),
            "serial_fallback": bool(self.serial_fallback),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SupervisionSpec":
        deadline = payload.get("deadline_seconds")
        return cls(
            deadline_seconds=None if deadline is None else float(deadline),
            max_retries=int(payload.get("max_retries", 2)),
            backoff_seconds=float(payload.get("backoff_seconds", 0.001)),
            serial_fallback=bool(payload.get("serial_fallback", True)),
        )


@dataclass(frozen=True)
class ExecutorSpec:
    """One declarative description of a composed execution stack."""

    guard: bool = False
    parallel: ParallelConfig | None = None
    supervision: SupervisionSpec | None = None
    workspace: str = "none"
    trace: bool = False

    def __post_init__(self) -> None:
        if self.parallel is not None and not hasattr(
                self.parallel, "signature"):
            raise TypeError(
                "parallel must be a repro.parallel.ParallelConfig "
                "(or any object with a signature() method), got "
                f"{type(self.parallel).__name__}"
            )
        if self.supervision is not None and self.parallel is None:
            raise ValueError(
                "supervision requires a parallel config: the ladder "
                "degrades *from* a parallel width"
            )
        if self.workspace not in WORKSPACE_MODES:
            raise ValueError(
                f"workspace must be one of {WORKSPACE_MODES}, "
                f"got {self.workspace!r}"
            )

    # -- signatures -----------------------------------------------------

    def cache_signature(self) -> str:
        """Plan-cache key component (see the module docstring for why
        ``guard``/``trace`` are excluded and why the default collapses
        to the legacy ``"serial"`` string)."""
        base = (
            self.parallel.signature() if self.parallel is not None
            else "serial"
        )
        parts = [base]
        if self.supervision is not None:
            parts.append(self.supervision.signature())
        if self.workspace != "none":
            parts.append(f"workspace={self.workspace}")
        return ";".join(parts)

    def signature(self) -> str:
        """Full content string over every axis (stack descriptions,
        telemetry) — unlike :meth:`cache_signature` this one includes
        ``guard`` and ``trace``."""
        parts = [f"guard={int(self.guard)}", self.cache_signature()]
        if self.trace:
            parts.append("trace")
        return ";".join(parts)

    def layer_names(self) -> tuple[str, ...]:
        """Middleware layers this spec composes, outermost last."""
        names: list[str] = []
        if self.guard:
            names.append("guard")
        if self.supervision is not None:
            names.append("supervision")
        elif self.parallel is not None:
            names.append("parallel")
        if self.workspace != "none":
            names.append("workspace")
        if self.trace:
            names.append("trace")
        return tuple(names)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        parallel = None
        if self.parallel is not None:
            parallel = {
                "nthreads": int(self.parallel.nthreads),
                "schedule": self.parallel.schedule,
                "chunk_rows": self.parallel.chunk_rows,
            }
        return {
            "schema_version": ENGINE_SPEC_SCHEMA_VERSION,
            "guard": bool(self.guard),
            "parallel": parallel,
            "supervision": (
                None if self.supervision is None
                else self.supervision.to_dict()
            ),
            "workspace": self.workspace,
            "trace": bool(self.trace),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutorSpec":
        version = payload.get("schema_version")
        if version != ENGINE_SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported executor-spec schema {version!r} "
                f"(this build reads {ENGINE_SPEC_SCHEMA_VERSION})"
            )
        parallel = payload.get("parallel")
        if parallel is not None:
            chunk_rows = parallel.get("chunk_rows")
            parallel = ParallelConfig(
                nthreads=int(parallel["nthreads"]),
                schedule=parallel.get("schedule", "balanced-nnz"),
                chunk_rows=None if chunk_rows is None else int(chunk_rows),
            )
        supervision = payload.get("supervision")
        if supervision is not None:
            supervision = SupervisionSpec.from_dict(supervision)
        return cls(
            guard=bool(payload.get("guard", False)),
            parallel=parallel,
            supervision=supervision,
            workspace=payload.get("workspace", "none"),
            trace=bool(payload.get("trace", False)),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        layers = "+".join(self.layer_names()) or "kernel-only"
        return f"ExecutorSpec[{layers}]"
