"""Compatibility shim: the guarded execution layer moved to the engine.

The implementation now lives in :mod:`repro.engine.guard`, where it is
the engine's :class:`~repro.engine.layers.GuardLayer` middleware (and
the validation boundary for caller-owned ``out=`` buffers). This module
re-exports the historical names so ``from repro.guard import
GuardedKernel`` keeps working; new code should compose the guard
through ``repro.engine.ExecutorSpec(guard=True)`` instead of wrapping
kernels by hand.
"""

from __future__ import annotations

from ..engine.guard import GuardedData, GuardedKernel, _accepts_out

__all__ = ["GuardedData", "GuardedKernel", "_accepts_out"]
