"""Deterministic fault injection for robustness testing.

The constructors of the formats reject most malformed input up front,
so realistic corruption (bit flips, buggy converters, concurrent
mutation) has to be injected *past* the constructor: every injector
here clones a format instance attribute-by-attribute — bypassing
``__init__`` — then damages exactly one invariant of the clone. The
original is never touched, and a fixed ``seed`` makes every corruption
reproducible.

Three families of faults:

* **structural** (:func:`inject_structural_fault`): pointer arrays made
  non-monotonic or overrunning, index arrays pushed out of bounds or
  negative, parallel arrays truncated to mismatched lengths;
* **value** (:func:`inject_value_fault`): NaN / +-Inf poisoning of the
  numeric payload;
* **stream** (:func:`corrupt_matrix_market`): truncated or malformed
  MatrixMarket text, exercising the reader's typed error paths.

:class:`BrokenKernel` rounds the module out: a kernel wrapper that
misbehaves on demand (raises, poisons its output, or returns the wrong
shape), used to exercise the guarded-execution quarantine.
:class:`ParallelFaultKernel` is its parallel-plane sibling: wrapped
*inside* a :class:`~repro.parallel.plane.ParallelKernel`, it makes the
first K chunk applies crash, hang (a bounded sleep), or poison their
partition — deterministically, whichever pool worker picks the chunk
up — so the supervision/degradation ladder of
:class:`~repro.engine.supervision.SupervisedExecutor` is testable end to
end (see docs/robustness.md).
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from ..formats import (
    BCSRMatrix,
    COOMatrix,
    CSRMatrix,
    DecomposedCSR,
    DeltaCSR,
    SellCSigmaMatrix,
    SparseFormat,
)
from ..kernels.base import Kernel

__all__ = [
    "STRUCTURAL_FAULTS",
    "VALUE_FAULTS",
    "MM_FAULTS",
    "applicable_faults",
    "clone_format",
    "inject_structural_fault",
    "inject_value_fault",
    "corrupt_matrix_market",
    "BrokenKernel",
    "PARALLEL_FAULTS",
    "ParallelFaultKernel",
]

#: All structural corruption kinds understood by
#: :func:`inject_structural_fault` (not every kind applies to every
#: format — see :func:`applicable_faults`).
STRUCTURAL_FAULTS = (
    "pointer-nonmonotonic",
    "pointer-overrun",
    "index-out-of-bounds",
    "index-negative",
    "length-mismatch",
)

#: Value poisoning kinds for :func:`inject_value_fault`.
VALUE_FAULTS = ("nan", "inf", "-inf")

#: Stream corruption kinds for :func:`corrupt_matrix_market`.
#: ``blank-lines`` is the benign control: readers must tolerate it.
MM_FAULTS = (
    "truncate-entries",
    "truncate-mid-line",
    "index-out-of-range",
    "malformed-entry",
    "blank-lines",
)

# Per-format array roles: (pointer attr, index attr, index upper bound
# fn, values attr path). COO has no pointer array.
_POINTER_ATTR = {
    CSRMatrix: "rowptr",
    DeltaCSR: "rowptr",
    BCSRMatrix: "block_rowptr",
    SellCSigmaMatrix: "chunk_ptr",
    DecomposedCSR: "long_rowptr",
    COOMatrix: None,
}
_INDEX_ATTR = {
    CSRMatrix: "colind",
    DeltaCSR: "reset_col",
    BCSRMatrix: "block_colind",
    SellCSigmaMatrix: "colind",
    DecomposedCSR: "long_colind",
    COOMatrix: "cols",
}
_VALUES_PATH = {
    BCSRMatrix: ("block_values",),
    DecomposedCSR: ("short", "values"),
}


def _all_slots(cls) -> tuple[str, ...]:
    slots: list[str] = []
    for klass in cls.__mro__:
        slots.extend(getattr(klass, "__slots__", ()))
    return tuple(dict.fromkeys(slots))


def clone_format(fmt: SparseFormat) -> SparseFormat:
    """Deep-copy a format instance without running its constructor.

    Arrays are copied, nested formats are cloned recursively, and
    derived caches (SELL-C-sigma's row-major regrouping) are dropped so
    a later mutation cannot be masked by stale precomputed state.
    """
    cls = type(fmt)
    clone = object.__new__(cls)
    for slot in _all_slots(cls):
        if not hasattr(fmt, slot):
            continue
        value = getattr(fmt, slot)
        if isinstance(value, np.ndarray):
            value = value.copy()
        elif isinstance(value, SparseFormat):
            value = clone_format(value)
        object.__setattr__(clone, slot, value)
    if hasattr(clone, "_rm"):
        object.__setattr__(clone, "_rm", None)
    return clone


def applicable_faults(fmt: SparseFormat) -> tuple[str, ...]:
    """The structural fault kinds that make sense for this *instance*.

    Besides per-format capabilities (COO has no pointer array), faults
    whose target array is empty on this particular matrix are dropped —
    e.g. a decomposed matrix with no long rows has nothing to corrupt
    in its long-part pointer/index arrays.
    """
    kinds = list(STRUCTURAL_FAULTS)
    ptr_attr = _POINTER_ATTR.get(type(fmt))
    if ptr_attr is None:
        kinds = [k for k in kinds if not k.startswith("pointer-")]
    else:
        ptr = getattr(fmt, ptr_attr)
        if ptr.size < 2 or ptr[-1] <= 0:
            kinds = [k for k in kinds if not k.startswith("pointer-")]
    if getattr(fmt, _INDEX_ATTR[type(fmt)]).size == 0:
        kinds = [k for k in kinds if not k.startswith("index-")]
    if _values_array(fmt).shape[0] == 0:
        kinds = [k for k in kinds if k != "length-mismatch"]
    return tuple(kinds)


def _values_array(fmt: SparseFormat) -> np.ndarray:
    target = fmt
    for attr in _VALUES_PATH.get(type(fmt), ("values",))[:-1]:
        target = getattr(target, attr)
    return getattr(target, _VALUES_PATH.get(type(fmt), ("values",))[-1])


def _set_values_array(fmt: SparseFormat, arr: np.ndarray) -> None:
    path = _VALUES_PATH.get(type(fmt), ("values",))
    target = fmt
    for attr in path[:-1]:
        target = getattr(target, attr)
    object.__setattr__(target, path[-1], arr)


def _index_bound(fmt: SparseFormat) -> int:
    if isinstance(fmt, BCSRMatrix):
        return -(-fmt.ncols // fmt.block)
    return fmt.ncols


def inject_structural_fault(fmt: SparseFormat, kind: str,
                            seed: int = 0) -> SparseFormat:
    """Return a copy of ``fmt`` with one structural invariant broken.

    Requires a non-trivial matrix (at least one stored element in the
    array the fault targets); raises ``ValueError`` when ``kind`` is
    unknown or not applicable to this format.
    """
    if kind not in STRUCTURAL_FAULTS:
        raise ValueError(
            f"unknown structural fault {kind!r}; available: "
            f"{STRUCTURAL_FAULTS}"
        )
    if kind not in applicable_faults(fmt):
        raise ValueError(
            f"fault {kind!r} is not applicable to {fmt.format_name}"
        )
    rng = np.random.default_rng(seed)
    clone = clone_format(fmt)

    if kind.startswith("pointer-"):
        ptr = getattr(clone, _POINTER_ATTR[type(fmt)])
        if ptr.size < 2 or ptr[-1] <= 0:
            raise ValueError(
                f"{fmt.format_name} has no pointer entries to corrupt"
            )
        if kind == "pointer-nonmonotonic":
            # Force a strict decrease at a random interior boundary.
            p = int(rng.integers(1, ptr.size))
            ptr[p] = ptr[p - 1] - 1
        else:  # pointer-overrun
            ptr[-1] = ptr[-1] + 7
        return clone

    idx = getattr(clone, _INDEX_ATTR[type(fmt)])
    if kind in ("index-out-of-bounds", "index-negative"):
        if idx.size == 0:
            raise ValueError(
                f"{fmt.format_name} has no index entries to corrupt"
            )
        p = int(rng.integers(0, idx.size))
        idx[p] = _index_bound(fmt) if kind == "index-out-of-bounds" else -1
        return clone

    # length-mismatch: drop the last stored value so parallel arrays
    # disagree on their length.
    values = _values_array(clone)
    if values.shape[0] == 0:
        raise ValueError(f"{fmt.format_name} has no values to truncate")
    _set_values_array(clone, values[:-1])
    return clone


def inject_value_fault(fmt: SparseFormat, kind: str = "nan",
                       position: int | None = None,
                       seed: int = 0) -> SparseFormat:
    """Return a copy of ``fmt`` with one stored value poisoned.

    Without an explicit ``position``, a *stored nonzero* is picked (not
    a padding zero of a blocked/padded layout) — the model is a bit
    flip in real payload data, and it keeps structural invariants like
    BCSR's nonzero accounting intact.
    """
    if kind not in VALUE_FAULTS:
        raise ValueError(
            f"unknown value fault {kind!r}; available: {VALUE_FAULTS}"
        )
    clone = clone_format(fmt)
    values = _values_array(clone)
    flat = values.reshape(-1)
    if flat.size == 0:
        raise ValueError(f"{fmt.format_name} has no values to poison")
    if position is None:
        stored = np.flatnonzero(flat)
        pool = stored if stored.size else np.arange(flat.size)
        position = int(
            pool[np.random.default_rng(seed).integers(0, pool.size)]
        )
    flat[position] = {"nan": np.nan, "inf": np.inf, "-inf": -np.inf}[kind]
    return clone


def corrupt_matrix_market(text: str, kind: str, seed: int = 0) -> str:
    """Return a corrupted copy of MatrixMarket ``text``.

    ``blank-lines`` is the benign variant (readers must accept it);
    every other kind must make :func:`repro.matrices.read_matrix_market`
    raise a :class:`~repro.matrices.mmio.MatrixMarketError`.
    """
    if kind not in MM_FAULTS:
        raise ValueError(
            f"unknown MatrixMarket fault {kind!r}; available: {MM_FAULTS}"
        )
    lines = text.splitlines()
    # Locate the size line: first non-comment line after the header.
    size_at = next(
        i for i in range(1, len(lines)) if not lines[i].startswith("%")
    )
    entries_at = size_at + 1
    n_entries = len(lines) - entries_at
    if n_entries < 1:
        raise ValueError("matrix has no entry lines to corrupt")
    rng = np.random.default_rng(seed)

    if kind == "truncate-entries":
        keep = max(n_entries - max(n_entries // 3, 1), 0)
        lines = lines[: entries_at + keep]
    elif kind == "truncate-mid-line":
        # Cut the last entry mid-token so the line no longer has the
        # full token count (a prefix of the value could still parse).
        lines[-1] = lines[-1].rsplit(None, 1)[0]
    elif kind == "index-out-of-range":
        p = entries_at + int(rng.integers(0, n_entries))
        tokens = lines[p].split()
        tokens[0] = str(10 ** 9)
        lines[p] = " ".join(tokens)
    elif kind == "malformed-entry":
        p = entries_at + int(rng.integers(0, n_entries))
        lines[p] = "1 not-a-number 3.0"
    else:  # blank-lines
        out = lines[:entries_at]
        for line in lines[entries_at:]:
            out.append(line)
            out.append("")
        lines = out
    return "\n".join(lines) + "\n"


class BrokenKernel(Kernel):
    """A kernel variant that misbehaves on demand (test instrument).

    Wraps ``inner`` and, starting from call number ``fail_after``
    (0-based, counted across ``apply`` and ``apply_multi``),

    * ``mode="raise"``   raises ``RuntimeError``,
    * ``mode="nan"``     poisons its first output element with NaN,
    * ``mode="shape"``   returns a truncated (wrong-shape) result.
    """

    def __init__(self, inner: Kernel, mode: str = "raise",
                 fail_after: int = 0, name: str | None = None):
        if mode not in ("raise", "nan", "shape"):
            raise ValueError("mode must be 'raise', 'nan' or 'shape'")
        self.inner = inner
        self.mode = mode
        self.fail_after = int(fail_after)
        self.calls = 0
        self.name = name if name is not None else f"broken[{inner.name}]"
        self.optimizations = inner.optimizations
        self.schedule = inner.schedule

    def preprocess(self, csr):
        return self.inner.preprocess(csr)

    def preprocessing_seconds(self, csr, machine):
        return self.inner.preprocessing_seconds(csr, machine)

    def _sabotage(self, out: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.fail_after:
            return out
        if self.mode == "raise":
            raise RuntimeError("injected kernel fault")
        if self.mode == "nan":
            out = out.copy()
            out.reshape(-1)[0] = np.nan
            return out
        return out[:-1]

    def apply(self, data, x):
        return self._sabotage(self.inner.apply(data, x))

    def apply_multi(self, data, X):
        return self._sabotage(self.inner.apply_multi(data, X))

    def cost(self, data, machine, partition):
        return self.inner.cost(data, machine, partition)

    def partition(self, data, nthreads):
        return self.inner.partition(data, nthreads)


#: Worker-fault kinds injected by :class:`ParallelFaultKernel`.
PARALLEL_FAULTS = ("crash", "hang", "poison")


class ParallelFaultKernel(Kernel):
    """Deterministic worker-fault injector for the parallel plane.

    Wrap this *inside* a :class:`~repro.parallel.plane.ParallelKernel`
    (or hand it to :class:`~repro.engine.supervision.SupervisedExecutor`)
    and the first ``fail_applies`` chunk applies — counted globally
    across threads under a lock, so the injection is deterministic no
    matter which pool worker picks a chunk up — misbehave:

    * ``mode="crash"``  raises ``RuntimeError`` (worker crash);
    * ``mode="hang"``   sleeps ``hang_seconds`` before computing (a
      bounded hang the deadline watchdog must catch; the sleep happens
      *outside* the counter lock so healthy workers are not serialized
      behind the hung one);
    * ``mode="poison"`` computes normally, then overwrites the first
      output element with NaN (a poisoned partition: no exception, the
      supervisor's output validation has to find it).

    ``fail_applies=math.inf`` misbehaves forever — every parallel rung
    of the degradation ladder fails and only the serial fallback (which
    bypasses this kernel entirely) survives. ``faults_injected`` and
    ``applies`` expose the counters; :meth:`reset` re-arms the
    injector.
    """

    def __init__(self, inner: Kernel, mode: str = "crash",
                 fail_applies: float = 1, hang_seconds: float = 0.25,
                 name: str | None = None):
        if mode not in PARALLEL_FAULTS:
            raise ValueError(
                f"mode must be one of {PARALLEL_FAULTS}, got {mode!r}"
            )
        if not (fail_applies >= 0):
            raise ValueError(
                f"fail_applies must be >= 0, got {fail_applies}"
            )
        self.inner = inner
        self.mode = mode
        self.fail_applies = (
            math.inf if math.isinf(fail_applies) else int(fail_applies)
        )
        self.hang_seconds = float(hang_seconds)
        self.name = name if name is not None else f"parfault[{inner.name}]"
        self.optimizations = inner.optimizations
        self.schedule = inner.schedule
        self.row_align = int(getattr(inner, "row_align", 1) or 1)
        self._lock = threading.Lock()
        self.applies = 0
        self.faults_injected = 0

    def reset(self) -> None:
        """Re-arm the injector (e.g. between ladder experiments)."""
        with self._lock:
            self.applies = 0
            self.faults_injected = 0

    def _decide(self) -> bool:
        """Atomically count this apply; True when it must misbehave."""
        with self._lock:
            self.applies += 1
            misbehave = self.applies <= self.fail_applies
            if misbehave:
                self.faults_injected += 1
            return misbehave

    def preprocess(self, csr):
        return self.inner.preprocess(csr)

    def preprocessing_seconds(self, csr, machine):
        return self.inner.preprocessing_seconds(csr, machine)

    def _faulty(self, apply_fn, data, x, out, workspace) -> np.ndarray:
        misbehave = self._decide()
        if misbehave and self.mode == "crash":
            raise RuntimeError("injected worker crash")
        if misbehave and self.mode == "hang":
            time.sleep(self.hang_seconds)  # outside the lock
        y = apply_fn(data, x, out=out, workspace=workspace)
        if misbehave and self.mode == "poison":
            y.reshape(-1)[0] = np.nan
        return y

    def apply(self, data, x, out=None, workspace=None):
        return self._faulty(self.inner.apply, data, x, out, workspace)

    def apply_multi(self, data, X, out=None, workspace=None):
        return self._faulty(self.inner.apply_multi, data, X, out,
                            workspace)

    def cost(self, data, machine, partition):
        return self.inner.cost(data, machine, partition)

    def partition(self, data, nthreads):
        return self.inner.partition(data, nthreads)
