"""Guarded execution layer (robustness subsystem).

Hardens the pipeline end to end against malformed structural input,
NaN/Inf-poisoned values and misbehaving kernel variants:

* **validation** — every format exposes ``validate(strict=...)``
  (see :meth:`repro.formats.base.SparseFormat.validate`); the
  :func:`validate_format` convenience here dispatches to it and the
  error taxonomy lives in :mod:`repro.errors`;
* **fault injection** (:mod:`repro.guard.faults`) — deterministic
  corruption of structures, value poisoning and MatrixMarket stream
  truncation, used by ``tests/faults/`` to prove every layer fails
  loudly or degrades cleanly;
* **guarded kernels** (:mod:`repro.guard.guarded`) — kernel wrappers
  that quarantine faulting variants (per-variant failure counters in
  :mod:`repro.kernels.registry`) and fall back to the reference CSR
  kernel bit-identically.

See ``docs/robustness.md`` for the full semantics.
"""

from ..errors import (
    ChunkFailure,
    FormatValidationError,
    KernelExecutionError,
    ParallelExecutionError,
    ReproError,
    SolverBreakdownError,
    ValidationIssue,
    ValidationReport,
)
from ..kernels.registry import (
    QUARANTINE_THRESHOLD,
    clear_quarantine,
    is_quarantined,
    kernel_failure_count,
    kernel_failure_log,
    quarantined_kernel_names,
    record_kernel_failure,
)
from .faults import (
    MM_FAULTS,
    PARALLEL_FAULTS,
    STRUCTURAL_FAULTS,
    VALUE_FAULTS,
    BrokenKernel,
    ParallelFaultKernel,
    applicable_faults,
    clone_format,
    corrupt_matrix_market,
    inject_structural_fault,
    inject_value_fault,
)
from .guarded import GuardedData, GuardedKernel

__all__ = [
    # error taxonomy
    "ReproError",
    "FormatValidationError",
    "KernelExecutionError",
    "SolverBreakdownError",
    "ParallelExecutionError",
    "ChunkFailure",
    "ValidationIssue",
    "ValidationReport",
    "validate_format",
    # quarantine
    "QUARANTINE_THRESHOLD",
    "record_kernel_failure",
    "kernel_failure_count",
    "kernel_failure_log",
    "is_quarantined",
    "quarantined_kernel_names",
    "clear_quarantine",
    # guarded execution
    "GuardedData",
    "GuardedKernel",
    # fault injection
    "STRUCTURAL_FAULTS",
    "VALUE_FAULTS",
    "MM_FAULTS",
    "applicable_faults",
    "clone_format",
    "inject_structural_fault",
    "inject_value_fault",
    "corrupt_matrix_market",
    "BrokenKernel",
    "PARALLEL_FAULTS",
    "ParallelFaultKernel",
]


def validate_format(fmt, *, strict: bool = True,
                    check_values: bool = True) -> ValidationReport:
    """Validate any :class:`~repro.formats.base.SparseFormat` instance.

    Equivalent to ``fmt.validate(...)``; provided so guard-layer callers
    can validate without importing the formats package.
    """
    return fmt.validate(strict=strict, check_values=check_values)
