"""Typed exception hierarchy and validation reporting for the library.

Every failure the guard layer (:mod:`repro.guard`) can detect maps to a
subclass of :class:`ReproError`, so callers can catch one base type at a
service boundary instead of fishing for bare ``ValueError`` /
``RuntimeError`` raised deep inside vectorized NumPy code. The concrete
subclasses also inherit the builtin exception they historically were
(``ValueError`` for malformed input, ``RuntimeError`` for execution
faults), so pre-existing ``except ValueError`` call sites keep working.

:class:`ValidationReport` is the permissive-mode counterpart: instead of
raising on the first defect, a format's ``validate(strict=False)``
collects every detected issue into a report the caller can log, surface
in a CLI, or turn into a :class:`FormatValidationError` later via
:meth:`ValidationReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ReproError",
    "FormatValidationError",
    "KernelExecutionError",
    "SolverBreakdownError",
    "ParallelExecutionError",
    "ChunkFailure",
    "PlanCacheWarning",
    "ValidationIssue",
    "ValidationReport",
]


class ReproError(Exception):
    """Base class for all typed errors raised by this library."""


class KernelExecutionError(ReproError, RuntimeError):
    """A kernel variant failed during execution (raised, produced
    non-finite output from finite input, or returned a wrong shape).

    The guarded execution layer normally *recovers* from these by
    falling back to the reference CSR kernel; this exception is raised
    only when recovery is impossible (e.g. no fallback data available).
    """


class SolverBreakdownError(ReproError, RuntimeError):
    """An iterative solver broke down irrecoverably.

    The solvers themselves prefer returning a diagnostic
    ``SolveResult`` with ``report.breakdown`` set; this type exists for
    callers who want to escalate such a result into an exception.
    """


@dataclass(frozen=True)
class ChunkFailure:
    """Attribution record of one failed, hung or poisoned parallel
    chunk: which contiguous row range, on which worker slot, and how it
    failed. Carried by :class:`ParallelExecutionError` and by the
    supervision reports of :mod:`repro.parallel.supervisor`."""

    #: index of the chunk in its :class:`~repro.parallel.plane.
    #: ParallelData` (``-1`` when a worker timed out between chunks).
    chunk_index: int
    #: contiguous row range ``[row_lo, row_hi)`` of the chunk (``-1``
    #: bounds when no chunk was attributable).
    row_lo: int
    row_hi: int
    #: pool worker slot (thread index) the failure was observed on.
    thread_slot: int
    #: ``"exception"`` | ``"timeout"`` | ``"poisoned"``.
    kind: str
    #: human-readable detail (exception repr, non-finite row count, ...).
    detail: str = ""

    def __str__(self) -> str:
        where = (
            f"chunk {self.chunk_index} rows [{self.row_lo}, {self.row_hi})"
            if self.chunk_index >= 0 else "no chunk"
        )
        tail = f" ({self.detail})" if self.detail else ""
        return f"{where} on slot {self.thread_slot}: {self.kind}{tail}"


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel apply failed and its output must not be trusted.

    Raised by the shared-memory execution plane when a pool worker
    faulted (``kind == "worker-fault"``) or the apply's deadline budget
    was breached with chunks still running (``kind == "deadline"``).
    The caller-provided ``out=`` buffer is never left partially
    written: it is NaN-invalidated before this error escapes (a
    breached deadline additionally computes into private scratch so an
    abandoned worker can never race a caller-owned buffer).

    ``failures`` carries one :class:`ChunkFailure` per affected chunk
    with partition/chunk attribution; the supervision layer
    (:class:`~repro.engine.supervision.SupervisedExecutor`) catches this
    type to drive its retry/degradation ladder.
    """

    def __init__(self, kind: str, failures=(), *, nthreads: int = 0,
                 schedule: str = "", wall_seconds: float = 0.0,
                 deadline_seconds: float | None = None):
        self.kind = kind
        self.failures = tuple(failures)
        self.nthreads = int(nthreads)
        self.schedule = schedule
        self.wall_seconds = float(wall_seconds)
        self.deadline_seconds = deadline_seconds
        detail = "; ".join(str(f) for f in self.failures)
        budget = (
            f" (deadline {1e3 * deadline_seconds:.1f} ms)"
            if deadline_seconds is not None else ""
        )
        super().__init__(
            f"parallel apply failed [{kind}] at nthreads={self.nthreads} "
            f"schedule={self.schedule!r} after "
            f"{1e3 * self.wall_seconds:.2f} ms{budget}: "
            f"{detail or 'no chunk attribution'}"
        )


class PlanCacheWarning(UserWarning):
    """A persisted plan cache could not be used (truncated, corrupted,
    checksum mismatch, or old schema) and service degraded to an empty
    cache instead of raising mid-serve. Emitted by
    :meth:`repro.core.optimizer.PlanCache.load`."""


@dataclass(frozen=True)
class ValidationIssue:
    """One defect found by structural or value validation."""

    #: machine-readable slug, e.g. ``"rowptr-nonmonotonic"``.
    code: str
    #: human-readable description with offending positions/values.
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """Accumulated result of one ``validate()`` pass over a format."""

    format_name: str
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, code: str, message: str) -> None:
        self.issues.append(ValidationIssue(code, message))

    def extend(self, other: "ValidationReport", prefix: str = "") -> None:
        """Merge a sub-report (e.g. a nested format's), prefixing codes."""
        for issue in other.issues:
            self.add(prefix + issue.code, issue.message)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise FormatValidationError(self)

    def summary(self) -> str:
        if self.ok:
            return f"{self.format_name}: ok"
        lines = [f"{self.format_name}: {len(self.issues)} issue(s)"]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


class FormatValidationError(ReproError, ValueError):
    """A sparse format failed structural or value validation.

    Carries the full :class:`ValidationReport` as ``.report`` so strict
    callers still see every defect, not just the first.
    """

    def __init__(self, report: ValidationReport):
        self.report = report
        detail = "; ".join(str(issue) for issue in report.issues)
        super().__init__(
            f"{report.format_name} failed validation with "
            f"{len(report.issues)} issue(s): {detail}"
        )
