"""Typed exception hierarchy and validation reporting for the library.

Every failure the guard layer (:mod:`repro.guard`) can detect maps to a
subclass of :class:`ReproError`, so callers can catch one base type at a
service boundary instead of fishing for bare ``ValueError`` /
``RuntimeError`` raised deep inside vectorized NumPy code. The concrete
subclasses also inherit the builtin exception they historically were
(``ValueError`` for malformed input, ``RuntimeError`` for execution
faults), so pre-existing ``except ValueError`` call sites keep working.

:class:`ValidationReport` is the permissive-mode counterpart: instead of
raising on the first defect, a format's ``validate(strict=False)``
collects every detected issue into a report the caller can log, surface
in a CLI, or turn into a :class:`FormatValidationError` later via
:meth:`ValidationReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ReproError",
    "FormatValidationError",
    "KernelExecutionError",
    "SolverBreakdownError",
    "ValidationIssue",
    "ValidationReport",
]


class ReproError(Exception):
    """Base class for all typed errors raised by this library."""


class KernelExecutionError(ReproError, RuntimeError):
    """A kernel variant failed during execution (raised, produced
    non-finite output from finite input, or returned a wrong shape).

    The guarded execution layer normally *recovers* from these by
    falling back to the reference CSR kernel; this exception is raised
    only when recovery is impossible (e.g. no fallback data available).
    """


class SolverBreakdownError(ReproError, RuntimeError):
    """An iterative solver broke down irrecoverably.

    The solvers themselves prefer returning a diagnostic
    ``SolveResult`` with ``report.breakdown`` set; this type exists for
    callers who want to escalate such a result into an exception.
    """


@dataclass(frozen=True)
class ValidationIssue:
    """One defect found by structural or value validation."""

    #: machine-readable slug, e.g. ``"rowptr-nonmonotonic"``.
    code: str
    #: human-readable description with offending positions/values.
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """Accumulated result of one ``validate()`` pass over a format."""

    format_name: str
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, code: str, message: str) -> None:
        self.issues.append(ValidationIssue(code, message))

    def extend(self, other: "ValidationReport", prefix: str = "") -> None:
        """Merge a sub-report (e.g. a nested format's), prefixing codes."""
        for issue in other.issues:
            self.add(prefix + issue.code, issue.message)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise FormatValidationError(self)

    def summary(self) -> str:
        if self.ok:
            return f"{self.format_name}: ok"
        lines = [f"{self.format_name}: {len(self.issues)} issue(s)"]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


class FormatValidationError(ReproError, ValueError):
    """A sparse format failed structural or value validation.

    Carries the full :class:`ValidationReport` as ``.report`` so strict
    callers still see every defect, not just the first.
    """

    def __init__(self, report: ValidationReport):
        self.report = report
        detail = "; ".join(str(issue) for issue in report.issues)
        super().__init__(
            f"{report.format_name} failed validation with "
            f"{len(report.issues)} issue(s): {detail}"
        )
