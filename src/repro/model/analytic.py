"""The analytic cost model — the simulator behind one protocol.

:class:`AnalyticModel` is the single home of the modeled performance
estimates that used to be scattered across the codebase: the
per-thread overlap model of :class:`~repro.machine.engine.
ExecutionEngine`, the per-class bound derivation that lived in
``core/bounds.measure_bounds``, and the micro-kernel cost planes of
:mod:`repro.kernels.costmodel`. Consumers (pipeline stages, the
optimizer, baselines, schedulers) talk to the :class:`~repro.model.
base.CostModel` protocol and never construct an ``ExecutionEngine``
themselves, which is what lets :class:`~repro.model.calibrated.
CalibratedModel` swap in transparently.
"""

from __future__ import annotations

import numpy as np

from ..machine import ExecutionEngine, MachineSpec, RunResult
from .base import PerformanceBounds, Prediction

__all__ = ["AnalyticModel"]


class AnalyticModel:
    """Pure analytical cost model for one target machine.

    Thin, cheap object: engines are memoized per thread count, so a
    model can serve predictions at many ``nthreads`` without
    reconstruction. ``nthreads=None`` means the machine's full thread
    count (the simulator's default).
    """

    kind = "analytic"

    def __init__(self, machine: MachineSpec,
                 nthreads: int | None = None):
        self.machine = machine
        self.nthreads = None if nthreads is None else int(nthreads)
        self._engines: dict[int | None, ExecutionEngine] = {}

    # -- engine plumbing ----------------------------------------------

    def engine(self, nthreads: int | None = None) -> ExecutionEngine:
        """The memoized simulator at ``nthreads`` (default: the model's)."""
        key = self.nthreads if nthreads is None else int(nthreads)
        eng = self._engines.get(key)
        if eng is None:
            eng = ExecutionEngine(self.machine, key)
            self._engines[key] = eng
        return eng

    # -- predictions ---------------------------------------------------

    def run(self, kernel, data, partition=None, *,
            nthreads: int | None = None) -> RunResult:
        """Predict one execution of ``kernel`` on ``data``.

        Drop-in for the old ``ExecutionEngine(machine, n).run(...)``
        idiom; ``nthreads`` overrides the model's default for this call
        only (the execute stage predicts at the *measured* thread count
        this way).
        """
        return self.engine(nthreads).run(kernel, data, partition)

    def measure(self, kernel, data, partition=None, *,
                nthreads: int | None = None,
                iterations: int = 128, runs: int = 5) -> RunResult:
        """The paper's 5x128-iteration measurement protocol."""
        return self.engine(nthreads).measure(
            kernel, data, partition, iterations=iterations, runs=runs
        )

    def predict(self, kernel, data, partition=None, *,
                nthreads: int | None = None) -> Prediction:
        """Predict with the P_MB/P_ML-style decomposition pulled out."""
        return Prediction.from_result(
            self.run(kernel, data, partition, nthreads=nthreads)
        )

    def per_thread_seconds(self, kernel, data, partition=None, *,
                           nthreads: int | None = None) -> np.ndarray:
        """Predicted per-thread busy times (the makespan's inputs)."""
        return self.run(
            kernel, data, partition, nthreads=nthreads
        ).thread_seconds

    # -- per-class bounds (paper Section III-B) ------------------------

    def _bandwidth_for(self, working_set_bytes: float) -> float:
        """Sustainable bandwidth (bytes/s) for the analytic bounds; the
        calibrated model scales this by its measured profile."""
        return self.machine.bandwidth_for_working_set(working_set_bytes)

    def bounds(self, csr) -> PerformanceBounds:
        """Run the bound-and-bottleneck analysis for ``csr``.

        * ``P_MB``   — analytic: minimum traffic at maximum sustainable
          bandwidth, ``2*NNZ / ((M_A_csr,min + M_xy,min) / B_max)``;
        * ``P_ML``   — operational: the regularized-colind micro-kernel
          (irregular x accesses made regular);
        * ``P_IMB``  — from the baseline run's *median* per-thread time
          (median, not mean, to discount outliers);
        * ``P_CMP``  — operational: the unit-stride micro-kernel
          (indirection removed entirely) — a very loose bound;
        * ``P_peak`` — format-independent: only the values array must
          move (all indexing compressed away).
        """
        from ..kernels import (
            RegularizedColindSpMV,
            UnitStrideSpMV,
            baseline_kernel,
        )

        if csr.nnz == 0:
            raise ValueError("cannot analyze an empty matrix")
        flops = 2.0 * csr.nnz

        base = baseline_kernel()
        r_csr = self.run(base, base.preprocess(csr))

        # Analytic bounds: compulsory traffic at peak sustainable
        # bandwidth.
        m_xy = 8.0 * (csr.ncols + csr.nrows)
        ws = csr.total_nbytes() + m_xy
        bw = self._bandwidth_for(ws)
        p_mb = flops / ((csr.total_nbytes() + m_xy) / bw) / 1e9
        p_peak = flops / ((csr.value_nbytes() + m_xy) / bw) / 1e9

        # Operational bounds: modified micro-kernels through the same
        # model (so a calibrated model scales them consistently).
        r_ml = self.run(RegularizedColindSpMV(), csr)
        r_cmp = self.run(UnitStrideSpMV(), csr)

        # Imbalance bound: median thread busy time of the baseline run,
        # plus the same launch overhead every run pays.
        t_median = (
            r_csr.median_thread_seconds
            + self.machine.parallel_overhead_seconds(r_csr.nthreads)
        )
        p_imb = flops / t_median / 1e9

        return PerformanceBounds(
            p_csr=r_csr.gflops,
            p_mb=p_mb,
            p_ml=r_ml.gflops,
            p_imb=p_imb,
            p_cmp=r_cmp.gflops,
            p_peak=p_peak,
            baseline=r_csr,
            machine_codename=self.machine.codename,
        )

    # -- supervision support -------------------------------------------

    def suggest_deadline(self, kernel, data, *,
                         nthreads: int | None = None,
                         safety: float = 50.0,
                         floor: float = 0.05) -> float:
        """A watchdog deadline (seconds) derived from the prediction.

        ``safety * predicted_seconds`` with an absolute ``floor`` so a
        sub-millisecond prediction never produces a hair-trigger
        deadline. For the pure analytic model the prediction is in
        *simulated-machine* seconds; a refined
        :class:`~repro.model.calibrated.CalibratedModel` predicts host
        wall time, which is what makes ``deadline_seconds="auto"``
        meaningful on real runs.
        """
        predicted = self.run(kernel, data, nthreads=nthreads)
        return max(float(floor), float(safety) * predicted.seconds)

    # -- identity ------------------------------------------------------

    def signature(self) -> str:
        """Full content signature, recorded on plan IR (v3+)."""
        return self.kind

    def cache_signature(self) -> str:
        """Plan-cache key contribution.

        Empty: the analytic model is the behavior every pre-model build
        baked in, so adding nothing keeps persisted caches from those
        builds warm-starting byte-for-byte.
        """
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = "default" if self.nthreads is None else self.nthreads
        return f"<AnalyticModel {self.machine.name} nthreads={t}>"
