"""Unified cost-model subsystem (predict → measure → refine).

One protocol (:class:`~repro.model.base.CostModel`), two
implementations:

* :class:`AnalyticModel` — the pure simulator, absorbing the
  previously scattered estimators (ExecutionEngine call sites, the
  per-class bound derivation, micro-kernel cost assembly);
* :class:`CalibratedModel` — analytic × a host-measured
  :class:`MachineProfile` (``repro-spmv calibrate``), with online
  :meth:`~CalibratedModel.refine` fed by execute-span telemetry.

The module is also the canonical home of content hashing
(:func:`matrix_fingerprint`, :func:`mapping_signature`,
:func:`body_checksum`) and of the checksummed atomic JSON envelope
every persisted artifact shares.
"""

from .analytic import AnalyticModel
from .base import (
    PROFILING_ITERATIONS,
    CostModel,
    PerformanceBounds,
    Prediction,
    prediction_error_pct,
    profiling_seconds,
)
from .calibrated import CalibratedModel
from .profile import PROFILE_SCHEMA_VERSION, MachineProfile, calibrate
from .signature import (
    body_checksum,
    canonical_body,
    mapping_signature,
    matrix_fingerprint,
    read_checksummed,
    values_digest,
    write_checksummed,
)

__all__ = [
    "CostModel",
    "Prediction",
    "PerformanceBounds",
    "AnalyticModel",
    "CalibratedModel",
    "MachineProfile",
    "PROFILE_SCHEMA_VERSION",
    "PROFILING_ITERATIONS",
    "calibrate",
    "profiling_seconds",
    "prediction_error_pct",
    "matrix_fingerprint",
    "values_digest",
    "canonical_body",
    "body_checksum",
    "mapping_signature",
    "write_checksummed",
    "read_checksummed",
]
