"""The :class:`CostModel` protocol and its shared data types.

A cost model answers one question for a ``(matrix, format, kernel
variant, nthreads)`` tuple: *how fast should this run, and why?* The
protocol exposes

* :meth:`CostModel.run` — a full simulated execution returning a
  :class:`~repro.machine.engine.RunResult` (makespan, per-thread times,
  Gflop/s, bandwidth);
* :meth:`CostModel.predict` — the same execution wrapped in a
  :class:`Prediction` with the bandwidth/latency/imbalance
  decomposition pulled out;
* :meth:`CostModel.bounds` — the paper's per-class upper bounds
  (:class:`PerformanceBounds`, Section III-B);
* :meth:`CostModel.cache_signature` — the model's contribution to
  plan-cache keys (empty for the analytic model, so pre-model caches
  keep warm-starting; the profile digest for a calibrated model, so
  recalibration invalidates stale plans).

Two implementations exist: :class:`~repro.model.analytic.AnalyticModel`
(the pure simulator, absorbing the previously scattered estimators) and
:class:`~repro.model.calibrated.CalibratedModel` (analytic scaled by a
host-measured :class:`~repro.model.profile.MachineProfile`, closing the
predict → measure → refine loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..machine import RunResult

__all__ = [
    "CostModel",
    "Prediction",
    "PerformanceBounds",
    "PROFILING_ITERATIONS",
    "profiling_seconds",
    "prediction_error_pct",
]

#: The paper times 64 SpMV iterations per micro-benchmark "to get valid
#: timing measurements" (Section IV-D).
PROFILING_ITERATIONS = 64


@dataclass(frozen=True)
class PerformanceBounds:
    """Baseline performance and per-class upper bounds (Gflop/s)."""

    p_csr: float
    p_mb: float
    p_ml: float
    p_imb: float
    p_cmp: float
    p_peak: float
    baseline: RunResult
    machine_codename: str

    def as_dict(self) -> dict[str, float]:
        return {
            "P_CSR": self.p_csr,
            "P_MB": self.p_mb,
            "P_ML": self.p_ml,
            "P_IMB": self.p_imb,
            "P_CMP": self.p_cmp,
            "P_peak": self.p_peak,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        vals = " ".join(f"{k}={v:.2f}" for k, v in self.as_dict().items())
        return f"<bounds [{self.machine_codename}] {vals} Gflop/s>"


@dataclass(frozen=True)
class Prediction:
    """One cost-model prediction with its decomposition pulled out.

    ``decomposition`` carries the per-thread maxima of the three
    first-order time terms the engine overlaps (``compute_s``,
    ``bandwidth_s``, ``latency_s``) plus the selected bandwidth level,
    so a consumer can see *which* term bounds the makespan without
    reverse-engineering the ``RunResult`` breakdown arrays.
    """

    kernel_name: str
    nthreads: int
    seconds: float
    gflops: float
    imbalance: float
    per_thread_seconds: np.ndarray = field(repr=False)
    decomposition: dict = field(default_factory=dict)
    result: RunResult = field(repr=False, default=None)

    @classmethod
    def from_result(cls, result: RunResult) -> "Prediction":
        decomp = {}
        for key in ("compute_s", "bandwidth_s", "latency_s"):
            term = result.breakdown.get(key)
            if term is not None:
                decomp[key] = float(np.max(term))
        if "bandwidth_level_gbs" in result.breakdown:
            decomp["bandwidth_level_gbs"] = float(
                result.breakdown["bandwidth_level_gbs"]
            )
        return cls(
            kernel_name=result.kernel_name,
            nthreads=int(result.nthreads),
            seconds=float(result.seconds),
            gflops=float(result.gflops),
            imbalance=float(result.imbalance),
            per_thread_seconds=result.thread_seconds,
            decomposition=decomp,
            result=result,
        )

    def dominant_term(self) -> str:
        """Which first-order term bounds the makespan."""
        terms = {
            k: v for k, v in self.decomposition.items()
            if k in ("compute_s", "bandwidth_s", "latency_s")
        }
        if not terms:
            return "unknown"
        return max(terms, key=terms.get)


@runtime_checkable
class CostModel(Protocol):
    """What every cost model exposes (structural protocol)."""

    machine: object
    kind: str

    def run(self, kernel, data, partition=None, *,
            nthreads: int | None = None) -> RunResult:
        """Predict one full execution as a ``RunResult``."""
        ...  # pragma: no cover - protocol

    def predict(self, kernel, data, partition=None, *,
                nthreads: int | None = None) -> Prediction:
        """Predict with the decomposition pulled out."""
        ...  # pragma: no cover - protocol

    def bounds(self, csr) -> PerformanceBounds:
        """The paper's per-class upper bounds for ``csr``."""
        ...  # pragma: no cover - protocol

    def signature(self) -> str:
        """Full content signature (recorded on plan IR)."""
        ...  # pragma: no cover - protocol

    def cache_signature(self) -> str:
        """Plan-cache key contribution ("" keeps legacy keys intact)."""
        ...  # pragma: no cover - protocol


def profiling_seconds(bounds: PerformanceBounds, csr,
                      iterations: int = PROFILING_ITERATIONS) -> float:
    """Online profiling cost of the profile-guided classifier.

    Three kernels are timed on the target matrix (baseline, P_ML and
    P_CMP micro-kernels), ``iterations`` runs each; ``P_MB``/``P_peak``
    are analytic and ``P_IMB`` is a by-product of the baseline run.
    """
    flops = 2.0 * csr.nnz
    per_iter = sum(
        flops / (p * 1e9) for p in (bounds.p_csr, bounds.p_ml, bounds.p_cmp)
    )
    return iterations * per_iter


def prediction_error_pct(predicted: float, measured: float) -> float:
    """Relative model error in percent, ``100*|pred - meas| / meas``.

    The one definition every telemetry surface (execute spans, bench
    rows, ``CalibratedModel.refine``) shares. Returns ``inf`` for a
    zero/invalid measurement rather than raising — telemetry must not
    take down the run it instruments.
    """
    if not measured or not np.isfinite(measured):
        return float("inf")
    return float(100.0 * abs(predicted - measured) / measured)
