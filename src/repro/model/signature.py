"""Canonical content-hash and checksummed-envelope helpers.

Every content-addressed artifact in the repo — plan-cache keys, persisted
plan files, machine profiles — hashes through this module, so there is
exactly one definition of "same content" across processes and builds.
Before the :mod:`repro.model` subsystem existed, ``matrix_fingerprint``
lived in ``core/optimizer.py`` and ``OptimizationPool.content_signature``
carried its own string format in ``core/pool.py``; both now delegate
here. The algorithms are **pinned** (see ``tests/model/test_signature.py``):
changing any of them silently invalidates every persisted cache, so a
digest change must be a deliberate schema bump.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

__all__ = [
    "canonical_body",
    "body_checksum",
    "matrix_fingerprint",
    "values_digest",
    "mapping_signature",
    "write_checksummed",
    "read_checksummed",
]


def canonical_body(body: dict) -> bytes:
    """Canonical byte serialization a content checksum covers.

    ``sort_keys`` + minimal separators make the digest independent of
    the pretty-printing of the envelope; Python's float repr round-trips
    through JSON exactly, so a parsed body re-canonicalizes to the same
    bytes the writer hashed.
    """
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def body_checksum(body: dict) -> str:
    """blake2b-128 hex digest of :func:`canonical_body`."""
    return hashlib.blake2b(canonical_body(body),
                           digest_size=16).hexdigest()


def matrix_fingerprint(csr) -> str:
    """Cheap structural fingerprint of a CSR matrix.

    Hashes shape, nnz and the ``rowptr``/``colind`` arrays (one linear
    pass, no numeric work) — two matrices with the same fingerprint
    have identical sparsity structure, which is all the classifiers and
    format conversions depend on. Each index array is digested together
    with its dtype string (``arr.dtype.str``, which encodes width *and*
    endianness), so an int32 and an int64 array with coincidentally
    equal bytes cannot alias and fingerprints are stable enough to key
    on-disk plans. Values are digested separately (see
    :func:`values_digest`) so a matrix whose coefficients changed but
    whose structure did not can still reuse its plan.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(
        np.array([csr.shape[0], csr.shape[1], csr.nnz],
                 dtype=np.int64).tobytes()
    )
    for arr in (csr.rowptr, csr.colind):
        a = np.ascontiguousarray(arr)
        h.update(a.dtype.str.encode("ascii"))
        h.update(a.tobytes())
    return h.hexdigest()


def values_digest(csr) -> str:
    """Digest of the numeric values array (dtype-aware), separate from
    the structural fingerprint so value updates keep the plan."""
    h = hashlib.blake2b(digest_size=16)
    a = np.ascontiguousarray(csr.values)
    h.update(a.dtype.str.encode("ascii"))
    h.update(a.tobytes())
    return h.hexdigest()


def mapping_signature(mapping: dict, policy_fields: dict) -> str:
    """Stable content signature of a class->optimization mapping.

    The signature describes *what the mapping maps to*, not which
    object holds it: string entries contribute their name, callable
    entries their qualified function name; the policy dataclass fields
    are appended as a sorted ``k=repr(v)`` list. Two pools with
    identical mappings and policies share a signature in any process —
    unlike ``id(pool)``, which is unstable across processes and can
    collide after garbage collection reuses an address. The exact
    string format is a persisted-cache key component and therefore
    pinned by tests.
    """
    parts = []
    for key in sorted(mapping, key=lambda k: getattr(k, "value", str(k))):
        entry = mapping[key]
        label = getattr(key, "value", str(key))
        if isinstance(entry, str):
            desc = entry
        else:
            func = getattr(entry, "__func__", entry)
            module = getattr(func, "__module__", "?")
            qualname = getattr(func, "__qualname__", repr(entry))
            desc = f"callable:{module}.{qualname}"
        parts.append(f"{label}={desc}")
    policy = ",".join(
        f"{k}={v!r}" for k, v in sorted(policy_fields.items())
    )
    return ";".join(parts) + "|" + policy


def write_checksummed(path, body: dict, *, indent: int = 2) -> None:
    """Atomically write ``{"checksum", "body"}`` JSON at ``path``.

    The payload lands in a same-directory temp file that is fsynced and
    then renamed over ``path`` (``os.replace``), so a crash mid-save
    leaves either the old complete file or the new complete file —
    never a truncated hybrid, and never a stray partial (the temp file
    is removed on any write failure). The envelope carries a blake2b
    checksum of the canonicalized body so readers detect silent on-disk
    corruption. This is the same layout :meth:`repro.core.PlanCache.save`
    uses.
    """
    payload = {"checksum": body_checksum(body), "body": body}
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=indent)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def read_checksummed(path) -> dict:
    """Read and verify a :func:`write_checksummed` envelope.

    Returns the verified body. Raises ``ValueError`` (with the reason)
    for anything unusable — unparseable JSON, a missing envelope, or a
    checksum mismatch — and ``FileNotFoundError`` for a missing file.
    Callers that prefer degrading to a default (the plan cache does)
    catch the ``ValueError`` themselves.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"{path!r}: not parseable as JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path!r}: payload is not a JSON object")
    if "checksum" not in payload or "body" not in payload:
        raise ValueError(f"{path!r}: missing checksum/body envelope")
    body = payload["body"]
    if not isinstance(body, dict):
        raise ValueError(f"{path!r}: body is not a JSON object")
    if body_checksum(body) != payload["checksum"]:
        raise ValueError(
            f"{path!r}: checksum mismatch (file corrupted on disk)"
        )
    return body
