"""The calibrated cost model: analytic predictions × measured profile.

:class:`CalibratedModel` wraps the analytic simulator and multiplies
every predicted time by the per-kernel scale factor of a host-measured
:class:`~repro.model.profile.MachineProfile`, so predictions land in
host wall-time units. With an identity profile (all scales 1.0) it is
**bit-identical** to :class:`~repro.model.analytic.AnalyticModel` —
the scaled path is never entered and the exact analytic
``RunResult`` object is returned (a regression test pins this).

The model also owns the online half of the paper's feedback loop:
execute spans report ``(predicted, measured)`` second pairs back via
:meth:`observe`, and :meth:`refine` folds the accumulated ratios into
the profile's scale factors — shrinking ``model_error_pct`` on the
next run and, because the profile signature changes, invalidating any
plan cached against the stale calibration.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..machine import MachineSpec, RunResult
from .analytic import AnalyticModel
from .base import prediction_error_pct
from .profile import MachineProfile

__all__ = ["CalibratedModel"]


def _scaled_result(result: RunResult, scale: float) -> RunResult:
    """``result`` with every time stretched by ``scale``.

    Flops and bytes are invariant, so Gflop/s and bandwidth divide by
    the scale; the breakdown's time arrays stretch with the threads
    (the bandwidth *level* is a rate and stays put).
    """
    breakdown = dict(result.breakdown)
    for key in ("compute_s", "bandwidth_s", "latency_s"):
        if key in breakdown:
            breakdown[key] = breakdown[key] * scale
    return replace(
        result,
        seconds=result.seconds * scale,
        thread_seconds=result.thread_seconds * scale,
        breakdown=breakdown,
    )


class CalibratedModel(AnalyticModel):
    """Analytic model scaled by a host-measured machine profile."""

    kind = "calibrated"

    def __init__(self, machine: MachineSpec, profile: MachineProfile,
                 nthreads: int | None = None):
        if profile.machine_name != machine.name:
            raise ValueError(
                f"profile was calibrated for {profile.machine_name!r}, "
                f"not {machine.name!r}; recalibrate with "
                f"`repro-spmv calibrate --platform {machine.name}`"
            )
        super().__init__(machine, nthreads)
        self.profile = profile
        #: kernel name -> list of (predicted_seconds, measured_seconds)
        #: pairs accumulated by :meth:`observe` since the last refine.
        self._observations: dict[str, list[tuple[float, float]]] = {}

    # -- scaled predictions --------------------------------------------

    def scale_for(self, kernel_name: str) -> float:
        return self.profile.scale_for(kernel_name)

    def run(self, kernel, data, partition=None, *,
            nthreads: int | None = None) -> RunResult:
        base = super().run(kernel, data, partition, nthreads=nthreads)
        scale = self.scale_for(base.kernel_name)
        if scale == 1.0:
            # Bit-identity with the analytic model under an identity
            # profile: return the exact analytic result object.
            return base
        return _scaled_result(base, scale)

    def _bandwidth_for(self, working_set_bytes: float) -> float:
        return (
            super()._bandwidth_for(working_set_bytes)
            * self.profile.bandwidth_scale
        )

    # -- online refinement ---------------------------------------------

    def observe(self, kernel_name: str, predicted_seconds: float,
                measured_seconds: float) -> None:
        """Record one predicted-vs-measured pair from an execute span.

        Non-finite or non-positive samples are dropped — a degraded
        (serial-fallback) or failed measurement must not poison the
        calibration.
        """
        if (
            predicted_seconds <= 0.0
            or measured_seconds <= 0.0
            or not np.isfinite(predicted_seconds)
            or not np.isfinite(measured_seconds)
        ):
            return
        self._observations.setdefault(kernel_name, []).append(
            (float(predicted_seconds), float(measured_seconds))
        )

    @property
    def observation_count(self) -> int:
        return sum(len(v) for v in self._observations.values())

    def refine(self, alpha: float = 0.8) -> dict:
        """Fold accumulated observations into the profile scales.

        For each observed kernel the median ``measured / predicted``
        ratio is computed and the scale moves toward it in the log
        domain: ``scale *= ratio ** alpha`` (``alpha=1`` corrects
        fully; lower values damp timing noise). Returns a report
        ``{kernel: {ratio, scale, error_before_pct, samples}}`` and
        clears the observation buffer. The profile signature changes
        whenever any scale moves, so stale cached plans stop matching.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        report: dict[str, dict] = {}
        for name, pairs in self._observations.items():
            ratio = float(np.median([m / p for p, m in pairs]))
            old = self.scale_for(name)
            new = float(old * ratio ** alpha)
            self.profile.kernel_scales[name] = new
            report[name] = {
                "samples": len(pairs),
                "ratio": ratio,
                "scale": new,
                "error_before_pct": float(np.median([
                    prediction_error_pct(p, m) for p, m in pairs
                ])),
            }
        self._observations.clear()
        return report

    # -- identity ------------------------------------------------------

    def signature(self) -> str:
        return f"calibrated:{self.profile.signature()}"

    def cache_signature(self) -> str:
        """Non-empty: plans decided under this calibration are keyed by
        the profile digest, so recalibration (or :meth:`refine`)
        invalidates them."""
        return f"model={self.signature()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = "default" if self.nthreads is None else self.nthreads
        return (
            f"<CalibratedModel {self.machine.name} nthreads={t} "
            f"profile={self.profile.signature()[:12]}>"
        )
