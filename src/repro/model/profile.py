"""Host-measured machine profiles and the ``calibrate`` workflow.

A :class:`MachineProfile` is the bridge between the analytical
simulator and the machine the code actually runs on: a set of scale
factors measured by running STREAM-style bandwidth, gather-latency and
per-kernel microbenchmarks through the *real* zero-allocation and
parallel execution planes. :class:`~repro.model.calibrated.
CalibratedModel` multiplies analytic predictions by these scales, so
predictions land in host wall-time units and the predict → measure →
refine loop (execute-span telemetry feeding
:meth:`~repro.model.calibrated.CalibratedModel.refine`) can converge.

Profiles persist with the same checksummed atomic envelope as the plan
cache (:func:`repro.model.signature.write_checksummed`), and their
content signature folds into plan-cache keys — recalibrating a host
invalidates every plan tuned against the stale profile.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field

import numpy as np

from .signature import body_checksum, read_checksummed, write_checksummed

__all__ = ["PROFILE_SCHEMA_VERSION", "MachineProfile", "calibrate"]

#: Version of the persisted profile layout.
PROFILE_SCHEMA_VERSION = 1

#: Matrices per calibration suite (name -> generator call), sized so the
#: full suite stresses both the in-cache and streaming regimes.
_QUICK_MATRICES = (("banded-2k", "banded", dict(n=2000, nnz_per_row=9)),)
_FULL_MATRICES = (
    ("banded-20k", "banded", dict(n=20000, nnz_per_row=9)),
    ("scattered-4k", "random_uniform", dict(n=4000, nnz_per_row=16.0)),
    ("powerlaw-4k", "power_law", dict(n=4000, avg_deg=10.0)),
)


@dataclass
class MachineProfile:
    """Measured scale factors relating a simulated machine to a host.

    ``kernel_scales`` maps kernel names to ``measured / predicted``
    wall-time ratios; ``bandwidth_scale`` relates the host's measured
    streaming bandwidth to the simulated machine's sustainable
    bandwidth (it scales the analytic ``P_MB``/``P_peak`` bounds).
    ``measured`` keeps the raw host numbers (bandwidth GB/s, gather
    latency ns, per-cell timings) for reporting; they do not affect
    predictions and are excluded from :meth:`signature`.
    """

    machine_name: str
    bandwidth_scale: float = 1.0
    kernel_scales: dict[str, float] = field(default_factory=dict)
    measured: dict = field(default_factory=dict)
    host: str = ""
    quick: bool = False
    samples: int = 0

    @classmethod
    def identity(cls, machine_name: str) -> "MachineProfile":
        """The do-nothing profile: CalibratedModel(identity) must be
        bit-identical to AnalyticModel."""
        return cls(machine_name=machine_name)

    @property
    def is_identity(self) -> bool:
        return self.bandwidth_scale == 1.0 and not self.kernel_scales

    @property
    def default_scale(self) -> float:
        """Scale for kernels the calibration never timed: the median of
        the known scales (robust to one outlier kernel), 1.0 when none
        were measured."""
        if not self.kernel_scales:
            return 1.0
        return float(np.median(list(self.kernel_scales.values())))

    def scale_for(self, kernel_name: str) -> float:
        return float(self.kernel_scales.get(kernel_name,
                                            self.default_scale))

    # -- identity ------------------------------------------------------

    def signature(self) -> str:
        """Content digest over everything that changes predictions.

        Raw measurements, host name and sample counts are excluded:
        two profiles that predict identically share a signature (and
        therefore plan-cache keys)."""
        return body_checksum({
            "machine": self.machine_name,
            "bandwidth_scale": float(self.bandwidth_scale),
            "kernel_scales": {
                k: float(v) for k, v in sorted(self.kernel_scales.items())
            },
        })

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "machine_name": self.machine_name,
            "bandwidth_scale": float(self.bandwidth_scale),
            "kernel_scales": {
                k: float(v) for k, v in sorted(self.kernel_scales.items())
            },
            "measured": self.measured,
            "host": self.host,
            "quick": bool(self.quick),
            "samples": int(self.samples),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineProfile":
        version = payload.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported machine-profile schema {version!r} "
                f"(this build reads {PROFILE_SCHEMA_VERSION})"
            )
        return cls(
            machine_name=payload["machine_name"],
            bandwidth_scale=float(payload.get("bandwidth_scale", 1.0)),
            kernel_scales={
                k: float(v)
                for k, v in payload.get("kernel_scales", {}).items()
            },
            measured=dict(payload.get("measured", {})),
            host=payload.get("host", ""),
            quick=bool(payload.get("quick", False)),
            samples=int(payload.get("samples", 0)),
        )

    def save(self, path) -> None:
        """Atomic checksummed write (same envelope as the plan cache)."""
        write_checksummed(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "MachineProfile":
        """Inverse of :meth:`save`; raises ``ValueError`` on a
        corrupted or incompatible file."""
        return cls.from_dict(read_checksummed(path))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MachineProfile {self.machine_name} "
            f"bw_scale={self.bandwidth_scale:.3g} "
            f"kernels={len(self.kernel_scales)} "
            f"sig={self.signature()[:12]}>"
        )


# -- host microbenchmarks ----------------------------------------------


def _stream_bandwidth_gbs(elems: int, repeats: int, warmup: int) -> float:
    """STREAM-triad-style host bandwidth in GB/s.

    ``a := alpha*c; a += b`` over float64 arrays: per element one read
    of ``c``, one write + one read-modify-write of ``a`` and one read
    of ``b`` — 40 nominal bytes. Absolute fidelity does not matter;
    the same accounting is used every calibration, so the *scale* it
    induces is consistent.
    """
    from ..kernels.microbench import time_callable

    b = np.full(elems, 1.5)
    c = np.full(elems, 0.5)
    a = np.empty(elems)

    def triad():
        np.multiply(c, 3.0, out=a)
        np.add(a, b, out=a)

    timing = time_callable(triad, repeats=repeats, warmup=warmup)
    return 40.0 * elems / timing.median_seconds / 1e9


def _gather_latency_ns(elems: int, repeats: int, warmup: int,
                       seed: int = 7) -> float:
    """Exposed per-element cost of a random gather on the host (ns)."""
    from ..kernels.microbench import time_callable

    rng = np.random.default_rng(seed)
    x = rng.random(elems)
    idx = rng.permutation(elems).astype(np.intp)
    out = np.empty(elems)

    def gather():
        np.take(x, idx, out=out, mode="clip")

    timing = time_callable(gather, repeats=repeats, warmup=warmup)
    return 1e9 * timing.median_seconds / elems


def _calibration_matrices(quick: bool):
    from ..matrices import generators

    suite = _QUICK_MATRICES if quick else _FULL_MATRICES
    return [
        (name, getattr(generators, fn)(**kwargs))
        for name, fn, kwargs in suite
    ]


def _calibration_kernels(quick: bool):
    from ..kernels import baseline_kernel, merged_pool_kernel

    kernels = [baseline_kernel()]
    names = (
        ("compression",) if quick
        else ("compression", "prefetching", "unrolling", "auto-sched")
    )
    for name in names:
        kernels.append(merged_pool_kernel((name,)))
    return kernels


def calibrate(machine, *, quick: bool = False,
              nthreads: int | None = None,
              repeats: int | None = None) -> MachineProfile:
    """Measure a :class:`MachineProfile` for ``machine`` on this host.

    Three families of microbenchmarks, all with warmed caches and
    median-of-k timing (:func:`repro.kernels.microbench.time_callable`):

    1. STREAM-style triad → host streaming bandwidth → the profile's
       ``bandwidth_scale`` against the simulated machine's sustainable
       bandwidth;
    2. a random-permutation gather → exposed memory latency per element
       (recorded for reporting);
    3. per-kernel SpMV runs through the real zero-allocation plane
       (:class:`~repro.engine.executor.KernelExecutor` + warm
       :class:`~repro.memory.Workspace`, ``out=`` buffers) plus one
       baseline run through the real parallel plane at 2 threads —
       each cell's median wall time over the analytic prediction gives
       that kernel's scale (geometric mean across matrices).

    ``quick=True`` shrinks the suite to one matrix, two kernels and
    fewer repeats — the CI smoke configuration.
    """
    # Imported lazily: the profile module must stay importable without
    # dragging the whole execution stack in at import time.
    from ..engine import ExecutorSpec, build_executor
    from ..kernels.microbench import time_callable
    from ..memory import Workspace
    from ..parallel import ParallelConfig
    from .analytic import AnalyticModel

    k = repeats if repeats is not None else (3 if quick else 7)
    warmup = 1 if quick else 2
    stream_elems = 1 << 20 if quick else 1 << 22
    gather_elems = 1 << 18 if quick else 1 << 20

    t0 = time.perf_counter()
    analytic = AnalyticModel(machine, nthreads)

    bandwidth_gbs = _stream_bandwidth_gbs(stream_elems, k, warmup)
    gather_ns = _gather_latency_ns(gather_elems, k, warmup)
    # Scale against the streaming (largest-working-set) regime.
    simulated_bw = machine.bandwidth_for_working_set(float("inf"))
    bandwidth_scale = bandwidth_gbs * 1e9 / simulated_bw

    kernel_scales: dict[str, float] = {}
    cells: dict[str, dict] = {}
    samples = 0
    ratios: dict[str, list[float]] = {}
    for matrix_name, csr in _calibration_matrices(quick):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        for kernel in _calibration_kernels(quick):
            data = kernel.preprocess(csr)
            executor = build_executor(
                csr, ExecutorSpec(), kernel=kernel, data=data,
                workspace=Workspace(),
            )
            timing = time_callable(
                lambda: executor.apply(x, out=out),
                repeats=k, warmup=warmup,
            )
            predicted = analytic.run(kernel, data).seconds
            ratio = timing.median_seconds / predicted
            ratios.setdefault(kernel.name, []).append(ratio)
            cells[f"{kernel.name}@{matrix_name}"] = {
                "measured_seconds": timing.median_seconds,
                "predicted_seconds": predicted,
                "ratio": ratio,
            }
            samples += 1
    for name, rs in ratios.items():
        kernel_scales[name] = float(np.exp(np.mean(np.log(rs))))

    # One pass through the real parallel plane (recorded, not scaled:
    # run() keys scales by kernel name, and the parallel makespan folds
    # thread-pool effects the serial scale must not absorb).
    parallel_cell: dict | None = None
    matrix_name, csr = _calibration_matrices(quick)[0]
    from ..kernels import baseline_kernel

    base = baseline_kernel()
    par = build_executor(
        csr,
        ExecutorSpec(parallel=ParallelConfig(nthreads=2,
                                             schedule="balanced-nnz")),
        kernel=base,
    )
    x = np.ones(csr.ncols)
    timing = time_callable(lambda: par.apply(x), repeats=k, warmup=warmup)
    predicted = analytic.run(base, base.preprocess(csr),
                             nthreads=2).seconds
    parallel_cell = {
        "matrix": matrix_name,
        "nthreads": 2,
        "measured_seconds": timing.median_seconds,
        "predicted_seconds": predicted,
        "ratio": timing.median_seconds / predicted,
    }

    return MachineProfile(
        machine_name=machine.name,
        bandwidth_scale=float(bandwidth_scale),
        kernel_scales=kernel_scales,
        measured={
            "stream_bandwidth_gbs": bandwidth_gbs,
            "gather_latency_ns": gather_ns,
            "cells": cells,
            "parallel": parallel_cell,
            "calibration_seconds": time.perf_counter() - t0,
        },
        host=platform.node() or "unknown-host",
        quick=quick,
        samples=samples,
    )
