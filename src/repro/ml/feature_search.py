"""Exhaustive feature-subset search (paper: "The selection of features
for the classifiers has been a result of exhaustive search").

Given the full feature matrix, enumerate subsets (optionally capped in
size and restricted to an extraction-complexity budget) and rank them by
cross-validated exact-match accuracy, breaking ties toward cheaper and
smaller subsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from .crossval import CVResult, k_fold, leave_one_out
from .tree import DecisionTree

__all__ = ["SubsetScore", "search_feature_subsets"]


@dataclass(frozen=True)
class SubsetScore:
    """One evaluated feature subset."""

    features: tuple[str, ...]
    result: CVResult

    @property
    def exact(self) -> float:
        return self.result.exact_match

    @property
    def partial(self) -> float:
        return self.result.partial_match


def search_feature_subsets(
    X,
    Y,
    feature_names: Sequence[str],
    *,
    min_size: int = 2,
    max_size: int = 6,
    method: str = "kfold",
    k: int = 10,
    top: int = 10,
    tree_factory: Callable[[], DecisionTree] | None = None,
) -> list[SubsetScore]:
    """Rank feature subsets by cross-validated accuracy.

    ``method`` is ``"kfold"`` (fast screening) or ``"loo"`` (the paper's
    protocol; expensive for many subsets). Returns the ``top`` subsets
    sorted by exact match, then partial match, then smaller size.
    """
    X = np.asarray(X, dtype=np.float64)
    feature_names = tuple(feature_names)
    if X.shape[1] != len(feature_names):
        raise ValueError("feature_names must match X columns")
    if not 1 <= min_size <= max_size <= len(feature_names):
        raise ValueError("invalid subset size bounds")
    if method not in ("kfold", "loo"):
        raise ValueError(f"unknown method {method!r}")

    scored: list[SubsetScore] = []
    indices = range(len(feature_names))
    for size in range(min_size, max_size + 1):
        for combo in combinations(indices, size):
            Xs = X[:, combo]
            if method == "loo":
                res = leave_one_out(Xs, Y, tree_factory)
            else:
                res = k_fold(Xs, Y, k=k, tree_factory=tree_factory)
            scored.append(
                SubsetScore(
                    features=tuple(feature_names[i] for i in combo),
                    result=res,
                )
            )
    scored.sort(
        key=lambda s: (-s.exact, -s.partial, len(s.features), s.features)
    )
    return scored[:top]
