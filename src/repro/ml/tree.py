"""From-scratch CART decision tree with multilabel (multi-output) support.

The paper trains its feature-guided classifier with scikit-learn's
optimized CART and "adjusts it to perform multilabel classification".
scikit-learn is unavailable offline, so this module implements the same
algorithm: binary splits on real-valued features chosen by Gini
impurity, where for multilabel targets the impurity is averaged over
the label columns (exactly scikit-learn's multi-output strategy), and
leaves predict the per-label majority.

Training cost is O(n_features * n_samples * log n_samples) per level
(sorting dominates), matching the complexity the paper quotes; query
cost is O(depth) = O(log n_samples) for balanced trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTree", "TreeNode"]


@dataclass
class TreeNode:
    """One node of a fitted tree (leaf when ``feature`` is None)."""

    n_samples: int
    label_means: np.ndarray            # per-label positive fraction
    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.n_leaves() + self.right.n_leaves()


def _gini(label_sums: np.ndarray, count: float) -> float:
    """Mean binary Gini impurity across label columns."""
    if count <= 0:
        return 0.0
    p = label_sums / count
    return float(np.mean(2.0 * p * (1.0 - p)))


@dataclass
class DecisionTree:
    """Multilabel CART classifier.

    Parameters
    ----------
    max_depth
        Maximum tree depth (None = grow until pure/too small).
    min_samples_split
        Minimum samples required to attempt a split.
    min_samples_leaf
        Minimum samples each child must retain.
    min_impurity_decrease
        Minimum weighted impurity decrease to accept a split.
    """

    max_depth: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    min_impurity_decrease: float = 0.0
    root: TreeNode | None = field(default=None, repr=False, compare=False)
    n_features_: int = field(default=0, compare=False)
    n_labels_: int = field(default=0, compare=False)

    # -- fitting -----------------------------------------------------------

    def fit(self, X, Y) -> "DecisionTree":
        """Fit on features ``X (n, f)`` and binary labels ``Y (n, L)``."""
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y)
        if Y.ndim == 1:
            Y = Y[:, None]
        Y = (Y != 0).astype(np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if Y.shape[0] != X.shape[0]:
            raise ValueError("X and Y must have the same number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(X)):
            raise ValueError("X contains non-finite values")
        self.n_features_ = X.shape[1]
        self.n_labels_ = Y.shape[1]
        self.root = self._grow(X, Y, depth=0)
        return self

    def _grow(self, X: np.ndarray, Y: np.ndarray, depth: int) -> TreeNode:
        n = X.shape[0]
        sums = Y.sum(axis=0)
        impurity = _gini(sums, n)
        node = TreeNode(
            n_samples=n, label_means=sums / n, impurity=impurity
        )
        if (
            impurity == 0.0
            or n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        split = self._best_split(X, Y, impurity)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], Y[mask], depth + 1)
        node.right = self._grow(X[~mask], Y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, Y: np.ndarray,
                    parent_impurity: float):
        """Exhaustive best (feature, threshold) by Gini decrease."""
        n, f = X.shape
        best = None
        # Like scikit-learn, a split is acceptable when its impurity
        # decrease reaches min_impurity_decrease — including zero-gain
        # splits at the default of 0.0, which XOR-like targets need.
        best_gain = self.min_impurity_decrease - 1e-12
        for j in range(f):
            order = np.argsort(X[:, j], kind="stable")
            xs = X[order, j]
            ys = Y[order]
            # candidate split points: between distinct consecutive values
            distinct = np.flatnonzero(np.diff(xs) > 0) + 1   # left sizes
            if distinct.size == 0:
                continue
            left_sums = np.cumsum(ys, axis=0)
            total = left_sums[-1]
            for k in distinct:
                if k < self.min_samples_leaf or n - k < self.min_samples_leaf:
                    continue
                li = _gini(left_sums[k - 1], k)
                ri = _gini(total - left_sums[k - 1], n - k)
                child = (k * li + (n - k) * ri) / n
                gain = parent_impurity - child
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (xs[k - 1] + xs[k])
                    best = (j, float(threshold), gain)
        return best

    # -- prediction ---------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Per-label positive fraction of the reached leaf, shape (n, L)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree expects {self.n_features_}"
            )
        out = np.empty((X.shape[0], self.n_labels_), dtype=np.float64)
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.label_means
        return out

    def predict(self, X) -> np.ndarray:
        """Binary multilabel prediction, shape (n, L)."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    # -- introspection ---------------------------------------------------------

    @property
    def depth(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.depth()

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.n_leaves()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation of the fitted tree."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")

        def encode(node: TreeNode) -> dict:
            out = {
                "n": node.n_samples,
                "means": node.label_means.tolist(),
                "impurity": node.impurity,
            }
            if not node.is_leaf:
                out["feature"] = node.feature
                out["threshold"] = node.threshold
                out["left"] = encode(node.left)
                out["right"] = encode(node.right)
            return out

        return {
            "params": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "min_impurity_decrease": self.min_impurity_decrease,
            },
            "n_features": self.n_features_,
            "n_labels": self.n_labels_,
            "root": encode(self.root),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecisionTree":
        """Rebuild a fitted tree from :meth:`to_dict` output."""

        def decode(data: dict) -> TreeNode:
            node = TreeNode(
                n_samples=int(data["n"]),
                label_means=np.asarray(data["means"], dtype=np.float64),
                impurity=float(data["impurity"]),
            )
            if "feature" in data:
                node.feature = int(data["feature"])
                node.threshold = float(data["threshold"])
                node.left = decode(data["left"])
                node.right = decode(data["right"])
            return node

        tree = cls(**payload["params"])
        tree.n_features_ = int(payload["n_features"])
        tree.n_labels_ = int(payload["n_labels"])
        tree.root = decode(payload["root"])
        return tree

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease importances, normalized to sum to 1."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        imp = np.zeros(self.n_features_)

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                return
            child = (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            ) / node.n_samples
            imp[node.feature] += node.n_samples * (node.impurity - child)
            walk(node.left)
            walk(node.right)

        walk(self.root)
        total = imp.sum()
        return imp / total if total > 0 else imp
