"""Machine-learning substrate (scikit-learn substitute, system S7)."""

from .crossval import CVResult, k_fold, leave_one_out
from .feature_search import SubsetScore, search_feature_subsets
from .metrics import exact_match_ratio, partial_match_ratio, per_label_accuracy
from .tree import DecisionTree, TreeNode

__all__ = [
    "DecisionTree",
    "TreeNode",
    "exact_match_ratio",
    "partial_match_ratio",
    "per_label_accuracy",
    "CVResult",
    "leave_one_out",
    "k_fold",
    "SubsetScore",
    "search_feature_subsets",
]
