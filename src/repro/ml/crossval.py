"""Cross-validation harnesses for the feature-guided classifier.

The paper estimates accuracy with Leave-One-Out cross validation over
its 210-matrix corpus: 210 fits, each tested on the held-out matrix,
scores averaged (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .metrics import exact_match_ratio, partial_match_ratio
from .tree import DecisionTree

__all__ = ["CVResult", "leave_one_out", "k_fold"]


@dataclass(frozen=True)
class CVResult:
    """Cross-validated accuracy scores."""

    exact_match: float
    partial_match: float
    n_samples: int
    n_splits: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"exact={100 * self.exact_match:.1f}% "
            f"partial={100 * self.partial_match:.1f}% "
            f"({self.n_splits} splits over {self.n_samples} samples)"
        )


def _default_factory() -> DecisionTree:
    return DecisionTree(max_depth=None, min_samples_leaf=2)


def leave_one_out(
    X, Y, tree_factory: Callable[[], DecisionTree] | None = None
) -> CVResult:
    """Leave-One-Out CV, the paper's protocol (k experiments, k = n)."""
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y)
    n = X.shape[0]
    if n < 2:
        raise ValueError("LOO CV needs at least 2 samples")
    factory = tree_factory or _default_factory
    preds = np.zeros_like(Y)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        mask[i] = False
        tree = factory().fit(X[mask], Y[mask])
        preds[i] = tree.predict(X[i : i + 1])[0]
        mask[i] = True
    return CVResult(
        exact_match=exact_match_ratio(Y, preds),
        partial_match=partial_match_ratio(Y, preds),
        n_samples=n,
        n_splits=n,
    )


def k_fold(
    X, Y, k: int = 10, seed: int = 0,
    tree_factory: Callable[[], DecisionTree] | None = None,
) -> CVResult:
    """Shuffled k-fold CV (cheaper sanity check than LOO)."""
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y)
    n = X.shape[0]
    if not 2 <= k <= n:
        raise ValueError(f"k must be in [2, {n}], got {k}")
    factory = tree_factory or _default_factory
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    preds = np.zeros_like(Y)
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        tree = factory().fit(X[mask], Y[mask])
        preds[fold] = tree.predict(X[fold])
    return CVResult(
        exact_match=exact_match_ratio(Y, preds),
        partial_match=partial_match_ratio(Y, preds),
        n_samples=n,
        n_splits=k,
    )
