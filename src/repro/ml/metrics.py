"""Multilabel classification metrics (paper Section IV-B).

The paper scores its feature-guided classifier with two metrics:

* **Exact Match Ratio** — fraction of samples whose predicted class
  *set* equals the label set exactly;
* **Partial Match Ratio** — a prediction counts as correct "if it
  contains at least one correct class". Since at least one
  optimization is applied per matrix, a partially correct set still
  yields a useful optimization. The all-negative ("dummy", not worth
  optimizing) labeling matches only itself.
"""

from __future__ import annotations

import numpy as np

__all__ = ["exact_match_ratio", "partial_match_ratio", "per_label_accuracy"]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = (np.asarray(y_true) != 0).astype(np.int64)
    y_pred = (np.asarray(y_pred) != 0).astype(np.int64)
    if y_true.ndim == 1:
        y_true = y_true[:, None]
    if y_pred.ndim == 1:
        y_pred = y_pred[:, None]
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("need at least one sample")
    return y_true, y_pred


def exact_match_ratio(y_true, y_pred) -> float:
    """Fraction of samples whose full label set is predicted exactly."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.all(y_true == y_pred, axis=1)))


def partial_match_ratio(y_true, y_pred) -> float:
    """Fraction with at least one correctly predicted *positive* class.

    Samples whose true set is empty (the dummy class) are counted
    correct only on an exactly empty prediction.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    overlap = np.any((y_true == 1) & (y_pred == 1), axis=1)
    both_empty = ~np.any(y_true, axis=1) & ~np.any(y_pred, axis=1)
    return float(np.mean(overlap | both_empty))


def per_label_accuracy(y_true, y_pred) -> np.ndarray:
    """Per-label (column-wise) accuracy vector."""
    y_true, y_pred = _validate(y_true, y_pred)
    return np.mean(y_true == y_pred, axis=0)
