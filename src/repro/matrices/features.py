"""Structural feature extraction (paper Table II).

Features are grouped by extraction complexity exactly as in the paper:

* ``O(1)``: ``size`` (working set fits in LLC), ``density``;
* ``O(N)``: statistics of per-row nonzero counts and bandwidths,
  plus the derived ``scatter``/``dispersion`` statistics;
* ``O(NNZ)``: ``clustering_avg`` and ``misses_avg``, which need a pass
  over the column indices.

The feature-guided classifier of the paper consumes subsets of these;
Table IV reports one ``O(N)`` and one ``O(NNZ)`` subset. The paper's
``dispersion`` features (Table IV) are the ``scatter`` statistics of
Table II under their alternative name; we expose both spellings.

Deviation noted for reproducibility: the paper defines
``scatter_i = nnz_i / bw_i`` which is undefined for rows with a single
nonzero (``bw_i = 0``); we use ``nnz_i / (bw_i + 1)``, which equals 1
for a fully dense run and is defined everywhere. Empty rows contribute
0 to all per-row averages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix

__all__ = [
    "FeatureVector",
    "extract_features",
    "feature_matrix",
    "FEATURE_NAMES",
    "FEATURE_COMPLEXITY",
    "features_with_complexity",
    "O1_FEATURES",
    "ON_FEATURES",
    "ONNZ_FEATURES",
    "PAPER_ON_SUBSET",
    "PAPER_ONNZ_SUBSET",
]

#: Canonical feature ordering used throughout the library.
FEATURE_NAMES: tuple[str, ...] = (
    "size",
    "density",
    "nnz_min",
    "nnz_max",
    "nnz_avg",
    "nnz_sd",
    "bw_min",
    "bw_max",
    "bw_avg",
    "bw_sd",
    "scatter_avg",
    "scatter_sd",
    "clustering_avg",
    "misses_avg",
)

#: Extraction complexity class of each feature (paper Table II).
FEATURE_COMPLEXITY: dict[str, str] = {
    "size": "O(1)",
    "density": "O(1)",
    "nnz_min": "O(N)",
    "nnz_max": "O(N)",
    "nnz_avg": "O(N)",
    "nnz_sd": "O(N)",
    "bw_min": "O(N)",
    "bw_max": "O(N)",
    "bw_avg": "O(N)",
    "bw_sd": "O(N)",
    "scatter_avg": "O(N)",
    "scatter_sd": "O(N)",
    "clustering_avg": "O(NNZ)",
    "misses_avg": "O(NNZ)",
}

O1_FEATURES = tuple(f for f in FEATURE_NAMES if FEATURE_COMPLEXITY[f] == "O(1)")
ON_FEATURES = tuple(f for f in FEATURE_NAMES if FEATURE_COMPLEXITY[f] == "O(N)")
ONNZ_FEATURES = tuple(
    f for f in FEATURE_NAMES if FEATURE_COMPLEXITY[f] == "O(NNZ)"
)

#: The O(N)-complexity classifier feature subset of paper Table IV
#: (nnz_{min,max,sd}, bw_avg, dispersion_{avg,sd}).
PAPER_ON_SUBSET = (
    "nnz_min", "nnz_max", "nnz_sd", "bw_avg", "scatter_avg", "scatter_sd",
)

#: The O(NNZ)-complexity classifier feature subset of paper Table IV
#: (size, bw_{avg,sd}, nnz_{min,max,avg,sd}, misses_avg, dispersion_sd).
PAPER_ONNZ_SUBSET = (
    "size", "bw_avg", "bw_sd", "nnz_min", "nnz_max", "nnz_avg", "nnz_sd",
    "misses_avg", "scatter_sd",
)

_ALIASES = {"dispersion_avg": "scatter_avg", "dispersion_sd": "scatter_sd"}


def canonical_feature_name(name: str) -> str:
    """Resolve paper aliases (``dispersion_*``) to canonical names."""
    name = _ALIASES.get(name, name)
    if name not in FEATURE_NAMES:
        raise ValueError(f"unknown feature {name!r}")
    return name


@dataclass(frozen=True)
class FeatureVector:
    """All Table II features of one matrix, keyed access included."""

    size: float
    density: float
    nnz_min: float
    nnz_max: float
    nnz_avg: float
    nnz_sd: float
    bw_min: float
    bw_max: float
    bw_avg: float
    bw_sd: float
    scatter_avg: float
    scatter_sd: float
    clustering_avg: float
    misses_avg: float

    def __getitem__(self, name: str) -> float:
        return float(getattr(self, canonical_feature_name(name)))

    def as_array(self, names: tuple[str, ...] = FEATURE_NAMES) -> np.ndarray:
        """Feature values in ``names`` order as a float64 vector."""
        return np.array([self[n] for n in names], dtype=np.float64)

    def as_dict(self) -> dict[str, float]:
        return {n: self[n] for n in FEATURE_NAMES}


def spmv_working_set_bytes(csr: CSRMatrix) -> int:
    """Bytes touched by one CSR SpMV: matrix + x + y."""
    return csr.total_nbytes() + 8 * (csr.ncols + csr.nrows)


def extract_features(
    csr: CSRMatrix,
    *,
    llc_bytes: int = 32 * 1024 * 1024,
    line_elems: int = 8,
) -> FeatureVector:
    """Extract the full Table II feature vector of ``csr``.

    Parameters
    ----------
    llc_bytes
        Last-level-cache capacity used by the binary ``size`` feature.
    line_elems
        Number of float64 elements per cache line (64-byte line -> 8),
        used by the naive ``misses`` estimate.
    """
    n = csr.nrows
    nnz = csr.row_nnz().astype(np.float64)
    bw = csr.row_bandwidths().astype(np.float64)

    size = 1.0 if spmv_working_set_bytes(csr) <= llc_bytes else 0.0
    density = csr.nnz / float(csr.nrows) / float(csr.ncols)

    scatter = np.where(nnz > 0, nnz / (bw + 1.0), 0.0)

    gaps = csr.column_gaps()
    # Per-nonzero indicators, folded back to rows with segment sums.
    # A "group" starts wherever the gap to the in-row predecessor is not
    # exactly 1 (the first element of a row has gap 0, starting a group).
    new_group = (gaps != 1).astype(np.float64)
    ngroups = _row_sums(new_group, csr.rowptr)
    clustering = np.where(nnz > 0, ngroups / np.maximum(nnz, 1.0), 0.0)

    # Naive per-row miss estimate (paper): an element "can generate a
    # cache miss" when its distance from the in-row predecessor exceeds
    # the elements per cache line. Row-first elements are not counted.
    miss_flag = (gaps > line_elems).astype(np.float64)
    misses = _row_sums(miss_flag, csr.rowptr)

    def _sd(x: np.ndarray) -> float:
        # Population standard deviation, as written in Table II.
        return float(np.sqrt(np.mean((x - x.mean()) ** 2))) if x.size else 0.0

    return FeatureVector(
        size=size,
        density=float(density),
        nnz_min=float(nnz.min(initial=0.0)) if n else 0.0,
        nnz_max=float(nnz.max(initial=0.0)) if n else 0.0,
        nnz_avg=float(nnz.mean()) if n else 0.0,
        nnz_sd=_sd(nnz),
        bw_min=float(bw.min(initial=0.0)) if n else 0.0,
        bw_max=float(bw.max(initial=0.0)) if n else 0.0,
        bw_avg=float(bw.mean()) if n else 0.0,
        bw_sd=_sd(bw),
        scatter_avg=float(scatter.mean()) if n else 0.0,
        scatter_sd=_sd(scatter),
        clustering_avg=float(clustering.mean()) if n else 0.0,
        misses_avg=float(misses.mean()) if n else 0.0,
    )


def feature_matrix(
    matrices, names: tuple[str, ...] = FEATURE_NAMES, **kwargs
) -> np.ndarray:
    """Stack :func:`extract_features` of many matrices into (k, f)."""
    names = tuple(canonical_feature_name(n) for n in names)
    return np.array(
        [extract_features(m, **kwargs).as_array(names) for m in matrices]
    )


def features_with_complexity(max_complexity: str) -> tuple[str, ...]:
    """All features extractable within ``max_complexity``.

    ``max_complexity`` is one of ``"O(1)"``, ``"O(N)"``, ``"O(NNZ)"``;
    cheaper classes are always included.
    """
    order = {"O(1)": 0, "O(N)": 1, "O(NNZ)": 2}
    if max_complexity not in order:
        raise ValueError(f"unknown complexity class {max_complexity!r}")
    cap = order[max_complexity]
    return tuple(
        f for f in FEATURE_NAMES if order[FEATURE_COMPLEXITY[f]] <= cap
    )


def _row_sums(per_nnz: np.ndarray, rowptr: np.ndarray) -> np.ndarray:
    """Sum a per-nonzero quantity within each row."""
    out = np.zeros(rowptr.size - 1, dtype=np.float64)
    if per_nnz.size == 0:
        return out
    lengths = np.diff(rowptr)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(per_nnz, rowptr[nonempty])
    return out
