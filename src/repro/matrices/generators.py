"""Synthetic sparse-matrix generators (system S2 in DESIGN.md).

The paper evaluates on matrices from the University of Florida Sparse
Matrix Collection. That collection is not available offline, so these
generators synthesize the *structural archetypes* the paper's
classifier actually reacts to:

* regular banded / stencil / FEM matrices (memory-bandwidth bound),
* uniformly scattered matrices (memory-latency bound),
* power-law graphs with skewed row lengths (imbalance),
* circuit/LP matrices with a few ultra-dense rows (imbalance+compute),
* mostly-short-row web crawls (loop-overhead / compute bound),
* small matrices that fit in cache (compute bound).

Every generator is deterministic given its ``seed`` and returns a
canonical :class:`~repro.formats.csr.CSRMatrix`. All construction is
vectorized; no per-row Python loops on the nonzero path.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..formats import COOMatrix, CSRMatrix

__all__ = [
    "banded",
    "stencil27",
    "fem_like",
    "random_uniform",
    "power_law",
    "with_dense_rows",
    "short_rows",
    "kronecker_graph",
    "diagonal_blocks",
    "laplacian_1d",
    "poisson2d",
    "vstack",
]


def _to_csr(rows, cols, n, m, rng, values=None) -> CSRMatrix:
    """Assemble triplets into CSR; duplicates are merged (summed)."""
    if values is None:
        values = rng.uniform(0.5, 1.5, size=len(rows))
    return CSRMatrix.from_coo(COOMatrix(rows, cols, values, (n, m)))


def _row_repeat(row_nnz: np.ndarray) -> np.ndarray:
    """Expand per-row counts into a row index per nonzero."""
    return np.repeat(np.arange(row_nnz.size, dtype=np.int64), row_nnz)


def banded(n: int, nnz_per_row: int = 9, bandwidth: int | None = None,
           jitter: float = 0.0, seed: int = 0) -> CSRMatrix:
    """Regular banded matrix (FEM-like, MB archetype).

    Each row gets ``nnz_per_row`` nonzeros evenly spaced in a band of
    ``bandwidth`` columns centred on the diagonal; ``jitter`` (in
    columns) perturbs the positions to avoid perfectly constant deltas.
    """
    check_positive("n", n)
    check_positive("nnz_per_row", nnz_per_row)
    if bandwidth is None:
        bandwidth = max(2 * nnz_per_row, 4)
    rng = np.random.default_rng(seed)
    offsets = np.linspace(-bandwidth / 2, bandwidth / 2, nnz_per_row)
    rows = _row_repeat(np.full(n, nnz_per_row, dtype=np.int64))
    cols = np.add.outer(np.arange(n), offsets).ravel()
    if jitter > 0:
        cols = cols + rng.normal(0.0, jitter, size=cols.size)
    cols = np.clip(np.rint(cols), 0, n - 1).astype(np.int64)
    return _to_csr(rows, cols, n, n, rng)


def laplacian_1d(n: int) -> CSRMatrix:
    """Tridiagonal 1-D Laplacian — the canonical SPD test matrix."""
    check_positive("n", n)
    i = np.arange(n, dtype=np.int64)
    rows = np.concatenate([i, i[1:], i[:-1]])
    cols = np.concatenate([i, i[1:] - 1, i[:-1] + 1])
    vals = np.concatenate([
        np.full(n, 2.0), np.full(n - 1, -1.0), np.full(n - 1, -1.0)
    ])
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, (n, n)))


def poisson2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """5-point 2-D Poisson operator on an ``nx`` x ``ny`` grid (SPD)."""
    check_positive("nx", nx)
    ny = nx if ny is None else ny
    check_positive("ny", ny)
    n = nx * ny
    idx = np.arange(n, dtype=np.int64)
    ix, iy = idx % nx, idx // nx
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for mask, off in (
        (ix > 0, -1),
        (ix < nx - 1, +1),
        (iy > 0, -nx),
        (iy < ny - 1, +nx),
    ):
        rows.append(idx[mask])
        cols.append(idx[mask] + off)
        vals.append(np.full(int(mask.sum()), -1.0))
    return CSRMatrix.from_coo(
        COOMatrix(np.concatenate(rows), np.concatenate(cols),
                  np.concatenate(vals), (n, n))
    )


def stencil27(nx: int, ny: int | None = None, nz: int | None = None,
              seed: int = 0) -> CSRMatrix:
    """27-point 3-D stencil (consph/boneS10 archetype: regular, ~27 nnz/row)."""
    check_positive("nx", nx)
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    rows_list, cols_list = [], []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                jx, jy, jz = ix + dx, iy + dy, iz + dz
                ok = (
                    (jx >= 0) & (jx < nx)
                    & (jy >= 0) & (jy < ny)
                    & (jz >= 0) & (jz < nz)
                )
                rows_list.append(idx[ok])
                cols_list.append((jx + nx * (jy + ny * jz))[ok])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _to_csr(rows, cols, n, n, rng)


def fem_like(n: int, block: int = 3, neighbors: int = 8,
             reach: int | None = None, seed: int = 0) -> CSRMatrix:
    """Block-structured FEM matrix: dense ``block``-sized couplings with
    a handful of neighbor blocks within a limited ``reach`` (in blocks).

    Produces the clustered, medium-bandwidth structure of matrices like
    *consph* or *offshore* (with larger ``reach`` the structure gets
    more irregular and latency-prone).
    """
    check_positive("n", n)
    check_positive("block", block)
    rng = np.random.default_rng(seed)
    nblocks = max(n // block, 1)
    n = nblocks * block
    if reach is None:
        reach = 4 * neighbors
    # Each block row couples to `neighbors` block columns nearby.
    brow = _row_repeat(np.full(nblocks, neighbors, dtype=np.int64))
    offs = rng.integers(-reach, reach + 1, size=brow.size)
    bcol = np.clip(brow + offs, 0, nblocks - 1)
    # Expand each block pair into a dense block x block patch.
    di, dj = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    rows = (brow[:, None] * block + di.ravel()[None, :]).ravel()
    cols = (bcol[:, None] * block + dj.ravel()[None, :]).ravel()
    # Always include the diagonal block.
    idx = np.arange(n, dtype=np.int64)
    blk = idx // block * block
    drows = np.repeat(idx, block)
    dcols = (blk[:, None] + np.arange(block)[None, :]).ravel()
    rows = np.concatenate([rows, drows])
    cols = np.concatenate([cols, dcols])
    return _to_csr(rows, cols, n, n, rng)


def random_uniform(n: int, nnz_per_row: float = 16.0, seed: int = 0,
                   ncols: int | None = None) -> CSRMatrix:
    """Uniformly scattered matrix (ML archetype: no locality in x).

    Row lengths are Poisson-distributed around ``nnz_per_row``; column
    indices are uniform over all columns, which defeats both spatial
    reuse and hardware prefetching of the right-hand-side vector.
    """
    check_positive("n", n)
    check_positive("nnz_per_row", nnz_per_row)
    m = n if ncols is None else ncols
    rng = np.random.default_rng(seed)
    row_nnz = rng.poisson(nnz_per_row, size=n).astype(np.int64)
    rows = _row_repeat(row_nnz)
    cols = rng.integers(0, m, size=rows.size)
    return _to_csr(rows, cols, n, m, rng)


def power_law(n: int, avg_deg: float = 10.0, alpha: float = 2.1,
              max_deg: int | None = None, hub_cols: bool = True,
              seed: int = 0) -> CSRMatrix:
    """Power-law (scale-free) graph adjacency (web/citation archetype).

    Row lengths follow a truncated Pareto with tail exponent ``alpha``
    scaled to hit ``avg_deg`` on average; with ``hub_cols`` the column
    endpoints are also skewed toward hub vertices, as in real graphs.
    Highly uneven rows trigger the IMB class; scattered columns also
    expose latency.
    """
    check_positive("n", n)
    check_positive("avg_deg", avg_deg)
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    rng = np.random.default_rng(seed)
    if max_deg is None:
        max_deg = max(int(n * 0.5), 4)
    # Pareto(alpha-1) has mean (alpha-1)/(alpha-2) for alpha > 2; just
    # draw and rescale empirically, which also handles alpha <= 2.
    raw = (1.0 + rng.pareto(alpha - 1.0, size=n))
    raw = np.minimum(raw, max_deg)
    row_nnz = np.maximum(
        np.rint(raw * (avg_deg / raw.mean())), 1
    ).astype(np.int64)
    row_nnz = np.minimum(row_nnz, n)
    rows = _row_repeat(row_nnz)
    if hub_cols:
        # Column popularity ~ Zipf over a permuted vertex order.
        ranks = rng.permutation(n).astype(np.float64) + 1.0
        weights = ranks ** (-1.0 / (alpha - 1.0))
        weights /= weights.sum()
        cols = rng.choice(n, size=rows.size, p=weights)
    else:
        cols = rng.integers(0, n, size=rows.size)
    return _to_csr(rows, cols, n, n, rng)


def with_dense_rows(base: CSRMatrix, n_dense: int, dense_nnz: int,
                    seed: int = 0) -> CSRMatrix:
    """Inject ``n_dense`` ultra-dense rows into ``base``.

    Models circuit-simulation and LP matrices (*ASIC_680k*, *rajat30*,
    *FullChip*, *degme*): the bulk of the matrix is sparse but a few
    rows concentrate a large share of the nonzeros, which row
    partitioning cannot balance.
    """
    check_positive("n_dense", n_dense)
    check_positive("dense_nnz", dense_nnz)
    rng = np.random.default_rng(seed)
    n, m = base.shape
    dense_nnz = min(dense_nnz, m)
    target = rng.choice(n, size=min(n_dense, n), replace=False)
    rows = np.repeat(target.astype(np.int64), dense_nnz)
    cols = rng.integers(0, m, size=rows.size)
    base_coo = base.to_coo()
    all_rows = np.concatenate([base_coo.rows, rows])
    all_cols = np.concatenate([base_coo.cols, cols])
    all_vals = np.concatenate([
        base_coo.values, rng.uniform(0.5, 1.5, size=rows.size)
    ])
    return CSRMatrix.from_coo(COOMatrix(all_rows, all_cols, all_vals, (n, m)))


def short_rows(n: int, avg_nnz: float = 3.0, frac_empty: float = 0.1,
               locality: float = 0.5, seed: int = 0) -> CSRMatrix:
    """Mostly 1-4 nnz rows (webbase archetype: loop overhead dominates).

    ``locality`` in [0, 1] blends between diagonal-local columns (1.0)
    and uniformly random columns (0.0).
    """
    check_positive("n", n)
    rng = np.random.default_rng(seed)
    row_nnz = rng.poisson(avg_nnz, size=n).astype(np.int64)
    row_nnz[rng.random(n) < frac_empty] = 0
    rows = _row_repeat(row_nnz)
    local = np.clip(
        rows + rng.integers(-32, 33, size=rows.size), 0, n - 1
    )
    uniform = rng.integers(0, n, size=rows.size)
    use_local = rng.random(rows.size) < locality
    cols = np.where(use_local, local, uniform)
    return _to_csr(rows, cols, n, n, rng)


def kronecker_graph(scale: int, edge_factor: int = 16,
                    a: float = 0.57, b: float = 0.19, c: float = 0.19,
                    seed: int = 0) -> CSRMatrix:
    """R-MAT/Kronecker graph (Graph500 style), 2**scale vertices.

    Produces the heavy-tailed, community-structured adjacency typical
    of social networks (*flickr* archetype).
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    if not (0 < a + b + c < 1):
        raise ValueError("a + b + c must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    nedges = n * edge_factor
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    ab, abc = a + b, a + b + c
    for _ in range(scale):
        r = rng.random(nedges)
        bit_r = (r >= ab).astype(np.int64)          # bottom half of rows
        r2 = rng.random(nedges)
        # Column bit distribution depends on the row bit.
        top = np.where(bit_r == 0, a / ab, c / (abc - ab + (1 - abc)))
        bit_c = (r2 >= top).astype(np.int64)
        rows = (rows << 1) | bit_r
        cols = (cols << 1) | bit_c
    return _to_csr(rows, cols, n, n, rng)


def vstack(matrices) -> CSRMatrix:
    """Stack CSR matrices vertically (rows concatenated).

    All inputs must share the column count. This is how *regionally
    heterogeneous* matrices are built: e.g. a locally-banded region on
    top of a scattered region gives equal-nnz thread partitions very
    different execution costs — the paper's second IMB subcategory
    ("regions with completely different sparsity patterns").
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("vstack needs at least one matrix")
    ncols = matrices[0].ncols
    for m in matrices:
        if m.ncols != ncols:
            raise ValueError("all matrices must have the same column count")
    rowptr_parts = [matrices[0].rowptr]
    for m in matrices[1:]:
        rowptr_parts.append(m.rowptr[1:] + rowptr_parts[-1][-1])
    return CSRMatrix(
        np.concatenate(rowptr_parts),
        np.concatenate([m.colind for m in matrices]),
        np.concatenate([m.values for m in matrices]),
        (sum(m.nrows for m in matrices), ncols),
        trusted=True,
    )


def diagonal_blocks(n: int, block: int = 64, fill: float = 0.6,
                    seed: int = 0) -> CSRMatrix:
    """Block-diagonal matrix with dense-ish blocks (cache-friendly CMP
    archetype when small: high operational intensity, no scatter)."""
    check_positive("n", n)
    check_positive("block", block)
    rng = np.random.default_rng(seed)
    nblocks = max(n // block, 1)
    n = nblocks * block
    per_block = max(int(fill * block * block), 1)
    bids = _row_repeat(np.full(nblocks, per_block, dtype=np.int64))
    local_r = rng.integers(0, block, size=bids.size)
    local_c = rng.integers(0, block, size=bids.size)
    rows = bids * block + local_r
    cols = bids * block + local_c
    return _to_csr(rows, cols, n, n, rng)
