"""Training corpus for the feature-guided classifier.

The paper trains on 210 matrices from a wide variety of application
domains "to avoid being biased towards a specific sparsity pattern".
We mirror that with a seeded sample over the full generator space:
each family contributes a parameter sweep, and per-sample jitter makes
every matrix structurally distinct. Sizes span the regimes that
separate the bottleneck classes (cache-resident through several-times-
LLC working sets) while keeping the cost of labeling 210 matrices with
the profile-guided classifier moderate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix
from . import generators as gen

__all__ = ["TrainingMatrix", "training_suite", "TRAINING_FAMILIES"]


@dataclass(frozen=True)
class TrainingMatrix:
    """One labeled-corpus entry: a matrix plus its provenance."""

    name: str
    family: str
    matrix: CSRMatrix


#: Family name -> sampler(rng, size_scale) -> CSRMatrix
def _sample_banded(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.banded(
        n,
        nnz_per_row=int(rng.integers(4, 40)),
        bandwidth=int(rng.integers(8, 400)),
        jitter=float(rng.uniform(0.0, 8.0)),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_fem(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.fem_like(
        n,
        block=int(rng.integers(1, 7)),
        neighbors=int(rng.integers(3, 16)),
        reach=int(rng.integers(4, max(n // 8, 8))),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_scatter(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.random_uniform(
        n,
        nnz_per_row=float(rng.uniform(2.0, 30.0)),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_powerlaw(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.power_law(
        n,
        avg_deg=float(rng.uniform(3.0, 20.0)),
        alpha=float(rng.uniform(1.8, 3.0)),
        hub_cols=bool(rng.random() < 0.7),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_circuit(rng: np.random.Generator, n: int) -> CSRMatrix:
    base = gen.banded(
        n,
        nnz_per_row=int(rng.integers(2, 8)),
        bandwidth=int(rng.integers(4, 64)),
        jitter=float(rng.uniform(0.0, 2.0)),
        seed=int(rng.integers(1 << 31)),
    )
    return gen.with_dense_rows(
        base,
        n_dense=int(rng.integers(1, 8)),
        dense_nnz=int(rng.integers(n // 8, max(n // 2, n // 8 + 1))),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_web(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.short_rows(
        n,
        avg_nnz=float(rng.uniform(1.5, 6.0)),
        frac_empty=float(rng.uniform(0.0, 0.2)),
        locality=float(rng.uniform(0.0, 1.0)),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_kron(rng: np.random.Generator, n: int) -> CSRMatrix:
    scale = max(int(np.log2(max(n, 2))), 8)
    return gen.kronecker_graph(
        scale,
        edge_factor=int(rng.integers(6, 20)),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_blockdiag(rng: np.random.Generator, n: int) -> CSRMatrix:
    return gen.diagonal_blocks(
        n,
        block=int(rng.integers(16, 128)),
        fill=float(rng.uniform(0.2, 0.9)),
        seed=int(rng.integers(1 << 31)),
    )


def _sample_stencil(rng: np.random.Generator, n: int) -> CSRMatrix:
    side = max(int(round(n ** (1.0 / 3.0))), 4)
    return gen.stencil27(side, seed=int(rng.integers(1 << 31)))


def _sample_tworegion(rng: np.random.Generator, n: int) -> CSRMatrix:
    half = max(n // 2, 256)
    deg = float(rng.uniform(3.0, 20.0))
    top = gen.banded(
        half,
        nnz_per_row=max(int(deg), 2),
        bandwidth=int(rng.integers(8, 128)),
        jitter=float(rng.uniform(0.0, 2.0)),
        seed=int(rng.integers(1 << 31)),
    )
    bottom = gen.random_uniform(
        half, nnz_per_row=deg, seed=int(rng.integers(1 << 31)),
        ncols=top.ncols,
    )
    return gen.vstack([top, bottom])


TRAINING_FAMILIES = {
    "banded": _sample_banded,
    "tworegion": _sample_tworegion,
    "fem": _sample_fem,
    "scatter": _sample_scatter,
    "powerlaw": _sample_powerlaw,
    "circuit": _sample_circuit,
    "web": _sample_web,
    "kronecker": _sample_kron,
    "blockdiag": _sample_blockdiag,
    "stencil": _sample_stencil,
}


def training_suite(
    count: int = 210,
    seed: int = 2017,
    min_rows: int = 20_000,
    max_rows: int = 100_000,
) -> list[TrainingMatrix]:
    """Build the ``count``-matrix training corpus (deterministic).

    Families are sampled round-robin so that every archetype is evenly
    represented, as the paper's domain-diverse selection intends.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    families = list(TRAINING_FAMILIES.items())
    out: list[TrainingMatrix] = []
    for i in range(count):
        family, sampler = families[i % len(families)]
        n = int(rng.integers(min_rows, max_rows + 1))
        matrix = sampler(rng, n)
        out.append(
            TrainingMatrix(name=f"{family}-{i:03d}", family=family,
                           matrix=matrix)
        )
    return out
