"""Descriptive statistics and reports for sparse matrices.

Complements :mod:`repro.matrices.features` (which is strictly the
paper's Table II) with the richer diagnostics used by the examples and
experiment reports: row-length quantiles, skew (Gini), symmetry, and a
human-readable summary block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix

__all__ = ["MatrixStats", "matrix_stats", "gini_coefficient", "is_structurally_symmetric"]


def gini_coefficient(x: np.ndarray) -> float:
    """Gini coefficient of a nonnegative distribution (0 = uniform).

    Used as a scalar measure of row-length skew: power-law matrices
    score high, stencils score ~0.
    """
    x = np.sort(np.asarray(x, dtype=np.float64))
    if x.size == 0 or x.sum() == 0:
        return 0.0
    if np.any(x < 0):
        raise ValueError("gini_coefficient requires nonnegative values")
    n = x.size
    cum = np.cumsum(x)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def is_structurally_symmetric(csr: CSRMatrix, sample: int | None = None) -> bool:
    """True when the nonzero pattern equals that of the transpose."""
    if csr.nrows != csr.ncols:
        return False
    t = csr.transpose()
    if sample is not None and csr.nnz > sample:
        rng = np.random.default_rng(0)
        idx = rng.choice(csr.nnz, size=sample, replace=False)
        rows = csr.row_ids_per_nnz()[idx]
        cols = csr.colind[idx].astype(np.int64)
        tset = set(zip(t.row_ids_per_nnz().tolist(), t.colind.tolist()))
        return all((c, r) in tset for r, c in zip(rows.tolist(), cols.tolist()))
    return (
        np.array_equal(csr.rowptr, t.rowptr)
        and np.array_equal(csr.colind, t.colind)
    )


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one sparse matrix."""

    nrows: int
    ncols: int
    nnz: int
    density: float
    nnz_per_row_mean: float
    nnz_per_row_median: float
    nnz_per_row_p99: float
    nnz_per_row_max: int
    empty_rows: int
    row_skew_gini: float
    bandwidth_mean: float
    bandwidth_max: int
    bytes_csr: int

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"shape            {self.nrows} x {self.ncols}",
            f"nnz              {self.nnz} (density {self.density:.2e})",
            f"nnz/row          mean {self.nnz_per_row_mean:.1f}  "
            f"median {self.nnz_per_row_median:.0f}  "
            f"p99 {self.nnz_per_row_p99:.0f}  max {self.nnz_per_row_max}",
            f"empty rows       {self.empty_rows}",
            f"row skew (gini)  {self.row_skew_gini:.3f}",
            f"bandwidth        mean {self.bandwidth_mean:.1f}  "
            f"max {self.bandwidth_max}",
            f"CSR bytes        {self.bytes_csr}",
        ]
        return "\n".join(lines)


def matrix_stats(csr: CSRMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` for ``csr``."""
    nnz = csr.row_nnz()
    bw = csr.row_bandwidths()
    return MatrixStats(
        nrows=csr.nrows,
        ncols=csr.ncols,
        nnz=csr.nnz,
        density=csr.nnz / float(csr.nrows) / float(csr.ncols),
        nnz_per_row_mean=float(nnz.mean()) if nnz.size else 0.0,
        nnz_per_row_median=float(np.median(nnz)) if nnz.size else 0.0,
        nnz_per_row_p99=float(np.percentile(nnz, 99)) if nnz.size else 0.0,
        nnz_per_row_max=int(nnz.max(initial=0)),
        empty_rows=int(np.count_nonzero(nnz == 0)),
        row_skew_gini=gini_coefficient(nnz),
        bandwidth_mean=float(bw.mean()) if bw.size else 0.0,
        bandwidth_max=int(bw.max(initial=0)),
        bytes_csr=csr.total_nbytes(),
    )
