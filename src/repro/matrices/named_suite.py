"""Named evaluation suite — scaled-down analogues of the paper's matrices.

The paper evaluates on a representative subset of the University of
Florida Sparse Matrix Collection. The collection is unavailable offline,
so each named matrix here is a *synthetic analogue*: a seeded generator
configuration chosen to reproduce the structural character that places
the original in its paper-reported bottleneck class(es) — row-length
distribution, column scatter, bandwidth, density and working-set size.
See DESIGN.md Section 2 for the substitution rationale.

``expected_classes`` records the classes the *paper* reports/implies per
platform. They document intent and seed the integration tests' loose
assertions; the reproduced classifier output is allowed to differ in
detail (it is a different corpus), but the overall diversity must hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..formats import CSRMatrix
from . import generators as gen

__all__ = ["NamedMatrixSpec", "NAMED_SUITE", "named_matrix", "suite_names", "load_suite"]


@dataclass(frozen=True)
class NamedMatrixSpec:
    """Recipe for one named analogue matrix."""

    name: str
    domain: str
    description: str
    build: Callable[[float], CSRMatrix]
    expected_classes: dict[str, frozenset[str]] = field(default_factory=dict)

    def __call__(self, scale: float = 1.0) -> CSRMatrix:
        if not 0 < scale <= 4.0:
            raise ValueError(f"scale must be in (0, 4], got {scale}")
        return self.build(scale)


def _n(base: int, scale: float, lo: int = 512) -> int:
    return max(int(base * scale), lo)


def _cls(**platforms) -> dict[str, frozenset[str]]:
    return {p: frozenset(c) for p, c in platforms.items()}


def _offshore(s: float):
    top = gen.fem_like(_n(60_000, s), block=3, neighbors=5, reach=40,
                       seed=106)
    bottom = gen.random_uniform(_n(40_000, s), nnz_per_row=17.0, seed=206,
                                ncols=top.ncols)
    return gen.vstack([top, bottom])


def _spec(name, domain, description, build, expected=None):
    return NamedMatrixSpec(
        name=name,
        domain=domain,
        description=description,
        build=build,
        expected_classes=expected or {},
    )


NAMED_SUITE: tuple[NamedMatrixSpec, ...] = (
    _spec(
        "consph",
        "FEM/spheres",
        "Regular block FEM, ~70 nnz/row, compact bandwidth. Paper: "
        "bandwidth bound on KNC (P_CSR ~ P_ML ~ P_MB).",
        lambda s: gen.fem_like(_n(80_000, s), block=3, neighbors=23,
                               reach=24, seed=101),
        _cls(knc={"MB"}, knl={"MB"}, broadwell={"MB"}),
    ),
    _spec(
        "boneS10",
        "FEM/model reduction",
        "Regular banded FEM, ~48 nnz/row, near-constant row lengths.",
        lambda s: gen.banded(_n(90_000, s), nnz_per_row=48, bandwidth=120,
                             jitter=1.5, seed=102),
        _cls(knc={"MB"}, knl={"MB"}, broadwell={"MB"}),
    ),
    _spec(
        "nd24k",
        "2D/3D mesh",
        "Dense block rows (~350 nnz/row), very compact: high flop:byte "
        "for a sparse matrix. Paper: balanced + bandwidth bound.",
        lambda s: gen.fem_like(_n(30_000, s), block=6, neighbors=55,
                               reach=10, seed=103),
        _cls(knc={"MB"}, knl={"MB"}, broadwell={"MB"}),
    ),
    _spec(
        "poisson3Db",
        "CFD",
        "3-D unstructured FEM: medium rows, columns scattered across a "
        "wide window -> poor x locality. Paper: ML (and IMB) on KNC.",
        lambda s: gen.random_uniform(_n(86_000, s), nnz_per_row=25,
                                     seed=104),
        _cls(knc={"ML", "IMB"}, knl={"ML"}, broadwell=set()),
    ),
    _spec(
        "parabolic_fem",
        "CFD/thermal",
        "Very short rows (~4-7 nnz); a regularly-gridded region sits on "
        "top of a scattered region (adaptive refinement), so equal-nnz "
        "partitions have uneven cost. Paper: {ML, IMB} on KNC and KNL.",
        lambda s: gen.vstack([
            gen.banded(_n(80_000, s), nnz_per_row=5, bandwidth=12,
                       jitter=0.5, seed=105),
            gen.random_uniform(_n(80_000, s), nnz_per_row=5.0, seed=205,
                               ncols=_n(80_000, s)),
        ]),
        _cls(knc={"ML", "IMB"}, knl={"ML", "IMB"}),
    ),
    _spec(
        "offshore",
        "electromagnetics FEM",
        "Irregular FEM: clustered blocks with a long-range-coupled "
        "region; mixed ML/IMB bottlenecks.",
        lambda s: _offshore(s),
        _cls(knc={"ML", "IMB"}),
    ),
    _spec(
        "thermal2",
        "thermal FEM",
        "Large, very sparse rows (~7 nnz): a banded region plus a "
        "widely-scattered region. Paper: {ML, IMB} on KNL.",
        lambda s: gen.vstack([
            gen.banded(_n(100_000, s), nnz_per_row=7, bandwidth=20,
                       jitter=1.0, seed=107),
            gen.random_uniform(_n(100_000, s), nnz_per_row=7.0, seed=207,
                               ncols=_n(100_000, s)),
        ]),
        _cls(knc={"ML", "IMB"}, knl={"ML", "IMB"}),
    ),
    _spec(
        "citationCiteseer",
        "citation graph",
        "Power-law citation network: skewed rows, hub columns. Paper: "
        "balanced threads already (P_CSR ~ P_IMB) but irregular.",
        lambda s: gen.power_law(_n(110_000, s), avg_deg=5.0, alpha=2.4,
                                seed=108),
        _cls(knc={"ML"}),
    ),
    _spec(
        "web-Google",
        "web graph",
        "Web crawl with power-law in/out degrees and hub columns.",
        lambda s: gen.power_law(_n(120_000, s), avg_deg=6.0, alpha=2.1,
                                seed=109),
        _cls(knc={"ML", "IMB"}),
    ),
    _spec(
        "webbase-1M",
        "web crawl",
        "Dominated by very short rows plus a few dense ones: inner-loop "
        "overhead (CMP) with residual imbalance. Paper: P_CMP >> P_ML.",
        lambda s: gen.with_dense_rows(
            gen.short_rows(_n(180_000, s), avg_nnz=3.0, locality=0.7,
                           seed=110),
            n_dense=3, dense_nnz=_n(30_000, s), seed=210),
        _cls(knc={"CMP", "IMB"}),
    ),
    _spec(
        "flickr",
        "social network",
        "Kronecker/R-MAT heavy-tailed social graph. Paper: best single "
        "optimization was prefetching (ML-leaning).",
        lambda s: gen.kronecker_graph(
            max(int(16 + (s - 1) * 2), 12) if s >= 1 else
            max(int(16 + (s - 1) * 8), 12), edge_factor=9, seed=111),
        _cls(knc={"ML", "IMB"}),
    ),
    _spec(
        "ASIC_680k",
        "circuit simulation",
        "Sparse circuit matrix with a handful of ultra-dense rows "
        "(~10% of nnz in <10 rows). Paper: {IMB, CMP}.",
        lambda s: gen.with_dense_rows(
            gen.banded(_n(120_000, s), nnz_per_row=4, bandwidth=10,
                       jitter=0.5, seed=112),
            n_dense=4, dense_nnz=_n(80_000, s), seed=212),
        _cls(knc={"IMB", "CMP"}, knl={"IMB", "CMP"}),
    ),
    _spec(
        "rajat30",
        "circuit simulation",
        "Scattered circuit matrix with dense rows; paper notes a hidden "
        "ML component its classifier misses ({IMB, CMP} detected).",
        lambda s: gen.with_dense_rows(
            gen.random_uniform(_n(100_000, s), nnz_per_row=4, seed=113),
            n_dense=6, dense_nnz=_n(40_000, s), seed=213),
        _cls(knc={"IMB", "CMP"}, knl={"IMB", "CMP"}),
    ),
    _spec(
        "FullChip",
        "circuit simulation",
        "Full-chip layout: short local rows plus several huge rows.",
        lambda s: gen.with_dense_rows(
            gen.short_rows(_n(150_000, s), avg_nnz=3.0, locality=0.9,
                           seed=114),
            n_dense=8, dense_nnz=_n(50_000, s), seed=214),
        _cls(knc={"IMB", "CMP"}),
    ),
    _spec(
        "circuit5M",
        "circuit simulation",
        "Very short rows + dense rows; paper: loop-overhead/compute "
        "limited (P_CSR ~ P_ML, P_CMP >> P_ML).",
        lambda s: gen.with_dense_rows(
            gen.short_rows(_n(160_000, s), avg_nnz=4.0, locality=0.5,
                           seed=115),
            n_dense=10, dense_nnz=_n(30_000, s), seed=215),
        _cls(knc={"CMP", "IMB"}),
    ),
    _spec(
        "degme",
        "linear programming",
        "LP constraint matrix: banded bulk plus dense coupling rows.",
        lambda s: gen.with_dense_rows(
            gen.banded(_n(100_000, s), nnz_per_row=6, bandwidth=2400,
                       jitter=150.0, seed=116),
            n_dense=12, dense_nnz=_n(20_000, s), seed=216),
        _cls(knc={"IMB", "CMP"}, knl={"IMB", "CMP"}),
    ),
    _spec(
        "human_gene1",
        "gene network",
        "Small-N, very dense rows (~120 nnz/row): x fits in cache. "
        "Paper: ML on KNC but MB on KNL (platform-dependent class).",
        lambda s: gen.random_uniform(_n(40_000, s), nnz_per_row=120,
                                     seed=117),
        _cls(knc={"ML"}, knl={"MB"}),
    ),
    _spec(
        "smallfem",
        "FEM (cache resident)",
        "Extra analogue: a FEM matrix whose full working set fits in "
        "LLC, exposing the CMP/cache-resident regime the paper observes "
        "on non-KNC platforms (P_CMP >> P_peak).",
        lambda s: gen.fem_like(_n(12_000, s), block=3, neighbors=8,
                               reach=16, seed=118),
        _cls(broadwell={"CMP"}),
    ),
)

_BY_NAME = {spec.name: spec for spec in NAMED_SUITE}


def suite_names() -> tuple[str, ...]:
    """Names of all matrices in the evaluation suite."""
    return tuple(spec.name for spec in NAMED_SUITE)


def named_matrix(name: str, scale: float = 1.0) -> CSRMatrix:
    """Build the named analogue matrix at the given size ``scale``."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; available: {suite_names()}"
        ) from None
    return spec(scale)


def load_suite(scale: float = 1.0, names: tuple[str, ...] | None = None):
    """Yield ``(spec, matrix)`` for the whole (or a named subset of the)
    evaluation suite at the given ``scale``."""
    specs = NAMED_SUITE if names is None else tuple(
        _BY_NAME[n] for n in names
    )
    for spec in specs:
        yield spec, spec(scale)
