"""Matrix corpus: generators, named suite, training suite, features, I/O."""

from . import generators
from .features import (
    FEATURE_COMPLEXITY,
    FEATURE_NAMES,
    ON_FEATURES,
    ONNZ_FEATURES,
    PAPER_ON_SUBSET,
    PAPER_ONNZ_SUBSET,
    FeatureVector,
    extract_features,
    feature_matrix,
    features_with_complexity,
    spmv_working_set_bytes,
)
from .mmio import MatrixMarketError, read_matrix_market, write_matrix_market
from .named_suite import (
    NAMED_SUITE,
    NamedMatrixSpec,
    load_suite,
    named_matrix,
    suite_names,
)
from .stats import MatrixStats, gini_coefficient, matrix_stats
from .training import TRAINING_FAMILIES, TrainingMatrix, training_suite

__all__ = [
    "generators",
    "FeatureVector",
    "extract_features",
    "feature_matrix",
    "features_with_complexity",
    "spmv_working_set_bytes",
    "FEATURE_NAMES",
    "FEATURE_COMPLEXITY",
    "ON_FEATURES",
    "ONNZ_FEATURES",
    "PAPER_ON_SUBSET",
    "PAPER_ONNZ_SUBSET",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixMarketError",
    "NamedMatrixSpec",
    "NAMED_SUITE",
    "named_matrix",
    "suite_names",
    "load_suite",
    "MatrixStats",
    "matrix_stats",
    "gini_coefficient",
    "TrainingMatrix",
    "training_suite",
    "TRAINING_FAMILIES",
]
