"""Matrix Market I/O (own implementation, no scipy dependency).

Supports the subset of the format used by the University of Florida /
SuiteSparse collection that the paper draws its matrices from:
``matrix coordinate {real,integer,pattern} {general,symmetric}``.
Symmetric matrices are expanded to general on read (off-diagonal
entries mirrored), matching how SpMV benchmarks consume them.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..formats import COOMatrix, CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "MatrixMarketError"]


class MatrixMarketError(ValueError):
    """Raised on malformed Matrix Market input."""


_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source) -> CSRMatrix:
    """Read a Matrix Market file (path, file object, or text) into CSR."""
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(source, "r", encoding="utf-8") as fh:
            return _read(fh)
    if isinstance(source, str):
        return _read(io.StringIO(source))
    return _read(source)


def _read(fh) -> CSRMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise MatrixMarketError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) != 5:
        raise MatrixMarketError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj!r} {fmt!r}"
        )
    if field not in _FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read the size line.
    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    try:
        nrows, ncols, nnz = (int(tok) for tok in line.split())
    except Exception as exc:
        raise MatrixMarketError(f"malformed size line: {line!r}") from exc

    body = np.loadtxt(fh, ndmin=2) if nnz else np.zeros((0, 3))
    if body.shape[0] != nnz:
        raise MatrixMarketError(
            f"expected {nnz} entries, found {body.shape[0]}"
        )
    expected_cols = 2 if field == "pattern" else 3
    if nnz and body.shape[1] != expected_cols:
        raise MatrixMarketError(
            f"expected {expected_cols} columns per entry, got {body.shape[1]}"
        )
    rows = body[:, 0].astype(np.int64) - 1
    cols = body[:, 1].astype(np.int64) - 1
    if field == "pattern":
        values = np.ones(nnz, dtype=np.float64)
    else:
        values = body[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, body[:, 0].astype(np.int64)[off] - 1])
        values = np.concatenate([values, sign * values[off]])

    return CSRMatrix.from_coo(COOMatrix(rows, cols, values, (nrows, ncols)))


def write_matrix_market(csr: CSRMatrix, target, comment: str | None = None) -> None:
    """Write ``csr`` as 'matrix coordinate real general' (1-based)."""
    own = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if own else target
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{csr.nrows} {csr.ncols} {csr.nnz}\n")
        rows = csr.row_ids_per_nnz() + 1
        cols = csr.colind.astype(np.int64) + 1
        for r, c, v in zip(rows, cols, csr.values):
            fh.write(f"{r} {c} {float(v)!r}\n")
    finally:
        if own:
            fh.close()
