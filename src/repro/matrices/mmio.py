"""Matrix Market I/O (own implementation, no scipy dependency).

Supports the subset of the format used by the University of Florida /
SuiteSparse collection that the paper draws its matrices from:
``matrix coordinate {real,integer,pattern} {general,symmetric}``.
Symmetric matrices are expanded to general on read (off-diagonal
entries mirrored), matching how SpMV benchmarks consume them.

The reader parses entry lines itself (no ``np.loadtxt``) so malformed
or out-of-range entries are reported with their 1-based line number,
and blank lines between entries are tolerated (files hand-edited or
concatenated in the wild often have them).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import ReproError
from ..formats import COOMatrix, CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "MatrixMarketError"]


class MatrixMarketError(ReproError, ValueError):
    """Raised on malformed Matrix Market input.

    Errors attributable to a specific input line carry its 1-based
    number in the message (``"line N: ..."``).
    """


_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source) -> CSRMatrix:
    """Read a Matrix Market file (path, file object, or text) into CSR."""
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(source, "r", encoding="utf-8") as fh:
            return _read(fh)
    if isinstance(source, str):
        return _read(io.StringIO(source))
    return _read(source)


def _read(fh) -> CSRMatrix:
    lineno = 1
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise MatrixMarketError("line 1: missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) != 5:
        raise MatrixMarketError(
            f"line 1: malformed header: {header.strip()!r}"
        )
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj!r} {fmt!r}"
        )
    if field not in _FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    # Skip comments and blank lines, read the size line.
    line = fh.readline()
    lineno += 1
    while line and (line.startswith("%") or not line.strip()):
        line = fh.readline()
        lineno += 1
    try:
        nrows, ncols, nnz = (int(tok) for tok in line.split())
    except Exception as exc:
        raise MatrixMarketError(
            f"line {lineno}: malformed size line: {line.strip()!r}"
        ) from exc

    expected_toks = 2 if field == "pattern" else 3
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    values = np.ones(nnz, dtype=np.float64)
    k = 0
    for line in fh:
        lineno += 1
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue  # tolerate blank lines / trailing comments
        if k >= nnz:
            raise MatrixMarketError(
                f"line {lineno}: more than the declared {nnz} entries"
            )
        toks = stripped.split()
        if len(toks) != expected_toks:
            raise MatrixMarketError(
                f"line {lineno}: expected {expected_toks} tokens per "
                f"entry, got {len(toks)}: {stripped!r}"
            )
        try:
            r = int(toks[0])
            c = int(toks[1])
            v = float(toks[2]) if field != "pattern" else 1.0
        except ValueError as exc:
            raise MatrixMarketError(
                f"line {lineno}: malformed entry: {stripped!r}"
            ) from exc
        if not (1 <= r <= nrows):
            raise MatrixMarketError(
                f"line {lineno}: row index {r} out of range "
                f"[1, {nrows}]"
            )
        if not (1 <= c <= ncols):
            raise MatrixMarketError(
                f"line {lineno}: column index {c} out of range "
                f"[1, {ncols}]"
            )
        rows[k] = r - 1
        cols[k] = c - 1
        values[k] = v
        k += 1
    if k != nnz:
        raise MatrixMarketError(f"expected {nnz} entries, found {k}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows, cols = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
        )
        values = np.concatenate([values, sign * values[off]])

    return CSRMatrix.from_coo(COOMatrix(rows, cols, values, (nrows, ncols)))


def write_matrix_market(csr: CSRMatrix, target, comment: str | None = None) -> None:
    """Write ``csr`` as 'matrix coordinate real general' (1-based)."""
    own = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if own else target
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{csr.nrows} {csr.ncols} {csr.nnz}\n")
        rows = csr.row_ids_per_nnz() + 1
        cols = csr.colind.astype(np.int64) + 1
        for r, c, v in zip(rows, cols, csr.values):
            fh.write(f"{r} {c} {float(v)!r}\n")
    finally:
        if own:
            fh.close()
