"""Experiment E1 — paper Fig. 1.

Speedup (slowdown) of each single software optimization applied to the
CSR SpMV baseline on KNC, across the named suite. The paper's point:
every optimization helps some matrices and *hurts* others, which is
what justifies an adaptive optimizer.
"""

from __future__ import annotations

from ..kernels import baseline_kernel, single_optimization_kernels
from ..machine import KNC, MachineSpec
from ..matrices import load_suite
from .common import ExperimentTable, PipelineRunner

__all__ = ["run"]


def run(machine: MachineSpec = KNC, scale: float = 1.0,
        names: tuple[str, ...] | None = None) -> ExperimentTable:
    """Regenerate Fig. 1 on ``machine`` (paper uses KNC)."""
    runner = PipelineRunner(machine)
    base = baseline_kernel()
    singles = single_optimization_kernels()

    table = ExperimentTable(
        experiment_id="fig1",
        title=(
            "Speedup of single optimizations over baseline CSR "
            f"on {machine.codename}"
        ),
        headers=("matrix", *singles.keys()),
    )
    slowdown_seen = {name: False for name in singles}
    speedup_seen = {name: False for name in singles}
    for spec, csr in load_suite(scale=scale, names=names):
        r0 = runner.simulate(base, csr)
        row = [spec.name]
        for name, kernel in singles.items():
            r = runner.simulate(kernel, csr)
            s = r.gflops / r0.gflops
            row.append(float(s))
            if s < 0.98:
                slowdown_seen[name] = True
            if s > 1.05:
                speedup_seen[name] = True
        table.add(*row)

    mixed = [
        n for n in singles if slowdown_seen[n] and speedup_seen[n]
    ]
    table.note(
        "optimizations with BOTH speedups and slowdowns (the paper's "
        f"motivation for adaptivity): {', '.join(mixed) if mixed else 'none'}"
    )
    return table
