"""Full reproduction report generator.

Runs every experiment driver and renders a single markdown document —
the machine-generated half of ``EXPERIMENTS.md``. Useful to re-verify
the whole reproduction after model or corpus changes::

    python -m repro.experiments.report [out.md] [scale] [train_count]
"""

from __future__ import annotations

import sys
import time

from . import ablations, fig1, fig4, fig5, fig7, table2, table3, table4, table5
from .common import ExperimentTable

__all__ = ["generate_report", "ALL_DRIVERS"]

#: (section title, callable(scale, train_count) -> ExperimentTable)
ALL_DRIVERS = (
    ("Table III — platforms & STREAM", lambda s, t: table3.run()),
    ("Table II — feature inventory", lambda s, t: table2.run()),
    ("Table II — extraction scaling", lambda s, t: table2.extraction_scaling()),
    ("Fig. 1 — single-optimization effects (KNC)",
     lambda s, t: fig1.run(scale=s)),
    ("Fig. 4 — bounds landscape (KNC)", lambda s, t: fig4.run(scale=s)),
    ("Fig. 5 — threshold grid search (KNC)",
     lambda s, t: fig5.run(corpus_count=min(t, 60))),
    ("Table IV — classifier accuracy (KNC)",
     lambda s, t: table4.run(train_count=t)),
    ("Fig. 7a — performance landscape (KNC)",
     lambda s, t: fig7.run("knc", scale=s, train_count=t)),
    ("Fig. 7b — performance landscape (KNL)",
     lambda s, t: fig7.run("knl", scale=s, train_count=t)),
    ("Fig. 7c — performance landscape (Broadwell)",
     lambda s, t: fig7.run("broadwell", scale=s, train_count=t)),
    ("Table V — amortization (KNL)",
     lambda s, t: table5.run(scale=s, train_count=t)),
    ("A1 — IMB strategy ablation", lambda s, t: ablations.imb_strategy(scale=s)),
    ("A2 — delta width ablation", lambda s, t: ablations.delta_width(scale=s)),
    ("A3 — scheduling ablation",
     lambda s, t: ablations.scheduling_policies(scale=s)),
    ("A4 — tree ablation",
     lambda s, t: ablations.tree_ablation(corpus_count=min(t, 80))),
    ("A5 — partitioned ML detection (extension)",
     lambda s, t: ablations.partitioned_ml(scale=s)),
    ("A6 — BCSR vs delta compression (extension)",
     lambda s, t: ablations.bcsr_vs_delta(scale=s)),
    ("A7 — format landscape (extension)",
     lambda s, t: ablations.format_landscape(scale=s)),
    ("A8 — architecture sensitivity (extension)",
     lambda s, t: ablations.architecture_sensitivity(scale=s)),
)


def _table_to_markdown(table: ExperimentTable) -> str:
    lines = [
        "| " + " | ".join(table.headers) + " |",
        "|" + "|".join("---" for _ in table.headers) + "|",
    ]
    for row in table.rows:
        cells = [
            f"{c:.2f}" if isinstance(c, float) else str(c) for c in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    for note in table.notes:
        lines.append(f"\n*{note}*")
    return "\n".join(lines)


def generate_report(scale: float = 1.0, train_count: int = 210,
                    stream=None) -> str:
    """Run all drivers; return (and optionally stream) markdown."""
    chunks = [
        "# Reproduction report (machine generated)",
        "",
        f"suite scale: {scale}, training corpus: {train_count} matrices.",
        "",
    ]
    t0 = time.time()
    for title, driver in ALL_DRIVERS:
        table = driver(scale, train_count)
        chunk = f"## {title}\n\n{_table_to_markdown(table)}\n"
        chunks.append(chunk)
        if stream is not None:
            stream.write(chunk + "\n")
            stream.flush()
    chunks.append(f"\n_total generation time: {time.time() - t0:.0f}s_")
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "reproduction_report.md"
    scale = float(argv[1]) if len(argv) > 1 else 1.0
    train = int(argv[2]) if len(argv) > 2 else 210
    with open(out, "w", encoding="utf-8") as fh:
        generate_report(scale=scale, train_count=train, stream=fh)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
