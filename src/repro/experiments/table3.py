"""Experiment E5 — paper Table III.

Platform characteristics, including the STREAM triad main/LLC
bandwidth pair recovered through the simulated triad microbenchmark.
The spec values are the calibration source; the experiment verifies
the engine's bandwidth/overhead model returns them undistorted.
"""

from __future__ import annotations

from ..machine import PLATFORMS, stream_table
from .common import ExperimentTable

__all__ = ["run"]

#: Paper Table III STREAM triad main/LLC (GB/s).
PAPER_STREAM = {"knc": (128, 140), "knl": (395, 570), "broadwell": (60, 200)}


def run() -> ExperimentTable:
    """Regenerate Table III."""
    table = ExperimentTable(
        experiment_id="table3",
        title="Experimental platforms (paper Table III)",
        headers=(
            "platform", "cores/threads", "freq (GHz)", "LLC (MiB)",
            "STREAM main (GB/s)", "STREAM llc (GB/s)", "paper main/llc",
        ),
    )
    for codename, spec in PLATFORMS.items():
        measured = stream_table(spec)
        paper = PAPER_STREAM[codename]
        table.add(
            spec.name,
            f"{spec.cores}/{spec.total_threads}",
            float(spec.freq_ghz),
            float(spec.llc_mib),
            float(measured["main_gbs"]),
            float(measured["llc_gbs"]),
            f"{paper[0]}/{paper[1]}",
        )
    return table
