"""Experiment E10 — paper Table V.

Minimum solver iterations needed to amortize each optimizer's setup
overhead over MKL CSR on KNL. The paper's ordering to reproduce:
feature-guided << profile-guided < MKL Inspector-Executor <
trivial-single << trivial-combined (feature-guided is the most
lightweight approach).
"""

from __future__ import annotations

import math

from ..core import amortization_study
from ..machine import KNL, MachineSpec
from ..matrices import load_suite
from .common import ExperimentTable, trained_feature_classifier

__all__ = ["run", "ROW_ORDER"]

ROW_ORDER = (
    "trivial-single",
    "trivial-combined",
    "profile-guided",
    "feature-guided",
    "mkl-inspector-executor",
)

#: Paper Table V (KNL): optimizer -> (best, avg, worst).
PAPER_TABLE5 = {
    "trivial-single": (455, 910, 8016),
    "trivial-combined": (1992, 3782, 37111),
    "profile-guided": (145, 267, 3145),
    "feature-guided": (27, 60, 567),
    "mkl-inspector-executor": (28, 336, 1229),
}


def run(machine: MachineSpec = KNL, scale: float = 1.0,
        names: tuple[str, ...] | None = None,
        train_count: int = 210) -> ExperimentTable:
    """Regenerate Table V on ``machine`` (paper reports KNL)."""
    feat_clf = trained_feature_classifier(machine, train_count=train_count)
    suite = [(spec.name, csr) for spec, csr in load_suite(scale=scale,
                                                          names=names)]
    summaries = amortization_study(suite, machine,
                                   feature_classifier=feat_clf)

    table = ExperimentTable(
        experiment_id="table5",
        title=(
            "Min solver iterations to amortize optimizer overhead over "
            f"MKL CSR on {machine.codename}"
        ),
        headers=("optimizer", "N_best", "N_avg", "N_worst",
                 "beneficial", "paper (best/avg/worst)"),
    )
    for name in ROW_ORDER:
        if name not in summaries:
            continue
        s = summaries[name]
        paper = PAPER_TABLE5.get(name)
        table.add(
            name,
            _fmt(s.n_best), _fmt(s.n_avg), _fmt(s.n_worst),
            f"{s.n_beneficial}/{s.n_total}",
            "/".join(str(v) for v in paper) if paper else "-",
        )
    table.note(
        "expected ordering: feature-guided amortizes fastest, the "
        "trivial sweeps slowest"
    )
    return table


def _fmt(v: float) -> str:
    return "inf" if math.isinf(v) else f"{v:.0f}"
